//! Integration tests for the observability layer: the quickstart flow
//! with metrics and tracing enabled must produce (a) a [`RunReport`]
//! whose per-link token counts witness the latency-*N* invariant
//! (§III-B2: every link always holds exactly one latency's worth of
//! tokens), and (b) a Chrome `trace_event` JSON that a trace viewer
//! would accept — the acceptance criteria for the `--metrics-out` /
//! `--trace-out` quickstart flags.

use std::time::Duration;

use firesim_blade::programs;
use firesim_core::{Cycle, RunSummary};
use firesim_manager::{BladeSpec, RunReport, SimConfig, Simulation, Topology};
use firesim_net::MacAddr;

const PINGS: usize = 4;
const LINK_LATENCY: u64 = 400;

/// The quickstart cluster at test scale: one ToR switch, a pinger, an
/// echo server, and two idle nodes.
fn build_quickstart(host_threads: usize) -> Simulation {
    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let pinger = topo.add_server(
        "pinger",
        BladeSpec::rtl_single_core(programs::ping_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            PINGS,
            56,
            10_000,
        )),
    );
    let echo = topo.add_server(
        "echo",
        BladeSpec::rtl_single_core(programs::echo_responder(PINGS)),
    );
    topo.add_downlinks(tor, [pinger, echo]).unwrap();
    for i in 0..2 {
        let idle = topo.add_server(
            format!("idle{i}"),
            BladeSpec::rtl_single_core(programs::boot_poweroff(100)),
        );
        topo.add_downlink(tor, idle).unwrap();
    }
    topo.build(SimConfig {
        link_latency: Cycle::new(LINK_LATENCY),
        host_threads,
        ..SimConfig::default()
    })
    .expect("valid topology")
}

fn observed_run(host_threads: usize) -> (Simulation, RunSummary) {
    let mut sim = build_quickstart(host_threads);
    sim.enable_metrics();
    sim.enable_tracing();
    let summary = sim.run_until_done(Cycle::new(20_000_000)).expect("runs");
    (sim, summary)
}

/// Acceptance: the RunReport's per-link token counts match the latency-N
/// invariant, its profiles are self-consistent, and the app counters
/// surface the models' traffic.
#[test]
fn run_report_links_match_latency_invariant() {
    let (sim, summary) = observed_run(1);
    let report = sim.run_report(summary.wall);

    assert!(report.token_invariant_ok, "token invariant must hold");
    // 4 servers + 1 switch, bidirectional links = 8 directed links.
    assert_eq!(report.links.len(), 8);
    for link in &report.links {
        assert_eq!(link.latency, LINK_LATENCY);
        assert_eq!(
            link.in_flight_tokens, LINK_LATENCY,
            "link -> {}:{} holds {} tokens on a latency-{} link",
            link.agent, link.port, link.in_flight_tokens, link.latency
        );
    }

    // Profiles: every agent advanced the full run in lockstep, and the
    // aggregated step counter is exactly the sum of per-agent rounds.
    assert_eq!(report.agents.len(), 5);
    let total_rounds: u64 = report.agents.iter().map(|a| a.rounds).sum();
    assert!(total_rounds > 0);
    for a in &report.agents {
        assert_eq!(a.target_cycles, a.rounds * LINK_LATENCY, "agent {}", a.name);
    }
    let steps = report
        .counters
        .iter()
        .find(|(k, _)| k == "engine/agent_steps")
        .map(|(_, v)| *v)
        .expect("engine/agent_steps counter present");
    assert_eq!(steps, total_rounds);

    // App counters: the switch forwarded every ping and echo; the ping
    // pair exchanged tokens.
    let tor = report.agents.iter().find(|a| a.name == "tor0").unwrap();
    let forwarded = tor
        .counters
        .iter()
        .find(|(k, _)| k == "frames_forwarded")
        .map(|(_, v)| *v)
        .unwrap();
    assert!(forwarded >= 2 * PINGS as u64, "forwarded {forwarded}");
    let pinger = report.agents.iter().find(|a| a.name == "pinger").unwrap();
    assert!(pinger.tokens_out > 0 && pinger.tokens_in > 0);

    assert!(report.cycles > 0);
    assert!(report.sim_rate_mhz > 0.0);
}

/// Acceptance: the exported trace is valid Chrome `trace_event` JSON —
/// parseable, with named tracks and complete ("X") spans carrying
/// numeric timestamps — across sequential and parallel execution.
#[test]
fn chrome_trace_is_valid_and_names_agents() {
    for host_threads in [1, 2] {
        let mut sim = build_quickstart(host_threads);
        sim.engine_mut().set_host_oversubscribe(true);
        let tracer = sim.enable_tracing();
        sim.run_until_done(Cycle::new(20_000_000)).expect("runs");

        let json = tracer.export_chrome_trace();
        let v = serde_json::from_str(&json).expect("trace parses as JSON");
        let events = v
            .get("traceEvents")
            .and_then(serde_json::Value::as_array)
            .expect("traceEvents array")
            .clone();
        assert!(!events.is_empty(), "threads={host_threads}: empty trace");

        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(serde_json::Value::as_str) == Some("X"))
            .collect();
        assert!(!spans.is_empty());
        for span in &spans {
            assert!(span.get("ts").unwrap().as_f64().is_some());
            assert!(span.get("dur").unwrap().as_f64().unwrap() > 0.0);
            assert!(span.get("tid").unwrap().as_u64().is_some());
        }
        // Every agent appears as a span name somewhere.
        let names: Vec<&str> = spans
            .iter()
            .filter_map(|e| e.get("name").and_then(serde_json::Value::as_str))
            .collect();
        for agent in ["pinger", "echo", "idle0", "idle1", "tor0"] {
            assert!(
                names.contains(&agent),
                "threads={host_threads}: no span for agent {agent}"
            );
        }
        // Track metadata names each worker.
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(serde_json::Value::as_str) == Some("thread_name"))
            .collect();
        assert_eq!(metas.len(), host_threads, "one named track per worker");
    }
}

/// Acceptance: report and trace survive the full file round trip the
/// quickstart flags perform — write, re-read, re-parse, same content.
#[test]
fn artifacts_round_trip_through_files() {
    let (mut sim, summary) = observed_run(1);
    let report = sim.run_report(summary.wall);
    let tracer = sim.engine_mut().tracer().cloned().expect("tracing enabled");

    let dir = std::env::temp_dir().join("firesim_observability_test");
    std::fs::create_dir_all(&dir).unwrap();
    let report_path = dir.join("report.json");
    let trace_path = dir.join("trace.json");

    std::fs::write(&report_path, report.to_json()).unwrap();
    tracer.write_chrome_trace(&trace_path).unwrap();

    let report_back =
        RunReport::from_json(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(report_back, report);
    assert!(report_back.token_invariant_ok);

    let trace_back = std::fs::read_to_string(&trace_path).unwrap();
    let v = serde_json::from_str(&trace_back).expect("written trace parses");
    assert_eq!(
        v.get("traceEvents")
            .and_then(serde_json::Value::as_array)
            .map(Vec::len),
        Some(tracer.len() + 1), // spans + the engine's thread_name record
    );

    let _ = std::fs::remove_file(report_path);
    let _ = std::fs::remove_file(trace_path);
}

/// Observability is strictly additive: a run with metrics and tracing on
/// produces the same RTTs as an unobserved run, and disabling leaves the
/// report empty of registry counters.
#[test]
fn observed_and_unobserved_runs_agree() {
    let rtts = |sim: &Simulation| -> Vec<u64> {
        let probe = sim.servers()[0].probe.as_ref().unwrap();
        let p = probe.lock();
        assert_eq!(p.exit_code, Some(0));
        (0..PINGS)
            .map(|i| u64::from_le_bytes(p.mailbox[i * 8..i * 8 + 8].try_into().unwrap()))
            .collect()
    };

    let mut plain = build_quickstart(1);
    plain.run_until_done(Cycle::new(20_000_000)).expect("runs");
    let (observed, _) = observed_run(1);
    assert_eq!(rtts(&plain), rtts(&observed));

    // The unobserved report still carries links and the invariant check,
    // but no registry counters and all-zero profiles.
    let report = plain.run_report(Duration::from_millis(1));
    assert!(report.token_invariant_ok);
    assert!(report.counters.is_empty());
    assert!(report.agents.iter().all(|a| a.rounds == 0));
}
