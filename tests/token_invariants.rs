//! Property-based tests of the token-transport invariants the whole
//! system rests on (paper §III-B2):
//!
//! * a token sent at cycle `m` over a latency-`N` link arrives at `m+N`;
//! * the switch neither loses nor duplicates frames absent congestion;
//! * the NIC rate limiter converges to `k/p` of line rate;
//! * sparse token windows are semantically identical to dense ones.

use proptest::prelude::*;

use firesim_core::{link, AgentCtx, Cycle, Engine, SimAgent, TokenWindow};
use firesim_net::{
    EtherType, EthernetFrame, Flit, FrameDeframer, FrameFramer, MacAddr, Switch, SwitchConfig,
};

// ---------------------------------------------------------------------
// Link latency invariant
// ---------------------------------------------------------------------

struct ScheduledSender {
    sends: Vec<u64>, // absolute cycles, strictly increasing
    next: usize,
}

impl SimAgent for ScheduledSender {
    type Token = u64;
    fn name(&self) -> &str {
        "sender"
    }
    fn num_inputs(&self) -> usize {
        0
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
        let base = ctx.now().as_u64();
        while self.next < self.sends.len() {
            let at = self.sends[self.next];
            if at < base || at >= base + u64::from(ctx.window()) {
                break;
            }
            ctx.push_output(0, (at - base) as u32, at);
            self.next += 1;
        }
    }
}

struct ArrivalRecorder {
    arrivals: std::sync::Arc<parking_lot::Mutex<Vec<(u64, u64)>>>,
}

impl SimAgent for ArrivalRecorder {
    type Token = u64;
    fn name(&self) -> &str {
        "recorder"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        0
    }
    fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
        let base = ctx.now().as_u64();
        let mut a = self.arrivals.lock();
        for (off, sent_at) in ctx.take_input(0).into_iter() {
            a.push((sent_at, base + u64::from(off)));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every token arrives exactly `latency` cycles after it was sent,
    /// for random windows, latencies, and send schedules.
    #[test]
    fn token_arrives_exactly_latency_later(
        window in 1u32..64,
        latency_windows in 1u64..6,
        sends in proptest::collection::btree_set(0u64..1_000, 1..20),
    ) {
        let latency = u64::from(window) * latency_windows;
        let arrivals = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut engine = Engine::new(window);
        let s = engine.add_agent(Box::new(ScheduledSender {
            sends: sends.iter().copied().collect(),
            next: 0,
        }));
        let r = engine.add_agent(Box::new(ArrivalRecorder {
            arrivals: arrivals.clone(),
        }));
        engine.connect(s, 0, r, 0, Cycle::new(latency)).unwrap();
        engine.run_for(Cycle::new(2_000 + latency)).unwrap();

        let observed = arrivals.lock();
        prop_assert_eq!(observed.len(), sends.len());
        for &(sent, arrived) in observed.iter() {
            prop_assert_eq!(arrived, sent + latency);
        }
    }

    /// Sparse windows round-trip through the dense representation.
    #[test]
    fn sparse_window_equals_dense(
        dense in proptest::collection::vec(proptest::option::of(0u32..1000), 1..128),
    ) {
        let w = TokenWindow::from_dense(dense.clone());
        let back: Vec<Option<u32>> =
            w.to_dense().into_iter().map(|o| o.copied()).collect();
        prop_assert_eq!(back, dense);
    }

    /// A recycled window (drained, then reset to a new length) is
    /// indistinguishable from a freshly allocated one — the engine's
    /// zero-allocation recycling loop depends on this.
    #[test]
    fn recycled_window_equals_fresh(
        first in proptest::collection::vec(proptest::option::of(0u32..1000), 1..128),
        second in proptest::collection::vec(proptest::option::of(0u32..1000), 1..128),
    ) {
        // Fill a window, consume it the way the engine does (drain),
        // recycle it to the second payload's length, and refill.
        let mut w = TokenWindow::from_dense(first.clone());
        let drained: Vec<(u32, u32)> = w.drain().collect();
        prop_assert!(w.is_empty());
        prop_assert_eq!(drained.len(), first.iter().flatten().count());

        w.reset(second.len() as u32);
        for (off, tok) in second.iter().enumerate() {
            if let Some(t) = tok {
                w.push(off as u32, *t).unwrap();
            }
        }
        let fresh = TokenWindow::from_dense(second.clone());
        prop_assert_eq!(&w, &fresh);
        let back: Vec<Option<u32>> =
            w.to_dense().into_iter().map(|o| o.copied()).collect();
        prop_assert_eq!(back, second);
    }

    /// Channels seeded with `latency` tokens never change payload order.
    #[test]
    fn channel_preserves_fifo_order(
        window in 1u32..32,
        values in proptest::collection::vec(0u64..u64::MAX, 1..50),
    ) {
        let latency = Cycle::new(u64::from(window));
        let (tx, rx) = link::<u64>(window, latency).unwrap();
        let _seed = rx.recv().unwrap();
        let mut received = Vec::new();
        for chunk in values.chunks(1) {
            let mut w = TokenWindow::new(window);
            w.push(0, chunk[0]).unwrap();
            tx.send(w).unwrap();
            for (_, v) in rx.recv().unwrap().into_iter() {
                received.push(v);
            }
        }
        prop_assert_eq!(received, values);
    }
}

// ---------------------------------------------------------------------
// Engine-level occupancy and profile invariants (observability layer)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Between rounds the engine is quiescent: every latency-`N` link
    /// holds exactly `N` tokens in flight (§III-B2), as observed through
    /// [`Engine::link_occupancies`] and checked by the engine's own
    /// verifier — after every single round, not just at run end.
    #[test]
    fn link_occupancy_is_exactly_latency_every_round(
        window in 1u32..32,
        latency_windows in 1u64..5,
        rounds in 1u64..12,
    ) {
        let latency = u64::from(window) * latency_windows;
        let arrivals = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut engine = Engine::new(window);
        let s = engine.add_agent(Box::new(ScheduledSender { sends: Vec::new(), next: 0 }));
        let r = engine.add_agent(Box::new(ArrivalRecorder { arrivals }));
        engine.connect(s, 0, r, 0, Cycle::new(latency)).unwrap();
        engine.enable_metrics();

        for round in 0..rounds {
            engine.run_for(Cycle::new(u64::from(window))).unwrap();
            engine.verify_token_invariant().unwrap();
            let occs = engine.link_occupancies();
            prop_assert_eq!(occs.len(), 1);
            prop_assert_eq!(occs[0].latency, latency);
            prop_assert_eq!(
                occs[0].in_flight_tokens, latency,
                "round {}: {} tokens in flight on a latency-{} link",
                round, occs[0].in_flight_tokens, latency
            );
        }

        // Profile consumption invariants: one window per connected port
        // per round, and target cycles advance one window at a time.
        let profiles = engine.agent_profiles();
        let (sender_p, recorder_p) = (&profiles[0].1, &profiles[1].1);
        prop_assert_eq!(recorder_p.rounds, rounds);
        prop_assert_eq!(recorder_p.target_cycles, rounds * u64::from(window));
        prop_assert_eq!(recorder_p.windows_in, rounds);
        prop_assert_eq!(sender_p.windows_out, rounds);
        prop_assert_eq!(sender_p.windows_in, 0);
    }

    /// Token conservation through the profiles: once the pipe drains,
    /// every token the sender produced has been consumed by the receiver —
    /// `tokens_out == tokens_in == |sends|` — and the link still holds
    /// exactly its latency's worth of (empty-padded) windows.
    #[test]
    fn profiles_account_for_every_token(
        window in 1u32..32,
        latency_windows in 1u64..4,
        sends in proptest::collection::btree_set(0u64..500, 1..20),
    ) {
        let latency = u64::from(window) * latency_windows;
        let arrivals = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut engine = Engine::new(window);
        let s = engine.add_agent(Box::new(ScheduledSender {
            sends: sends.iter().copied().collect(),
            next: 0,
        }));
        let r = engine.add_agent(Box::new(ArrivalRecorder {
            arrivals: arrivals.clone(),
        }));
        engine.connect(s, 0, r, 0, Cycle::new(latency)).unwrap();
        engine.enable_metrics();
        // Long enough for the last send (cycle < 500) to arrive.
        engine.run_for(Cycle::new(512 + latency)).unwrap();

        let profiles = engine.agent_profiles();
        let (sender_p, recorder_p) = (&profiles[0].1, &profiles[1].1);
        prop_assert_eq!(sender_p.tokens_out, sends.len() as u64);
        prop_assert_eq!(recorder_p.tokens_in, sends.len() as u64);
        prop_assert_eq!(arrivals.lock().len(), sends.len());
        engine.verify_token_invariant().unwrap();
    }
}

// ---------------------------------------------------------------------
// Switch conservation
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With ample buffering, every frame pushed into a switch comes out
    /// exactly once, on exactly the routed port, with intact payload.
    #[test]
    fn switch_conserves_frames(
        sizes in proptest::collection::vec(1usize..600, 1..12),
        seed in 0u64..1_000,
    ) {
        let ports = 4usize;
        let mut sw = Switch::new("sw", SwitchConfig::new(ports));
        for p in 0..ports {
            sw.add_route(MacAddr::from_node_index(p as u64), p);
        }
        // Frames from port (i % ports) to a deterministic other port.
        let frames: Vec<(usize, usize, EthernetFrame)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let src = i % ports;
                let dst = (i + 1 + (seed as usize % (ports - 1))) % ports;
                let dst = if dst == src { (dst + 1) % ports } else { dst };
                let f = EthernetFrame::new(
                    MacAddr::from_node_index(dst as u64),
                    MacAddr::from_node_index(src as u64),
                    EtherType::Stream,
                    bytes::Bytes::from(vec![(i as u8).wrapping_add(seed as u8); n]),
                );
                (src, dst, f)
            })
            .collect();

        // Feed each source port its frames back to back; run rounds until
        // drained.
        let window = 512u32;
        let mut framers: Vec<FrameFramer> = (0..ports).map(|_| FrameFramer::new()).collect();
        for (src, _dst, f) in &frames {
            framers[*src].enqueue(f.clone());
        }
        let mut deframers: Vec<FrameDeframer> =
            (0..ports).map(|_| FrameDeframer::new()).collect();
        let mut out_frames: Vec<Vec<EthernetFrame>> = vec![Vec::new(); ports];
        let mut now = 0u64;
        for _round in 0..64 {
            let mut inputs: Vec<TokenWindow<Flit>> = Vec::new();
            for framer in framers.iter_mut() {
                let mut w = TokenWindow::new(window);
                for off in 0..window {
                    match framer.next_flit() {
                        Some(f) => w.push(off, f).unwrap(),
                        None => break,
                    }
                }
                inputs.push(w);
            }
            let mut ctx = AgentCtx::standalone(Cycle::new(now), window, inputs, ports);
            sw.advance(&mut ctx);
            for (p, out) in ctx.into_outputs().into_iter().enumerate() {
                for (_off, flit) in out.into_iter() {
                    if let Ok(Some(f)) = deframers[p].push(flit) {
                        out_frames[p].push(f);
                    }
                }
            }
            now += u64::from(window);
            if out_frames.iter().map(Vec::len).sum::<usize>() == frames.len() {
                break;
            }
        }

        // Conservation: every frame delivered exactly once on its port.
        prop_assert_eq!(
            out_frames.iter().map(Vec::len).sum::<usize>(),
            frames.len()
        );
        for (_src, dst, f) in &frames {
            let found = out_frames[*dst].iter().filter(|g| *g == f).count();
            prop_assert_eq!(found, 1, "frame to port {} seen {} times", dst, found);
        }
        let stats = sw.stats_handle();
        let stats = stats.lock();
        prop_assert_eq!(stats.drops_buffer, 0);
        prop_assert_eq!(stats.frames_forwarded as usize, frames.len());
    }
}

// ---------------------------------------------------------------------
// NIC rate limiter
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The token-bucket limiter's long-run throughput is k/p of line
    /// rate (paper §III-A2: "the effective bandwidth k/p times the
    /// unlimited rate").
    #[test]
    fn rate_limiter_long_run_throughput(k in 1u16..4, p_extra in 1u16..40) {
        use firesim_devices::nic::{reg, send_req, Nic, NicConfig};
        use firesim_devices::MmioDevice;
        use firesim_riscv::mem::Memory;
        use firesim_riscv::DRAM_BASE;

        let p = k + p_extra; // ensure p > k (limiting actually engages)
        let mut nic = Nic::new(MacAddr::from_node_index(0), NicConfig::default());
        let mut mem = Memory::new(DRAM_BASE, 1 << 20);
        nic.set_rate_limit(k, p);
        // One large buffer, sent repeatedly.
        let bytes = 4096usize;
        mem.write_bytes(DRAM_BASE, &vec![0xEE; bytes]).unwrap();

        let cycles = 60_000u64;
        let mut sent_flits = 0u64;
        for _ in 0..cycles {
            // Keep the send queue full.
            if nic.read(reg::COUNTS, 8) & 0xff > 0 {
                nic.write(reg::SEND_REQ, 8, send_req(DRAM_BASE, bytes as u32));
            }
            let _ = nic.read(reg::SEND_COMP, 8);
            if nic.tick(&mut mem, None).is_some() {
                sent_flits += 1;
            }
        }
        let expected = cycles as f64 * f64::from(k) / f64::from(p);
        let ratio = sent_flits as f64 / expected;
        prop_assert!(
            (0.93..=1.07).contains(&ratio),
            "k={} p={} sent={} expected={:.0}",
            k, p, sent_flits, expected
        );
    }
}
