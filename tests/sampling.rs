//! Acceptance tests for sampled timing mode
//! (`TimingConfig::sampling` / `SimConfig::sampling`).
//!
//! Sampled mode alternates detailed-timing windows with CPI-estimated
//! fast-forward spans (SMARTS-style systematic sampling). It is an
//! *approximation* — unlike the event-queue DRAM or the batched timing
//! schedule it does not promise bit-identity with the detailed run — so
//! the contract tested here is different:
//!
//! 1. the estimate is *calibrated*: a fully detailed run's IPC falls
//!    inside the sampled run's reported 95% confidence interval;
//! 2. the approximation is still *deterministic*: identical across
//!    host worker counts, repeatable, and checkpoint-restorable;
//! 3. it is *opt-in and inert elsewhere*: OS-model experiment rows
//!    (Fig 7) are unchanged when sampling is requested, and the
//!    `sampling_*` counters only appear when sampling is on.

use firesim_blade::{programs, BladeConfig, RtlBlade, SamplingConfig};
use firesim_core::{AgentCtx, Cycle, Frequency, SimAgent, TokenWindow};
use firesim_manager::{BladeSpec, SimConfig, Topology};
use firesim_net::MacAddr;
use firesim_riscv::asm::Assembler;
use firesim_riscv::DRAM_BASE;

const WINDOW: u32 = 3_200;

fn sampling_cfg() -> SamplingConfig {
    SamplingConfig {
        detailed_window: 2_000,
        fastforward: 6_000,
    }
}

/// Drives a standalone blade for `windows` token windows and returns its
/// exported application counters.
fn run_standalone(mut blade: RtlBlade, windows: u64) -> Vec<(String, u64)> {
    let mut now = 0u64;
    for _ in 0..windows {
        let mut ctx =
            AgentCtx::standalone(Cycle::new(now), WINDOW, vec![TokenWindow::new(WINDOW)], 1);
        SimAgent::advance(&mut blade, &mut ctx);
        now += u64::from(WINDOW);
    }
    let mut counters = Vec::new();
    SimAgent::app_counters(&blade, &mut counters);
    counters
}

fn counter(counters: &[(String, u64)], name: &str) -> Option<u64> {
    counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
}

/// A compute-bound workload with data-dependent control flow: an
/// xorshift generator steering a branchy detour (multiply + an
/// L1-resident load about half the time). Window-to-window IPC varies
/// with the branch pattern — honest variance for the error model —
/// while the working set stays cache-resident, so the estimate carries
/// no memory-warming bias (caches and DRAM are not warmed during
/// fast-forward; see DESIGN §18 for why memory-bound workloads bias).
fn compute_program() -> programs::Program {
    let mut a = Assembler::new(DRAM_BASE);
    a.li(5, 0x243F_6A88_85A3_08D3u64 as i64); // xorshift state
    a.li(6, DRAM_BASE as i64 + 0x4_0000); // 2 KiB scratch, L1-resident
    a.li(8, 0); // accumulator
    a.label("loop");
    a.slli(7, 5, 13);
    a.xor(5, 5, 7);
    a.srli(7, 5, 7);
    a.xor(5, 5, 7);
    a.slli(7, 5, 17);
    a.xor(5, 5, 7);
    a.add(8, 8, 5);
    a.andi(7, 5, 8);
    a.beq(7, 0, "skip");
    a.mul(9, 5, 8);
    a.xor(8, 8, 9);
    a.andi(29, 5, 0x7f8);
    a.add(29, 29, 6);
    a.ld(30, 29, 0);
    a.add(8, 8, 30);
    a.label("skip");
    a.andi(29, 5, 0x3f8);
    a.add(29, 29, 6);
    a.sd(8, 29, 0);
    a.j("loop");
    programs::Program {
        image: a.assemble().expect("compute program assembles"),
        dram_init: Vec::new(),
        mailbox: (programs::MAILBOX, 8),
    }
}

fn compute_blade(sampling: Option<SamplingConfig>) -> RtlBlade {
    let mut config = BladeConfig::single_core().with_dram_bytes(1 << 20);
    config.timing.sampling = sampling;
    let mut blade = RtlBlade::new("compute", MacAddr::from_node_index(0), config);
    compute_program().install(&mut blade);
    blade
}

/// Calibration: the detailed run's IPC lies inside the sampled run's
/// 95% confidence interval, and the interval is reported through the
/// `sampling_*` counters.
#[test]
fn detailed_ipc_falls_inside_sampled_confidence_interval() {
    let detailed = run_standalone(compute_blade(None), 256);
    let sampled = run_standalone(compute_blade(Some(sampling_cfg())), 256);

    // Detailed ground truth, integer permille like the estimator.
    let d_retired = counter(&detailed, "retired").unwrap();
    let d_cycles = counter(&detailed, "cycles").unwrap();
    assert!(d_cycles > 0 && d_retired > 0, "detailed run did no work");
    let detailed_ipc_permille = d_retired * 1_000 / d_cycles;

    let windows = counter(&sampled, "sampling_windows").expect("windows counter");
    let est = counter(&sampled, "sampling_ipc_est_permille").expect("est counter");
    let lo = counter(&sampled, "sampling_ci_lo_permille").expect("ci_lo counter");
    let hi = counter(&sampled, "sampling_ci_hi_permille").expect("ci_hi counter");
    assert!(
        windows >= 50,
        "expected dozens of completed detailed windows, saw {windows}"
    );
    assert!(
        lo <= est && est <= hi,
        "malformed interval {lo}..{est}..{hi}"
    );
    assert!(
        (lo..=hi).contains(&detailed_ipc_permille),
        "detailed IPC {detailed_ipc_permille}‰ outside sampled 95% CI \
         [{lo}‰, {hi}‰] (estimate {est}‰, {windows} windows)"
    );

    // The sampled run really did fast-forward: it charged the same
    // target cycles while spending detailed effort on only a quarter of
    // them, yet retired a comparable instruction count.
    let s_cycles = counter(&sampled, "cycles").unwrap();
    assert_eq!(s_cycles, d_cycles, "sampled run lost target cycles");
    let s_retired = counter(&sampled, "retired").unwrap();
    assert!(s_retired > 0, "sampled run retired nothing");
}

/// Gating: `sampling_*` counters exist exactly when sampling is on.
#[test]
fn sampling_counters_are_gated() {
    let detailed = run_standalone(compute_blade(None), 16);
    assert!(counter(&detailed, "sampling_windows").is_none());
    assert!(counter(&detailed, "sampling_ipc_est_permille").is_none());

    let sampled = run_standalone(compute_blade(Some(sampling_cfg())), 16);
    assert!(counter(&sampled, "sampling_windows").is_some());
}

// ---------------------------------------------------------------------------
// Cluster level: determinism and checkpointing of the approximation
// ---------------------------------------------------------------------------

/// Builds the 2-node RTL ping cluster with sampling enabled through
/// `SimConfig::sampling` (the manager-level switch).
fn build_sampled_ping(host_threads: usize) -> firesim_manager::Simulation {
    let clock = Frequency::GHZ_3_2;
    let pings = 3;
    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let pinger = topo.add_server(
        "pinger",
        BladeSpec::rtl_single_core(programs::ping_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            pings,
            56,
            clock.cycles_from_micros(10).as_u64(),
        )),
    );
    let echo = topo.add_server(
        "echo",
        BladeSpec::rtl_single_core(programs::echo_responder(pings)),
    );
    topo.add_downlinks(tor, [pinger, echo]).unwrap();
    let mut sim = topo
        .build(SimConfig {
            link_latency: clock.cycles_from_micros(2),
            host_threads,
            sampling: Some(sampling_cfg()),
            ..SimConfig::default()
        })
        .expect("valid topology");
    sim.engine_mut().set_host_oversubscribe(true);
    sim
}

fn run_sampled_ping(host_threads: usize) -> (String, Vec<u8>) {
    let mut sim = build_sampled_ping(host_threads);
    sim.run_until_done(Cycle::new(400_000_000)).expect("runs");
    let agg = sim
        .run_report(std::time::Duration::ZERO)
        .deterministic_aggregates();
    let bytes = sim.checkpoint().expect("checkpoints").to_bytes();
    (agg, bytes)
}

/// The approximation itself is deterministic: identical aggregates and
/// checkpoint bytes across 1/2/4 host workers, and the NIC stays
/// cycle-exact, so the ping workload completes under sampling.
#[test]
fn sampled_run_is_deterministic_across_workers() {
    let (base_agg, base_bytes) = run_sampled_ping(1);
    assert!(base_agg.contains("sampling_windows"), "no sampled windows");
    for host_threads in [2, 4] {
        let (agg, bytes) = run_sampled_ping(host_threads);
        assert_eq!(agg, base_agg, "threads {host_threads} changed aggregates");
        assert_eq!(bytes, base_bytes, "threads {host_threads} changed digest");
    }
}

/// A sampled run checkpoints mid-flight (estimator state and all) and a
/// restored simulation reaches the same target cycle bit-identically to
/// the uninterrupted one. Checkpoints are compared at a fixed target
/// cycle: the engine is free to schedule windows differently after a
/// resume, and sampled behavior must not depend on that slicing.
#[test]
fn sampled_checkpoint_roundtrip_resumes_identically() {
    const MID: u64 = 64_000;
    const END: u64 = 256_000;

    let mut straight = build_sampled_ping(1);
    straight.run_for(Cycle::new(END)).expect("straight runs");
    let straight_bytes = straight.checkpoint().expect("checkpoints").to_bytes();

    let mut sim = build_sampled_ping(1);
    sim.run_for(Cycle::new(MID)).expect("first half runs");
    let wire = sim.checkpoint().expect("checkpoints").to_bytes();
    let cp = firesim_core::EngineCheckpoint::from_bytes(&wire).expect("parses");
    assert_eq!(cp.now().as_u64(), MID, "checkpoint cycle");

    let mut resumed = build_sampled_ping(1);
    resumed.restore(&cp).expect("restores");
    resumed
        .run_for(Cycle::new(END - MID))
        .expect("resumed run finishes");
    let resumed_bytes = resumed.checkpoint().expect("checkpoints").to_bytes();
    assert_eq!(
        resumed_bytes, straight_bytes,
        "restored sampled run diverged from the uninterrupted run"
    );

    // Both instances actually finished the workload by END.
    for sim in [&straight, &resumed] {
        for server in sim.servers() {
            let probe = server.probe.as_ref().expect("rtl blade");
            assert_eq!(probe.lock().exit_code, Some(0), "workload incomplete");
        }
    }
}

// ---------------------------------------------------------------------------
// OS-model experiments are untouched
// ---------------------------------------------------------------------------

/// Fig 7 blades are OS-model nodes, which never fast-forward: asking for
/// sampling must leave every row byte-for-byte unchanged.
#[test]
fn fig7_rows_unchanged_with_sampling_requested() {
    let points = [250_000.0];
    let detailed = firesim_bench::experiments::fig7_memcached_with(&points, 60, None);
    let sampled =
        firesim_bench::experiments::fig7_memcached_with(&points, 60, Some(sampling_cfg()));
    assert_eq!(detailed.len(), sampled.len());
    for (d, s) in detailed.iter().zip(&sampled) {
        assert_eq!(d.case, s.case);
        assert_eq!(d.target_qps.to_bits(), s.target_qps.to_bits());
        assert_eq!(d.achieved_qps.to_bits(), s.achieved_qps.to_bits());
        assert_eq!(d.p50_us.to_bits(), s.p50_us.to_bits());
        assert_eq!(d.p95_us.to_bits(), s.p95_us.to_bits());
    }
}
