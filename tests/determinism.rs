//! Cross-crate integration tests: the FireSim determinism guarantee.
//!
//! The paper's central claim (§III-B2): because every link always has
//! exactly one latency's worth of tokens in flight, "each server
//! simulation computes each target cycle deterministically" no matter how
//! the host schedules the work. These tests run identical targets under
//! different host configurations and demand bit-identical results.

use firesim_blade::programs;
use firesim_core::{Cycle, Frequency};
use firesim_manager::{BladeSpec, SimConfig, Topology};
use firesim_net::MacAddr;

const PINGS: usize = 5;

/// Builds a 4-node ping cluster and returns every observable result:
/// per-ping RTTs and per-switch forwarding counters.
fn run_cluster(host_threads: usize, supernode: bool) -> (Vec<u64>, Vec<u64>) {
    run_cluster_with(host_threads, supernode, |_| {})
}

/// Like [`run_cluster`], but lets the caller poke the engine (scheduling
/// weights, chunk size) before the run. Those knobs steer host-side
/// scheduling only and must never change simulation results.
fn run_cluster_with(
    host_threads: usize,
    supernode: bool,
    tweak: impl FnOnce(&mut firesim_core::Engine<firesim_net::Flit>),
) -> (Vec<u64>, Vec<u64>) {
    let mut sim = build_cluster(host_threads, supernode);
    tweak(sim.engine_mut());
    sim.run_until_done(Cycle::new(400_000_000)).expect("runs");
    collect_results(&sim)
}

/// Builds (but does not run) the 4-node ping cluster.
fn build_cluster(host_threads: usize, supernode: bool) -> firesim_manager::Simulation {
    let clock = Frequency::GHZ_3_2;
    let pings = PINGS;
    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let pinger = topo.add_server(
        "pinger",
        BladeSpec::rtl_single_core(programs::ping_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            pings,
            56,
            clock.cycles_from_micros(10).as_u64(),
        )),
    );
    let echo = topo.add_server(
        "echo",
        BladeSpec::rtl_single_core(programs::echo_responder(pings)),
    );
    // Two streamers generate cross traffic so switching order matters.
    let tx = topo.add_server(
        "tx",
        BladeSpec::rtl_single_core(programs::stream_sender(
            MacAddr::from_node_index(2),
            MacAddr::from_node_index(3),
            40,
            1000,
            0,
        )),
    );
    let rx = topo.add_server(
        "rx",
        BladeSpec::rtl_single_core(programs::stream_receiver(
            MacAddr::from_node_index(3),
            MacAddr::from_node_index(2),
            40 * 1014,
        )),
    );
    topo.add_downlinks(tor, [pinger, echo, tx, rx]).unwrap();

    let mut sim = topo
        .build(SimConfig {
            link_latency: clock.cycles_from_micros(2),
            host_threads,
            supernode,
            ..SimConfig::default()
        })
        .expect("valid topology");
    // These tests exist to exercise the parallel execution paths, so lift
    // the engine's workers<=cores clamp — CI hosts may have fewer cores
    // than the thread counts exercised here.
    sim.engine_mut().set_host_oversubscribe(true);
    sim
}

/// Every observable result of a finished cluster run: per-ping RTTs and
/// per-switch forwarding counters.
fn collect_results(sim: &firesim_manager::Simulation) -> (Vec<u64>, Vec<u64>) {
    let probe = sim.servers()[0].probe.as_ref().expect("rtl blade");
    let p = probe.lock();
    assert_eq!(p.exit_code, Some(0));
    let rtts = (0..PINGS)
        .map(|i| u64::from_le_bytes(p.mailbox[i * 8..i * 8 + 8].try_into().unwrap()))
        .collect();
    let switch_counts = sim
        .switch_stats()
        .iter()
        .map(|(_, s)| {
            let s = s.lock();
            s.frames_forwarded + s.ingress_bytes * 1_000_003
        })
        .collect();
    (rtts, switch_counts)
}

#[test]
fn results_identical_across_host_thread_counts() {
    let baseline = run_cluster(1, false);
    for threads in [2, 4, 8] {
        assert_eq!(
            run_cluster(threads, false),
            baseline,
            "host_threads = {threads} changed simulation results"
        );
    }
}

#[test]
fn results_identical_with_supernode_packing() {
    // Supernode changes the host mapping (agents, channels) but must not
    // change a single target cycle.
    assert_eq!(run_cluster(1, true), run_cluster(1, false));
    assert_eq!(run_cluster(4, true), run_cluster(1, false));
}

#[test]
fn repeated_runs_are_bit_identical() {
    assert_eq!(run_cluster(2, false), run_cluster(2, false));
}

/// Deterministic metric fingerprint of a finished observed run: the
/// aggregated step counter, every per-agent profile field except the
/// host-dependent `host_ns`, and every exported application counter.
fn metric_fingerprint(
    sim: &mut firesim_manager::Simulation,
    registry: &firesim_core::MetricsRegistry,
) -> Vec<(String, u64)> {
    let mut fp = vec![(
        "engine/agent_steps".to_owned(),
        registry.counter_value("engine/agent_steps").unwrap(),
    )];
    let engine = sim.engine_mut();
    for (name, p) in engine.agent_profiles() {
        fp.push((format!("{name}/rounds"), p.rounds));
        fp.push((format!("{name}/target_cycles"), p.target_cycles));
        fp.push((format!("{name}/windows_in"), p.windows_in));
        fp.push((format!("{name}/windows_out"), p.windows_out));
        fp.push((format!("{name}/tokens_in"), p.tokens_in));
        fp.push((format!("{name}/tokens_out"), p.tokens_out));
    }
    for (name, counters) in engine.agent_app_counters() {
        for (key, value) in counters {
            // `host_`-prefixed counters (host MIPS, decode-cache hit
            // rates) measure the *host*, not the guest, and are legally
            // run-dependent — same contract as `host_ns` above and the
            // report's deterministic_aggregates().
            if key.starts_with("host_") {
                continue;
            }
            fp.push((format!("{name}/{key}"), value));
        }
    }
    fp
}

/// Observation must be free of Heisenberg effects: with metrics AND
/// tracing enabled the simulation results stay bit-identical to the
/// unobserved baseline, and the aggregated deterministic metrics are
/// themselves identical across 1/2/4 worker threads.
#[test]
fn observation_changes_nothing_and_metrics_are_thread_invariant() {
    let baseline = run_cluster(1, false);
    let mut fingerprints: Vec<Vec<(String, u64)>> = Vec::new();
    for threads in [1, 2, 4] {
        let mut sim = build_cluster(threads, false);
        let registry = sim.enable_metrics();
        let tracer = sim.enable_tracing();
        sim.run_until_done(Cycle::new(400_000_000)).expect("runs");
        assert_eq!(
            collect_results(&sim),
            baseline,
            "observation changed results at host_threads = {threads}"
        );
        assert!(
            !tracer.is_empty(),
            "tracing enabled but no spans were collected"
        );
        fingerprints.push(metric_fingerprint(&mut sim, &registry));
    }
    for (i, fp) in fingerprints.iter().enumerate().skip(1) {
        assert_eq!(
            fp,
            &fingerprints[0],
            "aggregated metrics differ between 1 thread and {} threads",
            [1, 2, 4][i]
        );
    }
}

#[test]
fn results_identical_with_adversarial_weights() {
    // Cost hints steer the load-aware partitioner; lying to it (extreme
    // and inverted weights, tiny chunks so the repartition boundary is
    // crossed many times) must not move a single target cycle.
    let baseline = run_cluster(1, false);
    for (threads, flip) in [(2, false), (4, true), (8, false)] {
        let weighted = run_cluster_with(threads, false, |engine| {
            engine.set_chunk_rounds(2);
            let ids: Vec<_> = engine.agent_ids().collect();
            for (i, id) in ids.into_iter().enumerate() {
                let heavy = (i % 2 == 0) ^ flip;
                engine.set_agent_weight(id, if heavy { u64::MAX } else { 1 });
            }
        });
        assert_eq!(
            weighted, baseline,
            "host_threads = {threads}, flip = {flip} changed simulation results"
        );
    }
}
