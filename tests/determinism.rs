//! Cross-crate integration tests: the FireSim determinism guarantee.
//!
//! The paper's central claim (§III-B2): because every link always has
//! exactly one latency's worth of tokens in flight, "each server
//! simulation computes each target cycle deterministically" no matter how
//! the host schedules the work. These tests run identical targets under
//! different host configurations and demand bit-identical results.

use firesim_blade::programs;
use firesim_core::{Cycle, Frequency};
use firesim_manager::{BladeSpec, SimConfig, Topology};
use firesim_net::MacAddr;

/// Builds a 4-node ping cluster and returns every observable result:
/// per-ping RTTs and per-switch forwarding counters.
fn run_cluster(host_threads: usize, supernode: bool) -> (Vec<u64>, Vec<u64>) {
    run_cluster_with(host_threads, supernode, |_| {})
}

/// Like [`run_cluster`], but lets the caller poke the engine (scheduling
/// weights, chunk size) before the run. Those knobs steer host-side
/// scheduling only and must never change simulation results.
fn run_cluster_with(
    host_threads: usize,
    supernode: bool,
    tweak: impl FnOnce(&mut firesim_core::Engine<firesim_net::Flit>),
) -> (Vec<u64>, Vec<u64>) {
    let clock = Frequency::GHZ_3_2;
    let pings = 5;
    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let pinger = topo.add_server(
        "pinger",
        BladeSpec::rtl_single_core(programs::ping_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            pings,
            56,
            clock.cycles_from_micros(10).as_u64(),
        )),
    );
    let echo = topo.add_server(
        "echo",
        BladeSpec::rtl_single_core(programs::echo_responder(pings)),
    );
    // Two streamers generate cross traffic so switching order matters.
    let tx = topo.add_server(
        "tx",
        BladeSpec::rtl_single_core(programs::stream_sender(
            MacAddr::from_node_index(2),
            MacAddr::from_node_index(3),
            40,
            1000,
            0,
        )),
    );
    let rx = topo.add_server(
        "rx",
        BladeSpec::rtl_single_core(programs::stream_receiver(
            MacAddr::from_node_index(3),
            MacAddr::from_node_index(2),
            40 * 1014,
        )),
    );
    topo.add_downlinks(tor, [pinger, echo, tx, rx]).unwrap();

    let mut sim = topo
        .build(SimConfig {
            link_latency: clock.cycles_from_micros(2),
            host_threads,
            supernode,
            ..SimConfig::default()
        })
        .expect("valid topology");
    // These tests exist to exercise the parallel execution paths, so lift
    // the engine's workers<=cores clamp — CI hosts may have fewer cores
    // than the thread counts exercised here.
    sim.engine_mut().set_host_oversubscribe(true);
    tweak(sim.engine_mut());
    sim.run_until_done(Cycle::new(400_000_000)).expect("runs");

    let probe = sim.servers()[0].probe.as_ref().expect("rtl blade");
    let p = probe.lock();
    assert_eq!(p.exit_code, Some(0));
    let rtts = (0..pings)
        .map(|i| u64::from_le_bytes(p.mailbox[i * 8..i * 8 + 8].try_into().unwrap()))
        .collect();
    let switch_counts = sim
        .switch_stats()
        .iter()
        .map(|(_, s)| {
            let s = s.lock();
            s.frames_forwarded + s.ingress_bytes * 1_000_003
        })
        .collect();
    (rtts, switch_counts)
}

#[test]
fn results_identical_across_host_thread_counts() {
    let baseline = run_cluster(1, false);
    for threads in [2, 4, 8] {
        assert_eq!(
            run_cluster(threads, false),
            baseline,
            "host_threads = {threads} changed simulation results"
        );
    }
}

#[test]
fn results_identical_with_supernode_packing() {
    // Supernode changes the host mapping (agents, channels) but must not
    // change a single target cycle.
    assert_eq!(run_cluster(1, true), run_cluster(1, false));
    assert_eq!(run_cluster(4, true), run_cluster(1, false));
}

#[test]
fn repeated_runs_are_bit_identical() {
    assert_eq!(run_cluster(2, false), run_cluster(2, false));
}

#[test]
fn results_identical_with_adversarial_weights() {
    // Cost hints steer the load-aware partitioner; lying to it (extreme
    // and inverted weights, tiny chunks so the repartition boundary is
    // crossed many times) must not move a single target cycle.
    let baseline = run_cluster(1, false);
    for (threads, flip) in [(2, false), (4, true), (8, false)] {
        let weighted = run_cluster_with(threads, false, |engine| {
            engine.set_chunk_rounds(2);
            let ids: Vec<_> = engine.agent_ids().collect();
            for (i, id) in ids.into_iter().enumerate() {
                let heavy = (i % 2 == 0) ^ flip;
                engine.set_agent_weight(id, if heavy { u64::MAX } else { 1 });
            }
        });
        assert_eq!(
            weighted, baseline,
            "host_threads = {threads}, flip = {flip} changed simulation results"
        );
    }
}
