//! Differential tests for the event-queue DRAM refresh model.
//!
//! The event-queue model (lazily-materialised refresh deadlines, O(1)
//! `advance_to`, idle banks never visited) is a host-side optimisation
//! only: it must be *bit-identical* to the retained per-deadline-scan
//! reference (`DramConfig::reference_model`) — same latencies, same
//! statistics, same snapshot bytes — the same contract
//! `tests/timing_equiv.rs` enforces for the timing schedules. The
//! blade-level tests then demand that a full RTL cluster's checkpoint
//! is byte-identical across the two DRAM models, worker counts, and
//! decode-cache settings.

use firesim_blade::{programs, BladeConfig, RtlBlade};
use firesim_core::snapshot::{Checkpoint, SnapshotWriter};
use firesim_core::{Cycle, Frequency};
use firesim_manager::{BladeSpec, SimConfig, Topology};
use firesim_net::MacAddr;
use firesim_uarch::{Dram, DramConfig};

/// Deterministic splitmix-style generator (same construction as the
/// other integration tests): seed-stable across platforms and runs.
struct Rng {
    s: u64,
}

impl Rng {
    fn new(seed: u64) -> Self {
        Rng {
            s: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next(&mut self) -> u64 {
        let mut z = self.s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.s = self.s.wrapping_add(1);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

// ---------------------------------------------------------------------------
// Dram unit level
// ---------------------------------------------------------------------------

/// One step of a generated workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `access(now, addr)`.
    Access(u64, u64),
    /// `advance_to(cycle)` — a request-free time jump.
    Advance(u64),
}

/// A seeded random workload: mostly-monotone request times with
/// occasional long idle gaps and request-free `advance_to` jumps, over
/// addresses that cover every bank (plus a hot single-bank range).
fn random_ops(seed: u64, n: usize, cfg: &DramConfig) -> Vec<Op> {
    let mut rng = Rng::new(seed);
    let mut now = 0u64;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        now += match rng.below(10) {
            // Back-to-back requests (bank busy windows overlap).
            0..=5 => rng.below(64),
            // Medium gap.
            6..=7 => rng.below(1_000),
            // Long idle gap: several refresh deadlines elapse untouched.
            _ => cfg.t_refi.max(1) * (1 + rng.below(4)),
        };
        match rng.below(8) {
            // Request-free advance (what the blade does at window ends).
            0 => ops.push(Op::Advance(now + rng.below(2 * cfg.t_refi.max(1)))),
            // Hot bank: same row over and over.
            1..=2 => ops.push(Op::Access(now, 0x100 + rng.below(8) * 8)),
            // Anywhere: all banks, many rows.
            _ => ops.push(Op::Access(now, rng.below(1 << 24))),
        }
    }
    ops
}

fn snapshot_dram(d: &Dram) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    d.save_state(&mut w).expect("dram snapshots");
    w.into_bytes()
}

/// Runs `ops` through both models in lockstep, comparing every returned
/// latency, the statistics, and the snapshot bytes after every step.
fn assert_models_agree(cfg: DramConfig, ops: &[Op], label: &str) {
    let mut event = Dram::new(DramConfig {
        reference_model: false,
        ..cfg
    });
    let mut reference = Dram::new(DramConfig {
        reference_model: true,
        ..cfg
    });
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Access(now, addr) => {
                let le = event.access(now, addr);
                let lr = reference.access(now, addr);
                assert_eq!(le, lr, "{label}: latency diverged at op {i} ({op:?})");
            }
            Op::Advance(cycle) => {
                event.advance_to(cycle);
                reference.advance_to(cycle);
            }
        }
        assert_eq!(
            event.stats(),
            reference.stats(),
            "{label}: stats diverged at op {i} ({op:?})"
        );
        assert_eq!(
            snapshot_dram(&event),
            snapshot_dram(&reference),
            "{label}: snapshots diverged at op {i} ({op:?})"
        );
    }
}

#[test]
fn random_streams_match_reference() {
    let cfg = DramConfig::default();
    for seed in 1..=8 {
        let ops = random_ops(seed, 400, &cfg);
        assert_models_agree(cfg, &ops, &format!("seed {seed}"));
    }
}

/// A refresh-heavy configuration (tREFI barely larger than tRFC) makes
/// the busy windows dominate: most requests land inside or right after
/// a refresh, and long gaps skip dozens of deadlines at once.
#[test]
fn refresh_heavy_configuration_matches_reference() {
    let cfg = DramConfig {
        t_refi: 500,
        t_rfc: 180,
        ..DramConfig::default()
    };
    for seed in 10..=15 {
        let ops = random_ops(seed, 300, &cfg);
        assert_models_agree(cfg, &ops, &format!("refresh-heavy seed {seed}"));
    }
}

/// Idle banks are exactly where the two implementations differ most:
/// the reference walks every deadline into every bank while the event
/// model never visits the idle ones. Hammer one bank while the other
/// seven sit idle across hundreds of deadlines, with `advance_to`
/// jumps mixed in, then touch a cold bank at the end.
#[test]
fn idle_banks_skip_identically() {
    let cfg = DramConfig {
        t_refi: 1_000,
        t_rfc: 100,
        ..DramConfig::default()
    };
    let mut ops = Vec::new();
    let mut rng = Rng::new(99);
    let mut now = 0u64;
    for _ in 0..200 {
        now += 1 + rng.below(3) * cfg.t_refi;
        // Bank 0, single row.
        ops.push(Op::Access(now, rng.below(64) * 8));
        if rng.below(4) == 0 {
            ops.push(Op::Advance(now + rng.below(5 * cfg.t_refi)));
        }
    }
    // Cold banks at the very end: hundreds of missed refreshes collapse
    // into the closed form on first touch.
    for bank in 1..8u64 {
        ops.push(Op::Access(now + bank, bank * cfg.row_bytes));
    }
    assert_models_agree(cfg, &ops, "idle-bank");
}

/// Snapshots taken mid-run — including with refresh deadlines pending —
/// are identical across models and restore into *either* model, which
/// then continues bit-identically.
#[test]
fn checkpoint_mid_refresh_cross_restores() {
    let cfg = DramConfig {
        t_refi: 700,
        t_rfc: 150,
        ..DramConfig::default()
    };
    let ops = random_ops(42, 300, &cfg);
    let (head, tail) = ops.split_at(150);

    let mut event = Dram::new(cfg);
    let mut reference = Dram::new(DramConfig {
        reference_model: true,
        ..cfg
    });
    for op in head {
        match *op {
            Op::Access(now, addr) => {
                event.access(now, addr);
                reference.access(now, addr);
            }
            Op::Advance(c) => {
                event.advance_to(c);
                reference.advance_to(c);
            }
        }
    }
    let snap = snapshot_dram(&event);
    assert_eq!(snap, snapshot_dram(&reference), "mid-run snapshots differ");

    // Restore the event-model snapshot into a reference-model instance
    // and vice versa; all four must then agree on the tail.
    let mut from_event_into_ref = Dram::new(DramConfig {
        reference_model: true,
        ..cfg
    });
    let mut from_ref_into_event = Dram::new(cfg);
    from_event_into_ref
        .restore_state(&mut firesim_core::snapshot::SnapshotReader::new(&snap))
        .expect("cross-restore into reference");
    from_ref_into_event
        .restore_state(&mut firesim_core::snapshot::SnapshotReader::new(&snap))
        .expect("cross-restore into event");

    let mut drams = [event, reference, from_event_into_ref, from_ref_into_event];
    for (i, op) in tail.iter().enumerate() {
        match *op {
            Op::Access(now, addr) => {
                let lats: Vec<u64> = drams.iter_mut().map(|d| d.access(now, addr)).collect();
                assert!(
                    lats.windows(2).all(|w| w[0] == w[1]),
                    "tail op {i}: latencies diverged: {lats:?}"
                );
            }
            Op::Advance(c) => drams.iter_mut().for_each(|d| d.advance_to(c)),
        }
    }
    let final_snaps: Vec<Vec<u8>> = drams.iter().map(snapshot_dram).collect();
    assert!(
        final_snaps.windows(2).all(|w| w[0] == w[1]),
        "final snapshots diverged after cross-restore"
    );
}

// ---------------------------------------------------------------------------
// Blade level
// ---------------------------------------------------------------------------

/// Builds the 2-node ping cluster with the given host/model knobs.
fn build_ping_cluster(
    host_threads: usize,
    dram_reference: bool,
    decode_cache: bool,
) -> firesim_manager::Simulation {
    let clock = Frequency::GHZ_3_2;
    let pings = 3;
    let blade_config = || {
        let mut c = BladeConfig::single_core().with_dram_bytes(1 << 20);
        c.mem.dram.reference_model = dram_reference;
        c.timing.decode_cache = decode_cache;
        c
    };
    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let pinger = topo.add_server(
        "pinger",
        BladeSpec::Rtl {
            config: blade_config(),
            program: programs::ping_sender(
                MacAddr::from_node_index(0),
                MacAddr::from_node_index(1),
                pings,
                56,
                clock.cycles_from_micros(10).as_u64(),
            ),
        },
    );
    let echo = topo.add_server(
        "echo",
        BladeSpec::Rtl {
            config: blade_config(),
            program: programs::echo_responder(pings),
        },
    );
    topo.add_downlinks(tor, [pinger, echo]).unwrap();
    let mut sim = topo
        .build(SimConfig {
            link_latency: clock.cycles_from_micros(2),
            host_threads,
            ..SimConfig::default()
        })
        .expect("valid topology");
    sim.engine_mut().set_host_oversubscribe(true);
    sim
}

/// Runs the cluster to completion and returns `(deterministic
/// aggregates, full checkpoint bytes)`.
fn run_ping_cluster(
    host_threads: usize,
    dram_reference: bool,
    decode_cache: bool,
) -> (String, Vec<u8>) {
    let mut sim = build_ping_cluster(host_threads, dram_reference, decode_cache);
    sim.run_until_done(Cycle::new(400_000_000)).expect("runs");
    let aggregates = sim
        .run_report(std::time::Duration::ZERO)
        .deterministic_aggregates();
    let bytes = sim.checkpoint().expect("checkpoints").to_bytes();
    (aggregates, bytes)
}

/// The tentpole acceptance check: the event-queue DRAM produces
/// byte-identical checkpoints to the reference model, across 1/2/4
/// worker threads and with the decode cache on or off.
#[test]
fn blade_digest_identical_across_dram_models_and_workers() {
    let (base_agg, base_bytes) = run_ping_cluster(1, false, true);
    assert!(base_agg.contains("pinger"));
    for host_threads in [1, 2, 4] {
        for dram_reference in [false, true] {
            if host_threads == 1 && !dram_reference {
                continue; // the baseline itself
            }
            let (agg, bytes) = run_ping_cluster(host_threads, dram_reference, true);
            assert_eq!(
                agg, base_agg,
                "aggregates diverged (threads {host_threads}, reference {dram_reference})"
            );
            assert_eq!(
                bytes, base_bytes,
                "checkpoint bytes diverged (threads {host_threads}, reference {dram_reference})"
            );
        }
    }
    // Decode cache off: a host-only knob — target aggregates and
    // checkpoint bytes both stay identical (the decode cache is not
    // target state and is not serialised).
    let (agg, bytes) = run_ping_cluster(1, false, false);
    assert_eq!(agg, base_agg, "decode cache changed target aggregates");
    assert_eq!(bytes, base_bytes, "decode cache changed checkpoint bytes");
}

/// Refresh is on by default and must actually do something: a blade that
/// runs for a while reports refreshes in its `host_dram_*` counters.
#[test]
fn refresh_counters_are_exported() {
    let mut blade = RtlBlade::new(
        "solo",
        MacAddr::from_node_index(0),
        BladeConfig::single_core().with_dram_bytes(1 << 20),
    );
    programs::boot_poweroff(100).install(&mut blade);
    // Drive the blade standalone long enough to cross several tREFI
    // deadlines (default 24 960 cycles apart).
    let window = 3_200u32;
    let mut now = 0u64;
    for _ in 0..64 {
        let mut ctx = firesim_core::AgentCtx::standalone(
            Cycle::new(now),
            window,
            vec![firesim_core::TokenWindow::new(window)],
            1,
        );
        firesim_core::SimAgent::advance(&mut blade, &mut ctx);
        now += u64::from(window);
    }
    let mut counters = Vec::new();
    firesim_core::SimAgent::app_counters(&blade, &mut counters);
    let find = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    let refreshes = find("host_dram_refreshes");
    assert!(
        refreshes >= (now / 24_960).saturating_sub(1),
        "expected ~{} refreshes, saw {refreshes}",
        now / 24_960
    );
    // The stall attribution is present (may be zero if no request ever
    // collided with a refresh window, but the counter must exist).
    let _ = find("host_dram_refresh_stall_cycles");
}
