//! Differential property test for the event-driven timing layer.
//!
//! The batched schedule (`RtlBlade::advance_batched` + `Cpu::run_timed`)
//! is a host-side optimisation only: it must produce *bit-identical*
//! target state to the per-cycle reference loop it replaced (kept as
//! `advance_reference` behind `TimingConfig::reference_timing`). These
//! tests generate randomized bare-metal programs from a fixed seed —
//! ALU/branch/memory mixes, MMIO pokes, CSR reads, timer-armed WFI
//! parking, NIC transmits — run each program through both schedules
//! window by window, and demand that every full blade snapshot
//! (registers, CSRs including `mcycle`/`minstret`, caches, DRAM,
//! devices, probe) and every output token window match byte for byte.

use firesim_blade::{programs, BladeConfig, RtlBlade};
use firesim_core::snapshot::{Checkpoint, SnapshotWriter};
use firesim_core::{AgentCtx, Cycle, SimAgent, TokenWindow};
use firesim_devices::map::{CLINT_BASE, NIC_BASE, UART_BASE};
use firesim_devices::{clint, nic, uart};
use firesim_net::{EtherType, Flit, MacAddr};
use firesim_riscv::asm::Assembler;
use firesim_riscv::csr::addr as csr;
use firesim_riscv::DRAM_BASE;

const WINDOW: u32 = 3_200;

/// Deterministic xorshift-style generator (same construction as the
/// distributed-mode tests): seed-stable across platforms and runs.
struct Rng {
    s: u64,
}

impl Rng {
    fn new(seed: u64) -> Self {
        Rng {
            s: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next(&mut self) -> u64 {
        let mut z = self.s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.s = self.s.wrapping_add(1);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Scratch RAM: one 2 KiB hart-private region per hart, far from the
/// program image and the TX frame template.
const SCRATCH: u64 = DRAM_BASE + 0x4000;

/// Emits one random instruction (or short idiom) into the loop body.
/// Registers x10-x17 hold working data; x28 is the hart's scratch base;
/// x5-x7 and x29-x31 are free temporaries.
fn emit_random_inst(a: &mut Assembler, rng: &mut Rng, uniq: &mut u32, sends: &mut u32) {
    let data_reg = |rng: &mut Rng| 10 + rng.below(8) as u8;
    match rng.below(16) {
        0..=4 => {
            let (rd, rs1, rs2) = (data_reg(rng), data_reg(rng), data_reg(rng));
            match rng.below(8) {
                0 => a.add(rd, rs1, rs2),
                1 => a.sub(rd, rs1, rs2),
                2 => a.xor(rd, rs1, rs2),
                3 => a.or(rd, rs1, rs2),
                4 => a.and(rd, rs1, rs2),
                5 => a.sll(rd, rs1, rs2),
                6 => a.sltu(rd, rs1, rs2),
                _ => a.sra(rd, rs1, rs2),
            }
        }
        5..=6 => {
            let (rd, rs1) = (data_reg(rng), data_reg(rng));
            let imm = rng.below(4096) as i64 - 2048;
            match rng.below(4) {
                0 => a.addi(rd, rs1, imm),
                1 => a.xori(rd, rs1, imm),
                2 => a.andi(rd, rs1, imm),
                _ => a.slli(rd, rs1, rng.below(64) as i64),
            }
        }
        7 => {
            let (rd, rs1, rs2) = (data_reg(rng), data_reg(rng), data_reg(rng));
            match rng.below(4) {
                0 => a.mul(rd, rs1, rs2),
                1 => a.mulhu(rd, rs1, rs2),
                2 => a.div(rd, rs1, rs2),
                _ => a.remu(rd, rs1, rs2),
            }
        }
        8..=9 => {
            // Hart-private load/store within the 2 KiB scratch region.
            let off = (rng.below(256) * 8) as i64;
            if rng.below(2) == 0 {
                a.ld(data_reg(rng), 28, off);
            } else {
                a.sd(data_reg(rng), 28, off);
            }
        }
        10..=11 => {
            // Short forward branch over 1-2 ALU instructions: exercises
            // both superblock continuation (not taken) and early ends.
            let label = format!("skip{}", *uniq);
            *uniq += 1;
            let (rs1, rs2) = (data_reg(rng), data_reg(rng));
            match rng.below(4) {
                0 => a.beq(rs1, rs2, label.clone()),
                1 => a.bne(rs1, rs2, label.clone()),
                2 => a.blt(rs1, rs2, label.clone()),
                _ => a.bgeu(rs1, rs2, label.clone()),
            }
            for _ in 0..=rng.below(2) {
                a.add(data_reg(rng), data_reg(rng), data_reg(rng));
            }
            a.label(label);
        }
        12 => {
            // UART transmit: an uncacheable MMIO store, which forces the
            // batched issue loop to stop and flush lagging devices.
            a.li(30, (UART_BASE + uart::reg::TXDATA) as i64);
            a.sb(data_reg(rng), 30, 0);
        }
        13 => {
            // Counter CSR read: funnels through the cold decode arm and
            // observes the deferred `minstret`/`mcycle` flushes.
            let rd = data_reg(rng);
            match rng.below(4) {
                0 => a.csrr(rd, csr::TIME),
                1 => a.csrr(rd, csr::CYCLE),
                2 => a.csrr(rd, csr::MCYCLE),
                _ => a.csrr(rd, csr::MINSTRET),
            }
        }
        14 => {
            // Arm this hart's CLINT timer a short distance ahead, enable
            // the timer interrupt, and park in WFI. The trap handler (see
            // `random_program`) pushes `mtimecmp` back out and `mret`s.
            // Exercises WFI parking, `next_timer_expiry` skip-ahead, and
            // interrupt delivery timing under both schedules.
            let delta = 400 + rng.below(1600) as i64;
            a.csrr(5, csr::MHARTID);
            a.slli(5, 5, 3);
            a.li(6, (CLINT_BASE + clint::MTIMECMP_BASE) as i64);
            a.add(5, 5, 6);
            a.li(6, (CLINT_BASE + clint::MTIME) as i64);
            a.ld(7, 6, 0);
            a.addi(7, 7, delta);
            a.sd(7, 5, 0);
            a.li(6, 1 << 7); // MIE.MTIE
            a.csrs(csr::MIE, 6);
            a.csrsi(csr::MSTATUS, 8); // MSTATUS.MIE
            a.wfi();
        }
        _ => {
            // NIC transmit of the preloaded frame template (bounded per
            // program; the completion is drained so the send queue never
            // grows without limit). Covers DMA reads, egress tokens, and
            // the NIC quiescence hooks.
            if *sends < 4 {
                *sends += 1;
                let drain = format!("drain{}", *uniq);
                *uniq += 1;
                a.li(30, NIC_BASE as i64);
                a.li(31, (programs::TXBUF | (FRAME_LEN << 48)) as i64);
                a.sd(31, 30, nic::reg::SEND_REQ as i64);
                a.label(drain.clone());
                a.ld(5, 30, nic::reg::SEND_COMP as i64);
                a.bnez(5, drain);
            } else {
                a.add(data_reg(rng), data_reg(rng), data_reg(rng));
            }
        }
    }
}

const FRAME_LEN: u64 = 64;

/// Builds a seed-keyed random program: a trap handler, per-hart scratch
/// setup, randomized register seeds, and an infinite loop of 24-64
/// random instructions.
fn random_program(seed: u64) -> programs::Program {
    let mut rng = Rng::new(seed);
    let mut a = Assembler::new(DRAM_BASE);

    a.j("entry");

    // Timer trap handler: disarm this hart's comparator (mtimecmp = all
    // ones never fires) and return. Clobbers x5/x6 — fine, the main loop
    // treats them as temporaries.
    a.label("trap");
    a.csrr(5, csr::MHARTID);
    a.slli(5, 5, 3);
    a.li(6, (CLINT_BASE + clint::MTIMECMP_BASE) as i64);
    a.add(5, 5, 6);
    a.li(6, -1);
    a.sd(6, 5, 0);
    a.mret();

    a.label("entry");
    a.la(5, "trap");
    a.csrw(csr::MTVEC, 5);
    // x28 = per-hart scratch base.
    a.csrr(28, csr::MHARTID);
    a.slli(28, 28, 11);
    a.li(29, SCRATCH as i64);
    a.add(28, 28, 29);
    for r in 10..=17 {
        a.li(r, rng.next() as i64);
    }

    let mut uniq = 0u32;
    let mut sends = 0u32;
    a.label("loop");
    for _ in 0..(24 + rng.below(40)) {
        emit_random_inst(&mut a, &mut rng, &mut uniq, &mut sends);
    }
    a.j("loop");

    let frame = programs::frame_bytes(
        MacAddr::from_node_index(1),
        MacAddr::from_node_index(0),
        EtherType::Echo,
        &[0u8; (FRAME_LEN - 15) as usize],
    );
    programs::Program {
        image: a.assemble().expect("random program assembles"),
        dram_init: vec![(programs::TXBUF, frame)],
        mailbox: (programs::MAILBOX, 8),
    }
}

fn build_blade(program: &programs::Program, cores: usize, reference: bool) -> RtlBlade {
    let mut config = match cores {
        1 => BladeConfig::single_core(),
        _ => BladeConfig::quad_core(),
    }
    .with_dram_bytes(1 << 20);
    config.timing.reference_timing = reference;
    let mut blade = RtlBlade::new("b", MacAddr::from_node_index(0), config);
    program.install(&mut blade);
    blade
}

fn snapshot(blade: &RtlBlade) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    blade.save_state(&mut w).expect("blade snapshots");
    w.into_bytes()
}

/// Advances one window and returns the produced output token windows.
fn advance_window(blade: &mut RtlBlade, now: u64) -> Vec<TokenWindow<Flit>> {
    let mut ctx = AgentCtx::standalone(Cycle::new(now), WINDOW, vec![TokenWindow::new(WINDOW)], 1);
    blade.advance(&mut ctx);
    ctx.into_outputs()
}

/// Runs one seed through both timing schedules, comparing full blade
/// snapshots and output tokens after every window.
fn assert_equivalent(seed: u64, cores: usize, windows: u64) {
    let program = random_program(seed);
    let mut reference = build_blade(&program, cores, true);
    let mut batched = build_blade(&program, cores, false);
    let mut now = 0u64;
    for window in 0..windows {
        let out_ref = advance_window(&mut reference, now);
        let out_bat = advance_window(&mut batched, now);
        assert!(
            out_ref == out_bat,
            "seed {seed} ({cores} cores): output tokens diverged in window {window}"
        );
        assert_eq!(
            snapshot(&reference),
            snapshot(&batched),
            "seed {seed} ({cores} cores): blade snapshots diverged after window {window}"
        );
        now += u64::from(WINDOW);
    }
}

#[test]
fn randomized_programs_single_core() {
    for seed in 1..=6 {
        assert_equivalent(seed, 1, 48);
    }
}

#[test]
fn randomized_programs_quad_core() {
    for seed in [7, 8] {
        assert_equivalent(seed, 4, 24);
    }
}

/// A fully parked blade (every hart in WFI, interrupts masked) is the
/// Mode A whole-window-skip path; it must stay indistinguishable from
/// the reference loop, including `mcycle` and idle-cycle bookkeeping.
#[test]
fn parked_blade_matches_reference() {
    let program = programs::park();
    let mut reference = build_blade(&program, 4, true);
    let mut batched = build_blade(&program, 4, false);
    let mut now = 0u64;
    for window in 0..64 {
        let out_ref = advance_window(&mut reference, now);
        let out_bat = advance_window(&mut batched, now);
        assert!(
            out_ref == out_bat,
            "parked: outputs diverged in window {window}"
        );
        assert_eq!(
            snapshot(&reference),
            snapshot(&batched),
            "parked: snapshots diverged after window {window}"
        );
        now += u64::from(WINDOW);
    }
}
