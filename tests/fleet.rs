//! Fleet-controller differential acceptance tests:
//!
//! * **Placement invariance** — the same topology run under contiguous
//!   and load-aware placement plans, across 1/2/4 workers and every
//!   transport backend, produces bit-identical per-agent digests,
//!   combined digest, and deterministic report aggregates. Placement is
//!   a pure host-side concern; the fleet controller can optimise cost
//!   freely without touching simulated behavior.
//! * **Repartition mid-run** — a 4-way load-aware run checkpoints at a
//!   barrier mid-run, the parent merges the shard checkpoints into one
//!   `FSCKPT01` file, and a fresh 2-way deployment under a *different*
//!   (folded load-aware) plan restores it and continues to the same
//!   absolute cycle: digests AND deterministic aggregates are
//!   bit-identical to an uninterrupted run. Also exercised mid-scenario
//!   (composing with the chaos layer; digests only, since timeline
//!   buckets before the restore point don't survive into the new
//!   deployment's report).
//! * **Packer properties** — over seeded random topologies and fleets:
//!   capacity is never exceeded, every agent is placed exactly once,
//!   plans round-trip through the wire encoding, and placement is
//!   deterministic for a fixed profile.
//! * **Pinned cost model** — the paper's 1024-node datacenter placed on
//!   the EC2 fleet reproduces §V-C (32 f1.16xlarge + 5 m4.16xlarge) and
//!   the modeled $/hour, cut links, simulation rate, and $/sim-hour
//!   match `results/fleet_cost_baseline.json` exactly.
//!
//! `harness = false`: worker processes re-exec this binary, so `main`
//! must route them into their shard before any test logic runs. Pass
//! `--quick` (the CI fleet job does) to trim the matrix to the shm
//! transport and fewer property iterations.

use std::collections::BTreeMap;
use std::path::PathBuf;

use firesim_blade::programs;
use firesim_core::{Cycle, SimError, SimResult};
use firesim_manager::{
    maybe_worker, run_partitioned, BladeSpec, FleetSpec, HostClass, LoadProfile, PartitionConfig,
    PartitionPlan, PlacementPlan, SimConfig, Topology, TransportChoice,
};
use firesim_net::MacAddr;
use firesim_platform::{InstanceType, TransportKind};

/// Deterministic xorshift so "random" packer inputs are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = self.0.wrapping_add(1);
        x ^ (x >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// `BuildFn` shared by the parent and every worker: two racks with
/// cross-rack ping traffic (live frames cross every placement cut) plus
/// idle nodes, big enough that a load-aware plan differs from the
/// contiguous one.
fn build_fleet_racks(spec: &str) -> SimResult<(Topology, SimConfig)> {
    if spec != "fleet-racks" {
        return Err(SimError::topology(format!("bad spec {spec:?}")));
    }
    let mut topo = Topology::new();
    let root = topo.add_switch("root");
    let rack0 = topo.add_switch("rack0");
    let rack1 = topo.add_switch("rack1");
    topo.add_downlinks(root, [rack0, rack1])
        .expect("fresh switch has free ports");
    let pinger = topo.add_server(
        "pinger",
        BladeSpec::rtl_single_core(programs::ping_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            8,
            56,
            64_000,
        )),
    );
    let echo = topo.add_server(
        "echo",
        BladeSpec::rtl_single_core(programs::echo_responder(8)),
    );
    topo.add_downlink(rack0, pinger).expect("free port");
    topo.add_downlink(rack1, echo).expect("free port");
    for (rack, tag) in [(rack0, "a"), (rack1, "b")] {
        for i in 0..2 {
            let node = topo.add_server(
                format!("idle_{tag}{i}"),
                BladeSpec::rtl_single_core(programs::boot_poweroff(150 + 70 * i)),
            );
            topo.add_downlink(rack, node).expect("free port");
        }
    }
    let config = SimConfig {
        link_latency: Cycle::new(6_400),
        ..SimConfig::default()
    };
    Ok((topo, config))
}

const CYCLES: u64 = 500_000;
const MID: u64 = 200_000;

/// The kitchen-sink chaos script from the scenario suite, retargeted at
/// the fleet-racks agents — the checkpoint at `MID` lands inside the
/// partition window, so the repartitioned continuation must heal it.
const SCRIPT: &str = r#"
name = "fleet-mix"
seed = 11
interval = 50_000

[[event]]
kind = "partition"
from = 100_000
until = 250_000
islands = [["echo"]]

[[event]]
kind = "link_flaky"
from = 300_000
until = 400_000
agent = "rack0"
port = 0
drop_percent = 40

[[event]]
kind = "switch_pressure"
from = 50_000
until = 450_000
switch = "root"
buffer_bytes = 200
max_release_delay = 32
"#;

/// A small fleet whose shape forces non-contiguous placement: blade-only
/// hosts (two blades each) plus cheaper dedicated switch hosts, so every
/// rack splits and switches land away from their servers.
fn blade_and_switch_fleet() -> FleetSpec {
    FleetSpec {
        classes: vec![
            HostClass {
                name: "blade2".into(),
                instance: InstanceType::F1_2xlarge,
                blade_capacity: 2,
                switch_capacity: 0,
                count: 8,
                cross_transport: TransportKind::Tcp,
                intra_transport: TransportKind::SharedMemory,
                dollars_per_hour: 2.0,
            },
            HostClass {
                name: "swhost".into(),
                instance: InstanceType::M4_16xlarge,
                blade_capacity: 0,
                switch_capacity: 1,
                count: 8,
                cross_transport: TransportKind::Tcp,
                intra_transport: TransportKind::SharedMemory,
                dollars_per_hour: 1.0,
            },
        ],
        token_bytes: 8,
        target_hz: 3.2e9,
    }
}

/// A profile that makes rack 1 much hotter than rack 0, so the packer
/// places it first and interleaves servers across hosts by load — the
/// opposite of topology order.
fn skewed_profile() -> LoadProfile {
    let mut profile = LoadProfile::uniform();
    profile.set("echo", 9_000.0);
    profile.set("idle_b0", 5_000.0);
    profile.set("idle_b1", 5_000.0);
    profile.set("pinger", 1_000.0);
    profile.set("idle_a0", 500.0);
    profile.set("idle_a1", 500.0);
    profile
}

fn load_aware_placement() -> PlacementPlan {
    let (topo, config) = build_fleet_racks("fleet-racks").unwrap();
    blade_and_switch_fleet()
        .place(&topo, &skewed_profile(), config.link_latency)
        .expect("fleet has capacity")
}

/// Writes `text` to a unique temp file and returns its absolute path.
fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("firesim-fleet-{}-{tag}", std::process::id()))
}

fn write_script(tag: &str) -> PathBuf {
    let path = temp_path(&format!("{tag}.toml"));
    std::fs::write(&path, SCRIPT).expect("write scenario script");
    path
}

/// The tentpole differential matrix: contiguous vs load-aware plans ×
/// 1/2/4 workers × every transport, all bit-identical.
fn placement_is_invisible(quick: bool) {
    let placement = load_aware_placement();
    assert!(
        placement.workers() >= 4,
        "expected a many-host plan to fold from:\n{}",
        placement.describe()
    );
    let (topo, _) = build_fleet_racks("fleet-racks").unwrap();
    for workers in [2usize, 4] {
        assert_ne!(
            placement.partition_for(workers).unwrap().encode(),
            PartitionPlan::contiguous(&topo, workers).unwrap().encode(),
            "load-aware {workers}-way plan degenerated to contiguous — the matrix would prove nothing"
        );
    }

    let transports: &[TransportChoice] = if quick {
        &[TransportChoice::Shm]
    } else {
        &[
            TransportChoice::Shm,
            TransportChoice::Tcp,
            TransportChoice::Unix,
        ]
    };
    let mut runs = Vec::new();
    for &transport in transports {
        for workers in [1usize, 2, 4] {
            for load_aware in [false, true] {
                let mut cfg =
                    PartitionConfig::new(workers, Cycle::new(CYCLES), "fleet-racks".to_string());
                cfg.transport = transport;
                if load_aware {
                    cfg.plan = Some(placement.partition_for(workers).unwrap());
                }
                let run = run_partitioned(build_fleet_racks, &cfg).unwrap_or_else(|report| {
                    panic!("{transport:?} x{workers} load_aware={load_aware} failed: {report}")
                });
                runs.push((transport, workers, load_aware, run));
            }
        }
    }
    let (_, _, _, baseline) = &runs[0];
    for (transport, workers, load_aware, run) in &runs[1..] {
        let tag = format!("{transport:?} x{workers} load_aware={load_aware}");
        assert_eq!(
            baseline.digests, run.digests,
            "{tag}: digests differ from contiguous monolithic"
        );
        assert_eq!(
            baseline.combined_digest, run.combined_digest,
            "{tag}: combined digest differs"
        );
        assert_eq!(
            baseline.report.deterministic_aggregates(),
            run.report.deterministic_aggregates(),
            "{tag}: report aggregates differ"
        );
    }
}

/// Executing the placement plan as-is (`with_placement`, one worker per
/// modeled host, including a switch-only host) reproduces the monolithic
/// digests and stamps the modeled cost into the merged report.
fn placement_plan_executes_end_to_end() {
    let placement = load_aware_placement();
    let mono = run_partitioned(
        build_fleet_racks,
        &PartitionConfig::new(1, Cycle::new(CYCLES), "fleet-racks".to_string()),
    )
    .unwrap_or_else(|report| panic!("monolithic run failed: {report}"));

    let cfg = PartitionConfig::new(1, Cycle::new(CYCLES), "fleet-racks".to_string())
        .with_placement(&placement);
    assert_eq!(cfg.workers, placement.workers());
    let run = run_partitioned(build_fleet_racks, &cfg)
        .unwrap_or_else(|report| panic!("placement-plan run failed: {report}"));
    assert_eq!(mono.digests, run.digests, "placement execution diverged");
    assert_eq!(
        run.report.cost.as_ref(),
        Some(placement.cost()),
        "merged report must carry the modeled cost"
    );
    let summary = run.report.human_summary();
    assert!(
        summary.contains("per simulated hour"),
        "summary must report $/sim-hour: {summary}"
    );
    // The cost never leaks into the placement-invariant aggregates.
    assert_eq!(
        mono.report.deterministic_aggregates(),
        run.report.deterministic_aggregates()
    );
}

/// The acceptance criterion: checkpoint a 4-way load-aware run mid-way,
/// restore the merged checkpoint into a 2-way deployment under the
/// folded load-aware plan, continue to the same absolute cycle — digests
/// AND deterministic aggregates match an uninterrupted contiguous run
/// bit-for-bit.
fn repartition_mid_run_matches_straight_run() {
    let placement = load_aware_placement();
    let ckpt = temp_path("repart.fsckpt");

    // A: the uninterrupted reference run.
    let straight = run_partitioned(
        build_fleet_racks,
        &PartitionConfig::new(1, Cycle::new(CYCLES), "fleet-racks".to_string()),
    )
    .unwrap_or_else(|report| panic!("straight run failed: {report}"));

    // B: 4-way load-aware, checkpoint at MID (barrier-consistent), run on
    // to the end anyway — the checkpoint must be invisible.
    let mut cfg = PartitionConfig::new(4, Cycle::new(CYCLES), "fleet-racks".to_string());
    cfg.plan = Some(placement.partition_for(4).unwrap());
    cfg.checkpoint_at = Some(Cycle::new(MID));
    cfg.checkpoint_out = Some(ckpt.clone());
    let checkpointed = run_partitioned(build_fleet_racks, &cfg)
        .unwrap_or_else(|report| panic!("checkpointing run failed: {report}"));
    assert!(ckpt.exists(), "parent must write the merged checkpoint");
    assert_eq!(
        straight.digests, checkpointed.digests,
        "mid-run checkpoint changed the digests"
    );
    assert_eq!(
        straight.report.deterministic_aggregates(),
        checkpointed.report.deterministic_aggregates(),
        "mid-run checkpoint changed the aggregates"
    );

    // C: restore into 2 workers under a different (folded load-aware)
    // plan and continue to the same absolute target.
    let mut cfg = PartitionConfig::new(2, Cycle::new(CYCLES), "fleet-racks".to_string());
    cfg.plan = Some(placement.partition_for(2).unwrap());
    cfg.restore_from = Some(ckpt.clone());
    let resumed = run_partitioned(build_fleet_racks, &cfg)
        .unwrap_or_else(|report| panic!("repartitioned continuation failed: {report}"));
    assert_eq!(
        straight.digests, resumed.digests,
        "repartitioned continuation diverged from the straight run"
    );
    assert_eq!(
        straight.combined_digest, resumed.combined_digest,
        "combined digest differs after repartition"
    );
    assert_eq!(
        straight.report.deterministic_aggregates(),
        resumed.report.deterministic_aggregates(),
        "deterministic aggregates differ after repartition"
    );

    // The same checkpoint also restores monolithically (merged files are
    // name-sorted, not registration-ordered).
    let mut cfg = PartitionConfig::new(1, Cycle::new(CYCLES), "fleet-racks".to_string());
    cfg.restore_from = Some(ckpt.clone());
    let mono = run_partitioned(build_fleet_racks, &cfg)
        .unwrap_or_else(|report| panic!("monolithic continuation failed: {report}"));
    assert_eq!(
        straight.digests, mono.digests,
        "monolithic continuation diverged"
    );
    let _ = std::fs::remove_file(ckpt);
}

/// Repartitioning composes with the chaos layer: checkpoint inside a
/// scripted partition window, restore into a different sharding with the
/// scenario re-applied, and the healed run lands on the digests of an
/// uninterrupted scenario run. (Digests only: timeline buckets recorded
/// before the restore point don't survive into the new deployment.)
fn repartition_mid_scenario_matches_digests() {
    let placement = load_aware_placement();
    let script = write_script("scenario");
    let ckpt = temp_path("repart-scenario.fsckpt");

    let mut cfg = PartitionConfig::new(1, Cycle::new(CYCLES), "fleet-racks".to_string());
    cfg.scenario = Some(script.display().to_string());
    let straight = run_partitioned(build_fleet_racks, &cfg)
        .unwrap_or_else(|report| panic!("straight scenario run failed: {report}"));
    let timeline = straight
        .report
        .timeline
        .as_ref()
        .expect("scenario run records a timeline");
    assert!(
        timeline.points.iter().any(|p| p.masked > 0),
        "the scripted partition masked no frames: {timeline:?}"
    );

    let mut cfg = PartitionConfig::new(4, Cycle::new(CYCLES), "fleet-racks".to_string());
    cfg.plan = Some(placement.partition_for(4).unwrap());
    cfg.scenario = Some(script.display().to_string());
    cfg.checkpoint_at = Some(Cycle::new(MID));
    cfg.checkpoint_out = Some(ckpt.clone());
    let checkpointed = run_partitioned(build_fleet_racks, &cfg)
        .unwrap_or_else(|report| panic!("scenario checkpointing run failed: {report}"));
    assert_eq!(
        straight.digests, checkpointed.digests,
        "mid-scenario checkpoint changed the digests"
    );
    assert_eq!(
        straight.report.deterministic_aggregates(),
        checkpointed.report.deterministic_aggregates(),
        "mid-scenario checkpoint changed the aggregates (incl. timeline)"
    );

    let mut cfg = PartitionConfig::new(2, Cycle::new(CYCLES), "fleet-racks".to_string());
    cfg.plan = Some(placement.partition_for(2).unwrap());
    cfg.scenario = Some(script.display().to_string());
    cfg.restore_from = Some(ckpt.clone());
    let resumed = run_partitioned(build_fleet_racks, &cfg)
        .unwrap_or_else(|report| panic!("mid-scenario repartition failed: {report}"));
    assert_eq!(
        straight.digests, resumed.digests,
        "mid-scenario repartition diverged from the straight scenario run"
    );
    assert_eq!(
        straight.combined_digest, resumed.combined_digest,
        "combined digest differs after mid-scenario repartition"
    );

    let _ = std::fs::remove_file(ckpt);
    let _ = std::fs::remove_file(script);
}

/// Packer property sweep over seeded random trees, fleets, and profiles.
fn packer_properties_hold(iters: usize) {
    let mut rng = Rng(42);
    for iter in 0..iters {
        // A 1-2 level tree: root -> aggs -> tors -> servers.
        let aggs = 1 + rng.below(2) as usize;
        let tors_per_agg = 1 + rng.below(3) as usize;
        let per_tor = 1 + rng.below(4) as usize;
        let mut topo = Topology::new();
        let root = topo.add_switch("root");
        let mut names = vec!["root".to_string()];
        let mut servers = 0usize;
        for a in 0..aggs {
            let agg = topo.add_switch(format!("agg{a}"));
            names.push(format!("agg{a}"));
            topo.add_downlink(root, agg).unwrap();
            for t in 0..tors_per_agg {
                let tor = topo.add_switch(format!("tor{a}_{t}"));
                names.push(format!("tor{a}_{t}"));
                topo.add_downlink(agg, tor).unwrap();
                for _ in 0..per_tor {
                    let node = topo.add_server(
                        format!("s{servers}"),
                        BladeSpec::rtl_single_core(programs::boot_poweroff(1)),
                    );
                    names.push(format!("s{servers}"));
                    topo.add_downlink(tor, node).unwrap();
                    servers += 1;
                }
            }
        }
        let switches = 1 + aggs + aggs * tors_per_agg;

        // A random fleet with enough capacity by construction.
        let blade_cap = 1 + rng.below(4) as usize;
        let switch_cap = rng.below(3) as usize;
        let fleet = FleetSpec {
            classes: vec![
                HostClass {
                    name: "blades".into(),
                    instance: InstanceType::F1_2xlarge,
                    blade_capacity: blade_cap,
                    switch_capacity: switch_cap,
                    count: servers.div_ceil(blade_cap) + 1 + rng.below(3) as usize,
                    cross_transport: TransportKind::Tcp,
                    intra_transport: TransportKind::Pcie,
                    dollars_per_hour: 1.0 + rng.below(5) as f64,
                },
                HostClass {
                    name: "switches".into(),
                    instance: InstanceType::M4_16xlarge,
                    blade_capacity: 0,
                    switch_capacity: 1,
                    count: switches,
                    cross_transport: TransportKind::Tcp,
                    intra_transport: TransportKind::SharedMemory,
                    dollars_per_hour: 1.0,
                },
            ],
            token_bytes: 8,
            target_hz: 3.2e9,
        };
        let mut profile = LoadProfile::uniform();
        for s in 0..servers {
            if rng.below(2) == 0 {
                profile.set(format!("s{s}"), (1 + rng.below(20_000)) as f64);
            }
        }

        let placement = fleet
            .place(&topo, &profile, Cycle::new(6_400))
            .unwrap_or_else(|e| panic!("iter {iter}: feasible fleet rejected: {e}"));

        // Every agent placed exactly once.
        let mut placed: BTreeMap<String, usize> = BTreeMap::new();
        for host in placement.hosts() {
            for name in host.servers.iter().chain(host.switches.iter()) {
                *placed.entry(name.clone()).or_default() += 1;
            }
        }
        for name in &names {
            assert_eq!(
                placed.get(name),
                Some(&1),
                "iter {iter}: {name} placed {:?} times",
                placed.get(name)
            );
        }
        assert_eq!(placed.len(), names.len(), "iter {iter}: stray agents");

        // Capacity respected on every host.
        for (h, host) in placement.hosts().iter().enumerate() {
            let class = fleet
                .classes
                .iter()
                .find(|c| c.name == host.class)
                .unwrap_or_else(|| panic!("iter {iter}: host {h} has unknown class"));
            assert!(
                host.servers.len() <= class.blade_capacity,
                "iter {iter}: host {h} over blade capacity"
            );
            assert!(
                host.switches.len() <= class.switch_capacity,
                "iter {iter}: host {h} over switch capacity"
            );
        }

        // The partition is dense, total, and wire-stable.
        let plan = placement.partition();
        assert_eq!(plan.workers(), placement.hosts().len());
        let sizes = plan.shard_sizes();
        assert!(sizes.iter().all(|&s| s > 0), "iter {iter}: empty shard");
        assert_eq!(sizes.iter().sum::<usize>(), names.len());
        assert_eq!(&PartitionPlan::decode(&topo, &plan.encode()).unwrap(), plan);

        // Cost accounting is internally consistent.
        let cost = placement.cost();
        let rental: f64 = placement.hosts().iter().map(|h| h.dollars_per_hour).sum();
        assert!((cost.fleet_per_hour - rental).abs() < 1e-9);
        assert_eq!(cost.hosts_used, placement.hosts().len());
        assert!(cost.sim_rate_hz > 0.0);
        assert!((cost.slowdown - fleet.target_hz / cost.sim_rate_hz).abs() < 1e-6);
        assert!((cost.dollars_per_sim_hour - cost.fleet_per_hour * cost.slowdown).abs() < 1e-6);

        // Determinism: the same inputs produce the identical plan.
        let again = fleet.place(&topo, &profile, Cycle::new(6_400)).unwrap();
        assert_eq!(
            placement.hosts(),
            again.hosts(),
            "iter {iter}: packer nondeterministic"
        );
        assert_eq!(plan, again.partition());
        assert_eq!(cost, again.cost());
    }
}

/// The paper's 1024-node datacenter (4 aggs x 8 ToRs x 32 servers).
fn datacenter_1024_topology() -> Topology {
    let mut topo = Topology::new();
    let root = topo.add_switch("root");
    let mut count = 0usize;
    for a in 0..4 {
        let agg = topo.add_switch(format!("agg{a}"));
        topo.add_downlink(root, agg).unwrap();
        for t in 0..8 {
            let tor = topo.add_switch(format!("tor{a}_{t}"));
            topo.add_downlink(agg, tor).unwrap();
            for _ in 0..32 {
                let node = topo.add_server(
                    format!("node{count}"),
                    BladeSpec::rtl_single_core(programs::boot_poweroff(1)),
                );
                topo.add_downlink(tor, node).unwrap();
                count += 1;
            }
        }
    }
    topo
}

fn get_f64(obj: &serde_json::Value, key: &str) -> f64 {
    obj.as_object()
        .and_then(|o| o.get(key))
        .and_then(serde_json::Value::as_f64)
        .unwrap_or_else(|| panic!("baseline missing {key}"))
}

fn close(got: f64, want: f64, what: &str) {
    let tol = 1e-6 * want.abs().max(1.0);
    assert!(
        (got - want).abs() <= tol,
        "{what}: got {got}, baseline {want}"
    );
}

/// The §V-C fleet and its modeled economics, pinned against the
/// committed golden file so cost-model drift fails CI loudly.
fn paper_cost_model_matches_baseline() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/fleet_cost_baseline.json"
    );
    let text = std::fs::read_to_string(path).expect("read results/fleet_cost_baseline.json");
    let baseline: serde_json::Value = serde_json::from_str(&text).expect("parse baseline");
    let obj = baseline.as_object().expect("baseline is an object");
    let ondemand = obj.get("ondemand").expect("baseline.ondemand");
    let spot = obj.get("spot").expect("baseline.spot");

    let topo = datacenter_1024_topology();
    let placement = FleetSpec::ec2_default()
        .place(&topo, &LoadProfile::uniform(), Cycle::new(6_400))
        .expect("the EC2 fleet fits the 1024-node datacenter");
    let cost = placement.cost();
    let f1 = placement
        .hosts()
        .iter()
        .filter(|h| h.class == "f1.16xlarge")
        .count();
    let m4 = placement
        .hosts()
        .iter()
        .filter(|h| h.class == "m4.16xlarge")
        .count();
    assert_eq!(f1 as f64, get_f64(ondemand, "f1_16xlarge"));
    assert_eq!(m4 as f64, get_f64(ondemand, "m4_16xlarge"));
    assert_eq!(cost.hosts_used as f64, get_f64(ondemand, "hosts_used"));
    assert_eq!(cost.cut_links as f64, get_f64(ondemand, "cut_links"));
    close(
        cost.fleet_per_hour,
        get_f64(ondemand, "fleet_per_hour"),
        "ondemand fleet_per_hour",
    );
    close(
        cost.sim_rate_hz / 1e6,
        get_f64(ondemand, "sim_rate_mhz"),
        "sim_rate_mhz",
    );
    close(cost.slowdown, get_f64(ondemand, "slowdown"), "slowdown");
    close(
        cost.dollars_per_sim_hour,
        get_f64(ondemand, "dollars_per_sim_hour"),
        "ondemand dollars_per_sim_hour",
    );

    let spot_placement = FleetSpec::ec2_spot()
        .place(&topo, &LoadProfile::uniform(), Cycle::new(6_400))
        .expect("spot fleet places identically");
    close(
        spot_placement.cost().fleet_per_hour,
        get_f64(spot, "fleet_per_hour"),
        "spot fleet_per_hour",
    );
    close(
        spot_placement.cost().dollars_per_sim_hour,
        get_f64(spot, "dollars_per_sim_hour"),
        "spot dollars_per_sim_hour",
    );
}

fn main() {
    // Worker processes re-exec this binary with shard assignments in the
    // environment; this call never returns for them.
    if maybe_worker(build_fleet_racks) {
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick");

    paper_cost_model_matches_baseline();
    println!("ok - paper_cost_model_matches_baseline (32 f1 + 5 m4, $438.40/h)");
    packer_properties_hold(if quick { 10 } else { 40 });
    println!("ok - packer_properties_hold");
    placement_is_invisible(quick);
    println!(
        "ok - placement_is_invisible (contiguous vs load-aware x 1/2/4 workers x {})",
        if quick { "shm" } else { "shm/tcp/unix" }
    );
    placement_plan_executes_end_to_end();
    println!("ok - placement_plan_executes_end_to_end");
    repartition_mid_run_matches_straight_run();
    println!("ok - repartition_mid_run_matches_straight_run (4-way -> 2-way)");
    if !quick {
        repartition_mid_scenario_matches_digests();
        println!("ok - repartition_mid_scenario_matches_digests");
    }
    println!("fleet: all checks passed");
}
