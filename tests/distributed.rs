//! Distributed-run acceptance tests (§III-B2 determinism across hosts):
//!
//! * the same topology partitioned across 1, 2, and 4 worker processes
//!   produces bit-identical per-agent checkpoint digests and identical
//!   deterministic report aggregates, over several seeded topologies and
//!   every transport backend;
//! * killing one worker mid-run yields a `FailureReport` that names the
//!   dead shard.
//!
//! `harness = false`: worker processes re-exec this binary, so `main`
//! must route them into their shard before any test logic runs — the
//! default libtest harness would try to parse the worker env as test
//! filters.

use firesim_blade::programs;
use firesim_core::{Cycle, SimError, SimResult};
use firesim_manager::{
    maybe_worker, run_partitioned, BladeSpec, PartitionConfig, SimConfig, Topology, TransportChoice,
};
use firesim_net::MacAddr;

/// Deterministic xorshift so "arbitrary" topologies are reproducible
/// from the spec string alone (both here and in re-exec'd workers).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = self.0.wrapping_add(1);
        x ^ (x >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// `BuildFn` shared by the parent and every worker: a seeded two-rack
/// cluster with real cross-rack traffic (a pinger in rack 0 pinging an
/// echo server in rack 1, so token windows with live frames cross every
/// partition boundary) plus a seed-dependent number of boot-and-idle
/// nodes with seed-dependent work.
///
/// Spec grammar: `seed=N[,nocache][,reference-timing]` — the `,nocache`
/// suffix force-disables the per-hart decode cache on every blade, and
/// `,reference-timing` swaps the batched event-driven timing layer for
/// the per-cycle reference loop, so the same topology can be run with
/// and without each fast path (the suffixes travel to re-exec'd workers
/// inside the spec string, keeping parent and shards consistent).
fn build_seeded(spec: &str) -> SimResult<(Topology, SimConfig)> {
    let mut parts = spec.split(',');
    let spec_seed = parts.next().unwrap_or_default();
    let mut nocache = false;
    let mut reference_timing = false;
    for flag in parts {
        match flag {
            "nocache" => nocache = true,
            "reference-timing" => reference_timing = true,
            other => return Err(SimError::topology(format!("bad spec flag {other:?}"))),
        }
    }
    let seed = spec_seed
        .strip_prefix("seed=")
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| SimError::topology(format!("bad spec {spec:?}")))?;
    let blade = move |program| {
        let mut spec = BladeSpec::rtl_single_core(program);
        if let BladeSpec::Rtl { config, .. } = &mut spec {
            config.timing.decode_cache = !nocache;
            config.timing.reference_timing = reference_timing;
        }
        spec
    };
    let mut rng = Rng(seed);

    let mut topo = Topology::new();
    let root = topo.add_switch("root");
    let rack0 = topo.add_switch("rack0");
    let rack1 = topo.add_switch("rack1");
    topo.add_downlinks(root, [rack0, rack1])
        .expect("fresh switch has free ports");

    let pings = 3 + rng.below(4) as usize;
    let pinger = topo.add_server(
        "pinger",
        blade(programs::ping_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            pings,
            56,
            64_000 + rng.below(8) * 6_400,
        )),
    );
    let echo = topo.add_server("echo", blade(programs::echo_responder(pings)));
    topo.add_downlink(rack0, pinger).expect("free port");
    topo.add_downlink(rack1, echo).expect("free port");
    // 1-3 extra idle nodes per rack, each with its own boot workload.
    for (rack, tag) in [(rack0, "a"), (rack1, "b")] {
        for i in 0..1 + rng.below(3) {
            let node = topo.add_server(
                format!("idle_{tag}{i}"),
                blade(programs::boot_poweroff(50 + rng.below(400))),
            );
            topo.add_downlink(rack, node).expect("free port");
        }
    }
    let config = SimConfig {
        link_latency: Cycle::new(6_400), // the paper's default 2 us at 3.2 GHz
        ..SimConfig::default()
    };
    Ok((topo, config))
}

const CYCLES: u64 = 500_000;

/// The tentpole acceptance check: 1-way, 2-way, and 4-way partitionings
/// of the same seeded topology agree bit-for-bit — same per-agent
/// digests, same combined digest, same deterministic report aggregates.
fn partitioning_is_invisible(seed: u64, transport: TransportChoice) {
    let mut runs = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut cfg = PartitionConfig::new(workers, Cycle::new(CYCLES), format!("seed={seed}"));
        cfg.transport = transport;
        let run = run_partitioned(build_seeded, &cfg)
            .unwrap_or_else(|report| panic!("seed {seed} x{workers} failed: {report}"));
        assert!(
            run.digests.len() >= 4,
            "expected every agent digested, got {:?}",
            run.digests
        );
        runs.push((workers, run));
    }
    let (_, baseline) = &runs[0];
    for (workers, run) in &runs[1..] {
        assert_eq!(
            baseline.digests, run.digests,
            "seed {seed}: {workers}-way digests differ from monolithic ({transport:?})"
        );
        assert_eq!(
            baseline.combined_digest, run.combined_digest,
            "seed {seed}: {workers}-way combined digest differs ({transport:?})"
        );
        assert_eq!(
            baseline.report.deterministic_aggregates(),
            run.report.deterministic_aggregates(),
            "seed {seed}: {workers}-way report aggregates differ ({transport:?})"
        );
    }
}

/// The decode-cache acceptance check: the same seeded topology run with
/// the fast path enabled and force-disabled (`,nocache`), each across
/// 1-, 2-, and 4-way partitionings, produces bit-identical per-agent
/// checkpoint digests, combined digest, and deterministic report
/// aggregates. Host-side throughput counters (`host_*`) legally differ
/// between the two modes and are excluded from the canonical aggregates.
fn decode_cache_is_invisible(seed: u64) {
    let mut baseline = None;
    for spec in [format!("seed={seed}"), format!("seed={seed},nocache")] {
        for workers in [1usize, 2, 4] {
            let cfg = PartitionConfig::new(workers, Cycle::new(CYCLES), spec.clone());
            let run = run_partitioned(build_seeded, &cfg)
                .unwrap_or_else(|report| panic!("{spec} x{workers} failed: {report}"));
            match &baseline {
                None => baseline = Some(run),
                Some(base) => {
                    assert_eq!(
                        base.digests, run.digests,
                        "{spec} x{workers}: digests differ from cache-on monolithic"
                    );
                    assert_eq!(
                        base.combined_digest, run.combined_digest,
                        "{spec} x{workers}: combined digest differs"
                    );
                    assert_eq!(
                        base.report.deterministic_aggregates(),
                        run.report.deterministic_aggregates(),
                        "{spec} x{workers}: report aggregates differ"
                    );
                }
            }
        }
    }
}

/// The event-driven-timing acceptance check: the same seeded topology
/// run under the batched schedule and under the per-cycle reference
/// loop (`,reference-timing`), each across 1-, 2-, and 4-way
/// partitionings, produces bit-identical per-agent checkpoint digests,
/// combined digest, and deterministic report aggregates — skip-ahead
/// scheduling and superblock static timing are host-side optimisations
/// with zero target-visible effect.
fn reference_timing_is_invisible(seed: u64) {
    let mut baseline = None;
    for spec in [
        format!("seed={seed}"),
        format!("seed={seed},reference-timing"),
    ] {
        for workers in [1usize, 2, 4] {
            let cfg = PartitionConfig::new(workers, Cycle::new(CYCLES), spec.clone());
            let run = run_partitioned(build_seeded, &cfg)
                .unwrap_or_else(|report| panic!("{spec} x{workers} failed: {report}"));
            match &baseline {
                None => baseline = Some(run),
                Some(base) => {
                    assert_eq!(
                        base.digests, run.digests,
                        "{spec} x{workers}: digests differ from batched monolithic"
                    );
                    assert_eq!(
                        base.combined_digest, run.combined_digest,
                        "{spec} x{workers}: combined digest differs"
                    );
                    assert_eq!(
                        base.report.deterministic_aggregates(),
                        run.report.deterministic_aggregates(),
                        "{spec} x{workers}: report aggregates differ"
                    );
                }
            }
        }
    }
}

/// Killing one worker produces a `FailureReport` naming the dead shard.
fn dead_worker_is_named() {
    let mut cfg = PartitionConfig::new(2, Cycle::new(CYCLES), "seed=1".to_string());
    // Shard 0 holds the pinger (server index 0), which is mid-ping-loop
    // at cycle 100000: it dies while shard 1 is blocked on the
    // cross-shard transports, so the parent must notice and kill shard 1.
    cfg.worker_panic = Some("0:pinger@100000".to_string());
    let report = match run_partitioned(build_seeded, &cfg) {
        Err(report) => report,
        Ok(run) => panic!("worker panic injected but the fleet succeeded: {run:?}"),
    };
    assert_eq!(
        report.failing_agent.as_deref(),
        Some("shard0"),
        "report must name the dead shard: {report}"
    );
}

fn main() {
    // Worker processes re-exec this binary with shard assignments in the
    // environment; this call never returns for them.
    if maybe_worker(build_seeded) {
        return;
    }

    // Every transport backend at one seed, then more seeds on the
    // fastest backend for topological variety.
    for transport in [
        TransportChoice::Shm,
        TransportChoice::Tcp,
        TransportChoice::Unix,
    ] {
        partitioning_is_invisible(1, transport);
        println!("ok - partitioning_is_invisible seed=1 {transport:?}");
    }
    for seed in [2u64, 3, 4] {
        partitioning_is_invisible(seed, TransportChoice::Shm);
        println!("ok - partitioning_is_invisible seed={seed} Shm");
    }
    decode_cache_is_invisible(1);
    println!("ok - decode_cache_is_invisible seed=1");
    reference_timing_is_invisible(1);
    println!("ok - reference_timing_is_invisible seed=1");
    dead_worker_is_named();
    println!("ok - dead_worker_is_named");
    println!("distributed: all checks passed");
}
