//! Chaos-scenario acceptance tests:
//!
//! * the same scenario script applied to the same topology is
//!   digest-identical across 1-, 2-, and 4-way partitionings and every
//!   transport backend, including the merged recovery timeline;
//! * a run checkpointed mid-partition, restored into a fresh deployment
//!   with the scenario re-applied, and run to completion lands on
//!   exactly the digests of an uninterrupted scenario run (scenario
//!   effects are pure functions of the target cycle, so re-applying the
//!   script resumes the timeline mid-partition);
//! * a zero-event scenario is bit-identical to no scenario at all;
//! * scripts naming unknown agents or out-of-range ports are rejected
//!   with a typed error at apply time, before any cycle runs.
//!
//! `harness = false`: worker processes re-exec this binary, so `main`
//! must route them into their shard before any test logic runs.

use firesim_blade::programs;
use firesim_core::{Cycle, Scenario, SimError, SimResult};
use firesim_manager::{
    maybe_worker, run_partitioned, BladeSpec, PartitionConfig, SimConfig, Topology, TransportChoice,
};
use firesim_net::MacAddr;

/// `BuildFn` shared by the parent and every worker: a two-rack cluster
/// with cross-rack ping traffic, so the scenario's cut links carry live
/// frames and cross every partition boundary.
fn build_two_racks(spec: &str) -> SimResult<(Topology, SimConfig)> {
    if spec != "two-racks" {
        return Err(SimError::topology(format!("bad spec {spec:?}")));
    }
    let mut topo = Topology::new();
    let root = topo.add_switch("root");
    let rack0 = topo.add_switch("rack0");
    let rack1 = topo.add_switch("rack1");
    topo.add_downlinks(root, [rack0, rack1])
        .expect("fresh switch has free ports");
    let pinger = topo.add_server(
        "pinger",
        BladeSpec::rtl_single_core(programs::ping_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            8,
            56,
            64_000,
        )),
    );
    let echo = topo.add_server(
        "echo",
        BladeSpec::rtl_single_core(programs::echo_responder(8)),
    );
    topo.add_downlink(rack0, pinger).expect("free port");
    topo.add_downlink(rack1, echo).expect("free port");
    for (rack, tag) in [(rack0, "a"), (rack1, "b")] {
        let node = topo.add_server(
            format!("idle_{tag}"),
            BladeSpec::rtl_single_core(programs::boot_poweroff(200)),
        );
        topo.add_downlink(rack, node).expect("free port");
    }
    let config = SimConfig {
        link_latency: Cycle::new(6_400),
        ..SimConfig::default()
    };
    Ok((topo, config))
}

const CYCLES: u64 = 500_000;

/// A kitchen-sink script: a partition that heals, a flaky window after
/// the heal, and a buffer-pressure window on the core switch — one of
/// each scenario mechanism, all landing inside the 500k-cycle run.
const SCRIPT: &str = r#"
name = "test-mix"
seed = 11
interval = 50_000

[[event]]
kind = "partition"
from = 100_000
until = 250_000
islands = [["echo"]]

[[event]]
kind = "link_flaky"
from = 300_000
until = 400_000
agent = "rack0"
port = 0
drop_percent = 40

[[event]]
kind = "switch_pressure"
from = 50_000
until = 450_000
switch = "root"
buffer_bytes = 200
max_release_delay = 32
"#;

/// Writes `text` to a unique temp file and returns its absolute path
/// (workers re-exec this binary and load the script by path).
fn write_script(tag: &str, text: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "firesim-scenario-{}-{tag}.toml",
        std::process::id()
    ));
    std::fs::write(&path, text).expect("write scenario script");
    path
}

/// The tentpole acceptance check: the scripted chaos run agrees
/// bit-for-bit across worker counts and transports — per-agent digests,
/// combined digest, and deterministic aggregates (which include the
/// merged recovery timeline).
fn scenario_is_partition_invariant() {
    let script = write_script("matrix", SCRIPT);
    let mut runs = Vec::new();
    for transport in [
        TransportChoice::Shm,
        TransportChoice::Tcp,
        TransportChoice::Unix,
    ] {
        for workers in [1usize, 2, 4] {
            let mut cfg =
                PartitionConfig::new(workers, Cycle::new(CYCLES), "two-racks".to_string());
            cfg.transport = transport;
            cfg.scenario = Some(script.display().to_string());
            let run = run_partitioned(build_two_racks, &cfg)
                .unwrap_or_else(|report| panic!("{transport:?} x{workers} failed: {report}"));
            let tl = run
                .report
                .timeline
                .as_ref()
                .unwrap_or_else(|| panic!("{transport:?} x{workers}: no merged timeline"));
            assert!(
                tl.points.iter().any(|p| p.delivered > 0),
                "timeline recorded no delivered frames: {tl:?}"
            );
            assert!(
                tl.points.iter().any(|p| p.masked > 0),
                "partition masked no frames: {tl:?}"
            );
            runs.push((transport, workers, run));
        }
    }
    let (_, _, baseline) = &runs[0];
    for (transport, workers, run) in &runs[1..] {
        assert_eq!(
            baseline.digests, run.digests,
            "{transport:?} x{workers}: digests differ from monolithic Shm"
        );
        assert_eq!(
            baseline.combined_digest, run.combined_digest,
            "{transport:?} x{workers}: combined digest differs"
        );
        assert_eq!(
            baseline.report.deterministic_aggregates(),
            run.report.deterministic_aggregates(),
            "{transport:?} x{workers}: report aggregates (incl. timeline) differ"
        );
    }
    let _ = std::fs::remove_file(script);
}

/// Checkpoint mid-partition, restore into a fresh deployment, re-apply
/// the scenario, run to the end: digests must equal an uninterrupted
/// scenario run's. Scenario effects are pure functions of the absolute
/// target cycle, so the restored run heals at the scripted cycle too.
fn checkpoint_mid_partition_resumes_scenario() {
    let scenario = Scenario::parse(SCRIPT).expect("script parses");

    // Uninterrupted scenario run.
    let (topo, config) = build_two_racks("two-racks").unwrap();
    let compiled = scenario.compile(&topo.scenario_topology()).unwrap();
    let mut sim = topo.build(config).unwrap();
    sim.apply_scenario(&compiled).unwrap();
    sim.run_for(Cycle::new(CYCLES)).unwrap();
    let end = sim.now();
    let straight = sim.checkpoint().unwrap().agent_digests();

    // Same run, but checkpointed around 150k — inside the [100k, 250k)
    // partition window (the engine advances in token-window quanta, so
    // anchor on the cycle it actually reached).
    let (topo, config) = build_two_racks("two-racks").unwrap();
    let compiled = scenario.compile(&topo.scenario_topology()).unwrap();
    let mut sim = topo.build(config).unwrap();
    sim.apply_scenario(&compiled).unwrap();
    sim.run_for(Cycle::new(150_000)).unwrap();
    let mid = sim.now();
    assert!(
        mid.as_u64() >= 100_000 && mid.as_u64() < 250_000,
        "checkpoint at {mid:?} missed the partition window"
    );
    let cp = sim.checkpoint().unwrap();

    // Fresh deployment, scenario re-applied, state restored mid-window.
    let (topo, config) = build_two_racks("two-racks").unwrap();
    let compiled = scenario.compile(&topo.scenario_topology()).unwrap();
    let mut sim = topo.build(config).unwrap();
    sim.apply_scenario(&compiled).unwrap();
    sim.restore(&cp).unwrap();
    assert_eq!(sim.now(), mid, "restore lands mid-partition");
    sim.run_for(Cycle::new(end.as_u64() - mid.as_u64()))
        .unwrap();
    assert_eq!(
        sim.now(),
        end,
        "resumed run ends where the straight run did"
    );
    let resumed = sim.checkpoint().unwrap().agent_digests();

    assert_eq!(
        straight, resumed,
        "restore-then-heal diverged from the uninterrupted scenario run"
    );
}

/// A zero-event scenario installs nothing: digests match a straight run
/// exactly, for both the monolithic and 2-way partitioned deployments.
fn noop_scenario_is_invisible() {
    let script = write_script("noop", "name = \"noop\"\n");
    let mut digests = Vec::new();
    for scenario in [None, Some(script.display().to_string())] {
        for workers in [1usize, 2] {
            let mut cfg =
                PartitionConfig::new(workers, Cycle::new(CYCLES), "two-racks".to_string());
            cfg.scenario = scenario.clone();
            let run = run_partitioned(build_two_racks, &cfg)
                .unwrap_or_else(|report| panic!("noop x{workers} failed: {report}"));
            assert!(
                run.report.timeline.is_none(),
                "a zero-event scenario must not record a timeline"
            );
            digests.push(run.digests);
        }
    }
    for d in &digests[1..] {
        assert_eq!(&digests[0], d, "noop scenario changed the digests");
    }
    let _ = std::fs::remove_file(script);
}

/// Bad targets fail typed at apply time: unknown agents and out-of-range
/// ports are rejected when the script is compiled against the topology,
/// before any cycle runs — both in-process and through the partitioned
/// runner.
fn bad_targets_are_rejected_at_setup() {
    let (topo, _) = build_two_racks("two-racks").unwrap();
    let view = topo.scenario_topology();

    let ghost = Scenario::parse(
        "[[event]]\nkind = \"link_down\"\nfrom = 0\nuntil = 10\nagent = \"ghost\"\nport = 0\n",
    )
    .unwrap();
    let err = ghost.compile(&view).unwrap_err();
    assert!(
        matches!(err, SimError::Scenario { .. }) && err.to_string().contains("ghost"),
        "unknown agent must fail typed: {err}"
    );

    let bad_port = Scenario::parse(
        "[[event]]\nkind = \"link_flaky\"\nfrom = 0\nuntil = 10\nagent = \"pinger\"\nport = 7\ndrop_percent = 10\n",
    )
    .unwrap();
    let err = bad_port.compile(&view).unwrap_err();
    assert!(
        matches!(err, SimError::Scenario { .. }) && err.to_string().contains("port"),
        "out-of-range port must fail typed: {err}"
    );

    // The partitioned runner surfaces the same failure before spawning
    // any worker.
    let script = write_script(
        "bad",
        "[[event]]\nkind = \"partition\"\nfrom = 0\nuntil = 10\nislands = [[\"ghost\"]]\n",
    );
    let mut cfg = PartitionConfig::new(1, Cycle::new(CYCLES), "two-racks".to_string());
    cfg.scenario = Some(script.display().to_string());
    let report = match run_partitioned(build_two_racks, &cfg) {
        Err(report) => report,
        Ok(_) => panic!("bad scenario target accepted by the partitioned runner"),
    };
    assert!(
        report.to_string().contains("ghost"),
        "failure report must name the bad target: {report}"
    );
    let _ = std::fs::remove_file(script);
}

fn main() {
    // Worker processes re-exec this binary with shard assignments in the
    // environment; this call never returns for them.
    if maybe_worker(build_two_racks) {
        return;
    }

    scenario_is_partition_invariant();
    println!("ok - scenario_is_partition_invariant (1/2/4 workers x shm/tcp/unix)");
    checkpoint_mid_partition_resumes_scenario();
    println!("ok - checkpoint_mid_partition_resumes_scenario");
    noop_scenario_is_invisible();
    println!("ok - noop_scenario_is_invisible");
    bad_targets_are_rejected_at_setup();
    println!("ok - bad_targets_are_rejected_at_setup");
    println!("scenarios: all checks passed");
}
