//! Live-telemetry acceptance tests (DESIGN §17).
//!
//! Two contracts:
//!
//! 1. **Golden fixture** — the quickstart rack's streamed run feed,
//!    with host-dependent fields normalized out, is byte-identical to
//!    the committed `tests/fixtures/quickstart_stream.golden.ndjson`.
//!    Regenerate with `FIRESIM_BLESS=1 cargo test --test telemetry`
//!    after an intentional behavior change.
//! 2. **Streaming is invisible** — per-agent checkpoint digests and the
//!    combined digest are bit-identical with streaming on and off,
//!    across 1/2/4 workers and all three transports. Streaming reads
//!    aggregation at quiescent boundaries and never feeds back into the
//!    simulation, so this is structural; the test pins it.
//!
//! With `FIRESIM_OVERHEAD_GUARD=1` (the CI telemetry job) an overhead
//! guard also runs: a streaming-enabled run must be within 5% of a
//! streaming-off run, measured with the PR-3 methodology (interleaved
//! samples reduced by minimum so shared-runner noise cancels).

use std::path::PathBuf;

use firesim_blade::programs;
use firesim_core::{Cycle, Frequency, SimResult};
use firesim_manager::{
    maybe_worker, run_partitioned, BladeSpec, PartitionConfig, SimConfig, StreamRecord, Topology,
    TransportChoice,
};
use firesim_net::MacAddr;

/// The quickstart rack, byte-for-byte (examples/quickstart.rs): one ToR,
/// a pinger, an echo server, two idle nodes, 2 us links at 3.2 GHz. The
/// golden fixture is this topology's stream, so the committed fixture
/// also pins the example's `--stream-out` output (CI diffs both).
fn build_cluster(_spec: &str) -> SimResult<(Topology, SimConfig)> {
    const CLOCK: Frequency = Frequency::GHZ_3_2;
    const PINGS: usize = 10;
    let link_latency = CLOCK.cycles_from_micros(2);

    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let pinger = topo.add_server(
        "pinger",
        BladeSpec::rtl_single_core(programs::ping_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            PINGS,
            56,
            CLOCK.cycles_from_micros(20).as_u64(),
        )),
    );
    let echo = topo.add_server(
        "echo",
        BladeSpec::rtl_single_core(programs::echo_responder(PINGS)),
    );
    topo.add_downlinks(tor, [pinger, echo])
        .expect("fresh switch has free ports");
    for i in 0..2 {
        let idle = topo.add_server(
            format!("idle{i}"),
            BladeSpec::rtl_single_core(programs::boot_poweroff(100)),
        );
        topo.add_downlink(tor, idle)
            .expect("fresh switch has free ports");
    }
    let config = SimConfig {
        link_latency,
        ..SimConfig::default()
    };
    Ok((topo, config))
}

/// Streams the quickstart rack exactly like `quickstart --stream-out`
/// does (same meta, horizon, interval, stop-when-done) and returns the
/// raw NDJSON text.
fn quickstart_stream() -> String {
    let out = scratch_path("golden.ndjson");
    let (topo, config) = build_cluster("").expect("topology is valid");
    let mut sim = topo.build(config).expect("topology is valid");
    sim.enable_metrics();
    let writer = firesim_manager::StreamWriter::open(out.to_str().unwrap()).expect("open sink");
    let meta = firesim_manager::StreamMeta {
        run_id: None,
        spec: "quickstart".to_owned(),
        workers: 1,
        transport: None,
    };
    firesim_manager::run_streamed(
        &mut sim,
        writer,
        &meta,
        Cycle::new(2_000_000),
        100_000,
        true,
    )
    .expect("streamed run completes");
    let text = std::fs::read_to_string(&out).expect("stream file readable");
    let _ = std::fs::remove_file(&out);
    text
}

fn scratch_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("firesim-telemetry-{}-{name}", std::process::id()))
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/quickstart_stream.golden.ndjson")
}

/// Normalizes a whole stream: every line parsed, host fields zeroed,
/// re-serialized. Also validates the stream's shape (header first,
/// trailer last, every record well-formed).
fn normalize_stream(text: &str) -> String {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(lines.len() >= 2, "stream has header + trailer");
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        let rec = StreamRecord::parse(line).expect("every line parses");
        match (i, &rec) {
            (0, StreamRecord::RunStart(_)) => {}
            (0, other) => panic!("first record must be run_start, got {other:?}"),
            (i, StreamRecord::RunEnd(_)) if i + 1 == lines.len() => {}
            (i, StreamRecord::RunEnd(_)) => panic!("run_end mid-stream at line {i}"),
            (_, StreamRecord::RunStart(_)) => panic!("duplicate run_start"),
            _ => {}
        }
        out.push_str(&firesim_manager::stream::normalize_line(line).expect("normalizes"));
        out.push('\n');
    }
    assert!(
        matches!(
            StreamRecord::parse(lines[lines.len() - 1]).unwrap(),
            StreamRecord::RunEnd(_)
        ),
        "last record must be run_end"
    );
    out
}

/// Contract 1: the normalized quickstart stream matches the committed
/// golden fixture byte for byte.
fn golden_fixture() {
    let normalized = normalize_stream(&quickstart_stream());
    let path = fixture_path();
    if std::env::var("FIRESIM_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixture dir");
        std::fs::write(&path, &normalized).expect("bless fixture");
        println!("blessed {} ({} bytes)", path.display(), normalized.len());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with FIRESIM_BLESS=1 to create it",
            path.display()
        )
    });
    if normalized != golden {
        for (i, (got, want)) in normalized.lines().zip(golden.lines()).enumerate() {
            if got != want {
                panic!(
                    "stream diverges from golden fixture at line {}:\n  got:  {got}\n  want: {want}\n\
                     (if the change is intentional, rebless with FIRESIM_BLESS=1)",
                    i + 1
                );
            }
        }
        panic!(
            "stream length differs from golden fixture: {} vs {} lines \
             (if intentional, rebless with FIRESIM_BLESS=1)",
            normalized.lines().count(),
            golden.lines().count()
        );
    }
    // The determinism half of the contract: a second streamed run
    // normalizes to the same bytes.
    assert_eq!(
        normalize_stream(&quickstart_stream()),
        golden,
        "normalized stream is not reproducible within one host"
    );
}

const CYCLES: u64 = 500_000;

fn run_once(
    workers: usize,
    transport: TransportChoice,
    stream: Option<PathBuf>,
) -> (Vec<(String, u64)>, u64, Option<String>) {
    let mut cfg = PartitionConfig::new(workers, Cycle::new(CYCLES), String::new());
    cfg.transport = transport;
    let stream_path = stream.clone();
    cfg.stream = stream.map(|p| p.to_str().unwrap().to_owned());
    cfg.stream_interval = Some(100_000);
    let run = run_partitioned(build_cluster, &cfg)
        .unwrap_or_else(|report| panic!("{workers}w {transport:?} failed: {report}"));
    let text = stream_path.map(|p| {
        let text = std::fs::read_to_string(&p).expect("stream file written");
        let _ = std::fs::remove_file(&p);
        text
    });
    (run.digests, run.combined_digest, text)
}

/// Contract 2: streaming never changes what is simulated — digests are
/// identical with streaming on/off, across worker counts and transports.
fn stream_is_invisible() {
    let (base_digests, base_combined, _) = run_once(1, TransportChoice::Shm, None);
    assert!(base_digests.len() >= 4, "every agent digested");

    let mut cases: Vec<(usize, TransportChoice)> = vec![
        (1, TransportChoice::Shm),
        (2, TransportChoice::Shm),
        (4, TransportChoice::Shm),
        (2, TransportChoice::Tcp),
        (2, TransportChoice::Unix),
        (4, TransportChoice::Tcp),
        (4, TransportChoice::Unix),
    ];
    // Unstreamed baselines at 2/4 workers guard the off side too.
    for (workers, transport) in [(2, TransportChoice::Shm), (4, TransportChoice::Shm)] {
        let (digests, combined, _) = run_once(workers, transport, None);
        assert_eq!(
            base_digests, digests,
            "{workers}w off-stream digests differ"
        );
        assert_eq!(
            base_combined, combined,
            "{workers}w off-stream combined differs"
        );
    }
    for (i, (workers, transport)) in cases.drain(..).enumerate() {
        let path = scratch_path(&format!("invisible-{i}.ndjson"));
        let (digests, combined, text) = run_once(workers, transport, Some(path));
        assert_eq!(
            base_digests, digests,
            "{workers}w {transport:?} streamed digests differ from unstreamed monolithic"
        );
        assert_eq!(
            base_combined, combined,
            "{workers}w {transport:?} streamed combined digest differs"
        );
        let text = text.expect("stream requested");
        let records: Vec<StreamRecord> = text
            .lines()
            .map(|l| StreamRecord::parse(l).expect("valid record"))
            .collect();
        assert!(
            matches!(records.first(), Some(StreamRecord::RunStart(_))),
            "stream starts with run_start"
        );
        assert!(
            matches!(records.last(), Some(StreamRecord::RunEnd(_))),
            "stream ends with run_end"
        );
        if workers == 1 {
            assert!(
                records
                    .iter()
                    .any(|r| matches!(r, StreamRecord::Interval(_))),
                "single-worker streams carry interval records"
            );
        } else {
            // Fleet parents stream merge points: one spawn and one exit
            // per worker.
            let spawns = records
                .iter()
                .filter(|r| matches!(r, StreamRecord::Event(e) if e.kind == "worker_spawn"))
                .count();
            let exits = records
                .iter()
                .filter(|r| matches!(r, StreamRecord::Event(e) if e.kind == "worker_exit"))
                .count();
            assert_eq!(spawns, workers, "one worker_spawn per shard");
            assert_eq!(exits, workers, "one worker_exit per shard");
        }
        println!("ok - stream_is_invisible {workers}w {transport:?}");
    }
}

/// The ≤5% overhead guard (PR-3 methodology): interleaved off/on
/// samples, reduced by minimum so shared-runner noise cancels. Runs
/// only under FIRESIM_OVERHEAD_GUARD=1 (the CI telemetry job, release
/// profile) — wall-clock assertions are too flaky for the default
/// debug test run.
fn overhead_guard() {
    let run_wall = |stream: Option<PathBuf>| -> std::time::Duration {
        let mut cfg = PartitionConfig::new(1, Cycle::new(2_000_000), String::new());
        cfg.stream = stream.map(|p| p.to_str().unwrap().to_owned());
        cfg.stream_interval = Some(100_000);
        let run = run_partitioned(build_cluster, &cfg).expect("run succeeds");
        run.wall
    };
    let mut plain = std::time::Duration::MAX;
    let mut streamed = std::time::Duration::MAX;
    for i in 0..5 {
        plain = plain.min(run_wall(None));
        streamed = streamed.min(run_wall(Some(scratch_path(&format!("guard-{i}.ndjson")))));
    }
    let ratio = streamed.as_secs_f64() / plain.as_secs_f64().max(1e-9);
    println!("overhead guard: plain {plain:?}, streamed {streamed:?}, ratio {ratio:.3}");
    // 5% target with a small absolute floor so micro-runs on busy
    // runners don't trip on scheduler jitter alone.
    assert!(
        streamed <= plain.mul_f64(1.05) + std::time::Duration::from_millis(20),
        "streaming overhead {ratio:.3}x exceeds the 5% budget"
    );
}

fn main() {
    // Worker processes re-exec this binary with shard assignments in the
    // environment; this call never returns for them.
    if maybe_worker(build_cluster) {
        return;
    }

    golden_fixture();
    println!("ok - golden_fixture");
    stream_is_invisible();
    println!("ok - stream_is_invisible");
    if std::env::var("FIRESIM_OVERHEAD_GUARD").is_ok() {
        overhead_guard();
        println!("ok - overhead_guard");
    } else {
        println!("skip - overhead_guard (set FIRESIM_OVERHEAD_GUARD=1)");
    }
    println!("telemetry: all checks passed");
}
