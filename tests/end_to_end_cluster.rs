//! End-to-end integration: heterogeneous clusters where cycle-exact RTL
//! blades and behavioural (modeled) blades share one network — the
//! paper's "arbitrary RTL and/or abstract models" flexibility claim.

use bytes::Bytes;
use firesim_blade::model::{Actions, NodeApp, OsConfig};
use firesim_blade::programs;
use firesim_core::{Cycle, Frequency};
use firesim_manager::{BladeSpec, SimConfig, Topology};
use firesim_net::{EtherType, EthernetFrame, MacAddr};

/// A modeled node that answers echo requests after a fixed software
/// delay, compatible with the bare-metal `ping_sender` wire format.
struct ModelEcho {
    mac: MacAddr,
    stack_cycles: u64,
    pending: Vec<EthernetFrame>,
    replies: u64,
    limit: u64,
}

impl NodeApp for ModelEcho {
    fn on_frame(&mut self, _cycle: u64, frame: &EthernetFrame, out: &mut Actions) {
        if frame.ethertype != EtherType::Echo {
            return;
        }
        self.pending.push(frame.clone());
        out.work_on(0, self.stack_cycles, self.pending.len() as u64 - 1);
    }

    fn on_work_done(&mut self, cycle: u64, tag: u64, out: &mut Actions) {
        let req = &self.pending[tag as usize];
        // Reply: swap MACs, flip the kind byte (payload[0] = 1).
        let mut payload = req.payload.to_vec();
        if !payload.is_empty() {
            payload[0] = 1;
        }
        out.send_at(
            cycle,
            EthernetFrame::new(req.src, self.mac, EtherType::Echo, Bytes::from(payload)),
        );
        self.replies += 1;
        if self.replies >= self.limit {
            out.stop = true;
        }
    }

    fn poll(&mut self, _f: u64, _t: u64, _o: &mut Actions) {}
}

/// An RTL blade pings a *modeled* node across two switches; the modeled
/// node's configurable stack delay shows up, cycle-exactly, in the RTL
/// node's measured RTT.
#[test]
fn rtl_pings_modeled_node_across_switches() {
    let clock = Frequency::GHZ_3_2;
    let pings = 3;
    let stack = 32_000u64; // 10 us modeled software stack

    let mut rtts = Vec::new();
    for stack_cycles in [stack, 2 * stack] {
        let mut topo = Topology::new();
        let root = topo.add_switch("root");
        let tor0 = topo.add_switch("tor0");
        let tor1 = topo.add_switch("tor1");
        topo.add_downlinks(root, [tor0, tor1]).unwrap();
        let pinger = topo.add_server(
            "pinger",
            BladeSpec::rtl_single_core(programs::ping_sender(
                MacAddr::from_node_index(0),
                MacAddr::from_node_index(1),
                pings,
                56,
                clock.cycles_from_micros(30).as_u64(),
            )),
        );
        let responder = topo.add_server(
            "linux-echo",
            BladeSpec::model(
                OsConfig {
                    cores: 1,
                    ctx_switch_cycles: 0,
                    misplace_prob: 0.0,
                    ..OsConfig::default()
                },
                1,
                true,
                move |mac, _| {
                    Box::new(ModelEcho {
                        mac,
                        stack_cycles,
                        pending: Vec::new(),
                        replies: 0,
                        limit: pings as u64,
                    })
                },
            ),
        );
        topo.add_downlink(tor0, pinger).unwrap();
        topo.add_downlink(tor1, responder).unwrap();

        let mut sim = topo
            .build(SimConfig {
                link_latency: Cycle::new(1_600), // 0.5 us
                ..SimConfig::default()
            })
            .expect("valid topology");
        sim.run_until_done(Cycle::new(200_000_000)).expect("runs");

        let probe = sim.servers()[0].probe.as_ref().expect("rtl");
        let p = probe.lock();
        assert_eq!(p.exit_code, Some(0));
        let rtt = u64::from_le_bytes(p.mailbox[8..16].try_into().unwrap());
        // RTT must cover 8 link crossings + the modeled stack.
        assert!(rtt > 8 * 1_600 + stack_cycles, "rtt {rtt}");
        rtts.push(rtt);
    }
    // Doubling the modeled stack delay adds exactly that delay to the
    // RTL-measured RTT (cycle-exact co-simulation of the two worlds).
    let delta = rtts[1] as i64 - rtts[0] as i64;
    assert!(
        (delta - stack as i64).abs() <= 16,
        "delta {delta}, expected ~{stack}"
    );
}

/// The manager assigns MACs/IPs in topology order and populates switch
/// tables such that any pair can communicate (checked via NIC counters).
#[test]
fn sixty_four_node_tree_all_pairs_routable() {
    // Build the paper's 64-node example (Fig 1) with idle RTL nodes,
    // plus one pinger/echo pair placed at maximum distance.
    let clock = Frequency::GHZ_3_2;
    let mut topo = Topology::new();
    let root = topo.add_switch("root");
    let pings = 2;
    for x in 0..8 {
        let tor = topo.add_switch(format!("tor{x}"));
        topo.add_downlink(root, tor).unwrap();
        for y in 0..8 {
            let idx = (x * 8 + y) as u64;
            let spec = if idx == 0 {
                BladeSpec::rtl_single_core(programs::ping_sender(
                    MacAddr::from_node_index(0),
                    MacAddr::from_node_index(63),
                    pings,
                    26,
                    clock.cycles_from_micros(30).as_u64(),
                ))
            } else if idx == 63 {
                BladeSpec::rtl_single_core(programs::echo_responder(pings))
            } else {
                BladeSpec::rtl_single_core(programs::boot_poweroff(5))
            };
            let node = topo.add_server(format!("node{x}_{y}"), spec);
            topo.add_downlink(tor, node).unwrap();
        }
    }
    assert_eq!(topo.server_count(), 64);

    let mut sim = topo
        .build(SimConfig {
            link_latency: Cycle::new(1_600),
            supernode: true, // 64 blades -> 16 supernodes
            ..SimConfig::default()
        })
        .expect("valid topology");
    assert_eq!(sim.plan().fpgas, 16);
    sim.run_until_done(Cycle::new(400_000_000)).expect("runs");

    let probe = sim.servers()[0].probe.as_ref().expect("rtl");
    let p = probe.lock();
    assert_eq!(p.exit_code, Some(0), "pinger did not complete");
    let rtt = u64::from_le_bytes(p.mailbox[8..16].try_into().unwrap());
    // node0 -> tor0 -> root -> tor7 -> node63: 8 crossings round trip.
    assert!(rtt > 8 * 1_600, "rtt {rtt}");
    // ToR 0 and ToR 7 each forwarded the ping traffic; intermediate
    // switches saw it too.
    let forwarded: u64 = sim
        .switch_stats()
        .iter()
        .map(|(_, s)| s.lock().frames_forwarded)
        .sum();
    assert!(forwarded >= 3 * 2 * pings as u64, "forwarded {forwarded}");
}

/// UART output and exit codes propagate from simulated software to the
/// host probe (the manager's "collect result files" job path).
#[test]
fn uart_and_exit_codes_flow_to_probes() {
    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let a = topo.add_server("a", BladeSpec::rtl_single_core(programs::boot_poweroff(50)));
    let b = topo.add_server(
        "b",
        BladeSpec::rtl_single_core(programs::boot_poweroff(500)),
    );
    topo.add_downlinks(tor, [a, b]).unwrap();
    let mut sim = topo.build(SimConfig::default()).expect("valid topology");
    let summary = sim.run_until_done(Cycle::new(100_000_000)).expect("runs");
    assert!(summary.cycles < Cycle::new(100_000_000), "stopped early");
    for server in sim.servers() {
        let p = server.probe.as_ref().expect("rtl").lock();
        assert_eq!(p.exit_code, Some(0), "{} did not power off", server.name);
        assert!(p.retired > 0);
    }
}
