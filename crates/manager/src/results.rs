//! Experiment result recording.
//!
//! The paper's manager "automatically collects result files and
//! host/target-level measurements for analysis outside the simulation".
//! [`ResultStore`] is that mechanism here: each experiment appends an
//! [`ExperimentRecord`] (id, parameters, result rows) and the store
//! round-trips through JSON so the benchmark harness can regenerate the
//! EXPERIMENTS.md tables.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use serde_json::Value;

/// One experiment's parameters and results.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `"fig5"` or `"table3"`.
    pub id: String,
    /// Free-form parameters (latency, node count, ...).
    pub params: BTreeMap<String, serde_json::Value>,
    /// Result rows; each row is a map of column name to value.
    pub rows: Vec<BTreeMap<String, serde_json::Value>>,
}

impl ExperimentRecord {
    /// Creates an empty record.
    pub fn new(id: impl Into<String>) -> Self {
        ExperimentRecord {
            id: id.into(),
            params: BTreeMap::new(),
            rows: Vec::new(),
        }
    }

    /// Sets a parameter.
    pub fn param(
        &mut self,
        key: impl Into<String>,
        value: impl Into<serde_json::Value>,
    ) -> &mut Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Appends a result row from `(column, value)` pairs.
    pub fn push_row<K, V>(&mut self, cells: impl IntoIterator<Item = (K, V)>)
    where
        K: Into<String>,
        V: Into<serde_json::Value>,
    {
        self.rows.push(
            cells
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        );
    }
}

/// A collection of experiment records, persisted as JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultStore {
    /// All records, in insertion order.
    pub records: Vec<ExperimentRecord>,
}

fn map_to_value(map: &BTreeMap<String, Value>) -> Value {
    Value::Object(map.clone())
}

fn value_to_map(v: &Value, what: &str) -> Result<BTreeMap<String, Value>, serde_json::Error> {
    v.as_object()
        .cloned()
        .ok_or_else(|| serde_json::Error::custom(format!("{what} must be a JSON object")))
}

impl ExperimentRecord {
    fn to_value(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("id".to_owned(), Value::from(self.id.as_str()));
        obj.insert("params".to_owned(), map_to_value(&self.params));
        obj.insert(
            "rows".to_owned(),
            Value::Array(self.rows.iter().map(map_to_value).collect()),
        );
        Value::Object(obj)
    }

    fn from_value(v: &Value) -> Result<Self, serde_json::Error> {
        let obj = value_to_map(v, "record")?;
        let id = obj
            .get("id")
            .and_then(|v| v.as_str())
            .ok_or_else(|| serde_json::Error::custom("record missing string field `id`"))?
            .to_owned();
        let params = match obj.get("params") {
            Some(p) => value_to_map(p, "`params`")?,
            None => BTreeMap::new(),
        };
        let rows = match obj.get("rows") {
            Some(Value::Array(rows)) => rows
                .iter()
                .map(|r| value_to_map(r, "result row"))
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(serde_json::Error::custom("`rows` must be an array")),
            None => Vec::new(),
        };
        Ok(ExperimentRecord { id, params, rows })
    }
}

impl ResultStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a record (replacing any previous record with the same id).
    pub fn put(&mut self, record: ExperimentRecord) {
        self.records.retain(|r| r.id != record.id);
        self.records.push(record);
    }

    /// Looks up a record by id.
    pub fn get(&self, id: &str) -> Option<&ExperimentRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut obj = BTreeMap::new();
        obj.insert(
            "records".to_owned(),
            Value::Array(
                self.records
                    .iter()
                    .map(ExperimentRecord::to_value)
                    .collect(),
            ),
        );
        Value::Object(obj).to_string_pretty()
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns a parse error for malformed input or an unexpected shape.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let v = serde_json::from_str(s)?;
        let obj = value_to_map(&v, "result store")?;
        let records = match obj.get("records") {
            Some(Value::Array(records)) => records
                .iter()
                .map(ExperimentRecord::from_value)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(serde_json::Error::custom("`records` must be an array")),
            None => Vec::new(),
        };
        Ok(ResultStore { records })
    }

    /// Saves to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Loads from a file, or returns an empty store if it doesn't exist.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "not found", and JSON errors.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        match fs::read_to_string(path) {
            Ok(s) => Self::from_json(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_building() {
        let mut r = ExperimentRecord::new("fig5");
        r.param("nodes", 8).param("payload", 26);
        r.push_row([("latency_us", 2.0), ("rtt_us", 10.5)]);
        r.push_row([("latency_us", 4.0), ("rtt_us", 18.6)]);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.params["nodes"], 8);
    }

    #[test]
    fn store_round_trips_json() {
        let mut store = ResultStore::new();
        let mut r = ExperimentRecord::new("fig9");
        r.push_row([("latency", 6400)]);
        store.put(r.clone());
        let json = store.to_json();
        let back = ResultStore::from_json(&json).unwrap();
        assert_eq!(back, store);
        assert_eq!(back.get("fig9"), Some(&r));
        assert_eq!(back.get("nope"), None);
    }

    #[test]
    fn put_replaces_same_id() {
        let mut store = ResultStore::new();
        store.put(ExperimentRecord::new("x"));
        let mut newer = ExperimentRecord::new("x");
        newer.param("v", 2);
        store.put(newer);
        assert_eq!(store.records.len(), 1);
        assert_eq!(store.get("x").unwrap().params["v"], 2);
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("firesim_results_test");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("results.json");
        let mut store = ResultStore::new();
        store.put(ExperimentRecord::new("t"));
        store.save(&path).unwrap();
        let back = ResultStore::load(&path).unwrap();
        assert_eq!(back, store);
        let missing = ResultStore::load(dir.join("missing.json")).unwrap();
        assert!(missing.records.is_empty());
        let _ = fs::remove_file(path);
    }
}
