//! Supervised simulation runs: watchdog, deadline, and checkpoint-based
//! retry.
//!
//! A multi-hour scale-out simulation must survive the host misbehaving:
//! a model wedges (no token progress), a worker thread dies, a channel
//! tears. [`Simulation::run_supervised`] wraps the raw engine run loop
//! with the robustness layer a long campaign needs:
//!
//! * the run is split into **checkpoint intervals** — after each interval
//!   a full engine snapshot (every agent, every in-flight link token) is
//!   kept in memory as the retry baseline;
//! * a **watchdog thread** polls the engine's progress probe; if the
//!   total completed-window count stops moving for longer than the stall
//!   timeout, it aborts the run and names the slowest agent (with token
//!   flow control, the agent with the fewest completed windows is the one
//!   everyone else is blocked on);
//! * an optional **wall-clock deadline** bounds the whole call;
//! * on failure, the supervisor **retries from the last checkpoint** with
//!   backoff, up to a bounded number of attempts. One-shot injected
//!   faults ([`FaultPlan`](firesim_core::FaultPlan)) keep their fired
//!   flags across the restore, so a transient host fault fires once and
//!   the retry sails past it — producing results bit-identical to a
//!   fault-free run.
//!
//! When retries are exhausted (or impossible), the failure surfaces as a
//! [`FailureReport`]: the underlying [`SimError`], the failing agent and
//! cycle when known, the last checkpoint cycle, and the provenance of
//! every injected fault that fired.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use firesim_core::{
    AbortHandle, Cycle, EngineCheckpoint, FaultRecord, ProgressProbe, SimError, SpanTracer,
    TraceEvent,
};
use firesim_net::Flit;

use crate::simulation::Simulation;

/// Tuning for [`Simulation::run_supervised`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Target cycles between checkpoints (rounded up to whole windows by
    /// the engine). Smaller intervals mean less lost work per retry but
    /// more snapshot overhead.
    pub checkpoint_every: Cycle,
    /// Abort the run when no agent completes a window for this long.
    pub stall_timeout: Duration,
    /// Overall wall-clock budget for the call, if any. A deadline abort
    /// is terminal — it is never retried.
    pub deadline: Option<Duration>,
    /// How many times to retry from the last checkpoint before giving up.
    pub max_retries: u32,
    /// Sleep between a failure and the retry, scaled linearly by attempt
    /// number (first retry waits `1 x`, second `2 x`, ...).
    pub retry_backoff: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            checkpoint_every: Cycle::new(100_000),
            stall_timeout: Duration::from_secs(10),
            deadline: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(50),
        }
    }
}

/// Outcome of a successful [`Simulation::run_supervised`] call.
#[derive(Debug, Clone)]
pub struct SupervisedRun {
    /// Net target cycles advanced (replayed cycles are not double-counted).
    pub cycles: Cycle,
    /// Total host wall-clock time, including retries and backoff.
    pub wall: Duration,
    /// True when every agent reported done before the cycle budget ran out.
    pub done: bool,
    /// Checkpoints taken (including the initial baseline).
    pub checkpoints: u64,
    /// Failures recovered by restoring the last checkpoint.
    pub retries: u32,
    /// Provenance of injected faults that fired, in firing order.
    pub injected_faults: Vec<FaultRecord>,
}

/// Everything known about a supervised run that could not be completed.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The final error, after any retries.
    pub error: SimError,
    /// The agent the failure points at, when the error names one (the
    /// panicking agent, the agent whose channel broke, or the stalled
    /// agent the watchdog identified).
    pub failing_agent: Option<String>,
    /// Target cycle of the failure: the panic cycle when known, otherwise
    /// the last completed window boundary.
    pub fail_cycle: u64,
    /// Cycle of the last good checkpoint, if one was taken.
    pub last_checkpoint: Option<Cycle>,
    /// Failed attempts, counting the final one.
    pub attempts: u32,
    /// Provenance of injected faults that fired, in firing order.
    pub injected_faults: Vec<FaultRecord>,
    /// True when the watchdog tripped on lack of progress.
    pub stalled: bool,
    /// True when the wall-clock deadline expired.
    pub deadline_exceeded: bool,
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation failed after {} attempt(s): {}",
            self.attempts, self.error
        )?;
        if let Some(agent) = &self.failing_agent {
            write!(f, "; failing agent {agent} at cycle {}", self.fail_cycle)?;
        }
        match self.last_checkpoint {
            Some(cp) => write!(f, "; last checkpoint at {cp}")?,
            None => write!(f, "; no checkpoint available")?,
        }
        if self.stalled {
            write!(f, "; watchdog detected a stall")?;
        }
        if self.deadline_exceeded {
            write!(f, "; wall-clock deadline exceeded")?;
        }
        if !self.injected_faults.is_empty() {
            write!(f, "; injected faults:")?;
            for rec in &self.injected_faults {
                write!(f, " [{} @{}: {}]", rec.agent, rec.cycle, rec.description)?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for FailureReport {}

/// Why the watchdog aborted a run.
#[derive(Debug, Clone)]
enum WatchdogTrip {
    /// No progress for the stall timeout; names the slowest agent.
    Stalled { agent: Option<String> },
    /// The wall-clock deadline passed.
    Deadline,
}

/// A per-run watchdog thread polling the progress probe.
struct Watchdog {
    stop: Arc<AtomicBool>,
    verdict: Arc<parking_lot::Mutex<Option<WatchdogTrip>>>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    fn spawn(
        probe: ProgressProbe,
        abort: AbortHandle,
        stall_timeout: Duration,
        deadline_at: Option<Instant>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let verdict = Arc::new(parking_lot::Mutex::new(None));
        let poll = (stall_timeout / 8).clamp(Duration::from_millis(1), Duration::from_millis(25));
        let handle = {
            let stop = Arc::clone(&stop);
            let verdict = Arc::clone(&verdict);
            std::thread::spawn(move || {
                let mut last_steps = probe.total_steps();
                let mut last_change = Instant::now();
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(poll);
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let Some(at) = deadline_at {
                        if Instant::now() >= at {
                            *verdict.lock() = Some(WatchdogTrip::Deadline);
                            abort.abort("wall-clock deadline exceeded");
                            break;
                        }
                    }
                    let steps = probe.total_steps();
                    if steps != last_steps {
                        last_steps = steps;
                        last_change = Instant::now();
                    } else if last_change.elapsed() >= stall_timeout {
                        let slowest = probe.slowest_agent();
                        let reason = match &slowest {
                            Some((name, windows)) => format!(
                                "watchdog: no progress for {stall_timeout:?}; \
                                 slowest agent {name} stuck at {windows} windows"
                            ),
                            None => format!("watchdog: no progress for {stall_timeout:?}"),
                        };
                        *verdict.lock() = Some(WatchdogTrip::Stalled {
                            agent: slowest.map(|(name, _)| name),
                        });
                        abort.abort(reason);
                        break;
                    }
                }
            })
        };
        Watchdog {
            stop,
            verdict,
            handle: Some(handle),
        }
    }

    /// Stops the watchdog and returns its verdict, if it tripped.
    fn finish(mut self) -> Option<WatchdogTrip> {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.verdict.lock().take()
    }
}

/// Reserved trace track for supervisor-level spans (workers use their
/// worker index; the supervisor gets its own lane in the trace viewer).
const SUPERVISOR_TRACK: u32 = 1000;

/// Records one completed supervisor span when tracing is enabled and a
/// start timestamp was taken.
fn supervisor_span(
    tracer: &Option<Arc<SpanTracer>>,
    name: &'static str,
    start_ns: Option<u64>,
    cycle: u64,
) {
    if let (Some(t), Some(start_ns)) = (tracer, start_ns) {
        let end = t.now_ns();
        t.record(TraceEvent {
            name: name.to_owned(),
            cat: "supervisor",
            tid: SUPERVISOR_TRACK,
            start_ns,
            dur_ns: end.saturating_sub(start_ns),
            args: vec![("cycle", cycle)],
        });
    }
}

/// Which agent and cycle an error points at.
fn failing_site(error: &SimError, fallback_cycle: u64) -> (Option<String>, u64) {
    match error {
        SimError::AgentPanicked { agent, cycle, .. } => (Some(agent.clone()), *cycle),
        SimError::Agent { agent, .. } | SimError::ChannelClosed { agent } => {
            (Some(agent.clone()), fallback_cycle)
        }
        _ => (None, fallback_cycle),
    }
}

impl Simulation {
    /// Runs until every blade reports done (or `max` target cycles), under
    /// supervision: progress watchdog, optional wall-clock deadline, and
    /// bounded retry from the last in-memory checkpoint.
    ///
    /// The initial checkpoint doubles as the retry baseline. Topologies
    /// whose agents do not all support checkpointing are still supervised
    /// (watchdog and deadline apply) but cannot be retried — their first
    /// failure is terminal.
    ///
    /// # Errors
    ///
    /// Returns a [`FailureReport`] when the run could not be completed:
    /// retries exhausted, watchdog deadline expired, or a failure with no
    /// checkpoint to retry from.
    pub fn run_supervised(
        &mut self,
        max: Cycle,
        cfg: &SupervisorConfig,
    ) -> Result<SupervisedRun, Box<FailureReport>> {
        let t0 = Instant::now();
        let deadline_at = cfg.deadline.map(|d| t0 + d);
        let start_cycle = self.now();
        let end_cycle = start_cycle + max;
        let probe = self.progress_probe();
        let abort = self.abort_handle();
        let tracer = self.engine_mut().tracer().cloned();
        if let Some(t) = &tracer {
            t.name_thread(SUPERVISOR_TRACK, "supervisor");
        }

        let mut attempts = 0u32;
        let mut checkpoints = 0u64;
        let mut last_cp: Option<EngineCheckpoint<Flit>> = None;

        let report = |sim: &Simulation,
                      error: SimError,
                      attempts: u32,
                      last_cp: &Option<EngineCheckpoint<Flit>>,
                      trip: Option<WatchdogTrip>| {
            let (mut failing_agent, fail_cycle) = failing_site(&error, sim.now().as_u64());
            let (mut stalled, mut deadline_exceeded) = (false, false);
            match trip {
                Some(WatchdogTrip::Stalled { agent }) => {
                    stalled = true;
                    failing_agent = failing_agent.or(agent);
                }
                Some(WatchdogTrip::Deadline) => deadline_exceeded = true,
                None => {}
            }
            Box::new(FailureReport {
                error,
                failing_agent,
                fail_cycle,
                last_checkpoint: last_cp.as_ref().map(EngineCheckpoint::now),
                attempts,
                injected_faults: sim.fault_records(),
                stalled,
                deadline_exceeded,
            })
        };

        // Baseline checkpoint. A topology that cannot checkpoint is run
        // without a retry path rather than rejected outright.
        let cp_t0 = tracer.as_ref().map(|t| t.now_ns());
        match self.checkpoint() {
            Ok(cp) => {
                last_cp = Some(cp);
                checkpoints += 1;
                supervisor_span(&tracer, "checkpoint", cp_t0, self.now().as_u64());
            }
            Err(SimError::Checkpoint { .. }) => {}
            Err(e) => return Err(report(self, e, attempts, &last_cp, None)),
        }

        let mut done = false;
        while self.now() < end_cycle {
            let remaining = end_cycle - self.now();
            let chunk = remaining.min(cfg.checkpoint_every).max(Cycle::new(1));
            let wd = Watchdog::spawn(probe.clone(), abort.clone(), cfg.stall_timeout, deadline_at);
            let burst_t0 = tracer.as_ref().map(|t| t.now_ns());
            let result = self.run_until_done(chunk);
            supervisor_span(&tracer, "burst", burst_t0, self.now().as_u64());
            let trip = wd.finish();
            match result {
                Ok(_summary) => {
                    // A chunk shorter than the engine's scheduler quantum
                    // always reports its full cycle budget, so completion
                    // cannot be inferred from the summary — ask the agents.
                    if self.all_done() {
                        done = true;
                    }
                    if last_cp.is_some() {
                        let cp_t0 = tracer.as_ref().map(|t| t.now_ns());
                        match self.checkpoint() {
                            Ok(cp) => {
                                last_cp = Some(cp);
                                checkpoints += 1;
                                supervisor_span(&tracer, "checkpoint", cp_t0, self.now().as_u64());
                            }
                            Err(e) => return Err(report(self, e, attempts, &last_cp, trip)),
                        }
                    }
                    if done {
                        break;
                    }
                }
                Err(e) => {
                    attempts += 1;
                    let terminal = matches!(trip, Some(WatchdogTrip::Deadline));
                    let Some(cp) = last_cp.as_ref() else {
                        return Err(report(self, e, attempts, &last_cp, trip));
                    };
                    if terminal || attempts > cfg.max_retries {
                        return Err(report(self, e, attempts, &last_cp, trip));
                    }
                    std::thread::sleep(cfg.retry_backoff * attempts);
                    let restore_t0 = tracer.as_ref().map(|t| t.now_ns());
                    if let Err(re) = self.restore(cp) {
                        return Err(report(self, re, attempts, &last_cp, trip));
                    }
                    supervisor_span(&tracer, "restore", restore_t0, self.now().as_u64());
                }
            }
        }

        Ok(SupervisedRun {
            cycles: self.now() - start_cycle,
            wall: t0.elapsed(),
            done,
            checkpoints,
            retries: attempts,
            injected_faults: self.fault_records(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimConfig;
    use crate::topology::{BladeSpec, Topology};
    use firesim_blade::programs;
    use firesim_core::FaultPlan;
    use firesim_net::MacAddr;

    const MAX: Cycle = Cycle::new(20_000_000);

    /// Sender and responder under one ToR switch, 200-cycle links.
    fn build_sim(host_threads: usize) -> Simulation {
        let count = 2;
        let mut topo = Topology::new();
        let tor = topo.add_switch("tor0");
        let sender = topo.add_server(
            "sender",
            BladeSpec::rtl_single_core(programs::ping_sender(
                MacAddr::from_node_index(0),
                MacAddr::from_node_index(1),
                count,
                26,
                10_000,
            )),
        );
        let responder = topo.add_server(
            "responder",
            BladeSpec::rtl_single_core(programs::echo_responder(count)),
        );
        topo.add_downlink(tor, sender).unwrap();
        topo.add_downlink(tor, responder).unwrap();
        topo.build(SimConfig {
            link_latency: Cycle::new(200),
            host_threads,
            ..SimConfig::default()
        })
        .unwrap()
    }

    fn probe_results(sim: &Simulation) -> (Option<u8>, Vec<u8>, u64) {
        let probe = sim.servers()[0].probe.as_ref().unwrap();
        let p = probe.lock();
        (p.exit_code, p.mailbox.clone(), p.retired)
    }

    fn quick_cfg() -> SupervisorConfig {
        SupervisorConfig {
            checkpoint_every: Cycle::new(1_000),
            stall_timeout: Duration::from_secs(10),
            deadline: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
        }
    }

    /// Acceptance: an injected transient panic is survived by retrying
    /// from the last checkpoint, and the recovered run's results are
    /// identical to a fault-free run's.
    #[test]
    fn retries_past_transient_panic_with_identical_results() {
        let mut clean = build_sim(2);
        clean.run_until_done(MAX).unwrap();
        let reference = probe_results(&clean);
        assert_eq!(reference.0, Some(0), "reference run must succeed");

        let mut sim = build_sim(2);
        let mut plan = FaultPlan::new(7);
        plan.panic_at("sender", 3_000);
        sim.set_fault_plan(plan);
        let run = sim.run_supervised(MAX, &quick_cfg()).unwrap();
        assert!(run.done, "supervised run must finish");
        assert_eq!(run.retries, 1, "exactly one retry for a one-shot fault");
        assert_eq!(run.injected_faults.len(), 1);
        assert_eq!(run.injected_faults[0].agent, "sender");
        assert_eq!(probe_results(&sim), reference);
    }

    /// The channel-drop host fault is also transient: the restore brings
    /// the torn link back up with its checkpointed in-flight tokens.
    #[test]
    fn retries_past_injected_channel_drop() {
        let mut clean = build_sim(1);
        clean.run_until_done(MAX).unwrap();
        let reference = probe_results(&clean);

        let mut sim = build_sim(1);
        let mut plan = FaultPlan::new(3);
        plan.drop_channel("responder", 0, 2_600);
        sim.set_fault_plan(plan);
        let run = sim.run_supervised(MAX, &quick_cfg()).unwrap();
        assert!(run.done);
        assert!(run.retries >= 1);
        assert_eq!(probe_results(&sim), reference);
    }

    #[test]
    fn failure_report_names_panicking_agent_and_cycle() {
        let mut sim = build_sim(2);
        let mut plan = FaultPlan::new(1);
        plan.panic_at("sender", 2_000);
        sim.set_fault_plan(plan);
        let cfg = SupervisorConfig {
            max_retries: 0,
            ..quick_cfg()
        };
        let report = sim.run_supervised(MAX, &cfg).unwrap_err();
        assert!(
            matches!(&report.error, SimError::AgentPanicked { agent, .. } if agent == "sender"),
            "error: {}",
            report.error
        );
        assert_eq!(report.failing_agent.as_deref(), Some("sender"));
        assert_eq!(report.fail_cycle, 2_000, "panic fires at its window start");
        assert_eq!(report.attempts, 1);
        assert_eq!(report.last_checkpoint, Some(Cycle::new(2_000)));
        assert!(report
            .injected_faults
            .iter()
            .any(|rec| rec.agent == "sender" && rec.description.contains("panic")));
        let rendered = report.to_string();
        assert!(rendered.contains("sender"), "{rendered}");
        assert!(rendered.contains("2000"), "{rendered}");
    }

    /// A wedged worker (injected stall) trips the watchdog; the abort is
    /// retried from the checkpoint and the stall, being one-shot, is gone.
    #[test]
    fn watchdog_aborts_stall_then_recovers() {
        let mut sim = build_sim(2);
        let mut plan = FaultPlan::new(5);
        plan.stall_worker("responder", 2_500, 900);
        sim.set_fault_plan(plan);
        let cfg = SupervisorConfig {
            stall_timeout: Duration::from_millis(100),
            ..quick_cfg()
        };
        let run = sim.run_supervised(MAX, &cfg).unwrap();
        assert!(run.done);
        assert!(run.retries >= 1, "the watchdog abort must trigger a retry");
        let (exit, _, _) = probe_results(&sim);
        assert_eq!(exit, Some(0));
    }

    /// With tracing enabled the supervisor's bursts and checkpoints land
    /// on their own track in the exported Chrome trace.
    #[test]
    fn supervised_run_emits_supervisor_spans() {
        let mut sim = build_sim(1);
        let tracer = sim.enable_tracing();
        let run = sim.run_supervised(MAX, &quick_cfg()).unwrap();
        assert!(run.done);
        let json = tracer.export_chrome_trace();
        let v = serde_json::from_str(&json).expect("trace parses");
        let events = v
            .get("traceEvents")
            .and_then(serde_json::Value::as_array)
            .expect("traceEvents array")
            .clone();
        let supervisor: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(serde_json::Value::as_str) == Some("supervisor"))
            .collect();
        assert!(
            supervisor
                .iter()
                .any(|e| e.get("name").and_then(serde_json::Value::as_str) == Some("burst")),
            "burst span missing"
        );
        assert!(
            supervisor
                .iter()
                .any(|e| e.get("name").and_then(serde_json::Value::as_str) == Some("checkpoint")),
            "checkpoint span missing"
        );
        assert!(
            supervisor
                .iter()
                .all(|e| e.get("tid").and_then(serde_json::Value::as_u64) == Some(1000)),
            "supervisor spans on reserved track 1000"
        );
    }

    #[test]
    fn deadline_failure_is_terminal_and_reported() {
        let mut sim = build_sim(2);
        let mut plan = FaultPlan::new(9);
        plan.stall_worker("sender", 2_500, 800);
        sim.set_fault_plan(plan);
        let cfg = SupervisorConfig {
            stall_timeout: Duration::from_secs(30),
            deadline: Some(Duration::from_millis(100)),
            ..quick_cfg()
        };
        let report = sim.run_supervised(MAX, &cfg).unwrap_err();
        assert!(report.deadline_exceeded, "{report}");
        assert!(
            matches!(report.error, SimError::Aborted { .. }),
            "error: {}",
            report.error
        );
        assert_eq!(report.attempts, 1, "deadline aborts are never retried");
    }
}
