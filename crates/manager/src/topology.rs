//! Declarative datacenter topology (the paper's Fig 4 configuration).

use core::fmt;

use firesim_blade::model::{NodeApp, OsConfig};
use firesim_blade::programs::Program;
use firesim_blade::BladeConfig;
use firesim_net::MacAddr;

/// Identifier of a switch in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchId(pub(crate) usize);

/// Identifier of a server in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ServerId(pub(crate) usize);

/// Either endpoint type, for downlink targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// A switch.
    Switch(SwitchId),
    /// A server blade.
    Server(ServerId),
}

impl From<SwitchId> for NodeRef {
    fn from(s: SwitchId) -> Self {
        NodeRef::Switch(s)
    }
}

impl From<ServerId> for NodeRef {
    fn from(s: ServerId) -> Self {
        NodeRef::Server(s)
    }
}

/// Factory producing a node application given the node's MAC and index.
pub type AppFactory = Box<dyn FnOnce(MacAddr, usize) -> Box<dyn NodeApp> + Send>;

/// What kind of blade to instantiate for a server slot.
// The RTL variant carries a full BladeConfig inline; specs are built once
// per server at topology-construction time, so the size gap is harmless.
#[allow(clippy::large_enum_variant)]
pub enum BladeSpec {
    /// A cycle-exact RISC-V SoC running a bare-metal program.
    Rtl {
        /// Hardware configuration (Table I).
        config: BladeConfig,
        /// The program image and data.
        program: Program,
    },
    /// A behavioural node: OS model + application model.
    Model {
        /// Scheduler parameters.
        os: OsConfig,
        /// Thread slots in the OS model.
        threads: usize,
        /// Pin thread `i` to core `i % cores`.
        pinned: bool,
        /// Application constructor.
        app: AppFactory,
    },
}

impl BladeSpec {
    /// A single-core RTL blade with default sizing for fast simulation.
    pub fn rtl_single_core(program: Program) -> Self {
        BladeSpec::Rtl {
            config: BladeConfig::single_core().with_dram_bytes(4 << 20),
            program,
        }
    }

    /// The paper's quad-core RTL blade.
    pub fn rtl_quad_core(program: Program) -> Self {
        BladeSpec::Rtl {
            config: BladeConfig::quad_core().with_dram_bytes(4 << 20),
            program,
        }
    }

    /// A behavioural node.
    pub fn model(
        os: OsConfig,
        threads: usize,
        pinned: bool,
        app: impl FnOnce(MacAddr, usize) -> Box<dyn NodeApp> + Send + 'static,
    ) -> Self {
        BladeSpec::Model {
            os,
            threads,
            pinned,
            app: Box::new(app),
        }
    }
}

impl fmt::Debug for BladeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BladeSpec::Rtl { config, .. } => f
                .debug_struct("BladeSpec::Rtl")
                .field("cores", &config.cores)
                .finish_non_exhaustive(),
            BladeSpec::Model {
                os,
                threads,
                pinned,
                ..
            } => f
                .debug_struct("BladeSpec::Model")
                .field("cores", &os.cores)
                .field("threads", threads)
                .field("pinned", pinned)
                .finish_non_exhaustive(),
        }
    }
}

/// Errors constructing or validating a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A node was given two parents.
    AlreadyLinked {
        /// Description of the doubly-linked node.
        node: String,
    },
    /// The topology has no switches or no servers.
    Empty,
    /// Not exactly one root switch.
    Roots {
        /// Number of parentless switches found.
        count: usize,
    },
    /// A switch has no downlinks.
    DanglingSwitch {
        /// Name of the empty switch.
        name: String,
    },
    /// A server is not attached to any switch.
    OrphanServer {
        /// Name of the orphaned server.
        name: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::AlreadyLinked { node } => {
                write!(f, "node {node} already has an uplink")
            }
            TopologyError::Empty => write!(f, "topology needs at least one switch and server"),
            TopologyError::Roots { count } => {
                write!(f, "expected exactly one root switch, found {count}")
            }
            TopologyError::DanglingSwitch { name } => {
                write!(f, "switch {name} has no downlinks")
            }
            TopologyError::OrphanServer { name } => {
                write!(f, "server {name} is not attached to a switch")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

pub(crate) struct SwitchEntry {
    pub name: String,
    pub parent: Option<SwitchId>,
    pub children: Vec<NodeRef>,
}

pub(crate) struct ServerEntry {
    pub name: String,
    pub parent: Option<SwitchId>,
    pub spec: Option<BladeSpec>,
}

/// A tree-structured datacenter topology under construction.
///
/// Switches form the interior of the tree; servers are the leaves. See
/// the [crate docs](crate) for an example and [`Topology::build`] to turn
/// it into a running simulation.
pub struct Topology {
    pub(crate) switches: Vec<SwitchEntry>,
    pub(crate) servers: Vec<ServerEntry>,
}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Topology")
            .field("switches", &self.switches.len())
            .field("servers", &self.servers.len())
            .finish()
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology {
            switches: Vec::new(),
            servers: Vec::new(),
        }
    }

    /// Adds a switch.
    pub fn add_switch(&mut self, name: impl Into<String>) -> SwitchId {
        let id = SwitchId(self.switches.len());
        self.switches.push(SwitchEntry {
            name: name.into(),
            parent: None,
            children: Vec::new(),
        });
        id
    }

    /// Adds a server blade.
    pub fn add_server(&mut self, name: impl Into<String>, spec: BladeSpec) -> ServerId {
        let id = ServerId(self.servers.len());
        self.servers.push(ServerEntry {
            name: name.into(),
            parent: None,
            spec: Some(spec),
        });
        id
    }

    /// Connects `child` below `parent` (one link each way).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::AlreadyLinked`] if `child` already has a
    /// parent.
    pub fn add_downlink(
        &mut self,
        parent: SwitchId,
        child: impl Into<NodeRef>,
    ) -> Result<(), TopologyError> {
        let child = child.into();
        match child {
            NodeRef::Switch(s) => {
                if self.switches[s.0].parent.is_some() {
                    return Err(TopologyError::AlreadyLinked {
                        node: self.switches[s.0].name.clone(),
                    });
                }
                self.switches[s.0].parent = Some(parent);
            }
            NodeRef::Server(s) => {
                if self.servers[s.0].parent.is_some() {
                    return Err(TopologyError::AlreadyLinked {
                        node: self.servers[s.0].name.clone(),
                    });
                }
                self.servers[s.0].parent = Some(parent);
            }
        }
        self.switches[parent.0].children.push(child);
        Ok(())
    }

    /// Connects many children below `parent`.
    ///
    /// # Errors
    ///
    /// As for [`Topology::add_downlink`].
    pub fn add_downlinks<N: Into<NodeRef>>(
        &mut self,
        parent: SwitchId,
        children: impl IntoIterator<Item = N>,
    ) -> Result<(), TopologyError> {
        for c in children {
            self.add_downlink(parent, c)?;
        }
        Ok(())
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// The MAC address that will be assigned to a server.
    pub fn mac_of(&self, server: ServerId) -> MacAddr {
        MacAddr::from_node_index(server.0 as u64)
    }

    /// The IP address string that will be assigned to a server
    /// (informational; the simulated protocols address by MAC).
    pub fn ip_of(&self, server: ServerId) -> String {
        let i = server.0 as u32;
        format!(
            "10.{}.{}.{}",
            (i >> 16) & 0xff,
            (i >> 8) & 0xff,
            (i & 0xff) + 1
        )
    }

    /// Validates the tree: exactly one root switch, no dangling switches
    /// or orphan servers.
    ///
    /// # Errors
    ///
    /// Returns the first [`TopologyError`] found.
    pub fn validate(&self) -> Result<SwitchId, TopologyError> {
        if self.switches.is_empty() || self.servers.is_empty() {
            return Err(TopologyError::Empty);
        }
        let roots: Vec<usize> = self
            .switches
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent.is_none())
            .map(|(i, _)| i)
            .collect();
        if roots.len() != 1 {
            return Err(TopologyError::Roots { count: roots.len() });
        }
        for s in &self.switches {
            if s.children.is_empty() {
                return Err(TopologyError::DanglingSwitch {
                    name: s.name.clone(),
                });
            }
        }
        for s in &self.servers {
            if s.parent.is_none() {
                return Err(TopologyError::OrphanServer {
                    name: s.name.clone(),
                });
            }
        }
        Ok(SwitchId(roots[0]))
    }

    /// The neutral view of this topology that chaos scenarios compile
    /// against (see [`firesim_core::Scenario::compile`]): every node with
    /// its input-port count, every link with the input port it occupies at
    /// each end, and one group per switch labeled with the switch's name
    /// and containing the switch plus its entire subtree (so a `rack_down`
    /// event naming a ToR expands to every link the rack touches).
    ///
    /// Port numbering mirrors the wiring in [`Topology::build`]: a
    /// switch's downlinks occupy input ports `0..children` in child order
    /// and its uplink (when present) is the last port; servers receive on
    /// input port 0.
    pub fn scenario_topology(&self) -> firesim_core::ScenarioTopo {
        let mut topo = firesim_core::ScenarioTopo::new();
        for s in &self.servers {
            topo.add_agent(s.name.clone(), 1);
        }
        for s in &self.switches {
            topo.add_agent(
                s.name.clone(),
                s.children.len() + usize::from(s.parent.is_some()),
            );
        }
        for s in &self.switches {
            for (ci, child) in s.children.iter().enumerate() {
                match child {
                    NodeRef::Server(sv) => {
                        topo.add_link(s.name.clone(), ci, self.servers[sv.0].name.clone(), 0);
                    }
                    NodeRef::Switch(c) => {
                        let uplink = self.switches[c.0].children.len();
                        topo.add_link(s.name.clone(), ci, self.switches[c.0].name.clone(), uplink);
                    }
                }
            }
        }
        for (i, s) in self.switches.iter().enumerate() {
            topo.add_group(s.name.clone(), self.subtree_names(SwitchId(i)));
        }
        topo
    }

    /// All node names (switches and servers) in the subtree rooted at
    /// `switch`, including `switch` itself.
    fn subtree_names(&self, switch: SwitchId) -> Vec<String> {
        let mut out = Vec::new();
        let mut stack = vec![NodeRef::Switch(switch)];
        while let Some(n) = stack.pop() {
            match n {
                NodeRef::Switch(s) => {
                    out.push(self.switches[s.0].name.clone());
                    stack.extend(self.switches[s.0].children.iter().copied());
                }
                NodeRef::Server(s) => out.push(self.servers[s.0].name.clone()),
            }
        }
        out
    }

    /// All server MACs in the subtree rooted at `switch`.
    pub(crate) fn subtree_macs(&self, switch: SwitchId) -> Vec<MacAddr> {
        let mut out = Vec::new();
        let mut stack = vec![NodeRef::Switch(switch)];
        while let Some(n) = stack.pop() {
            match n {
                NodeRef::Switch(s) => stack.extend(self.switches[s.0].children.iter().copied()),
                NodeRef::Server(s) => out.push(self.mac_of(s)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firesim_blade::programs;

    fn spec() -> BladeSpec {
        BladeSpec::rtl_single_core(programs::boot_poweroff(1))
    }

    #[test]
    fn builds_the_paper_64_node_tree() {
        // Fig 1: one root, 8 ToRs, 8 nodes each.
        let mut t = Topology::new();
        let root = t.add_switch("root");
        for x in 0..8 {
            let tor = t.add_switch(format!("tor{x}"));
            t.add_downlink(root, tor).unwrap();
            for y in 0..8 {
                let n = t.add_server(format!("node{x}_{y}"), spec());
                t.add_downlink(tor, n).unwrap();
            }
        }
        assert_eq!(t.server_count(), 64);
        assert_eq!(t.switch_count(), 9);
        assert_eq!(t.validate().unwrap(), SwitchId(0));
        // Subtree membership: tor0 holds servers 0..8.
        let macs = t.subtree_macs(SwitchId(1));
        assert_eq!(macs.len(), 8);
        assert!(macs.contains(&MacAddr::from_node_index(0)));
        assert!(!macs.contains(&MacAddr::from_node_index(8)));
        // Root sees everyone.
        assert_eq!(t.subtree_macs(SwitchId(0)).len(), 64);
    }

    #[test]
    fn mac_and_ip_assignment() {
        let mut t = Topology::new();
        let tor = t.add_switch("tor");
        let a = t.add_server("a", spec());
        let b = t.add_server("b", spec());
        t.add_downlinks(tor, [a, b]).unwrap();
        assert_eq!(t.mac_of(a), MacAddr::from_node_index(0));
        assert_eq!(t.mac_of(b), MacAddr::from_node_index(1));
        assert_eq!(t.ip_of(a), "10.0.0.1");
        assert_eq!(t.ip_of(b), "10.0.0.2");
    }

    #[test]
    fn scenario_topology_mirrors_build_wiring() {
        let mut t = Topology::new();
        let root = t.add_switch("root");
        let tor = t.add_switch("tor0");
        t.add_downlink(root, tor).unwrap();
        let a = t.add_server("a", spec());
        let b = t.add_server("b", spec());
        t.add_downlinks(tor, [a, b]).unwrap();

        let topo = t.scenario_topology();
        // Links: root:0 <-> tor0's uplink (port 2, after its 2 downlinks),
        // tor0:0 <-> a:0, tor0:1 <-> b:0.
        let links = topo.links();
        assert_eq!(links.len(), 3);
        assert_eq!(
            (
                links[0].a.as_str(),
                links[0].a_port,
                links[0].b.as_str(),
                links[0].b_port
            ),
            ("root", 0, "tor0", 2)
        );
        assert_eq!(
            (
                links[1].a.as_str(),
                links[1].a_port,
                links[1].b.as_str(),
                links[1].b_port
            ),
            ("tor0", 0, "a", 0)
        );

        // Group "tor0" covers the rack; compiling a rack_down against it
        // cuts all three touching link directions at six endpoints.
        let sc = firesim_core::Scenario {
            events: vec![firesim_core::ScenarioEvent {
                from: 0,
                until: 10,
                kind: firesim_core::EventKind::RackDown {
                    group: "tor0".into(),
                },
            }],
            ..firesim_core::Scenario::default()
        };
        let compiled = sc.compile(&topo).unwrap();
        assert_eq!(compiled.link_effects().len(), 6);

        // And a bogus port is a typed error.
        let bad = firesim_core::Scenario {
            events: vec![firesim_core::ScenarioEvent {
                from: 0,
                until: 10,
                kind: firesim_core::EventKind::LinkDown {
                    agent: "a".into(),
                    port: 1,
                },
            }],
            ..firesim_core::Scenario::default()
        };
        assert!(bad.compile(&topo).is_err());
    }

    #[test]
    fn double_parent_rejected() {
        let mut t = Topology::new();
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let n = t.add_server("n", spec());
        t.add_downlink(s1, n).unwrap();
        assert!(matches!(
            t.add_downlink(s2, n),
            Err(TopologyError::AlreadyLinked { .. })
        ));
    }

    #[test]
    fn validation_errors() {
        let t = Topology::new();
        assert_eq!(t.validate(), Err(TopologyError::Empty));

        let mut t = Topology::new();
        let _s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let n = t.add_server("n", spec());
        t.add_downlink(s2, n).unwrap();
        // Two roots (s1 and s2).
        assert_eq!(t.validate(), Err(TopologyError::Roots { count: 2 }));

        let mut t = Topology::new();
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        t.add_downlink(s1, s2).unwrap();
        let n = t.add_server("n", spec());
        t.add_downlink(s1, n).unwrap();
        // s2 dangles.
        assert!(matches!(
            t.validate(),
            Err(TopologyError::DanglingSwitch { .. })
        ));

        let mut t = Topology::new();
        let s1 = t.add_switch("s1");
        let a = t.add_server("a", spec());
        t.add_downlink(s1, a).unwrap();
        let _orphan = t.add_server("orphan", spec());
        assert!(matches!(
            t.validate(),
            Err(TopologyError::OrphanServer { .. })
        ));
    }
}
