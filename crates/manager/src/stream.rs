//! Live telemetry streaming: the NDJSON run feed (DESIGN §17).
//!
//! FireSim's manager surfaces fleet health *while* simulations run; the
//! post-hoc [`RunReport`](crate::report::RunReport) alone leaves
//! operators (and the closed-loop autotuner) blind mid-run. This module
//! publishes per-interval metrics — sim-rate, per-agent
//! instructions/host-ns, link occupancy, switch buffer high-water,
//! fault/scenario events, checkpoint markers — as newline-delimited
//! JSON over stdout, a file, or a Unix/TCP socket.
//!
//! The wire format is small, versioned, and fully specified so external
//! viewers (`firesim-top`, the `simd` relay daemon, or anything else)
//! can consume it without reading this source:
//!
//! - every record is one JSON object on one line, flushed whole;
//! - every record carries `"v"` ([`WIRE_VERSION`]) and a type tag `"t"`;
//! - a stream is `run_start`, then `interval`/`event` records in
//!   non-decreasing cycle order, then `run_end`.
//!
//! Streaming follows the PR-3 observability discipline: it is zero-cost
//! when off (nothing is sampled, no sink is held), it reads only the
//! sharded [`MetricsRegistry`](firesim_core::MetricsRegistry) /
//! [`AgentProfile`](firesim_core::AgentProfile) aggregation that already
//! exists at chunk barriers, and it never feeds back into the
//! simulation — so checkpoint digests are bit-identical with streaming
//! on or off, across 1/2/4 workers and all three transports
//! (`tests/telemetry.rs`). Host-dependent fields (`wall_ns`, `host_ns`)
//! are the only nondeterministic payload and [`StreamRecord::normalize`]
//! zeroes them for golden-fixture comparison.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

use serde_json::Value;

use firesim_core::{Cycle, IntervalProbe, SimError, SimResult};

use crate::simulation::Simulation;

/// Version of the NDJSON wire format, carried as `"v"` on every record.
///
/// Consumers must reject records with a larger `v` and may accept
/// smaller ones; producers bump this only on breaking schema changes
/// (renamed/retyped fields). Adding a field is not a breaking change —
/// consumers must ignore unknown keys.
pub const WIRE_VERSION: u64 = 1;

/// Default sampling interval for streamed runs, in target cycles.
pub const DEFAULT_STREAM_INTERVAL: u64 = 100_000;

// ---------------------------------------------------------------------------
// Sink specs
// ---------------------------------------------------------------------------

/// A parsed `--stream-out` destination.
///
/// Grammar: `-` is stdout, `tcp:HOST:PORT` and `unix:PATH` connect to a
/// listening consumer (e.g. the `simd` daemon), anything else is a file
/// path (created/truncated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamOut {
    /// Write to the producer's stdout.
    Stdout,
    /// Append records to a file (truncated at open).
    File(PathBuf),
    /// Connect to a TCP listener at `HOST:PORT`.
    Tcp(String),
    /// Connect to a Unix-domain socket at the given path.
    Unix(PathBuf),
}

impl StreamOut {
    /// Parses a sink spec (see the type docs for the grammar).
    pub fn parse(spec: &str) -> StreamOut {
        if spec == "-" {
            StreamOut::Stdout
        } else if let Some(addr) = spec.strip_prefix("tcp:") {
            StreamOut::Tcp(addr.to_owned())
        } else if let Some(path) = spec.strip_prefix("unix:") {
            StreamOut::Unix(PathBuf::from(path))
        } else {
            StreamOut::File(PathBuf::from(spec))
        }
    }

    /// Opens the sink, connecting sockets / creating files as needed.
    pub fn connect(&self) -> SimResult<Box<dyn Write + Send>> {
        match self {
            StreamOut::Stdout => Ok(Box::new(std::io::stdout())),
            StreamOut::File(path) => {
                let f = std::fs::File::create(path)
                    .map_err(|e| SimError::io(format!("creating {}", path.display()), &e))?;
                Ok(Box::new(f))
            }
            StreamOut::Tcp(addr) => {
                let s = std::net::TcpStream::connect(addr)
                    .map_err(|e| SimError::io(format!("connecting to tcp:{addr}"), &e))?;
                let _ = s.set_nodelay(true);
                Ok(Box::new(s))
            }
            StreamOut::Unix(path) => {
                let s = std::os::unix::net::UnixStream::connect(path).map_err(|e| {
                    SimError::io(format!("connecting to unix:{}", path.display()), &e)
                })?;
                Ok(Box::new(s))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// Stream header: static facts about the run, emitted exactly once,
/// first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStartRecord {
    /// Stable run identifier (partitioned runs reuse the report's
    /// `run_id`); `None` for ad-hoc runs.
    pub run_id: Option<String>,
    /// Opaque build spec the topology was constructed from.
    pub spec: String,
    /// Registered agent count, or 0 when unknown (a fleet parent
    /// streaming merge points only never builds the topology).
    pub agents: u64,
    /// Worker process count.
    pub workers: u64,
    /// Target horizon in cycles.
    pub target_cycles: u64,
    /// Engine window in cycles (0 when unknown).
    pub window: u64,
    /// Sampling interval in target cycles (0 = no interval records,
    /// merge-point events only).
    pub interval: u64,
    /// Cross-shard transport (`shm`/`tcp`/`unix`); `None` in-process.
    pub transport: Option<String>,
}

/// One agent's activity during an interval.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AgentSample {
    /// Agent name.
    pub name: String,
    /// Target cycles stepped this interval.
    pub d_cycles: u64,
    /// Valid tokens consumed this interval.
    pub d_tokens_in: u64,
    /// Valid tokens produced this interval.
    pub d_tokens_out: u64,
    /// Instructions retired this interval (0 for non-CPU agents); with
    /// the record's `wall_ns` this is the agent's live MIPS.
    pub d_retired: u64,
    /// Host nanoseconds inside the agent this interval. Host-dependent:
    /// zeroed by [`StreamRecord::normalize`].
    pub host_ns: u64,
    /// Host decode-cache hit rate over the interval, in permille (0 when
    /// the agent has no decode cache or saw no fetches). Describes the
    /// simulator, not the target, but the value itself is deterministic.
    pub icache_hit_permille: u64,
    /// Retired instructions per host microsecond (live MIPS) over the
    /// interval. Host-dependent: zeroed by [`StreamRecord::normalize`].
    pub host_mips: u64,
    /// Sampled-mode blade IPC estimate in permille; 0 when sampling is
    /// off (levels, not deltas — see DESIGN §18).
    pub ipc_est_permille: u64,
    /// Lower edge of the sampled-mode 95% IPC confidence interval, in
    /// permille; 0 when sampling is off.
    pub ci_lo_permille: u64,
    /// Upper edge of the sampled-mode 95% IPC confidence interval, in
    /// permille; 0 when sampling is off.
    pub ci_hi_permille: u64,
}

/// One connected input link's occupancy at the interval boundary.
///
/// At a quiescent boundary every latency-*N* link holds exactly *N*
/// tokens in flight (the paper's token-transport invariant), so a
/// mismatch between `tokens` and `latency` is itself a red flag.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkSample {
    /// Receiving agent.
    pub agent: String,
    /// Receiving input port.
    pub port: u64,
    /// Modeled link latency in cycles.
    pub latency: u64,
    /// Tokens in flight (cycles of buffered simulated time).
    pub tokens: u64,
}

/// One switch's counters at the interval boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SwitchSample {
    /// Switch name.
    pub name: String,
    /// High-water mark of egress-buffer occupancy in bytes, max over
    /// ports, cumulative since the run began.
    pub highwater: u64,
    /// Frames dropped this interval (buffer + delay-bound drops).
    pub d_drops: u64,
    /// Frames forwarded this interval.
    pub d_forwarded: u64,
}

/// Periodic sample: everything that moved during one interval.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalRecord {
    /// Interval sequence number, starting at 1.
    pub seq: u64,
    /// Target cycle at the end of the interval.
    pub cycle: u64,
    /// Target cycles elapsed in this interval.
    pub d_cycles: u64,
    /// Host wall nanoseconds this interval took; with `d_cycles` this is
    /// the live sim-rate. Host-dependent: zeroed by
    /// [`StreamRecord::normalize`].
    pub wall_ns: u64,
    /// Per-agent deltas, in engine registration order.
    pub agents: Vec<AgentSample>,
    /// Link occupancies, in engine registration order.
    pub links: Vec<LinkSample>,
    /// Switch counters, in topology order.
    pub switches: Vec<SwitchSample>,
}

/// Discrete annotation: faults, scenario phases, checkpoint and worker
/// lifecycle markers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventRecord {
    /// Target cycle the event is attributed to (0 for host-side fleet
    /// lifecycle events with no target timestamp).
    pub cycle: u64,
    /// Event kind: `fault`, `scenario`, `checkpoint`, `restore`,
    /// `worker_spawn`, or `worker_exit`.
    pub kind: String,
    /// Human-readable detail.
    pub label: String,
}

/// Stream trailer: emitted exactly once, last, even on early stop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunEndRecord {
    /// Final target cycle.
    pub cycle: u64,
    /// Interval records emitted before this trailer.
    pub intervals: u64,
    /// Total host wall nanoseconds across the streamed legs.
    /// Host-dependent: zeroed by [`StreamRecord::normalize`].
    pub wall_ns: u64,
    /// Whether every agent reported done (always `false` from a fleet
    /// parent, which doesn't observe agent state).
    pub done: bool,
}

/// One NDJSON stream record; the unit of [`StreamWriter::emit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamRecord {
    /// Stream header.
    RunStart(RunStartRecord),
    /// Periodic sample.
    Interval(IntervalRecord),
    /// Discrete annotation.
    Event(EventRecord),
    /// Stream trailer.
    RunEnd(RunEndRecord),
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    let mut map = BTreeMap::new();
    for (k, v) in entries {
        map.insert(k.to_owned(), v);
    }
    Value::Object(map)
}

fn get_u64(v: &Value, key: &str) -> SimResult<u64> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| SimError::protocol(format!("stream record missing u64 field `{key}`")))
}

/// Optional u64 field: fields added after wire version 1 shipped parse
/// as 0 from older streams instead of erroring.
fn get_u64_or_zero(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn get_str(v: &Value, key: &str) -> SimResult<String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| SimError::protocol(format!("stream record missing string field `{key}`")))
}

fn get_arr<'v>(v: &'v Value, key: &str) -> SimResult<&'v Vec<Value>> {
    v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| SimError::protocol(format!("stream record missing array field `{key}`")))
}

impl StreamRecord {
    /// The record's `"t"` type tag.
    pub fn record_type(&self) -> &'static str {
        match self {
            StreamRecord::RunStart(_) => "run_start",
            StreamRecord::Interval(_) => "interval",
            StreamRecord::Event(_) => "event",
            StreamRecord::RunEnd(_) => "run_end",
        }
    }

    /// The record as a JSON value (sorted keys, so serialization is
    /// byte-stable).
    pub fn to_value(&self) -> Value {
        match self {
            StreamRecord::RunStart(r) => {
                let mut entries = vec![
                    ("v", Value::from(WIRE_VERSION)),
                    ("t", Value::from("run_start")),
                    ("spec", Value::from(&r.spec)),
                    ("agents", Value::from(r.agents)),
                    ("workers", Value::from(r.workers)),
                    ("target_cycles", Value::from(r.target_cycles)),
                    ("window", Value::from(r.window)),
                    ("interval", Value::from(r.interval)),
                ];
                if let Some(id) = &r.run_id {
                    entries.push(("run_id", Value::from(id)));
                }
                if let Some(t) = &r.transport {
                    entries.push(("transport", Value::from(t)));
                }
                obj(entries)
            }
            StreamRecord::Interval(r) => obj(vec![
                ("v", Value::from(WIRE_VERSION)),
                ("t", Value::from("interval")),
                ("seq", Value::from(r.seq)),
                ("cycle", Value::from(r.cycle)),
                ("d_cycles", Value::from(r.d_cycles)),
                ("wall_ns", Value::from(r.wall_ns)),
                (
                    "agents",
                    Value::Array(
                        r.agents
                            .iter()
                            .map(|a| {
                                obj(vec![
                                    ("name", Value::from(&a.name)),
                                    ("d_cycles", Value::from(a.d_cycles)),
                                    ("d_tokens_in", Value::from(a.d_tokens_in)),
                                    ("d_tokens_out", Value::from(a.d_tokens_out)),
                                    ("d_retired", Value::from(a.d_retired)),
                                    ("host_ns", Value::from(a.host_ns)),
                                    ("icache_hit_permille", Value::from(a.icache_hit_permille)),
                                    ("host_mips", Value::from(a.host_mips)),
                                    ("ipc_est_permille", Value::from(a.ipc_est_permille)),
                                    ("ci_lo_permille", Value::from(a.ci_lo_permille)),
                                    ("ci_hi_permille", Value::from(a.ci_hi_permille)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "links",
                    Value::Array(
                        r.links
                            .iter()
                            .map(|l| {
                                obj(vec![
                                    ("agent", Value::from(&l.agent)),
                                    ("port", Value::from(l.port)),
                                    ("latency", Value::from(l.latency)),
                                    ("tokens", Value::from(l.tokens)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "switches",
                    Value::Array(
                        r.switches
                            .iter()
                            .map(|s| {
                                obj(vec![
                                    ("name", Value::from(&s.name)),
                                    ("highwater", Value::from(s.highwater)),
                                    ("d_drops", Value::from(s.d_drops)),
                                    ("d_forwarded", Value::from(s.d_forwarded)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            StreamRecord::Event(r) => obj(vec![
                ("v", Value::from(WIRE_VERSION)),
                ("t", Value::from("event")),
                ("cycle", Value::from(r.cycle)),
                ("kind", Value::from(&r.kind)),
                ("label", Value::from(&r.label)),
            ]),
            StreamRecord::RunEnd(r) => obj(vec![
                ("v", Value::from(WIRE_VERSION)),
                ("t", Value::from("run_end")),
                ("cycle", Value::from(r.cycle)),
                ("intervals", Value::from(r.intervals)),
                ("wall_ns", Value::from(r.wall_ns)),
                ("done", Value::from(r.done)),
            ]),
        }
    }

    /// The record as one compact NDJSON line, without the trailing
    /// newline.
    pub fn to_ndjson(&self) -> String {
        self.to_value().to_string_compact()
    }

    /// Parses one NDJSON line back into a record, rejecting unknown
    /// type tags and wire versions newer than [`WIRE_VERSION`].
    pub fn parse(line: &str) -> SimResult<StreamRecord> {
        let v: Value = serde_json::from_str(line)
            .map_err(|e| SimError::protocol(format!("bad stream record: {e}")))?;
        let version = get_u64(&v, "v")?;
        if version > WIRE_VERSION {
            return Err(SimError::protocol(format!(
                "stream record has wire version {version}, this consumer speaks {WIRE_VERSION}"
            )));
        }
        let t = get_str(&v, "t")?;
        match t.as_str() {
            "run_start" => Ok(StreamRecord::RunStart(RunStartRecord {
                run_id: v.get("run_id").and_then(Value::as_str).map(str::to_owned),
                spec: get_str(&v, "spec")?,
                agents: get_u64(&v, "agents")?,
                workers: get_u64(&v, "workers")?,
                target_cycles: get_u64(&v, "target_cycles")?,
                window: get_u64(&v, "window")?,
                interval: get_u64(&v, "interval")?,
                transport: v
                    .get("transport")
                    .and_then(Value::as_str)
                    .map(str::to_owned),
            })),
            "interval" => {
                let mut agents = Vec::new();
                for a in get_arr(&v, "agents")? {
                    agents.push(AgentSample {
                        name: get_str(a, "name")?,
                        d_cycles: get_u64(a, "d_cycles")?,
                        d_tokens_in: get_u64(a, "d_tokens_in")?,
                        d_tokens_out: get_u64(a, "d_tokens_out")?,
                        d_retired: get_u64(a, "d_retired")?,
                        host_ns: get_u64(a, "host_ns")?,
                        icache_hit_permille: get_u64_or_zero(a, "icache_hit_permille"),
                        host_mips: get_u64_or_zero(a, "host_mips"),
                        ipc_est_permille: get_u64_or_zero(a, "ipc_est_permille"),
                        ci_lo_permille: get_u64_or_zero(a, "ci_lo_permille"),
                        ci_hi_permille: get_u64_or_zero(a, "ci_hi_permille"),
                    });
                }
                let mut links = Vec::new();
                for l in get_arr(&v, "links")? {
                    links.push(LinkSample {
                        agent: get_str(l, "agent")?,
                        port: get_u64(l, "port")?,
                        latency: get_u64(l, "latency")?,
                        tokens: get_u64(l, "tokens")?,
                    });
                }
                let mut switches = Vec::new();
                for s in get_arr(&v, "switches")? {
                    switches.push(SwitchSample {
                        name: get_str(s, "name")?,
                        highwater: get_u64(s, "highwater")?,
                        d_drops: get_u64(s, "d_drops")?,
                        d_forwarded: get_u64(s, "d_forwarded")?,
                    });
                }
                Ok(StreamRecord::Interval(IntervalRecord {
                    seq: get_u64(&v, "seq")?,
                    cycle: get_u64(&v, "cycle")?,
                    d_cycles: get_u64(&v, "d_cycles")?,
                    wall_ns: get_u64(&v, "wall_ns")?,
                    agents,
                    links,
                    switches,
                }))
            }
            "event" => Ok(StreamRecord::Event(EventRecord {
                cycle: get_u64(&v, "cycle")?,
                kind: get_str(&v, "kind")?,
                label: get_str(&v, "label")?,
            })),
            "run_end" => Ok(StreamRecord::RunEnd(RunEndRecord {
                cycle: get_u64(&v, "cycle")?,
                intervals: get_u64(&v, "intervals")?,
                wall_ns: get_u64(&v, "wall_ns")?,
                done: v
                    .get("done")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| SimError::protocol("run_end missing bool field `done`"))?,
            })),
            other => Err(SimError::protocol(format!(
                "unknown stream record type `{other}`"
            ))),
        }
    }

    /// Zeroes every host-dependent field (`wall_ns`, per-agent
    /// `host_ns`), leaving only the target-deterministic payload — the
    /// transform under which a seeded run's stream is byte-identical
    /// across hosts and reruns (the golden-fixture contract).
    pub fn normalize(&mut self) {
        match self {
            StreamRecord::Interval(r) => {
                r.wall_ns = 0;
                for a in &mut r.agents {
                    a.host_ns = 0;
                    a.host_mips = 0;
                }
            }
            StreamRecord::RunEnd(r) => r.wall_ns = 0,
            StreamRecord::RunStart(_) | StreamRecord::Event(_) => {}
        }
    }
}

/// Parses one NDJSON line, zeroes its host-dependent fields, and
/// re-serializes it — the per-line normalization used by golden-fixture
/// diffs and `firesim-top --normalize`.
pub fn normalize_line(line: &str) -> SimResult<String> {
    let mut rec = StreamRecord::parse(line)?;
    rec.normalize();
    Ok(rec.to_ndjson())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Emits records to a sink, one flushed line per record.
///
/// The flush-per-record guarantee is part of the wire contract: a
/// consumer never observes a partial line, and a crash loses at most
/// the record being written.
pub struct StreamWriter {
    sink: Box<dyn Write + Send>,
    records: u64,
}

impl std::fmt::Debug for StreamWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamWriter")
            .field("records", &self.records)
            .finish_non_exhaustive()
    }
}

impl StreamWriter {
    /// Wraps an already-open sink.
    pub fn new(sink: Box<dyn Write + Send>) -> StreamWriter {
        StreamWriter { sink, records: 0 }
    }

    /// Parses a sink spec (see [`StreamOut::parse`]) and connects it.
    pub fn open(spec: &str) -> SimResult<StreamWriter> {
        Ok(StreamWriter::new(StreamOut::parse(spec).connect()?))
    }

    /// Writes one record as a complete, flushed NDJSON line.
    pub fn emit(&mut self, record: &StreamRecord) -> SimResult<()> {
        let mut line = record.to_ndjson();
        line.push('\n');
        self.sink
            .write_all(line.as_bytes())
            .and_then(|()| self.sink.flush())
            .map_err(|e| SimError::io("writing stream record", &e))?;
        self.records += 1;
        Ok(())
    }

    /// Records emitted so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

// ---------------------------------------------------------------------------
// Session: driving a Simulation in interval legs
// ---------------------------------------------------------------------------

/// Static facts about the run for the `run_start` header.
#[derive(Debug, Clone, Default)]
pub struct StreamMeta {
    /// Stable run identifier, if any.
    pub run_id: Option<String>,
    /// Opaque build spec.
    pub spec: String,
    /// Worker process count.
    pub workers: u64,
    /// Cross-shard transport name, if any.
    pub transport: Option<String>,
}

/// Totals from a completed streamed run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Target cycles advanced across the streamed legs.
    pub cycles: Cycle,
    /// Host wall time across the streamed legs.
    pub wall: Duration,
    /// Interval records emitted.
    pub intervals: u64,
    /// Whether every agent reported done.
    pub done: bool,
}

/// A live streaming session over one [`Simulation`].
///
/// Drives the run in interval-sized [`Simulation::run_for`] legs and
/// samples at the quiescent boundaries between them — the same
/// leg-splitting the checkpoint and repartition paths already prove is
/// digest-identical to a single run. The engine's hot path is never
/// touched; the session only reads aggregation that already exists at
/// chunk barriers.
#[derive(Debug)]
pub struct StreamSession {
    writer: StreamWriter,
    probe: IntervalProbe,
    interval: u64,
    seq: u64,
    began: u64,
    wall: Duration,
    /// Cumulative per-switch (drops, forwarded) at the previous sample.
    switch_prev: Vec<(u64, u64)>,
    /// Fault records already emitted as events.
    faults_seen: usize,
    /// Scenario timeline events already emitted.
    timeline_seen: usize,
}

impl StreamSession {
    /// Emits the `run_start` header and primes the interval probe at the
    /// simulation's current cycle (so restored runs stream deltas from
    /// the restore point, not from zero).
    ///
    /// `target` is the absolute cycle the run is headed for; `interval`
    /// is the sampling period in cycles (0 falls back to
    /// [`DEFAULT_STREAM_INTERVAL`]). Call [`Simulation::enable_metrics`]
    /// first — without it the per-agent profiles stay zero.
    pub fn begin(
        mut writer: StreamWriter,
        meta: &StreamMeta,
        sim: &mut Simulation,
        target: Cycle,
        interval: u64,
    ) -> SimResult<StreamSession> {
        let interval = if interval == 0 {
            DEFAULT_STREAM_INTERVAL
        } else {
            interval
        };
        let engine = sim.engine_mut();
        writer.emit(&StreamRecord::RunStart(RunStartRecord {
            run_id: meta.run_id.clone(),
            spec: meta.spec.clone(),
            agents: engine.agent_count() as u64,
            workers: meta.workers,
            target_cycles: target.as_u64(),
            window: u64::from(engine.window()),
            interval,
            transport: meta.transport.clone(),
        }))?;
        let mut probe = IntervalProbe::new();
        let began = engine.now().as_u64();
        engine.sample_interval(&mut probe);
        let switch_prev = sim
            .switch_stats()
            .iter()
            .map(|(_, stats)| {
                let s = stats.lock();
                (s.drops_buffer + s.drops_delay, s.frames_forwarded)
            })
            .collect();
        Ok(StreamSession {
            writer,
            probe,
            interval,
            seq: 0,
            began,
            wall: Duration::ZERO,
            switch_prev,
            faults_seen: 0,
            timeline_seen: 0,
        })
    }

    /// Runs the simulation to the absolute cycle `target` in
    /// interval-sized legs, emitting one `interval` record per leg and
    /// `event` records for any faults or scenario annotations that fired
    /// inside it.
    ///
    /// With `stop_when_done`, stops at the first interval boundary where
    /// every agent reports done (the streamed analogue of
    /// [`Simulation::run_until_done`], at interval rather than chunk
    /// granularity).
    pub fn run_to(
        &mut self,
        sim: &mut Simulation,
        target: Cycle,
        stop_when_done: bool,
    ) -> SimResult<()> {
        while sim.now().as_u64() < target.as_u64() {
            if stop_when_done && sim.all_done() {
                break;
            }
            let leg = self.interval.min(target.as_u64() - sim.now().as_u64());
            let summary = sim.run_for(Cycle::new(leg))?;
            self.wall += summary.wall;
            self.sample(sim, summary.wall)?;
        }
        Ok(())
    }

    /// Emits one `interval` record for everything since the previous
    /// sample. `leg_wall` is the host time the leg took.
    fn sample(&mut self, sim: &mut Simulation, leg_wall: Duration) -> SimResult<()> {
        self.seq += 1;
        let seq = self.seq;
        let engine = sim.engine_mut();
        let snap = engine.sample_interval(&mut self.probe);
        let links = engine
            .link_occupancies()
            .into_iter()
            .map(|l| LinkSample {
                agent: l.agent,
                port: l.port as u64,
                latency: l.latency,
                tokens: l.in_flight_tokens,
            })
            .collect();
        let mut switches = Vec::new();
        for (i, (name, stats)) in sim.switch_stats().iter().enumerate() {
            let s = stats.lock();
            let drops = s.drops_buffer + s.drops_delay;
            let forwarded = s.frames_forwarded;
            let highwater = s.buffer_highwater.iter().copied().max().unwrap_or(0);
            let (prev_drops, prev_fwd) = self.switch_prev.get(i).copied().unwrap_or_default();
            switches.push(SwitchSample {
                name: name.clone(),
                highwater,
                d_drops: drops.saturating_sub(prev_drops),
                d_forwarded: forwarded.saturating_sub(prev_fwd),
            });
            if let Some(slot) = self.switch_prev.get_mut(i) {
                *slot = (drops, forwarded);
            }
        }
        self.writer.emit(&StreamRecord::Interval(IntervalRecord {
            seq,
            cycle: snap.cycle,
            d_cycles: snap.d_cycles,
            wall_ns: leg_wall.as_nanos() as u64,
            agents: snap
                .agents
                .into_iter()
                .map(|a| AgentSample {
                    name: a.name,
                    d_cycles: a.d_cycles,
                    d_tokens_in: a.d_tokens_in,
                    d_tokens_out: a.d_tokens_out,
                    d_retired: a.d_retired,
                    host_ns: a.host_ns,
                    icache_hit_permille: a.icache_hit_permille,
                    host_mips: a.host_mips,
                    ipc_est_permille: a.ipc_est_permille,
                    ci_lo_permille: a.ci_lo_permille,
                    ci_hi_permille: a.ci_hi_permille,
                })
                .collect(),
            links,
            switches,
        }))?;

        // Newly fired faults and scenario annotations since last sample.
        let faults = sim.fault_records();
        for f in faults.iter().skip(self.faults_seen) {
            self.event(f.cycle, "fault", &format!("{}: {}", f.agent, f.description))?;
        }
        self.faults_seen = faults.len();
        if let Some(timeline) = sim.fault_timeline() {
            for (cycle, label) in timeline.events.iter().skip(self.timeline_seen) {
                self.event(*cycle, "scenario", label)?;
            }
            self.timeline_seen = timeline.events.len();
        }
        Ok(())
    }

    /// Emits a discrete `event` record (checkpoint markers, worker
    /// lifecycle, ...).
    pub fn event(&mut self, cycle: u64, kind: &str, label: &str) -> SimResult<()> {
        self.writer.emit(&StreamRecord::Event(EventRecord {
            cycle,
            kind: kind.to_owned(),
            label: label.to_owned(),
        }))
    }

    /// Emits the `run_end` trailer and returns the session totals.
    pub fn finish(mut self, sim: &Simulation) -> SimResult<StreamSummary> {
        let done = sim.all_done();
        self.writer.emit(&StreamRecord::RunEnd(RunEndRecord {
            cycle: sim.now().as_u64(),
            intervals: self.seq,
            wall_ns: self.wall.as_nanos() as u64,
            done,
        }))?;
        Ok(StreamSummary {
            cycles: Cycle::new(sim.now().as_u64() - self.began),
            wall: self.wall,
            intervals: self.seq,
            done,
        })
    }
}

/// Convenience wrapper: streams a whole run — header, interval legs to
/// `target`, trailer — in one call. See [`StreamSession`] for the
/// leg-splitting mechanics and [`StreamSession::begin`] for the
/// `enable_metrics` requirement.
pub fn run_streamed(
    sim: &mut Simulation,
    writer: StreamWriter,
    meta: &StreamMeta,
    target: Cycle,
    interval: u64,
    stop_when_done: bool,
) -> SimResult<StreamSummary> {
    let mut session = StreamSession::begin(writer, meta, sim, target, interval)?;
    session.run_to(sim, target, stop_when_done)?;
    session.finish(sim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_spec_grammar() {
        assert_eq!(StreamOut::parse("-"), StreamOut::Stdout);
        assert_eq!(
            StreamOut::parse("tcp:127.0.0.1:9000"),
            StreamOut::Tcp("127.0.0.1:9000".into())
        );
        assert_eq!(
            StreamOut::parse("unix:/tmp/s.sock"),
            StreamOut::Unix(PathBuf::from("/tmp/s.sock"))
        );
        assert_eq!(
            StreamOut::parse("out/run.ndjson"),
            StreamOut::File(PathBuf::from("out/run.ndjson"))
        );
    }

    fn sample_records() -> Vec<StreamRecord> {
        vec![
            StreamRecord::RunStart(RunStartRecord {
                run_id: Some("r1".into()),
                spec: "seed=1".into(),
                agents: 3,
                workers: 1,
                target_cycles: 1_000_000,
                window: 64,
                interval: 100_000,
                transport: None,
            }),
            StreamRecord::Interval(IntervalRecord {
                seq: 1,
                cycle: 100_000,
                d_cycles: 100_032,
                wall_ns: 42,
                agents: vec![AgentSample {
                    name: "pinger".into(),
                    d_cycles: 100_032,
                    d_tokens_in: 7,
                    d_tokens_out: 9,
                    d_retired: 55_000,
                    host_ns: 1_234,
                    icache_hit_permille: 930,
                    host_mips: 44,
                    ipc_est_permille: 550,
                    ci_lo_permille: 520,
                    ci_hi_permille: 580,
                }],
                links: vec![LinkSample {
                    agent: "tor0".into(),
                    port: 0,
                    latency: 6_400,
                    tokens: 6_400,
                }],
                switches: vec![SwitchSample {
                    name: "tor0".into(),
                    highwater: 1_500,
                    d_drops: 0,
                    d_forwarded: 12,
                }],
            }),
            StreamRecord::Event(EventRecord {
                cycle: 150_000,
                kind: "fault".into(),
                label: "echo: link 0 down".into(),
            }),
            StreamRecord::RunEnd(RunEndRecord {
                cycle: 1_000_000,
                intervals: 10,
                wall_ns: 9_999,
                done: true,
            }),
        ]
    }

    #[test]
    fn records_roundtrip_through_ndjson() {
        for rec in sample_records() {
            let line = rec.to_ndjson();
            assert!(!line.contains('\n'), "one record, one line");
            let back = StreamRecord::parse(&line).expect("parses");
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn every_record_carries_version_and_type() {
        for rec in sample_records() {
            let v: Value = serde_json::from_str(&rec.to_ndjson()).unwrap();
            assert_eq!(v.get("v").and_then(Value::as_u64), Some(WIRE_VERSION));
            assert_eq!(v.get("t").and_then(Value::as_str), Some(rec.record_type()));
        }
    }

    #[test]
    fn newer_wire_version_is_rejected() {
        let line = format!(
            "{{\"v\":{},\"t\":\"event\",\"cycle\":0,\"kind\":\"x\",\"label\":\"y\"}}",
            WIRE_VERSION + 1
        );
        assert!(StreamRecord::parse(&line).is_err());
        assert!(StreamRecord::parse("{\"v\":1,\"t\":\"nope\"}").is_err());
        assert!(StreamRecord::parse("not json").is_err());
    }

    #[test]
    fn normalize_zeroes_only_host_fields() {
        let mut recs = sample_records();
        for rec in &mut recs {
            rec.normalize();
        }
        match &recs[1] {
            StreamRecord::Interval(r) => {
                assert_eq!(r.wall_ns, 0);
                assert_eq!(r.agents[0].host_ns, 0);
                // Deterministic payload untouched.
                assert_eq!(r.d_cycles, 100_032);
                assert_eq!(r.agents[0].d_retired, 55_000);
            }
            other => panic!("expected interval, got {other:?}"),
        }
        match &recs[3] {
            StreamRecord::RunEnd(r) => assert_eq!(r.wall_ns, 0),
            other => panic!("expected run_end, got {other:?}"),
        }
        // normalize_line is the same transform at the text layer.
        let line = sample_records()[3].to_ndjson();
        let norm = normalize_line(&line).unwrap();
        assert_eq!(norm, recs[3].to_ndjson());
    }

    #[test]
    fn writer_counts_and_flushes_lines() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf::default();
        let mut w = StreamWriter::new(Box::new(buf.clone()));
        for rec in sample_records() {
            w.emit(&rec).unwrap();
        }
        assert_eq!(w.records(), 4);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 4);
        for line in text.lines() {
            StreamRecord::parse(line).expect("every emitted line parses");
        }
    }
}
