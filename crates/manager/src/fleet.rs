//! Fleet controller: load-aware placement onto cost-modeled hosts (§III).
//!
//! FireSim's manager (Fig 10) maps a declarative target design onto a
//! fleet of FPGA and switch-model hosts: f1 instances carry the blade
//! simulations (up to 32 per f1.16xlarge with §III-A5 supernode packing),
//! their host CPUs run the rack's ToR model over PCIe, and dedicated
//! m4.16xlarge instances run the aggregation/root switch models, talking
//! TCP across instances. This module reproduces that mapping as data:
//!
//! * [`FleetSpec`] declares host classes — blade capacity, switch-model
//!   capacity, the transport class of intra- and cross-host links, and
//!   $/hour ([`firesim_platform::Pricing`]).
//! * [`LoadProfile`] carries per-agent host cost (ns of host time per
//!   thousand target cycles), seeded from a profiled [`RunReport`] so a
//!   calibration run drives the next placement.
//! * [`FleetSpec::place`] bin-packs the topology onto the fleet —
//!   heaviest racks first, keeping racks whole where capacity allows and
//!   pulling upper switches toward their children — and returns a
//!   [`PlacementPlan`]: per-host assignments, an executable
//!   [`PartitionPlan`], and a [`CostEstimate`].
//!
//! The cost model composes two first-order bounds, both pinned by tests:
//! each host's simulation rate is capped by its summed agent load
//! (`1e12 / Σ weight` Hz, since weights are ns per kilocycle), and each
//! link's rate is capped by its transport's batch round-trip
//! ([`Transport::sim_rate_bound_hz`]). The fleet simulates at the minimum
//! of all bounds; `$ / simulated hour = fleet $/hour × slowdown` where
//! `slowdown = target Hz / simulated Hz`.
//!
//! Placement never changes simulated behavior — the differential harness
//! in `tests/fleet.rs` proves digests are identical across plans — so the
//! controller optimises cost and cut-link count freely.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use firesim_core::{Cycle, SimError, SimResult};
use firesim_platform::{InstanceType, Pricing, Transport, TransportKind};

use crate::partition::PartitionPlan;
use crate::report::RunReport;
use crate::topology::{NodeRef, Topology};

/// One class of simulation host the fleet can rent.
#[derive(Debug, Clone, PartialEq)]
pub struct HostClass {
    /// Display name (e.g. `"f1.16xlarge"`).
    pub name: String,
    /// Underlying EC2 instance type, for pricing cross-checks.
    pub instance: InstanceType,
    /// Server blades this host can simulate (FPGAs × supernode packing).
    pub blade_capacity: usize,
    /// Switch models this host's CPUs can run.
    pub switch_capacity: usize,
    /// Instances of this class available to the placer.
    pub count: usize,
    /// Transport class of links leaving this host.
    pub cross_transport: TransportKind,
    /// Transport class of links between co-located agents.
    pub intra_transport: TransportKind,
    /// Rental cost per wall-clock hour.
    pub dollars_per_hour: f64,
}

/// A fleet of host classes plus the target parameters the cost model
/// needs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Available host classes, in preference order.
    pub classes: Vec<HostClass>,
    /// Bytes per link token (Table I: 64-bit tokens on the 200 Gb/s NIC
    /// path model 8 B here).
    pub token_bytes: u64,
    /// Target clock the design would run at, for slowdown accounting
    /// (the paper's 3.2 GHz Rocket SoC).
    pub target_hz: f64,
}

impl FleetSpec {
    /// The paper's EC2 fleet at 2018 on-demand pricing: f1.16xlarge hosts
    /// carrying 32 supernode-packed blades plus their rack's ToR model,
    /// and m4.16xlarge hosts running one upper-level switch model each
    /// (§V-C: the 1024-node datacenter used 32 f1.16xlarge and 5
    /// m4.16xlarge).
    pub fn ec2_default() -> FleetSpec {
        Self::ec2_with(|p, t| p.ondemand(t))
    }

    /// Same fleet shape at spot pricing (Fig 12's "simulation cost at
    /// spot" argument).
    pub fn ec2_spot() -> FleetSpec {
        Self::ec2_with(|p, t| p.spot(t))
    }

    fn ec2_with(price: impl Fn(&Pricing, InstanceType) -> f64) -> FleetSpec {
        let pricing = Pricing::default();
        FleetSpec {
            classes: vec![
                HostClass {
                    name: "f1.16xlarge".into(),
                    instance: InstanceType::F1_16xlarge,
                    // 8 FPGAs × 4 blades per FPGA in supernode mode.
                    blade_capacity: 32,
                    // The host CPUs run the rack's own ToR model.
                    switch_capacity: 1,
                    count: 64,
                    cross_transport: TransportKind::Tcp,
                    intra_transport: TransportKind::Pcie,
                    dollars_per_hour: price(&pricing, InstanceType::F1_16xlarge),
                },
                HostClass {
                    name: "m4.16xlarge".into(),
                    instance: InstanceType::M4_16xlarge,
                    blade_capacity: 0,
                    switch_capacity: 1,
                    count: 16,
                    cross_transport: TransportKind::Tcp,
                    intra_transport: TransportKind::SharedMemory,
                    dollars_per_hour: price(&pricing, InstanceType::M4_16xlarge),
                },
            ],
            token_bytes: 8,
            target_hz: 3.2e9,
        }
    }
}

/// Per-agent host cost used to balance load: nanoseconds of host time
/// per thousand simulated target cycles.
///
/// Seed it from a profiled run ([`LoadProfile::from_report`]) or start
/// [`LoadProfile::uniform`]; agents absent from the profile fall back to
/// per-kind defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadProfile {
    weights: BTreeMap<String, f64>,
    default_server: f64,
    default_switch: f64,
}

impl LoadProfile {
    /// A flat profile: every server costs the same, switches a quarter
    /// of that. Placeholder in the absence of measurements — calibrate
    /// with [`LoadProfile::from_report`].
    pub fn uniform() -> LoadProfile {
        LoadProfile {
            weights: BTreeMap::new(),
            default_server: 1000.0,
            default_switch: 250.0,
        }
    }

    /// Extracts weights from a profiled run's `AgentProfile` host-cost
    /// data (`host_ns / target_cycles`, scaled to ns per kilocycle).
    /// Agents that recorded no host time keep the uniform default.
    pub fn from_report(report: &RunReport) -> LoadProfile {
        let mut profile = Self::uniform();
        for a in &report.agents {
            if a.target_cycles > 0 && a.host_ns > 0 {
                profile.weights.insert(
                    a.name.clone(),
                    a.host_ns as f64 * 1000.0 / a.target_cycles as f64,
                );
            }
        }
        profile
    }

    /// Overrides one agent's weight (ns per kilocycle).
    pub fn set(&mut self, name: impl Into<String>, weight: f64) {
        self.weights.insert(name.into(), weight);
    }

    /// Weight of a server agent.
    pub fn server_weight(&self, name: &str) -> f64 {
        *self.weights.get(name).unwrap_or(&self.default_server)
    }

    /// Weight of a switch agent.
    pub fn switch_weight(&self, name: &str) -> f64 {
        *self.weights.get(name).unwrap_or(&self.default_switch)
    }
}

/// Modeled cost and rate of a placement. All rates are target-Hz.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEstimate {
    /// Hosts the placement actually rents (= worker shards).
    pub hosts_used: usize,
    /// Fleet rental per wall-clock hour, dollars.
    pub fleet_per_hour: f64,
    /// Directed cross-host links (each cut tree edge contributes two).
    pub cut_links: usize,
    /// Modeled simulation rate: minimum over per-host compute bounds and
    /// per-link transport bounds.
    pub sim_rate_hz: f64,
    /// Target clock the slowdown is measured against.
    pub target_hz: f64,
    /// `target_hz / sim_rate_hz`.
    pub slowdown: f64,
    /// `fleet_per_hour × slowdown`: what one hour of simulated time
    /// costs.
    pub dollars_per_sim_hour: f64,
    /// Human-readable description of the binding constraint.
    pub bottleneck: String,
}

/// One host's share of a [`PlacementPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct HostAssignment {
    /// Host class name.
    pub class: String,
    /// Instance type backing the class.
    pub instance: InstanceType,
    /// Transport of links leaving this host.
    pub cross_transport: TransportKind,
    /// Transport of links between agents on this host.
    pub intra_transport: TransportKind,
    /// Rental cost per hour.
    pub dollars_per_hour: f64,
    /// Server names placed here, topology order.
    pub servers: Vec<String>,
    /// Switch names placed here, topology order.
    pub switches: Vec<String>,
    /// Summed load weight (ns per kilocycle).
    pub load: f64,
}

/// A complete placement: host assignments, the executable partition, and
/// the modeled cost. Produced by [`FleetSpec::place`]; executed by
/// `run_partitioned` via `PartitionConfig::with_placement`.
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    hosts: Vec<HostAssignment>,
    partition: PartitionPlan,
    cost: CostEstimate,
}

impl PlacementPlan {
    /// Per-host assignments, shard order.
    pub fn hosts(&self) -> &[HostAssignment] {
        &self.hosts
    }

    /// Number of hosts rented = number of worker shards.
    pub fn workers(&self) -> usize {
        self.hosts.len()
    }

    /// The executable shard assignment.
    pub fn partition(&self) -> &PartitionPlan {
        &self.partition
    }

    /// The modeled cost.
    pub fn cost(&self) -> &CostEstimate {
        &self.cost
    }

    /// Folds the placement onto fewer workers than modeled hosts (host
    /// `h` → worker `h × workers / hosts`), for running a many-host plan
    /// on a small machine while preserving its shard structure.
    ///
    /// # Errors
    ///
    /// Rejects zero workers and more workers than hosts.
    pub fn partition_for(&self, workers: usize) -> SimResult<PartitionPlan> {
        self.partition.fold(workers)
    }

    /// A multi-line human-readable summary.
    pub fn describe(&self) -> String {
        let c = &self.cost;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "placement: {} host(s), ${:.2}/hour, {} cut link(s)",
            c.hosts_used, c.fleet_per_hour, c.cut_links
        );
        for (h, a) in self.hosts.iter().enumerate() {
            let mut names: Vec<&str> = a.switches.iter().map(String::as_str).collect();
            names.extend(a.servers.iter().take(3).map(String::as_str));
            let more = a.servers.len().saturating_sub(3);
            let _ = writeln!(
                out,
                "  host {h:>3} {:<12} ${:>6.2}/h load {:>8.0}  {} switch(es) + {} blade(s): {}{}",
                a.class,
                a.dollars_per_hour,
                a.load,
                a.switches.len(),
                a.servers.len(),
                names.join(", "),
                if more > 0 {
                    format!(", +{more} more")
                } else {
                    String::new()
                },
            );
        }
        let _ = writeln!(
            out,
            "modeled rate {:.3} MHz (bottleneck: {}), slowdown {:.1}x vs {:.1} GHz",
            c.sim_rate_hz / 1e6,
            c.bottleneck,
            c.slowdown,
            c.target_hz / 1e9
        );
        let _ = writeln!(
            out,
            "cost: ${:.2} per simulated hour",
            c.dollars_per_sim_hour
        );
        out
    }
}

/// Mutable capacity/load state of one expanded host during packing.
struct HostState {
    class: usize,
    blades_left: usize,
    switches_left: usize,
    load: f64,
    /// Whether anything has been placed here yet. An untouched host
    /// costs its full $/hour to open, so ties prefer hosts already
    /// rented — and then the cheapest class to open.
    used: bool,
}

impl HostState {
    /// Marginal rental cost of placing on this host.
    fn activation(&self, classes: &[HostClass]) -> f64 {
        if self.used {
            0.0
        } else {
            classes[self.class].dollars_per_hour
        }
    }
}

/// A rack unit: a switch with its directly-attached servers, placed as a
/// whole when capacity allows (the paper's f1.16xlarge = one rack).
struct RackUnit {
    switch: usize,
    servers: Vec<usize>,
    weight: f64,
}

impl FleetSpec {
    /// Places `topo` onto this fleet, balancing `profile` load.
    ///
    /// The packer is deterministic (no randomness, total orders on every
    /// choice) so parent and workers can recompute identical plans:
    ///
    /// 1. **Racks first, heaviest first.** Each switch with directly
    ///    attached servers forms a unit with those servers. Units are
    ///    placed in decreasing weight order onto the feasible host with
    ///    the least load; a unit that fits nowhere whole is split —
    ///    switch to the least-loaded host with a switch slot, then
    ///    servers individually (preferring the switch's host on ties).
    /// 2. **Upper switches toward their children.** Switches with no
    ///    server children are placed deepest-first on the host already
    ///    holding the most of their children (minimising cut links),
    ///    ties broken by load then index.
    ///
    /// Every choice breaks load ties by *activation cost* — opening an
    /// untouched host costs its full $/hour, an already-rented host
    /// nothing — which is how upper switches land on cheap dedicated
    /// m4 switch hosts rather than opening fresh f1s.
    ///
    /// `link_latency` is the token batch size per transfer, used by the
    /// transport cost bounds.
    ///
    /// # Errors
    ///
    /// Rejects invalid topologies, duplicate agent names, and fleets
    /// with insufficient blade or switch capacity.
    pub fn place(
        &self,
        topo: &Topology,
        profile: &LoadProfile,
        link_latency: Cycle,
    ) -> SimResult<PlacementPlan> {
        topo.validate().map_err(SimError::topology)?;

        // Expand classes into concrete host slots, class order.
        let mut hosts: Vec<HostState> = Vec::new();
        for (ci, class) in self.classes.iter().enumerate() {
            for _ in 0..class.count {
                hosts.push(HostState {
                    class: ci,
                    blades_left: class.blade_capacity,
                    switches_left: class.switch_capacity,
                    load: 0.0,
                    used: false,
                });
            }
        }
        if hosts.is_empty() {
            return Err(SimError::topology("fleet spec has no hosts"));
        }

        let server_w: Vec<f64> = topo
            .servers
            .iter()
            .map(|s| profile.server_weight(&s.name))
            .collect();
        let switch_w: Vec<f64> = topo
            .switches
            .iter()
            .map(|s| profile.switch_weight(&s.name))
            .collect();

        let mut server_host: Vec<Option<usize>> = vec![None; topo.servers.len()];
        let mut switch_host: Vec<Option<usize>> = vec![None; topo.switches.len()];

        // Phase 1: rack units, heaviest first.
        let mut units: Vec<RackUnit> = Vec::new();
        for (sidx, sw) in topo.switches.iter().enumerate() {
            let servers: Vec<usize> = sw
                .children
                .iter()
                .filter_map(|c| match c {
                    NodeRef::Server(s) => Some(s.0),
                    NodeRef::Switch(_) => None,
                })
                .collect();
            if servers.is_empty() {
                continue;
            }
            let weight = switch_w[sidx] + servers.iter().map(|&i| server_w[i]).sum::<f64>();
            units.push(RackUnit {
                switch: sidx,
                servers,
                weight,
            });
        }
        units.sort_by(|a, b| b.weight.total_cmp(&a.weight).then(a.switch.cmp(&b.switch)));

        for unit in &units {
            // Try to keep the rack whole.
            let whole = hosts
                .iter()
                .enumerate()
                .filter(|(_, h)| h.blades_left >= unit.servers.len() && h.switches_left >= 1)
                .min_by(|(ia, a), (ib, b)| {
                    (a.load + unit.weight)
                        .total_cmp(&(b.load + unit.weight))
                        .then(
                            a.activation(&self.classes)
                                .total_cmp(&b.activation(&self.classes)),
                        )
                        .then(ia.cmp(ib))
                })
                .map(|(i, _)| i);
            if let Some(h) = whole {
                switch_host[unit.switch] = Some(h);
                hosts[h].switches_left -= 1;
                hosts[h].blades_left -= unit.servers.len();
                hosts[h].load += unit.weight;
                hosts[h].used = true;
                for &s in &unit.servers {
                    server_host[s] = Some(h);
                }
                continue;
            }
            // Split: switch to the least-loaded switch slot, then blades
            // one by one, preferring the switch's host on load ties.
            let sw_name = &topo.switches[unit.switch].name;
            let sw_host = hosts
                .iter()
                .enumerate()
                .filter(|(_, h)| h.switches_left >= 1)
                .min_by(|(ia, a), (ib, b)| {
                    a.load
                        .total_cmp(&b.load)
                        .then(
                            a.activation(&self.classes)
                                .total_cmp(&b.activation(&self.classes)),
                        )
                        .then(ia.cmp(ib))
                })
                .map(|(i, _)| i)
                .ok_or_else(|| {
                    SimError::topology(format!("fleet has no free switch slot for {sw_name:?}"))
                })?;
            switch_host[unit.switch] = Some(sw_host);
            hosts[sw_host].switches_left -= 1;
            hosts[sw_host].load += switch_w[unit.switch];
            hosts[sw_host].used = true;
            for &s in &unit.servers {
                let h = hosts
                    .iter()
                    .enumerate()
                    .filter(|(_, h)| h.blades_left >= 1)
                    .min_by(|(ia, a), (ib, b)| {
                        (a.load + server_w[s])
                            .total_cmp(&(b.load + server_w[s]))
                            .then(
                                a.activation(&self.classes)
                                    .total_cmp(&b.activation(&self.classes)),
                            )
                            .then((*ia != sw_host).cmp(&(*ib != sw_host)))
                            .then(ia.cmp(ib))
                    })
                    .map(|(i, _)| i)
                    .ok_or_else(|| {
                        SimError::topology(format!(
                            "fleet blade capacity exhausted placing {:?}",
                            topo.servers[s].name
                        ))
                    })?;
                server_host[s] = Some(h);
                hosts[h].blades_left -= 1;
                hosts[h].load += server_w[s];
                hosts[h].used = true;
            }
        }

        // Phase 2: switch-only switches, deepest first, pulled toward
        // the host holding the most of their children.
        let depth: Vec<usize> = (0..topo.switches.len())
            .map(|s| {
                let mut d = 0;
                let mut cur = topo.switches[s].parent;
                while let Some(p) = cur {
                    d += 1;
                    cur = topo.switches[p.0].parent;
                }
                d
            })
            .collect();
        let mut upper: Vec<usize> = (0..topo.switches.len())
            .filter(|&s| switch_host[s].is_none())
            .collect();
        upper.sort_by(|&a, &b| depth[b].cmp(&depth[a]).then(a.cmp(&b)));

        for sidx in upper {
            let affinity = |h: usize| -> usize {
                topo.switches[sidx]
                    .children
                    .iter()
                    .filter(|c| match c {
                        NodeRef::Switch(s) => switch_host[s.0] == Some(h),
                        NodeRef::Server(s) => server_host[s.0] == Some(h),
                    })
                    .count()
            };
            let w = switch_w[sidx];
            let h = hosts
                .iter()
                .enumerate()
                .filter(|(_, h)| h.switches_left >= 1)
                .min_by(|(ia, a), (ib, b)| {
                    affinity(*ib)
                        .cmp(&affinity(*ia))
                        .then((a.load + w).total_cmp(&(b.load + w)))
                        .then(
                            a.activation(&self.classes)
                                .total_cmp(&b.activation(&self.classes)),
                        )
                        .then(ia.cmp(ib))
                })
                .map(|(i, _)| i)
                .ok_or_else(|| {
                    SimError::topology(format!(
                        "fleet has no free switch slot for {:?}",
                        topo.switches[sidx].name
                    ))
                })?;
            switch_host[sidx] = Some(h);
            hosts[h].switches_left -= 1;
            hosts[h].load += w;
            hosts[h].used = true;
        }

        // Compact used hosts into dense shard ids, expansion order.
        let mut shard_of: Vec<Option<usize>> = vec![None; hosts.len()];
        let mut used: Vec<usize> = Vec::new();
        for h in server_host.iter().chain(switch_host.iter()) {
            let h = h.expect("placer assigned every agent");
            if shard_of[h].is_none() {
                shard_of[h] = Some(usize::MAX); // mark, number below
            }
        }
        for (h, s) in shard_of.iter_mut().enumerate() {
            if s.is_some() {
                *s = Some(used.len());
                used.push(h);
            }
        }
        let server_shard: Vec<usize> = server_host
            .iter()
            .map(|h| shard_of[h.unwrap()].unwrap())
            .collect();
        let switch_shard: Vec<usize> = switch_host
            .iter()
            .map(|h| shard_of[h.unwrap()].unwrap())
            .collect();
        let partition =
            PartitionPlan::from_assignment(topo, used.len(), server_shard, switch_shard)?;

        // Per-host assignment records, shard order.
        let mut assignments: Vec<HostAssignment> = used
            .iter()
            .map(|&h| {
                let class = &self.classes[hosts[h].class];
                HostAssignment {
                    class: class.name.clone(),
                    instance: class.instance,
                    cross_transport: class.cross_transport,
                    intra_transport: class.intra_transport,
                    dollars_per_hour: class.dollars_per_hour,
                    servers: Vec::new(),
                    switches: Vec::new(),
                    load: hosts[h].load,
                }
            })
            .collect();
        for (i, s) in topo.servers.iter().enumerate() {
            assignments[partition.server_shard(i)]
                .servers
                .push(s.name.clone());
        }
        for (i, s) in topo.switches.iter().enumerate() {
            assignments[partition.switch_shard(i)]
                .switches
                .push(s.name.clone());
        }

        let cost = self.cost_of(topo, &partition, &assignments, link_latency)?;
        Ok(PlacementPlan {
            hosts: assignments,
            partition,
            cost,
        })
    }

    /// Computes the min-of-bounds cost model for a placement.
    fn cost_of(
        &self,
        topo: &Topology,
        partition: &PartitionPlan,
        assignments: &[HostAssignment],
        link_latency: Cycle,
    ) -> SimResult<CostEstimate> {
        let fleet_per_hour: f64 = assignments.iter().map(|a| a.dollars_per_hour).sum();
        let batch_tokens = link_latency.as_u64();
        let mut rate_of_kind: BTreeMap<&'static str, f64> = BTreeMap::new();
        let mut kind_rate = |kind: TransportKind| -> f64 {
            *rate_of_kind.entry(kind.as_str()).or_insert_with(|| {
                Transport::of(kind).sim_rate_bound_hz(batch_tokens, self.token_bytes)
            })
        };

        let mut sim_rate_hz = f64::INFINITY;
        let mut bottleneck = String::new();

        for (h, a) in assignments.iter().enumerate() {
            if a.load > 0.0 {
                let rate = 1e12 / a.load;
                if rate < sim_rate_hz {
                    sim_rate_hz = rate;
                    bottleneck = format!("compute on host {h} ({})", a.class);
                }
            }
        }

        let mut cut_links = 0usize;
        for (sidx, sw) in topo.switches.iter().enumerate() {
            let ha = partition.switch_shard(sidx);
            for child in &sw.children {
                let (hb, child_name) = match child {
                    NodeRef::Server(s) => (partition.server_shard(s.0), &topo.servers[s.0].name),
                    NodeRef::Switch(s) => (partition.switch_shard(s.0), &topo.switches[s.0].name),
                };
                let (rate, kind) = if ha == hb {
                    let kind = assignments[ha].intra_transport;
                    (kind_rate(kind), kind)
                } else {
                    cut_links += 2;
                    let (ka, kb) = (
                        assignments[ha].cross_transport,
                        assignments[hb].cross_transport,
                    );
                    let (ra, rb) = (kind_rate(ka), kind_rate(kb));
                    if ra <= rb {
                        (ra, ka)
                    } else {
                        (rb, kb)
                    }
                };
                if rate < sim_rate_hz {
                    sim_rate_hz = rate;
                    bottleneck = format!("{kind} link {} -> {child_name}", sw.name);
                }
            }
        }

        if !sim_rate_hz.is_finite() || sim_rate_hz <= 0.0 {
            return Err(SimError::topology(
                "cost model needs at least one positive load weight",
            ));
        }
        let slowdown = self.target_hz / sim_rate_hz;
        Ok(CostEstimate {
            hosts_used: assignments.len(),
            fleet_per_hour,
            cut_links,
            sim_rate_hz,
            target_hz: self.target_hz,
            slowdown,
            dollars_per_sim_hour: fleet_per_hour * slowdown,
            bottleneck,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::BladeSpec;
    use firesim_blade::programs;

    fn spec() -> BladeSpec {
        BladeSpec::rtl_single_core(programs::boot_poweroff(1))
    }

    /// root -> `aggs` aggregation switches -> `tors_per_agg` ToRs each ->
    /// `servers_per_tor` servers each. `aggs == 0` attaches ToRs directly
    /// to the root.
    fn datacenter(aggs: usize, tors_per_agg: usize, servers_per_tor: usize) -> Topology {
        let mut t = Topology::new();
        let root = t.add_switch("root");
        let uppers: Vec<_> = if aggs == 0 {
            vec![root]
        } else {
            (0..aggs)
                .map(|a| {
                    let agg = t.add_switch(format!("agg{a}"));
                    t.add_downlink(root, agg).unwrap();
                    agg
                })
                .collect()
        };
        for (a, &up) in uppers.iter().enumerate() {
            for x in 0..tors_per_agg {
                let tor = t.add_switch(format!("tor{}_{x}", a));
                t.add_downlink(up, tor).unwrap();
                for y in 0..servers_per_tor {
                    let n = t.add_server(format!("node{}_{x}_{y}", a), spec());
                    t.add_downlink(tor, n).unwrap();
                }
            }
        }
        t
    }

    /// A small custom fleet for packing tests.
    fn tiny_fleet(blades: usize, switches: usize, count: usize) -> FleetSpec {
        FleetSpec {
            classes: vec![HostClass {
                name: "tiny".into(),
                instance: InstanceType::F1_2xlarge,
                blade_capacity: blades,
                switch_capacity: switches,
                count,
                cross_transport: TransportKind::Tcp,
                intra_transport: TransportKind::SharedMemory,
                dollars_per_hour: 1.0,
            }],
            token_bytes: 8,
            target_hz: 1e9,
        }
    }

    #[test]
    fn paper_1024_fleet_matches_the_paper() {
        // §V-C: 1024 nodes = 32 racks of 32, upper tree of 4 agg + root,
        // simulated on 32 f1.16xlarge + 5 m4.16xlarge.
        let topo = datacenter(4, 8, 32);
        assert_eq!(topo.server_count(), 1024);
        let plan = FleetSpec::ec2_default()
            .place(&topo, &LoadProfile::uniform(), Cycle::new(6400))
            .unwrap();

        let f1 = plan.hosts().iter().filter(|h| h.class == "f1.16xlarge");
        let m4 = plan.hosts().iter().filter(|h| h.class == "m4.16xlarge");
        assert_eq!(f1.count(), 32, "one f1 per 32-server rack");
        assert_eq!(m4.count(), 5, "4 agg + root on dedicated switch hosts");

        let c = plan.cost();
        assert_eq!(c.hosts_used, 37);
        // 32 × $13.20 + 5 × $3.20.
        assert!(
            (c.fleet_per_hour - 438.40).abs() < 1e-9,
            "{}",
            c.fleet_per_hour
        );
        // Cut tree edges: 32 ToR uplinks + 4 agg uplinks, two directed
        // links each.
        assert_eq!(c.cut_links, 72);
        // Bottleneck is f1 host compute: 32 servers × 1000 + ToR 250
        // ns/kilocycle → 1e12 / 32250 Hz ≈ 31.01 MHz, slower than the
        // 45.4 MHz TCP bound at 6400-token batches.
        assert!(
            (c.sim_rate_hz - 1e12 / 32_250.0).abs() < 1.0,
            "{}",
            c.sim_rate_hz
        );
        assert!(c.bottleneck.starts_with("compute"), "{}", c.bottleneck);
        let slowdown = 3.2e9 / (1e12 / 32_250.0);
        assert!((c.slowdown - slowdown).abs() < 1e-6);
        assert!((c.dollars_per_sim_hour - 438.40 * slowdown).abs() < 1e-3);

        // Spot pricing keeps the shape, shrinks the bill (Fig 12).
        let spot = FleetSpec::ec2_spot()
            .place(&topo, &LoadProfile::uniform(), Cycle::new(6400))
            .unwrap();
        assert_eq!(spot.cost().hosts_used, 37);
        assert!((spot.cost().fleet_per_hour - (32.0 * 3.03 + 5.0 * 0.62)).abs() < 1e-9);

        let text = plan.describe();
        assert!(text.contains("37 host(s)"), "{text}");
        assert!(text.contains("per simulated hour"), "{text}");
    }

    #[test]
    fn transport_becomes_the_bottleneck_at_short_latency() {
        // At 64-token batches TCP's 50 us latency dominates: bound =
        // 64 / (2 × 50.4096 us) ≈ 0.63 MHz, far below compute.
        let topo = datacenter(0, 2, 2);
        let plan = tiny_fleet(2, 1, 4)
            .place(&topo, &LoadProfile::uniform(), Cycle::new(64))
            .unwrap();
        let c = plan.cost();
        assert!(c.bottleneck.contains("tcp"), "{}", c.bottleneck);
        let expect = Transport::of(TransportKind::Tcp).sim_rate_bound_hz(64, 8);
        assert!((c.sim_rate_hz - expect).abs() < 1e-6);
    }

    #[test]
    fn racks_split_when_they_do_not_fit() {
        // One rack of 5 servers onto 2-blade hosts: the rack must split
        // but every agent is placed exactly once and capacity holds.
        let topo = datacenter(0, 1, 5);
        let fleet = tiny_fleet(2, 2, 4);
        let plan = fleet
            .place(&topo, &LoadProfile::uniform(), Cycle::new(64))
            .unwrap();
        let mut placed = 0;
        for h in plan.hosts() {
            assert!(h.servers.len() <= 2, "blade capacity exceeded");
            assert!(h.switches.len() <= 2, "switch capacity exceeded");
            placed += h.servers.len() + h.switches.len();
        }
        assert_eq!(placed, topo.server_count() + topo.switch_count());
        assert_eq!(plan.workers(), plan.partition().workers());

        // Determinism: identical inputs give an identical plan.
        let again = fleet
            .place(&topo, &LoadProfile::uniform(), Cycle::new(64))
            .unwrap();
        assert_eq!(plan.partition(), again.partition());
        assert_eq!(plan.cost(), again.cost());
    }

    #[test]
    fn hot_rack_lands_on_the_first_host() {
        // Skewing a rack's load reorders placement: the hot rack is
        // packed first (host 0), and the upper switch follows the
        // lighter host.
        let topo = datacenter(0, 2, 2); // root, tor0_0{n..}, tor0_1{n..}
        let mut profile = LoadProfile::uniform();
        profile.set("node0_1_0", 5000.0);
        profile.set("node0_1_1", 5000.0);
        let plan = tiny_fleet(2, 2, 3)
            .place(&topo, &profile, Cycle::new(64))
            .unwrap();
        assert!(
            plan.hosts()[0].servers.contains(&"node0_1_0".to_string()),
            "hot rack should be packed first: {:?}",
            plan.hosts()[0].servers
        );
        // Root joins the lighter rack's host rather than the hot one.
        let root_host = plan
            .hosts()
            .iter()
            .position(|h| h.switches.iter().any(|s| s == "root"))
            .unwrap();
        assert!(
            plan.hosts()[root_host]
                .servers
                .contains(&"node0_0_0".to_string()),
            "root should co-locate with the cooler rack"
        );
    }

    #[test]
    fn capacity_exhaustion_is_a_typed_error() {
        let topo = datacenter(0, 1, 5);
        let err = tiny_fleet(2, 2, 1)
            .place(&topo, &LoadProfile::uniform(), Cycle::new(64))
            .unwrap_err();
        assert!(matches!(err, SimError::Topology { .. }), "{err}");

        // No switch slots at all.
        let err = tiny_fleet(8, 0, 2)
            .place(&topo, &LoadProfile::uniform(), Cycle::new(64))
            .unwrap_err();
        assert!(matches!(err, SimError::Topology { .. }), "{err}");
    }

    #[test]
    fn profile_from_report_scales_host_ns() {
        let mut report = RunReport {
            cycles: 0,
            wall_ns: 0,
            host_threads: 1,
            sim_rate_mhz: 0.0,
            token_invariant_ok: true,
            run_id: None,
            cost: None,
            agents: Vec::new(),
            links: Vec::new(),
            counters: Vec::new(),
            histograms: Vec::new(),
            timeline: None,
        };
        report.agents.push(crate::report::AgentReport {
            name: "hot".into(),
            rounds: 0,
            target_cycles: 1000,
            windows_in: 0,
            tokens_in: 0,
            windows_out: 0,
            tokens_out: 0,
            host_ns: 7000,
            counters: Vec::new(),
        });
        let p = LoadProfile::from_report(&report);
        assert!((p.server_weight("hot") - 7000.0).abs() < 1e-9);
        // Unprofiled agents keep the uniform defaults.
        assert!((p.server_weight("cold") - 1000.0).abs() < 1e-9);
        assert!((p.switch_weight("tor") - 250.0).abs() < 1e-9);
    }
}
