//! Multi-process partitioned simulation (§III-B2's "scale-out" leg).
//!
//! FireSim's distinguishing claim is that the simulated datacenter can be
//! **split across hosts without changing its behavior**: every link is a
//! latency-N token stream, so as long as each partition only advances when
//! it holds input tokens for every cycle, the global simulation is
//! bit-identical no matter where the partition boundaries fall. This
//! module is the manager half of that story:
//!
//! * [`PartitionPlan`] deterministically assigns every server and switch
//!   of a [`Topology`] to one of N shards.
//! * [`run_partitioned`] spawns N worker *processes* (re-executing the
//!   current binary), hands each its shard, wires every cross-shard link
//!   over a [`TokenTransport`] backend (shared-memory ring, TCP, or
//!   Unix-domain socket), supervises the fleet against a deadline, and
//!   merges the workers' results.
//! * [`maybe_worker`] is the hook a binary calls first thing in `main` so
//!   that the re-exec'd children branch into worker mode.
//!
//! The acceptance invariant — checked by `tests/distributed.rs` — is the
//! paper's: a topology partitioned 1-way, 2-way, and 4-way produces
//! bit-identical per-agent checkpoint digests and identical deterministic
//! [`RunReport`] aggregates.
//!
//! ## Worker protocol
//!
//! Parent and workers share a *build function* `fn(&str) ->
//! SimResult<(Topology, SimConfig)>` plus an opaque spec string, so each
//! process reconstructs the same topology independently (blade app
//! factories are not serialisable; rebuilding is both simpler and how the
//! paper's manager works — every host runs the same configuration). The
//! parent exports `FIRESIM_PART_*` environment variables and re-executes
//! itself; the child's `maybe_worker` sees them, builds its shard, opens
//! transports via rendezvous files in the shared directory, runs, writes
//! `shard{i}.result.json`, and exits. A nonzero worker exit (or the
//! deadline) makes the parent kill the remaining fleet and return a
//! [`FailureReport`] naming the dead shard — the cross-process extension
//! of the supervisor's watchdog.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use firesim_core::{
    combined_digest, BoundaryInput, BoundaryOutput, Cycle, EngineCheckpoint, FaultPlan, SimError,
    SimResult,
};
use firesim_net::Flit;
use firesim_platform::{ShmTransport, SocketListener, SocketTransport, TokenTransport};

use crate::report::RunReport;
use crate::simulation::{ShardBoundaries, SimConfig, Simulation};
use crate::stream::{EventRecord, RunEndRecord, RunStartRecord, StreamRecord, StreamWriter};
use crate::supervisor::FailureReport;
use crate::topology::{NodeRef, Topology};

/// Builds the topology and config for a partitioned run from an opaque
/// spec string. Must be a plain function (not a closure): the parent and
/// every re-exec'd worker call it with the same spec and must produce
/// identical topologies.
pub type BuildFn = fn(&str) -> SimResult<(Topology, SimConfig)>;

/// Deterministic assignment of every topology node to a worker shard.
///
/// Servers are split contiguously (`shard = index * workers / servers`),
/// which for the paper's rack-structured topologies keeps each ToR with
/// its own servers; each switch follows the lowest-indexed server in its
/// subtree, so aggregation/root switches land with their first rack. Both
/// the parent and every worker compute the plan independently from the
/// same topology — there is no plan wire format to drift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    workers: usize,
    server_shard: Vec<usize>,
    switch_shard: Vec<usize>,
}

impl PartitionPlan {
    /// Computes the contiguous plan for `workers` shards.
    ///
    /// # Errors
    ///
    /// Rejects zero workers, more workers than servers (a shard must own
    /// at least one server), and duplicate agent names (shard results are
    /// merged by name, so names must be globally unique).
    pub fn contiguous(topo: &Topology, workers: usize) -> SimResult<PartitionPlan> {
        let servers = topo.servers.len();
        if workers == 0 {
            return Err(SimError::topology("a partition needs at least one worker"));
        }
        if workers > servers {
            return Err(SimError::topology(format!(
                "cannot split {servers} server(s) across {workers} workers \
                 (every shard must own at least one server)"
            )));
        }
        Self::check_unique_names(topo)?;
        let server_shard: Vec<usize> = (0..servers).map(|i| i * workers / servers).collect();
        let switch_shard = (0..topo.switches.len())
            .map(|s| {
                Self::min_server_in_subtree(topo, s)
                    .map(|i| server_shard[i])
                    .unwrap_or(0)
            })
            .collect();
        Ok(PartitionPlan {
            workers,
            server_shard,
            switch_shard,
        })
    }

    /// Builds a plan from an explicit per-node shard assignment — the
    /// fleet controller's load-aware output (see [`crate::fleet`]).
    ///
    /// Unlike [`PartitionPlan::contiguous`], a shard may own any mix of
    /// servers and switches — a shard holding only switch models is the
    /// paper's dedicated m4.16xlarge switch host — but every shard must
    /// own at least one agent.
    ///
    /// # Errors
    ///
    /// Rejects zero workers, assignment vectors whose lengths do not
    /// match the topology, out-of-range shard indices, empty shards, and
    /// duplicate agent names.
    pub fn from_assignment(
        topo: &Topology,
        workers: usize,
        server_shard: Vec<usize>,
        switch_shard: Vec<usize>,
    ) -> SimResult<PartitionPlan> {
        if workers == 0 {
            return Err(SimError::topology("a partition needs at least one worker"));
        }
        if server_shard.len() != topo.servers.len() || switch_shard.len() != topo.switches.len() {
            return Err(SimError::topology(format!(
                "assignment covers {}+{} nodes but the topology has {}+{}",
                server_shard.len(),
                switch_shard.len(),
                topo.servers.len(),
                topo.switches.len()
            )));
        }
        Self::check_unique_names(topo)?;
        let mut sizes = vec![0usize; workers];
        for &s in server_shard.iter().chain(switch_shard.iter()) {
            if s >= workers {
                return Err(SimError::topology(format!(
                    "shard index {s} out of range for {workers} workers"
                )));
            }
            sizes[s] += 1;
        }
        if let Some(empty) = sizes.iter().position(|&n| n == 0) {
            return Err(SimError::topology(format!("shard {empty} owns no agents")));
        }
        Ok(PartitionPlan {
            workers,
            server_shard,
            switch_shard,
        })
    }

    /// Folds this plan onto fewer workers (shard `h` maps to
    /// `h × workers / self.workers`), preserving co-location decisions
    /// while shrinking the process count — how a many-host
    /// [`PlacementPlan`](crate::fleet::PlacementPlan) runs on a small
    /// machine.
    ///
    /// # Errors
    ///
    /// Rejects zero workers and more workers than this plan has shards.
    pub fn fold(&self, workers: usize) -> SimResult<PartitionPlan> {
        if workers == 0 || workers > self.workers {
            return Err(SimError::topology(format!(
                "cannot fold a {}-shard plan onto {workers} worker(s)",
                self.workers
            )));
        }
        let map = |s: usize| s * workers / self.workers;
        Ok(PartitionPlan {
            workers,
            server_shard: self.server_shard.iter().map(|&s| map(s)).collect(),
            switch_shard: self.switch_shard.iter().map(|&s| map(s)).collect(),
        })
    }

    /// Encodes the plan for the worker environment
    /// (`FIRESIM_PART_PLAN`): `"workers;server,shards;switch,shards"`.
    pub fn encode(&self) -> String {
        let join = |v: &[usize]| {
            v.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{};{};{}",
            self.workers,
            join(&self.server_shard),
            join(&self.switch_shard)
        )
    }

    /// Decodes [`PartitionPlan::encode`] output, revalidating the
    /// assignment against the worker's own copy of the topology.
    ///
    /// # Errors
    ///
    /// Rejects malformed strings and anything
    /// [`PartitionPlan::from_assignment`] rejects.
    pub fn decode(topo: &Topology, s: &str) -> SimResult<PartitionPlan> {
        let bad = || SimError::protocol(format!("malformed partition plan {s:?}"));
        let mut parts = s.split(';');
        let workers: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let parse_list = |part: Option<&str>| -> SimResult<Vec<usize>> {
            part.ok_or_else(bad)?
                .split(',')
                .filter(|t| !t.is_empty())
                .map(|t| t.parse().map_err(|_| bad()))
                .collect()
        };
        let server_shard = parse_list(parts.next())?;
        let switch_shard = parse_list(parts.next())?;
        if parts.next().is_some() {
            return Err(bad());
        }
        Self::from_assignment(topo, workers, server_shard, switch_shard)
    }

    /// Enforces globally-unique agent names (shard results merge by
    /// name).
    fn check_unique_names(topo: &Topology) -> SimResult<()> {
        let mut names: HashSet<&str> = HashSet::new();
        for name in topo
            .servers
            .iter()
            .map(|s| s.name.as_str())
            .chain(topo.switches.iter().map(|s| s.name.as_str()))
        {
            if !names.insert(name) {
                return Err(SimError::topology(format!(
                    "duplicate agent name {name:?}: partitioned results merge by name"
                )));
            }
        }
        Ok(())
    }

    fn min_server_in_subtree(topo: &Topology, sidx: usize) -> Option<usize> {
        topo.switches[sidx]
            .children
            .iter()
            .filter_map(|c| match c {
                NodeRef::Server(s) => Some(s.0),
                NodeRef::Switch(s) => Self::min_server_in_subtree(topo, s.0),
            })
            .min()
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Shard owning server `idx` (topology registration order).
    pub fn server_shard(&self, idx: usize) -> usize {
        self.server_shard[idx]
    }

    /// Shard owning switch `idx` (topology registration order).
    pub fn switch_shard(&self, idx: usize) -> usize {
        self.switch_shard[idx]
    }

    /// Agents (servers + switches) assigned to each shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.workers];
        for &s in self.server_shard.iter().chain(self.switch_shard.iter()) {
            sizes[s] += 1;
        }
        sizes
    }
}

/// Which inter-process transport carries cross-shard token batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportChoice {
    /// File-backed shared-memory rings
    /// ([`firesim_platform::ShmTransport`]) — the paper's
    /// same-instance port, and the fastest option here.
    Shm,
    /// Loopback TCP ([`firesim_platform::SocketTransport`])
    /// — the paper's cross-instance port; use to exercise the full wire
    /// framing.
    Tcp,
    /// Unix-domain sockets — socket semantics without port allocation.
    Unix,
}

impl TransportChoice {
    /// Parses `shm` / `tcp` / `unix` (alias `uds`).
    ///
    /// # Errors
    ///
    /// Returns a descriptive error for anything else.
    pub fn parse(s: &str) -> SimResult<Self> {
        match s {
            "shm" => Ok(TransportChoice::Shm),
            "tcp" => Ok(TransportChoice::Tcp),
            "unix" | "uds" => Ok(TransportChoice::Unix),
            other => Err(SimError::topology(format!(
                "unknown transport {other:?} (expected shm, tcp, or unix)"
            ))),
        }
    }

    /// Canonical flag spelling (`shm` / `tcp` / `unix`), the inverse of
    /// [`TransportChoice::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            TransportChoice::Shm => "shm",
            TransportChoice::Tcp => "tcp",
            TransportChoice::Unix => "unix",
        }
    }
}

/// Configuration for [`run_partitioned`].
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Worker process count (1 runs the shard in-process, no spawn).
    pub workers: usize,
    /// Transport for cross-shard links.
    pub transport: TransportChoice,
    /// Target cycles every worker runs (rounded up to whole windows by
    /// the engine). Partitioned runs always use a fixed horizon — see
    /// [`Simulation::run_until_done`] for why.
    pub cycles: Cycle,
    /// Wall-clock budget for the whole fleet; exceeding it kills every
    /// worker and yields a [`FailureReport`] with `deadline_exceeded`.
    pub deadline: Duration,
    /// Rendezvous directory for transport endpoints and result files.
    /// `None` creates (and cleans up) a fresh directory under the system
    /// temp dir.
    pub rendezvous: Option<PathBuf>,
    /// Opaque spec string handed to the [`BuildFn`] in every process.
    pub spec: String,
    /// Test hook: `"<shard>:<agent>@<cycle>"` installs a
    /// [`FaultPlan::panic_at`] on that worker, for exercising the
    /// kill-one-worker failure path.
    pub worker_panic: Option<String>,
    /// Path to a chaos-scenario script ([`firesim_core::Scenario`]) that
    /// every worker loads, compiles against the shared topology, and
    /// applies to its shard before running. Because scenario effects are
    /// pure functions of the target cycle, the partitioned run stays
    /// digest-identical to a monolithic run of the same scenario.
    pub scenario: Option<String>,
    /// Explicit shard assignment (e.g. from a fleet
    /// [`PlacementPlan`](crate::fleet::PlacementPlan)); `None` falls
    /// back to [`PartitionPlan::contiguous`]. When set, `workers` must
    /// equal the plan's worker count.
    pub plan: Option<PartitionPlan>,
    /// Cycle at which every worker checkpoints mid-run (rounded up to a
    /// window boundary by the engine). Workers rendezvous on the
    /// checkpoint files before resuming, so the merged checkpoint is a
    /// consistent cut of the whole simulation.
    pub checkpoint_at: Option<Cycle>,
    /// Where the parent writes the merged `FSCKPT01` checkpoint taken at
    /// `checkpoint_at` — the input to a later repartitioned continuation.
    pub checkpoint_out: Option<PathBuf>,
    /// Merged checkpoint every worker restores (by agent name) before
    /// running; the run then continues to the **absolute** target
    /// `cycles`, regardless of how the checkpointing run was sharded.
    pub restore_from: Option<PathBuf>,
    /// Modeled fleet cost attached to the merged report
    /// ([`RunReport::cost`]).
    pub cost: Option<crate::fleet::CostEstimate>,
    /// Live telemetry sink spec (see
    /// [`StreamOut::parse`](crate::stream::StreamOut::parse)); `None`
    /// disables streaming entirely — nothing is sampled and no sink is
    /// held. Single-worker runs stream full per-interval records;
    /// multi-worker fleets stream merge-point records (worker
    /// lifecycle, checkpoint merge, final summary) from the parent.
    /// Streaming never feeds back into the simulation, so digests are
    /// identical with it on or off (`tests/telemetry.rs`).
    pub stream: Option<String>,
    /// Sampling interval in target cycles for streamed single-worker
    /// runs; `None` uses
    /// [`DEFAULT_STREAM_INTERVAL`](crate::stream::DEFAULT_STREAM_INTERVAL).
    pub stream_interval: Option<u64>,
}

impl PartitionConfig {
    /// A config with `workers` workers over shared memory and a 5-minute
    /// deadline.
    pub fn new(workers: usize, cycles: Cycle, spec: impl Into<String>) -> Self {
        PartitionConfig {
            workers,
            transport: TransportChoice::Shm,
            cycles,
            deadline: Duration::from_secs(300),
            rendezvous: None,
            spec: spec.into(),
            worker_panic: None,
            scenario: None,
            plan: None,
            checkpoint_at: None,
            checkpoint_out: None,
            restore_from: None,
            cost: None,
            stream: None,
            stream_interval: None,
        }
    }

    /// Adopts a fleet placement: worker count, shard assignment, and
    /// modeled cost (reported as [`RunReport::cost`]).
    #[must_use]
    pub fn with_placement(mut self, placement: &crate::fleet::PlacementPlan) -> Self {
        self.workers = placement.workers();
        self.plan = Some(placement.partition().clone());
        self.cost = Some(placement.cost().clone());
        self
    }
}

/// The merged outcome of a successful partitioned run.
#[derive(Debug, Clone)]
pub struct PartitionedRun {
    /// Worker count the run used.
    pub workers: usize,
    /// Target cycles reached (identical on every shard).
    pub cycles: Cycle,
    /// Per-agent checkpoint digests from every shard, name-sorted. Equal
    /// across 1/2/4-way partitionings of the same topology and horizon.
    pub digests: Vec<(String, u64)>,
    /// Order-independent fold of `digests`
    /// ([`firesim_core::combined_digest`]).
    pub combined_digest: u64,
    /// Shard reports merged by [`RunReport::merge_shards`].
    pub report: RunReport,
    /// Parent-observed wall clock for the whole fleet.
    pub wall: Duration,
}

const ENV_SHARD: &str = "FIRESIM_PART_SHARD";
const ENV_WORKERS: &str = "FIRESIM_PART_WORKERS";
const ENV_TRANSPORT: &str = "FIRESIM_PART_TRANSPORT";
const ENV_DIR: &str = "FIRESIM_PART_DIR";
const ENV_CYCLES: &str = "FIRESIM_PART_CYCLES";
const ENV_SPEC: &str = "FIRESIM_PART_SPEC";
const ENV_PANIC: &str = "FIRESIM_PART_PANIC";
const ENV_SCENARIO: &str = "FIRESIM_PART_SCENARIO";
const ENV_PLAN: &str = "FIRESIM_PART_PLAN";
const ENV_CKPT_AT: &str = "FIRESIM_PART_CKPT_AT";
const ENV_RESTORE: &str = "FIRESIM_PART_RESTORE";

/// Exit code a worker uses for simulation failures (vs. spawn problems).
const WORKER_FAILURE_EXIT: i32 = 70;

/// Worker-mode hook: call first in `main` of any binary that invokes
/// [`run_partitioned`].
///
/// When the process was spawned as a partition worker (the parent set
/// `FIRESIM_PART_SHARD`), this builds and runs the worker's shard and
/// **exits the process** — it only ever returns (with `false`) in the
/// parent. The indirection exists because workers are re-executions of
/// the current binary: there is no separate worker executable to ship.
pub fn maybe_worker(build: BuildFn) -> bool {
    let Ok(shard) = std::env::var(ENV_SHARD) else {
        return false;
    };
    let shard: usize = shard.parse().unwrap_or_else(|_| {
        eprintln!("invalid {ENV_SHARD}");
        std::process::exit(2);
    });
    let dir = PathBuf::from(std::env::var(ENV_DIR).unwrap_or_else(|_| {
        eprintln!("missing {ENV_DIR}");
        std::process::exit(2);
    }));
    match worker_main(build, shard, &dir) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            let msg = e.to_string();
            let _ = std::fs::write(dir.join(format!("shard{shard}.error")), &msg);
            eprintln!("worker shard {shard} failed: {msg}");
            std::process::exit(WORKER_FAILURE_EXIT);
        }
    }
}

fn env_var(name: &str) -> SimResult<String> {
    std::env::var(name).map_err(|_| SimError::topology(format!("worker missing {name}")))
}

fn worker_main(build: BuildFn, shard: usize, dir: &Path) -> SimResult<()> {
    let workers: usize = env_var(ENV_WORKERS)?
        .parse()
        .map_err(|_| SimError::topology("bad worker count"))?;
    let transport = TransportChoice::parse(&env_var(ENV_TRANSPORT)?)?;
    let cycles: u64 = env_var(ENV_CYCLES)?
        .parse()
        .map_err(|_| SimError::topology("bad cycle count"))?;
    let spec = env_var(ENV_SPEC)?;

    let (topo, config) = build(&spec)?;
    let plan = match std::env::var(ENV_PLAN) {
        Ok(enc) => {
            let plan = PartitionPlan::decode(&topo, &enc)?;
            if plan.workers() != workers {
                return Err(SimError::protocol(format!(
                    "plan has {} shards but the fleet spawned {workers} workers",
                    plan.workers()
                )));
            }
            plan
        }
        Err(_) => PartitionPlan::contiguous(&topo, workers)?,
    };
    // Compile against the full topology before the build consumes it;
    // every worker compiles the same script against the same tree, then
    // applies only its own shard's share.
    let scenario = match std::env::var(ENV_SCENARIO) {
        Ok(path) => Some(load_scenario(&path, &topo)?),
        Err(_) => None,
    };
    let mut sim = topo.build_shard(config, &plan, shard)?;
    if let Some(sc) = &scenario {
        sim.apply_scenario(sc)?;
    }

    if let Ok(hook) = std::env::var(ENV_PANIC) {
        install_panic_hook(&mut sim, shard, &hook)?;
    }

    // Restore before the pumps start: restoring replaces every input
    // queue, which would discard windows a faster peer had already
    // injected.
    if let Ok(path) = std::env::var(ENV_RESTORE) {
        let cp = EngineCheckpoint::load_from(Path::new(&path))?;
        sim.restore_by_name(&cp)?;
    }
    let checkpoint_at = match std::env::var(ENV_CKPT_AT) {
        Ok(v) => Some(Cycle::new(
            v.parse()
                .map_err(|_| SimError::topology("bad checkpoint cycle"))?,
        )),
        Err(_) => None,
    };

    let run_id = run_id_for(&spec, workers, cycles, transport);
    let result = run_shard(
        &mut sim,
        shard,
        workers,
        transport,
        dir,
        Cycle::new(cycles),
        checkpoint_at,
        run_id,
    )?;
    write_atomic(
        &dir.join(format!("shard{shard}.result.json")),
        result.to_string_pretty().as_bytes(),
    )
}

/// Loads and compiles a scenario script against `topo`'s neutral view.
fn load_scenario(path: &str, topo: &Topology) -> SimResult<firesim_core::CompiledScenario> {
    firesim_core::Scenario::load(path)?.compile(&topo.scenario_topology())
}

/// Parses `"<shard>:<agent>@<cycle>"` and arms the fault on a match.
fn install_panic_hook(sim: &mut Simulation, shard: usize, hook: &str) -> SimResult<()> {
    let parse = || -> Option<(usize, &str, u64)> {
        let (shard_s, rest) = hook.split_once(':')?;
        let (agent, cycle_s) = rest.split_once('@')?;
        Some((shard_s.parse().ok()?, agent, cycle_s.parse().ok()?))
    };
    let (target_shard, agent, cycle) =
        parse().ok_or_else(|| SimError::topology(format!("bad {ENV_PANIC} spec {hook:?}")))?;
    if target_shard == shard {
        let mut plan = FaultPlan::new(0);
        plan.panic_at(agent, cycle);
        sim.set_fault_plan(plan);
    }
    Ok(())
}

/// Shared identity of one partitioned run. Every shard stamps this on
/// its report so [`RunReport::merge_shards`] can reject merges across
/// different runs.
fn run_id_for(spec: &str, workers: usize, cycles: u64, transport: TransportChoice) -> String {
    format!("{spec}#{workers}w#{cycles}c#{}", transport.as_str())
}

/// Runs one shard to the absolute `cycles` target, pumping its
/// boundaries over `transport`, and returns the worker's result
/// document.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    sim: &mut Simulation,
    shard: usize,
    workers: usize,
    transport: TransportChoice,
    dir: &Path,
    cycles: Cycle,
    checkpoint_at: Option<Cycle>,
    run_id: String,
) -> SimResult<serde_json::Value> {
    let halt = Arc::new(AtomicBool::new(false));
    let boundaries = sim.take_boundaries();
    let pumps = start_pumps(boundaries, transport, dir, &halt)?;

    let run_result = run_legs(sim, shard, workers, dir, cycles, checkpoint_at);
    // Stop pumps whether or not the run succeeded; output pumps flush
    // everything already produced before exiting, so a healthy peer is
    // never starved by our shutdown.
    halt.store(true, Ordering::SeqCst);
    let mut pump_err = None;
    for pump in pumps {
        match pump.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => pump_err = Some(e),
            Err(_) => pump_err = Some(SimError::topology("boundary pump thread panicked")),
        }
    }
    let (ran, wall) = run_result?;
    if let Some(e) = pump_err {
        return Err(e);
    }

    let digests = sim.checkpoint()?.agent_digests();
    let mut report = sim.run_report(wall);
    report.run_id = Some(run_id);

    let mut obj = std::collections::BTreeMap::new();
    obj.insert("shard".to_owned(), serde_json::Value::from(shard as u64));
    obj.insert("cycles".to_owned(), serde_json::Value::from(ran.as_u64()));
    obj.insert(
        "digests".to_owned(),
        serde_json::Value::Array(
            digests
                .iter()
                .map(|(name, hash)| {
                    let mut d = std::collections::BTreeMap::new();
                    d.insert("name".to_owned(), serde_json::Value::from(name.as_str()));
                    d.insert("hash".to_owned(), serde_json::Value::from(*hash));
                    serde_json::Value::Object(d)
                })
                .collect(),
        ),
    );
    obj.insert(
        "report".to_owned(),
        serde_json::from_str(&report.to_json())
            .map_err(|e| SimError::checkpoint(format!("re-parsing own report: {e}")))?,
    );
    Ok(serde_json::Value::Object(obj))
}

/// Runs the shard to its absolute `target` cycle, optionally pausing at
/// `checkpoint_at` to write `shard{i}.ckpt` and rendezvous with every
/// peer before continuing. Returns `(cycles simulated, wall time)`.
///
/// The rendezvous is what makes the merged checkpoint a consistent cut:
/// a boundary queue buffers up to two windows, so a shard racing ahead
/// into its second leg could inject a window into a peer that has not
/// yet captured its own queues. No shard resumes until every shard's
/// checkpoint file exists; a dead peer leaves the poll spinning until
/// the parent's deadline kills the fleet.
fn run_legs(
    sim: &mut Simulation,
    shard: usize,
    workers: usize,
    dir: &Path,
    target: Cycle,
    checkpoint_at: Option<Cycle>,
) -> SimResult<(Cycle, Duration)> {
    let began = sim.now();
    let mut wall = Duration::ZERO;
    if let Some(at) = checkpoint_at {
        if at.as_u64() > sim.now().as_u64() && at.as_u64() <= target.as_u64() {
            let leg = sim.run_for(Cycle::new(at.as_u64() - sim.now().as_u64()))?;
            wall += leg.wall;
            let cp = sim.checkpoint()?;
            write_atomic(&dir.join(format!("shard{shard}.ckpt")), &cp.to_bytes())?;
            for peer in 0..workers {
                let path = dir.join(format!("shard{peer}.ckpt"));
                while !path.exists() {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
    if target.as_u64() > sim.now().as_u64() {
        let leg = sim.run_for(Cycle::new(target.as_u64() - sim.now().as_u64()))?;
        wall += leg.wall;
    }
    Ok((Cycle::new(sim.now().as_u64() - began.as_u64()), wall))
}

/// Opens every boundary transport (receivers listen first, then senders
/// connect, then receivers accept — an ordering that cannot deadlock) and
/// spawns one pump thread per directed boundary link.
fn start_pumps(
    boundaries: ShardBoundaries,
    transport: TransportChoice,
    dir: &Path,
    halt: &Arc<AtomicBool>,
) -> SimResult<Vec<JoinHandle<SimResult<()>>>> {
    // Phase 1: create all receiver-side endpoints so every peer's connect
    // phase finds something to attach to.
    enum Pending {
        Ready(Box<dyn TokenTransport<Flit>>),
        Listening(SocketListener),
    }
    let mut inputs: Vec<(BoundaryInput<Flit>, Pending)> = Vec::new();
    for (id, inp) in boundaries.inputs {
        let pending = match transport {
            TransportChoice::Shm => {
                Pending::Ready(Box::new(ShmTransport::<Flit>::create(&dir.join(&id))?))
            }
            TransportChoice::Tcp => {
                let listener = SocketListener::tcp("127.0.0.1:0")?;
                let addr = listener.local_addr()?.to_string();
                write_atomic(&dir.join(format!("{id}.addr")), addr.as_bytes())?;
                Pending::Listening(listener)
            }
            TransportChoice::Unix => {
                Pending::Listening(SocketListener::unix(&dir.join(format!("{id}.sock")))?)
            }
        };
        inputs.push((inp, pending));
    }

    // Phase 2: connect all sender-side endpoints. Blocks until the peer
    // finishes its phase 1, which it does unconditionally.
    let mut outputs: Vec<(BoundaryOutput<Flit>, Box<dyn TokenTransport<Flit>>)> = Vec::new();
    for (id, out) in boundaries.outputs {
        let tr: Box<dyn TokenTransport<Flit>> = match transport {
            TransportChoice::Shm => Box::new(ShmTransport::open(&dir.join(&id), halt)?),
            TransportChoice::Tcp => {
                let addr = poll_read(&dir.join(format!("{id}.addr")), halt)?;
                Box::new(SocketTransport::connect_tcp(&addr, halt)?)
            }
            TransportChoice::Unix => Box::new(SocketTransport::connect_unix(
                &dir.join(format!("{id}.sock")),
                halt,
            )?),
        };
        outputs.push((out, tr));
    }

    // Phase 3: accept. Blocks until the peer finishes its phase 2.
    let mut pumps = Vec::new();
    for (inp, pending) in inputs {
        let tr: Box<dyn TokenTransport<Flit>> = match pending {
            Pending::Ready(tr) => tr,
            Pending::Listening(listener) => Box::new(listener.accept::<Flit>()?),
        };
        pumps.push(spawn_input_pump(inp, tr, Arc::clone(halt)));
    }
    for (out, tr) in outputs {
        pumps.push(spawn_output_pump(out, tr, Arc::clone(halt)));
    }
    Ok(pumps)
}

fn spawn_output_pump(
    out: BoundaryOutput<Flit>,
    mut tr: Box<dyn TokenTransport<Flit>>,
    halt: Arc<AtomicBool>,
) -> JoinHandle<SimResult<()>> {
    std::thread::spawn(move || {
        while let Some(w) = out.drain_or_halt(&halt)? {
            tr.send_window(&w)?;
            out.recycle(w);
        }
        Ok(())
    })
}

fn spawn_input_pump(
    inp: BoundaryInput<Flit>,
    mut tr: Box<dyn TokenTransport<Flit>>,
    halt: Arc<AtomicBool>,
) -> JoinHandle<SimResult<()>> {
    std::thread::spawn(move || {
        while let Some(w) = tr.recv_window(&halt)? {
            if inp.inject_or_halt(w, &halt)?.is_some() {
                // Halted with the link at capacity: the engine is done
                // with this window's cycles; drop it and stop pumping.
                break;
            }
        }
        Ok(())
    })
}

/// Polls a rendezvous file into a string (trimmed), honouring `halt`.
fn poll_read(path: &Path, halt: &AtomicBool) -> SimResult<String> {
    loop {
        if let Ok(s) = std::fs::read_to_string(path) {
            if !s.trim().is_empty() {
                return Ok(s.trim().to_owned());
            }
        }
        if halt.load(Ordering::SeqCst) {
            return Err(SimError::aborted(format!(
                "halted waiting for rendezvous file {}",
                path.display()
            )));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Writes `bytes` then renames into place, so readers never observe a
/// partially written file.
fn write_atomic(path: &Path, bytes: &[u8]) -> SimResult<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)
        .map_err(|e| SimError::io(format!("writing {}", tmp.display()), &e))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| SimError::io(format!("publishing {}", path.display()), &e))
}

/// Distinguishes concurrent partitioned runs sharing one parent process.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Runs `cfg.spec` partitioned across `cfg.workers` processes and merges
/// the result.
///
/// With one worker the shard runs in-process (no spawn, no transports) —
/// the degenerate case the multi-process results must be bit-identical
/// to. With more, the current executable is re-executed once per shard
/// (see [`maybe_worker`]) and supervised against `cfg.deadline`.
///
/// # Errors
///
/// Returns a [`FailureReport`] naming the failing shard (as
/// `failing_agent = Some("shard{i}")`) when a worker dies, or with
/// `deadline_exceeded` when the fleet outlives its budget. Build errors
/// in the parent are reported the same way with `failing_agent = None`.
pub fn run_partitioned(
    build: BuildFn,
    cfg: &PartitionConfig,
) -> Result<PartitionedRun, Box<FailureReport>> {
    let start = Instant::now();
    let fail = |error: SimError, failing: Option<String>, deadline: bool| {
        Box::new(FailureReport {
            error,
            failing_agent: failing,
            fail_cycle: 0,
            last_checkpoint: None,
            attempts: 1,
            injected_faults: Vec::new(),
            stalled: false,
            deadline_exceeded: deadline,
        })
    };

    if cfg.workers == 1 {
        return run_single(build, cfg, start).map_err(|e| fail(e, None, false));
    }

    let dir = match &cfg.rendezvous {
        Some(d) => d.clone(),
        None => std::env::temp_dir().join(format!(
            "firesim-part-{}-{}",
            std::process::id(),
            RUN_SEQ.fetch_add(1, Ordering::Relaxed)
        )),
    };
    std::fs::create_dir_all(&dir)
        .map_err(|e| fail(SimError::io("creating rendezvous dir", &e), None, false))?;
    let cleanup = cfg.rendezvous.is_none();
    let result = run_fleet(cfg, &dir, start, &fail);
    if cleanup {
        let _ = std::fs::remove_dir_all(&dir);
    }
    result
}

fn run_single(
    build: BuildFn,
    cfg: &PartitionConfig,
    start: Instant,
) -> Result<PartitionedRun, SimError> {
    let (topo, config) = build(&cfg.spec)?;
    let plan = match &cfg.plan {
        Some(plan) => {
            if plan.workers() != 1 {
                return Err(SimError::topology(format!(
                    "config says 1 worker but the plan has {} shards",
                    plan.workers()
                )));
            }
            plan.clone()
        }
        None => PartitionPlan::contiguous(&topo, 1)?,
    };
    let scenario = match &cfg.scenario {
        Some(path) => Some(load_scenario(path, &topo)?),
        None => None,
    };
    let mut sim = topo.build_shard(config, &plan, 0)?;
    if let Some(sc) = &scenario {
        sim.apply_scenario(sc)?;
    }
    // Merged checkpoints are name-sorted, not registration-ordered, so
    // the monolithic continuation also restores by name.
    if let Some(path) = &cfg.restore_from {
        let cp = EngineCheckpoint::load_from(path)?;
        sim.restore_by_name(&cp)?;
    }
    // A streamed run advances in interval-sized `run_for` legs instead
    // of one long one — the leg-splitting the checkpoint/repartition
    // paths already prove is digest-identical. The probe primes at the
    // current cycle, so restored runs stream deltas from the restore
    // point.
    let mut stream = match &cfg.stream {
        Some(spec) => {
            sim.enable_metrics();
            let writer = crate::stream::StreamWriter::open(spec)?;
            let meta = crate::stream::StreamMeta {
                run_id: Some(run_id_for(&cfg.spec, 1, cfg.cycles.as_u64(), cfg.transport)),
                spec: cfg.spec.clone(),
                workers: 1,
                transport: None,
            };
            let mut session = crate::stream::StreamSession::begin(
                writer,
                &meta,
                &mut sim,
                cfg.cycles,
                cfg.stream_interval.unwrap_or(0),
            )?;
            if let Some(path) = &cfg.restore_from {
                session.event(
                    sim.now().as_u64(),
                    "restore",
                    &format!("restored from {}", path.display()),
                )?;
            }
            Some(session)
        }
        None => None,
    };
    let began = sim.now();
    let mut wall = Duration::ZERO;
    if let Some(at) = cfg.checkpoint_at {
        if at.as_u64() > sim.now().as_u64() && at.as_u64() <= cfg.cycles.as_u64() {
            match &mut stream {
                Some(session) => session.run_to(&mut sim, at, false)?,
                None => {
                    let leg = sim.run_for(Cycle::new(at.as_u64() - sim.now().as_u64()))?;
                    wall += leg.wall;
                }
            }
            if let Some(out) = &cfg.checkpoint_out {
                sim.checkpoint()?.save_to(out)?;
                if let Some(session) = &mut stream {
                    session.event(
                        at.as_u64(),
                        "checkpoint",
                        &format!("checkpoint saved to {}", out.display()),
                    )?;
                }
            }
        }
    }
    if cfg.cycles.as_u64() > sim.now().as_u64() {
        match &mut stream {
            Some(session) => session.run_to(&mut sim, cfg.cycles, false)?,
            None => {
                let leg = sim.run_for(Cycle::new(cfg.cycles.as_u64() - sim.now().as_u64()))?;
                wall += leg.wall;
            }
        }
    }
    if let Some(session) = stream {
        wall += session.finish(&sim)?.wall;
    }
    let digests = sim.checkpoint()?.agent_digests();
    let digest = combined_digest(&digests);
    let mut digests = digests;
    digests.sort();
    let mut report = sim.run_report(wall);
    report.run_id = Some(run_id_for(&cfg.spec, 1, cfg.cycles.as_u64(), cfg.transport));
    report.cost = cfg.cost.clone();
    Ok(PartitionedRun {
        workers: 1,
        cycles: Cycle::new(sim.now().as_u64() - began.as_u64()),
        combined_digest: digest,
        digests,
        report,
        wall: start.elapsed(),
    })
}

#[allow(clippy::type_complexity)]
fn run_fleet(
    cfg: &PartitionConfig,
    dir: &Path,
    start: Instant,
    fail: &dyn Fn(SimError, Option<String>, bool) -> Box<FailureReport>,
) -> Result<PartitionedRun, Box<FailureReport>> {
    let exe = std::env::current_exe()
        .map_err(|e| fail(SimError::io("locating current executable", &e), None, false))?;

    if let Some(plan) = &cfg.plan {
        if plan.workers() != cfg.workers {
            return Err(fail(
                SimError::topology(format!(
                    "config says {} workers but the plan has {} shards",
                    cfg.workers,
                    plan.workers()
                )),
                None,
                false,
            ));
        }
    }

    // The fleet parent streams merge points only: it never builds the
    // topology, so per-interval samples come from single-worker runs
    // (or future per-shard feeds), and the parent's feed carries worker
    // lifecycle, checkpoint-merge markers, and the final summary.
    // Worker exit order is host-dependent, so fleet feeds are not
    // golden-fixtured (DESIGN §17).
    let mut stream = match &cfg.stream {
        Some(spec) => {
            let mut w = StreamWriter::open(spec).map_err(|e| fail(e, None, false))?;
            w.emit(&StreamRecord::RunStart(RunStartRecord {
                run_id: Some(run_id_for(
                    &cfg.spec,
                    cfg.workers,
                    cfg.cycles.as_u64(),
                    cfg.transport,
                )),
                spec: cfg.spec.clone(),
                agents: 0,
                workers: cfg.workers as u64,
                target_cycles: cfg.cycles.as_u64(),
                window: 0,
                interval: 0,
                transport: Some(cfg.transport.as_str().to_owned()),
            }))
            .map_err(|e| fail(e, None, false))?;
            Some(w)
        }
        None => None,
    };
    let emit_event = |stream: &mut Option<StreamWriter>, cycle: u64, kind: &str, label: String| {
        if let Some(w) = stream {
            let _ = w.emit(&StreamRecord::Event(EventRecord {
                cycle,
                kind: kind.to_owned(),
                label,
            }));
        }
    };

    let mut children: Vec<(usize, Child)> = Vec::new();
    let kill_all = |children: &mut Vec<(usize, Child)>| {
        for (_, child) in children.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    };
    for shard in 0..cfg.workers {
        let mut cmd = Command::new(&exe);
        cmd.env(ENV_SHARD, shard.to_string())
            .env(ENV_WORKERS, cfg.workers.to_string())
            .env(ENV_TRANSPORT, cfg.transport.as_str())
            .env(ENV_DIR, dir)
            .env(ENV_CYCLES, cfg.cycles.as_u64().to_string())
            .env(ENV_SPEC, &cfg.spec)
            .stdin(Stdio::null());
        if let Some(hook) = &cfg.worker_panic {
            cmd.env(ENV_PANIC, hook);
        }
        if let Some(path) = &cfg.scenario {
            cmd.env(ENV_SCENARIO, path);
        }
        if let Some(plan) = &cfg.plan {
            cmd.env(ENV_PLAN, plan.encode());
        }
        if let Some(at) = cfg.checkpoint_at {
            cmd.env(ENV_CKPT_AT, at.as_u64().to_string());
        }
        if let Some(path) = &cfg.restore_from {
            cmd.env(ENV_RESTORE, path);
        }
        match cmd.spawn() {
            Ok(child) => {
                emit_event(
                    &mut stream,
                    0,
                    "worker_spawn",
                    format!("shard{shard} pid={}", child.id()),
                );
                children.push((shard, child));
            }
            Err(e) => {
                kill_all(&mut children);
                return Err(fail(
                    SimError::io(format!("spawning worker shard {shard}"), &e),
                    Some(format!("shard{shard}")),
                    false,
                ));
            }
        }
    }

    // Supervise: any nonzero exit or the deadline kills the whole fleet —
    // the cross-process analogue of the supervisor's watchdog.
    let mut exited: HashSet<usize> = HashSet::new();
    let mut remaining = children.len();
    while remaining > 0 {
        if start.elapsed() > cfg.deadline {
            kill_all(&mut children);
            return Err(fail(
                SimError::aborted(format!(
                    "partitioned run exceeded its {:?} deadline",
                    cfg.deadline
                )),
                None,
                true,
            ));
        }
        let mut failure: Option<(usize, String)> = None;
        for (shard, child) in children.iter_mut() {
            if failure.is_some() {
                break;
            }
            match child.try_wait() {
                Ok(None) => {}
                Ok(Some(status)) if status.success() => {}
                Ok(Some(status)) => {
                    let msg = std::fs::read_to_string(dir.join(format!("shard{shard}.error")))
                        .unwrap_or_else(|_| format!("worker exited with {status}"));
                    failure = Some((*shard, msg.trim().to_owned()));
                }
                Err(e) => failure = Some((*shard, format!("waiting on worker: {e}"))),
            }
        }
        if let Some((shard, msg)) = failure {
            kill_all(&mut children);
            return Err(fail(
                SimError::agent(format!("shard{shard}"), msg),
                Some(format!("shard{shard}")),
                false,
            ));
        }
        // try_wait returning Ok(Some(success)) keeps returning that same
        // status on subsequent polls, so counting exits each pass is safe.
        remaining = 0;
        for (shard, c) in children.iter_mut() {
            if matches!(c.try_wait(), Ok(None)) {
                remaining += 1;
            } else if exited.insert(*shard) {
                emit_event(&mut stream, 0, "worker_exit", format!("shard{shard} done"));
            }
        }
        if remaining > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    // Merge the shard results.
    let mut digests: Vec<(String, u64)> = Vec::new();
    let mut reports: Vec<RunReport> = Vec::new();
    let mut cycles = 0u64;
    for shard in 0..cfg.workers {
        let path = dir.join(format!("shard{shard}.result.json"));
        let text = std::fs::read_to_string(&path).map_err(|e| {
            fail(
                SimError::io(format!("reading {}", path.display()), &e),
                None,
                false,
            )
        })?;
        let (shard_cycles, shard_digests, report) = parse_worker_result(&text)
            .map_err(|e| fail(e, Some(format!("shard{shard}")), false))?;
        if shard > 0 && shard_cycles != cycles {
            return Err(fail(
                SimError::protocol(format!(
                    "shard {shard} reached cycle {shard_cycles}, others {cycles}: \
                     the fleet desynchronised"
                )),
                Some(format!("shard{shard}")),
                false,
            ));
        }
        cycles = shard_cycles;
        digests.extend(shard_digests);
        reports.push(report);
    }
    let digest = combined_digest(&digests);
    digests.sort();

    // Fold the per-shard checkpoint files into one name-sorted FSCKPT01
    // checkpoint any future sharding can restore from.
    if let (Some(at), Some(out)) = (cfg.checkpoint_at, &cfg.checkpoint_out) {
        let parts = (0..cfg.workers)
            .map(|shard| {
                EngineCheckpoint::<Flit>::load_from(dir.join(format!("shard{shard}.ckpt")))
            })
            .collect::<SimResult<Vec<_>>>()
            .map_err(|e| fail(e, None, false))?;
        EngineCheckpoint::merge(parts)
            .and_then(|cp| cp.save_to(out))
            .map_err(|e| fail(e, None, false))?;
        emit_event(
            &mut stream,
            at.as_u64(),
            "checkpoint",
            format!("merged checkpoint saved to {}", out.display()),
        );
    }

    let mut report = RunReport::merge_shards(&reports).map_err(|e| fail(e, None, false))?;
    report.cost = cfg.cost.clone();
    if let Some(w) = &mut stream {
        let _ = w.emit(&StreamRecord::RunEnd(RunEndRecord {
            cycle: cycles,
            intervals: 0,
            wall_ns: start.elapsed().as_nanos() as u64,
            done: false,
        }));
    }
    Ok(PartitionedRun {
        workers: cfg.workers,
        cycles: Cycle::new(cycles),
        combined_digest: digest,
        digests,
        report,
        wall: start.elapsed(),
    })
}

/// `(cycles, per-agent digests, report)` parsed from a worker's result file.
type WorkerResult = (u64, Vec<(String, u64)>, RunReport);

fn parse_worker_result(text: &str) -> SimResult<WorkerResult> {
    let value: serde_json::Value = serde_json::from_str(text)
        .map_err(|e| SimError::checkpoint(format!("malformed worker result: {e}")))?;
    let obj = value
        .as_object()
        .ok_or_else(|| SimError::checkpoint("worker result must be an object"))?;
    let cycles = obj
        .get("cycles")
        .and_then(serde_json::Value::as_u64)
        .ok_or_else(|| SimError::checkpoint("worker result missing cycles"))?;
    let digests = match obj.get("digests") {
        Some(serde_json::Value::Array(items)) => items
            .iter()
            .map(|d| {
                let d = d
                    .as_object()
                    .ok_or_else(|| SimError::checkpoint("digest entry must be an object"))?;
                let name = d
                    .get("name")
                    .and_then(serde_json::Value::as_str)
                    .ok_or_else(|| SimError::checkpoint("digest missing name"))?;
                let hash = d
                    .get("hash")
                    .and_then(serde_json::Value::as_u64)
                    .ok_or_else(|| SimError::checkpoint("digest missing hash"))?;
                Ok((name.to_owned(), hash))
            })
            .collect::<SimResult<Vec<_>>>()?,
        _ => return Err(SimError::checkpoint("worker result missing digests")),
    };
    let report = obj
        .get("report")
        .ok_or_else(|| SimError::checkpoint("worker result missing report"))
        .and_then(|r| {
            RunReport::from_json(&r.to_string_pretty())
                .map_err(|e| SimError::checkpoint(format!("re-parsing shard report: {e}")))
        })?;
    Ok((cycles, digests, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::BladeSpec;
    use firesim_blade::programs;

    fn racked_topology(racks: usize, per_rack: usize) -> Topology {
        let mut topo = Topology::new();
        let root = topo.add_switch("root");
        for r in 0..racks {
            let tor = topo.add_switch(format!("tor{r}"));
            topo.add_downlink(root, tor).unwrap();
            for n in 0..per_rack {
                let id = topo.add_server(
                    format!("n{r}x{n}"),
                    BladeSpec::rtl_single_core(programs::boot_poweroff(50)),
                );
                topo.add_downlink(tor, id).unwrap();
            }
        }
        topo
    }

    #[test]
    fn contiguous_plan_keeps_racks_together() {
        let topo = racked_topology(4, 2); // 8 servers, 4 ToRs + root
        let plan = PartitionPlan::contiguous(&topo, 4).unwrap();
        // Two servers per shard, each rack whole.
        assert_eq!(
            (0..8).map(|i| plan.server_shard(i)).collect::<Vec<_>>(),
            vec![0, 0, 1, 1, 2, 2, 3, 3]
        );
        // ToR r follows its rack; root follows server 0's shard.
        assert_eq!(plan.switch_shard(0), 0); // root
        assert_eq!(
            (1..5).map(|s| plan.switch_shard(s)).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(plan.shard_sizes().iter().sum::<usize>(), 8 + 5);
    }

    #[test]
    fn plan_rejects_bad_worker_counts() {
        let topo = racked_topology(1, 2);
        assert!(PartitionPlan::contiguous(&topo, 0).is_err());
        assert!(PartitionPlan::contiguous(&topo, 3).is_err());
        assert!(PartitionPlan::contiguous(&topo, 2).is_ok());
    }

    #[test]
    fn contiguous_single_shard_owns_everything() {
        let topo = racked_topology(2, 2);
        let plan = PartitionPlan::contiguous(&topo, 1).unwrap();
        assert_eq!(plan.workers(), 1);
        assert_eq!(plan.shard_sizes(), vec![4 + 3]);
        assert!((0..4).all(|i| plan.server_shard(i) == 0));
        assert!((0..3).all(|s| plan.switch_shard(s) == 0));
    }

    #[test]
    fn contiguous_switch_only_subtree_defaults_to_shard_zero() {
        // A subtree with no servers anywhere below it is possible on
        // not-yet-validated topologies; the plan parks it on shard 0
        // rather than panicking.
        let mut topo = racked_topology(2, 1);
        let empty = topo.add_switch("empty-agg");
        let leaf = topo.add_switch("empty-leaf");
        topo.add_downlink(empty, leaf).unwrap();
        let plan = PartitionPlan::contiguous(&topo, 2).unwrap();
        // Switches: root(0), tor0(1), tor1(2), empty-agg(3), empty-leaf(4).
        assert_eq!(plan.switch_shard(2), 1, "tor1 follows its server");
        assert_eq!(plan.switch_shard(3), 0);
        assert_eq!(plan.switch_shard(4), 0);
    }

    #[test]
    fn assignment_plans_validate_fold_and_round_trip() {
        // Servers n0x0,n0x1,n1x0,n1x1; switches root(0),tor0(1),tor1(2).
        let topo = racked_topology(2, 2);
        // Load-aware-style plan: rack 1 on shard 0, rack 0 on shard 1,
        // root alone on a switch-only shard (legal here, unlike
        // `contiguous`).
        let plan =
            PartitionPlan::from_assignment(&topo, 3, vec![1, 1, 0, 0], vec![2, 1, 0]).unwrap();
        assert_eq!(plan.shard_sizes(), vec![3, 3, 1]);
        let enc = plan.encode();
        assert_eq!(PartitionPlan::decode(&topo, &enc).unwrap(), plan);

        // Folding onto 2 workers maps shard h -> h * 2 / 3.
        let folded = plan.fold(2).unwrap();
        assert_eq!(folded.workers(), 2);
        assert_eq!(folded.shard_sizes(), vec![6, 1]);
        assert!(plan.fold(0).is_err());
        assert!(plan.fold(4).is_err());

        // Out-of-range shard, empty shard, and length mismatches are
        // typed errors, as is a truncated or garbled wire form.
        assert!(PartitionPlan::from_assignment(&topo, 2, vec![0, 0, 0, 2], vec![0, 0, 0]).is_err());
        assert!(PartitionPlan::from_assignment(&topo, 3, vec![0, 0, 0, 0], vec![1, 1, 1]).is_err());
        assert!(PartitionPlan::from_assignment(&topo, 2, vec![0, 0], vec![0, 0, 1]).is_err());
        assert!(PartitionPlan::decode(&topo, "2;0,0,1,1").is_err());
        assert!(PartitionPlan::decode(&topo, "junk").is_err());
    }

    #[test]
    fn plan_rejects_duplicate_names() {
        let mut topo = Topology::new();
        let tor = topo.add_switch("tor");
        for _ in 0..2 {
            let n = topo.add_server(
                "same-name",
                BladeSpec::rtl_single_core(programs::boot_poweroff(1)),
            );
            topo.add_downlink(tor, n).unwrap();
        }
        let err = PartitionPlan::contiguous(&topo, 2).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn transport_choice_parses() {
        assert_eq!(TransportChoice::parse("shm").unwrap(), TransportChoice::Shm);
        assert_eq!(TransportChoice::parse("tcp").unwrap(), TransportChoice::Tcp);
        assert_eq!(
            TransportChoice::parse("uds").unwrap(),
            TransportChoice::Unix
        );
        assert!(TransportChoice::parse("carrier-pigeon").is_err());
    }

    /// Two shards of a two-rack topology, wired over in-process boundary
    /// pumps via real shm rings in one process — the single-process dry
    /// run of what `run_partitioned` does across processes.
    #[test]
    fn sharded_build_exposes_boundary_ports() {
        let topo = racked_topology(2, 2);
        let plan = PartitionPlan::contiguous(&topo, 2).unwrap();
        let mut shard0 = racked_topology(2, 2)
            .build_shard(SimConfig::default(), &plan, 0)
            .unwrap();
        let mut shard1 = topo.build_shard(SimConfig::default(), &plan, 1).unwrap();
        let b0 = shard0.take_boundaries();
        let b1 = shard1.take_boundaries();
        // One tree edge (root -> tor1) crosses the cut; two directed links.
        assert_eq!(b0.outputs.len(), 1);
        assert_eq!(b0.inputs.len(), 1);
        assert_eq!(b1.outputs.len(), 1);
        assert_eq!(b1.inputs.len(), 1);
        // The ids pair up: shard0's output id is shard1's input id.
        assert_eq!(b0.outputs[0].0, b1.inputs[0].0);
        assert_eq!(b1.outputs[0].0, b0.inputs[0].0);
    }

    #[test]
    fn monolithic_build_has_no_boundaries() {
        let mut sim = racked_topology(2, 2).build(SimConfig::default()).unwrap();
        assert!(sim.take_boundaries().is_empty());
    }
}
