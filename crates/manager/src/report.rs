//! Machine-readable run reports.
//!
//! The paper's manager collects "host/target-level measurements for
//! analysis outside the simulation". [`RunReport`] is the structured
//! artifact that carries them: per-agent profiles (rounds, target
//! cycles, token traffic, host time), per-link occupancies that witness
//! the latency-*N* token invariant, application counters exported by the
//! models, and the aggregated [`MetricsRegistry`] counters/histograms.
//! It round-trips through JSON (for dashboards and CI artifacts) and
//! renders a human summary for terminals.
//!
//! [`MetricsRegistry`]: firesim_core::MetricsRegistry

use std::collections::BTreeMap;
use std::time::Duration;

use serde_json::Value;

use firesim_core::{Engine, LinkOccupancy, RecoveryTimeline, SimError, SimResult, TimelinePoint};

use crate::fleet::CostEstimate;

/// One agent's accumulated profile plus its exported app counters.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentReport {
    /// Agent name.
    pub name: String,
    /// Windows stepped.
    pub rounds: u64,
    /// Target cycles advanced.
    pub target_cycles: u64,
    /// Input windows consumed.
    pub windows_in: u64,
    /// Input tokens consumed.
    pub tokens_in: u64,
    /// Output windows produced.
    pub windows_out: u64,
    /// Output tokens produced.
    pub tokens_out: u64,
    /// Host nanoseconds spent inside the agent (host-dependent; excluded
    /// from determinism comparisons).
    pub host_ns: u64,
    /// Application counters from [`SimAgent::app_counters`].
    ///
    /// [`SimAgent::app_counters`]: firesim_core::SimAgent::app_counters
    pub counters: Vec<(String, u64)>,
}

/// One sampled-mode blade's IPC estimate with its 95% confidence
/// interval, extracted from the blade's `sampling_*` app counters by
/// [`RunReport::sampling_summary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplingSummary {
    /// Blade name.
    pub name: String,
    /// Completed detailed windows feeding the estimate.
    pub windows: u64,
    /// Blade IPC estimate, permille.
    pub ipc_est_permille: u64,
    /// 95% CI lower edge on the per-window IPC mean, permille.
    pub ci_lo_permille: u64,
    /// 95% CI upper edge on the per-window IPC mean, permille.
    pub ci_hi_permille: u64,
}

/// One link's occupancy at a quiescent window boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkReport {
    /// Receiving agent.
    pub agent: String,
    /// Receiving input port.
    pub port: usize,
    /// Configured link latency in cycles.
    pub latency: u64,
    /// Tokens in flight. Equals `latency` between runs — the paper's
    /// token-transport invariant.
    pub in_flight_tokens: u64,
}

/// Summary statistics of one aggregated histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Histogram name, e.g. `"engine/chunk_host_ns"`.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
}

/// A machine-readable account of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Target cycles reached.
    pub cycles: u64,
    /// Host wall-clock nanoseconds for the run.
    pub wall_ns: u64,
    /// Host worker threads configured.
    pub host_threads: usize,
    /// Achieved simulation rate in target-MHz.
    pub sim_rate_mhz: f64,
    /// True when every link held exactly `latency` tokens at collection
    /// time.
    pub token_invariant_ok: bool,
    /// Per-agent profiles, in registration order.
    pub agents: Vec<AgentReport>,
    /// Per-link occupancies, in registration order.
    pub links: Vec<LinkReport>,
    /// Aggregated registry counters, in registration order.
    pub counters: Vec<(String, u64)>,
    /// Aggregated registry histograms, summarised.
    pub histograms: Vec<HistogramSummary>,
    /// Recovery timeline of a chaos-scenario run: per-interval
    /// delivered/dropped/masked token counts on the links the scenario
    /// touched, with `(cycle, label)` event annotations. `None` when no
    /// scenario (or one with no timeline interval) was applied.
    pub timeline: Option<RecoveryTimeline>,
    /// Identity of the partitioned run this report came from (spec,
    /// worker count, cycles, transport). Shards of one run share it;
    /// [`RunReport::merge_shards`] refuses to merge across different
    /// ids. `None` for reports collected directly from an engine.
    pub run_id: Option<String>,
    /// Modeled fleet cost of the placement this run executed
    /// ([`crate::fleet::CostEstimate`]), attached by the fleet
    /// controller. Host-independent model output, but excluded from
    /// [`RunReport::deterministic_aggregates`] since placement is
    /// exactly what equivalence tests vary.
    pub cost: Option<CostEstimate>,
}

impl RunReport {
    /// Collects a report from an engine at a quiescent boundary (between
    /// runs). `wall` is the host time of the run(s) being reported; it
    /// feeds `wall_ns` and the simulation rate.
    pub fn collect<T: Send + 'static>(engine: &Engine<T>, wall: Duration) -> RunReport {
        let cycles = engine.now().as_u64();
        let wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        let secs = wall.as_secs_f64();
        let sim_rate_mhz = if secs > 0.0 {
            cycles as f64 / secs / 1e6
        } else {
            0.0
        };

        let profiles = engine.agent_profiles();
        let mut app_counters = engine.agent_app_counters();
        let agents = profiles
            .into_iter()
            .zip(app_counters.drain(..))
            .map(|((name, p), (_, counters))| AgentReport {
                name,
                rounds: p.rounds,
                target_cycles: p.target_cycles,
                windows_in: p.windows_in,
                tokens_in: p.tokens_in,
                windows_out: p.windows_out,
                tokens_out: p.tokens_out,
                host_ns: p.host_ns,
                counters,
            })
            .collect();

        let links = engine
            .link_occupancies()
            .into_iter()
            .map(
                |LinkOccupancy {
                     agent,
                     port,
                     latency,
                     in_flight_tokens,
                 }| LinkReport {
                    agent,
                    port,
                    latency,
                    in_flight_tokens,
                },
            )
            .collect();

        let (counters, histograms) = match engine.metrics() {
            Some(registry) => {
                let snap = registry.snapshot();
                let summaries = snap
                    .histograms
                    .into_iter()
                    .filter(|(_, h)| !h.is_empty())
                    .map(|(name, mut h)| HistogramSummary {
                        name,
                        count: h.count() as u64,
                        min: h.min().unwrap_or(0),
                        max: h.max().unwrap_or(0),
                        p50: h.percentile_nearest_rank(50.0).unwrap_or(0),
                        p99: h.percentile_nearest_rank(99.0).unwrap_or(0),
                    })
                    .collect();
                (snap.counters, summaries)
            }
            None => (Vec::new(), Vec::new()),
        };

        RunReport {
            cycles,
            wall_ns,
            host_threads: engine.host_threads(),
            sim_rate_mhz,
            token_invariant_ok: engine.verify_token_invariant().is_ok(),
            agents,
            links,
            counters,
            histograms,
            timeline: engine.fault_timeline(),
            run_id: None,
            cost: None,
        }
    }

    /// Merges the per-shard reports of a partitioned run into one fleet
    /// report.
    ///
    /// Agents and links are concatenated and name-sorted (shard builds
    /// register disjoint agent sets); registry counters are summed by
    /// name; histograms are dropped (their shapes are host-schedule
    /// dependent and meaningless to merge). `wall_ns` is the slowest
    /// shard, and `host_threads` the fleet total.
    ///
    /// # Errors
    ///
    /// Returns a protocol [`SimError`] for an empty shard list, for
    /// shards that reached different cycle counts (a desynchronised
    /// fleet), and for shards stamped with different
    /// [run ids](RunReport::run_id) — merging reports from two different
    /// runs would silently fabricate a fleet that never existed.
    pub fn merge_shards(shards: &[RunReport]) -> SimResult<RunReport> {
        let Some(first) = shards.first() else {
            return Err(SimError::protocol("cannot merge zero shard reports"));
        };
        let cycles = first.cycles;
        if let Some(bad) = shards.iter().find(|s| s.cycles != cycles) {
            return Err(SimError::protocol(format!(
                "cannot merge shard reports from different runs: \
                 cycle counts {} vs {cycles}",
                bad.cycles
            )));
        }
        if let Some(bad) = shards.iter().find(|s| s.run_id != first.run_id) {
            return Err(SimError::protocol(format!(
                "cannot merge shard reports from different runs: \
                 run id {:?} vs {:?}",
                bad.run_id, first.run_id
            )));
        }
        let wall_ns = shards.iter().map(|s| s.wall_ns).max().unwrap_or(0);
        let secs = wall_ns as f64 / 1e9;
        let mut agents: Vec<AgentReport> = shards.iter().flat_map(|s| s.agents.clone()).collect();
        agents.sort_by(|a, b| a.name.cmp(&b.name));
        let mut links: Vec<LinkReport> = shards.iter().flat_map(|s| s.links.clone()).collect();
        links.sort_by(|a, b| (&a.agent, a.port).cmp(&(&b.agent, b.port)));
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for (name, v) in shards.iter().flat_map(|s| s.counters.iter()) {
            *counters.entry(name.clone()).or_insert(0) += v;
        }
        // Timelines merge by summing bucket counts: each shard counted
        // only its own agents' watched links, and bucket sums are
        // commutative, so the fleet timeline equals the monolithic one.
        let timeline = {
            let present: Vec<&RecoveryTimeline> =
                shards.iter().filter_map(|s| s.timeline.as_ref()).collect();
            if present.is_empty() {
                None
            } else {
                let mut buckets: BTreeMap<u64, [u64; 3]> = BTreeMap::new();
                let mut events: Vec<(u64, String)> = Vec::new();
                for tl in &present {
                    for p in &tl.points {
                        let b = buckets.entry(p.start).or_insert([0; 3]);
                        b[0] += p.delivered;
                        b[1] += p.dropped;
                        b[2] += p.masked;
                    }
                    events.extend(tl.events.iter().cloned());
                }
                events.sort();
                events.dedup();
                Some(RecoveryTimeline {
                    interval: present.iter().map(|tl| tl.interval).max().unwrap_or(0),
                    points: buckets
                        .into_iter()
                        .map(|(start, [delivered, dropped, masked])| TimelinePoint {
                            start,
                            delivered,
                            dropped,
                            masked,
                        })
                        .collect(),
                    events,
                })
            }
        };
        Ok(RunReport {
            cycles,
            wall_ns,
            host_threads: shards.iter().map(|s| s.host_threads).sum(),
            sim_rate_mhz: if secs > 0.0 {
                cycles as f64 / secs / 1e6
            } else {
                0.0
            },
            token_invariant_ok: shards.iter().all(|s| s.token_invariant_ok),
            agents,
            links,
            counters: counters.into_iter().collect(),
            histograms: Vec::new(),
            timeline,
            run_id: first.run_id.clone(),
            cost: None,
        })
    }

    /// The host-schedule-*independent* portion of the report, in a
    /// canonical form: use this to assert that two runs of the same
    /// target — monolithic vs. partitioned, 2-way vs. 4-way — behaved
    /// identically.
    ///
    /// Includes target cycles, the token invariant, per-agent target
    /// observables (rounds, cycles, window/token traffic, app counters;
    /// **not** `host_ns`) and per-link occupancies, all name-sorted.
    /// Excludes wall time, thread counts, simulation rate, registry
    /// counters (several count host events like barrier spins),
    /// histograms, and `host_`-prefixed app counters (decode-cache
    /// hit rates, per-blade host MIPS — host observables that legally
    /// differ between runs that are target-identical, e.g. with the
    /// decoded-instruction cache on vs. off).
    pub fn deterministic_aggregates(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycles={} invariant={}",
            self.cycles, self.token_invariant_ok
        );
        let mut agents: Vec<&AgentReport> = self.agents.iter().collect();
        agents.sort_by(|a, b| a.name.cmp(&b.name));
        for a in agents {
            let _ = write!(
                out,
                "agent {} rounds={} cycles={} win_in={} tok_in={} win_out={} tok_out={}",
                a.name,
                a.rounds,
                a.target_cycles,
                a.windows_in,
                a.tokens_in,
                a.windows_out,
                a.tokens_out,
            );
            for (k, v) in &a.counters {
                // `host_…` (or a supernode-prefixed `…/host_…`) marks a
                // host-dependent counter; everything else is target
                // state and must agree bit-for-bit across runs.
                if k.starts_with("host_") || k.contains("/host_") {
                    continue;
                }
                let _ = write!(out, " {k}={v}");
            }
            let _ = writeln!(out);
        }
        let mut links: Vec<&LinkReport> = self.links.iter().collect();
        links.sort_by(|a, b| (&a.agent, a.port).cmp(&(&b.agent, b.port)));
        for l in links {
            let _ = writeln!(
                out,
                "link {}:{} latency={} in_flight={}",
                l.agent, l.port, l.latency, l.in_flight_tokens
            );
        }
        // Timeline buckets are sums of per-window target-token counts —
        // identical across worker counts and transports. (A run resumed
        // from a checkpoint legitimately lacks the pre-checkpoint buckets,
        // so equivalence tests spanning a restore compare digests, not
        // aggregates.)
        if let Some(tl) = &self.timeline {
            for p in &tl.points {
                let _ = writeln!(
                    out,
                    "timeline {} delivered={} dropped={} masked={}",
                    p.start, p.delivered, p.dropped, p.masked
                );
            }
            for (cycle, label) in &tl.events {
                let _ = writeln!(out, "timeline-event {cycle} {label}");
            }
        }
        out
    }

    /// Per-blade sampled-timing estimates, one entry per agent that ran
    /// under [`SimConfig::sampling`](crate::SimConfig) (agents without
    /// the `sampling_*` counters are skipped). Empty when sampling was
    /// off.
    pub fn sampling_summary(&self) -> Vec<SamplingSummary> {
        self.agents
            .iter()
            .filter_map(|a| {
                let find = |name: &str| a.counters.iter().find(|(k, _)| k == name).map(|&(_, v)| v);
                Some(SamplingSummary {
                    name: a.name.clone(),
                    windows: find("sampling_windows")?,
                    ipc_est_permille: find("sampling_ipc_est_permille").unwrap_or(0),
                    ci_lo_permille: find("sampling_ci_lo_permille").unwrap_or(0),
                    ci_hi_permille: find("sampling_ci_hi_permille").unwrap_or(0),
                })
            })
            .collect()
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_string_pretty()
    }

    /// Parses a report previously produced by [`RunReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a parse error for malformed input or an unexpected shape.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        Self::from_value(&serde_json::from_str(s)?)
    }

    /// Renders a human-readable multi-line summary for terminals.
    pub fn human_summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run: {} cycles in {:.3} ms on {} thread(s) ({:.2} MHz); token invariant {}",
            self.cycles,
            self.wall_ns as f64 / 1e6,
            self.host_threads,
            self.sim_rate_mhz,
            if self.token_invariant_ok {
                "OK"
            } else {
                "VIOLATED"
            },
        );
        if let Some(c) = &self.cost {
            let _ = writeln!(
                out,
                "  fleet: {} host(s) at ${:.2}/hour, modeled {:.3} MHz \
                 ({:.0}x slowdown) -> ${:.2} per simulated hour ({})",
                c.hosts_used,
                c.fleet_per_hour,
                c.sim_rate_hz / 1e6,
                c.slowdown,
                c.dollars_per_sim_hour,
                c.bottleneck,
            );
        }
        for a in &self.agents {
            let _ = writeln!(
                out,
                "  agent {:<16} rounds {:<8} tokens in/out {}/{} host {:.3} ms",
                a.name,
                a.rounds,
                a.tokens_in,
                a.tokens_out,
                a.host_ns as f64 / 1e6,
            );
            for (k, v) in &a.counters {
                let _ = writeln!(out, "    {k} = {v}");
            }
        }
        for l in &self.links {
            let _ = writeln!(
                out,
                "  link -> {}:{} latency {} in-flight {}",
                l.agent, l.port, l.latency, l.in_flight_tokens
            );
        }
        for (k, v) in &self.counters {
            let _ = writeln!(out, "  counter {k} = {v}");
        }
        for h in &self.histograms {
            let _ = writeln!(
                out,
                "  histogram {} n={} min={} p50={} p99={} max={}",
                h.name, h.count, h.min, h.p50, h.p99, h.max
            );
        }
        if let Some(tl) = &self.timeline {
            let _ = writeln!(
                out,
                "  recovery timeline ({}-cycle buckets, watched links only):",
                tl.interval
            );
            let peak = tl
                .points
                .iter()
                .map(|p| p.delivered)
                .max()
                .unwrap_or(0)
                .max(1);
            for p in &tl.points {
                let bar_len = (p.delivered * 40 / peak) as usize;
                let _ = writeln!(
                    out,
                    "    {:>12} |{:<40}| delivered {:<8} dropped {:<6} masked {}",
                    p.start,
                    "#".repeat(bar_len),
                    p.delivered,
                    p.dropped,
                    p.masked
                );
            }
            for (cycle, label) in &tl.events {
                let _ = writeln!(out, "    @{cycle}: {label}");
            }
        }
        out
    }

    fn to_value(&self) -> Value {
        let counters_value = |counters: &[(String, u64)]| {
            Value::Array(
                counters
                    .iter()
                    .map(|(k, v)| {
                        let mut o = BTreeMap::new();
                        o.insert("name".to_owned(), Value::from(k.as_str()));
                        o.insert("value".to_owned(), Value::from(*v));
                        Value::Object(o)
                    })
                    .collect(),
            )
        };
        let mut obj = BTreeMap::new();
        obj.insert("cycles".to_owned(), Value::from(self.cycles));
        obj.insert("wall_ns".to_owned(), Value::from(self.wall_ns));
        obj.insert("host_threads".to_owned(), Value::from(self.host_threads));
        obj.insert("sim_rate_mhz".to_owned(), Value::from(self.sim_rate_mhz));
        obj.insert(
            "token_invariant_ok".to_owned(),
            Value::from(self.token_invariant_ok),
        );
        obj.insert(
            "agents".to_owned(),
            Value::Array(
                self.agents
                    .iter()
                    .map(|a| {
                        let mut o = BTreeMap::new();
                        o.insert("name".to_owned(), Value::from(a.name.as_str()));
                        o.insert("rounds".to_owned(), Value::from(a.rounds));
                        o.insert("target_cycles".to_owned(), Value::from(a.target_cycles));
                        o.insert("windows_in".to_owned(), Value::from(a.windows_in));
                        o.insert("tokens_in".to_owned(), Value::from(a.tokens_in));
                        o.insert("windows_out".to_owned(), Value::from(a.windows_out));
                        o.insert("tokens_out".to_owned(), Value::from(a.tokens_out));
                        o.insert("host_ns".to_owned(), Value::from(a.host_ns));
                        o.insert("counters".to_owned(), counters_value(&a.counters));
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        obj.insert(
            "links".to_owned(),
            Value::Array(
                self.links
                    .iter()
                    .map(|l| {
                        let mut o = BTreeMap::new();
                        o.insert("agent".to_owned(), Value::from(l.agent.as_str()));
                        o.insert("port".to_owned(), Value::from(l.port));
                        o.insert("latency".to_owned(), Value::from(l.latency));
                        o.insert(
                            "in_flight_tokens".to_owned(),
                            Value::from(l.in_flight_tokens),
                        );
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        if let Some(tl) = &self.timeline {
            let mut t = BTreeMap::new();
            t.insert("interval".to_owned(), Value::from(tl.interval));
            t.insert(
                "points".to_owned(),
                Value::Array(
                    tl.points
                        .iter()
                        .map(|p| {
                            let mut o = BTreeMap::new();
                            o.insert("start".to_owned(), Value::from(p.start));
                            o.insert("delivered".to_owned(), Value::from(p.delivered));
                            o.insert("dropped".to_owned(), Value::from(p.dropped));
                            o.insert("masked".to_owned(), Value::from(p.masked));
                            Value::Object(o)
                        })
                        .collect(),
                ),
            );
            t.insert(
                "events".to_owned(),
                Value::Array(
                    tl.events
                        .iter()
                        .map(|(cycle, label)| {
                            let mut o = BTreeMap::new();
                            o.insert("cycle".to_owned(), Value::from(*cycle));
                            o.insert("label".to_owned(), Value::from(label.as_str()));
                            Value::Object(o)
                        })
                        .collect(),
                ),
            );
            obj.insert("timeline".to_owned(), Value::Object(t));
        }
        if let Some(run_id) = &self.run_id {
            obj.insert("run_id".to_owned(), Value::from(run_id.as_str()));
        }
        if let Some(c) = &self.cost {
            let mut o = BTreeMap::new();
            o.insert("hosts_used".to_owned(), Value::from(c.hosts_used));
            o.insert("fleet_per_hour".to_owned(), Value::from(c.fleet_per_hour));
            o.insert("cut_links".to_owned(), Value::from(c.cut_links));
            o.insert("sim_rate_hz".to_owned(), Value::from(c.sim_rate_hz));
            o.insert("target_hz".to_owned(), Value::from(c.target_hz));
            o.insert("slowdown".to_owned(), Value::from(c.slowdown));
            o.insert(
                "dollars_per_sim_hour".to_owned(),
                Value::from(c.dollars_per_sim_hour),
            );
            o.insert("bottleneck".to_owned(), Value::from(c.bottleneck.as_str()));
            obj.insert("cost".to_owned(), Value::Object(o));
        }
        obj.insert("counters".to_owned(), counters_value(&self.counters));
        obj.insert(
            "histograms".to_owned(),
            Value::Array(
                self.histograms
                    .iter()
                    .map(|h| {
                        let mut o = BTreeMap::new();
                        o.insert("name".to_owned(), Value::from(h.name.as_str()));
                        o.insert("count".to_owned(), Value::from(h.count));
                        o.insert("min".to_owned(), Value::from(h.min));
                        o.insert("max".to_owned(), Value::from(h.max));
                        o.insert("p50".to_owned(), Value::from(h.p50));
                        o.insert("p99".to_owned(), Value::from(h.p99));
                        Value::Object(o)
                    })
                    .collect(),
            ),
        );
        Value::Object(obj)
    }

    fn from_value(v: &Value) -> Result<Self, serde_json::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde_json::Error::custom("report must be a JSON object"))?;
        let get_u64 = |obj: &BTreeMap<String, Value>, key: &str| {
            obj.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| serde_json::Error::custom(format!("missing integer field `{key}`")))
        };
        let get_str = |obj: &BTreeMap<String, Value>, key: &str| {
            obj.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| serde_json::Error::custom(format!("missing string field `{key}`")))
        };
        let get_array = |obj: &BTreeMap<String, Value>, key: &str| match obj.get(key) {
            Some(Value::Array(a)) => Ok(a.clone()),
            Some(_) => Err(serde_json::Error::custom(format!(
                "`{key}` must be an array"
            ))),
            None => Ok(Vec::new()),
        };
        let obj_of = |v: &Value| {
            v.as_object()
                .cloned()
                .ok_or_else(|| serde_json::Error::custom("expected a JSON object"))
        };
        let counters_of = |obj: &BTreeMap<String, Value>, key: &str| {
            get_array(obj, key)?
                .iter()
                .map(|c| {
                    let c = obj_of(c)?;
                    Ok((get_str(&c, "name")?, get_u64(&c, "value")?))
                })
                .collect::<Result<Vec<_>, serde_json::Error>>()
        };

        let agents = get_array(obj, "agents")?
            .iter()
            .map(|a| {
                let a = obj_of(a)?;
                Ok(AgentReport {
                    name: get_str(&a, "name")?,
                    rounds: get_u64(&a, "rounds")?,
                    target_cycles: get_u64(&a, "target_cycles")?,
                    windows_in: get_u64(&a, "windows_in")?,
                    tokens_in: get_u64(&a, "tokens_in")?,
                    windows_out: get_u64(&a, "windows_out")?,
                    tokens_out: get_u64(&a, "tokens_out")?,
                    host_ns: get_u64(&a, "host_ns")?,
                    counters: counters_of(&a, "counters")?,
                })
            })
            .collect::<Result<Vec<_>, serde_json::Error>>()?;
        let links = get_array(obj, "links")?
            .iter()
            .map(|l| {
                let l = obj_of(l)?;
                Ok(LinkReport {
                    agent: get_str(&l, "agent")?,
                    port: get_u64(&l, "port")? as usize,
                    latency: get_u64(&l, "latency")?,
                    in_flight_tokens: get_u64(&l, "in_flight_tokens")?,
                })
            })
            .collect::<Result<Vec<_>, serde_json::Error>>()?;
        let histograms = get_array(obj, "histograms")?
            .iter()
            .map(|h| {
                let h = obj_of(h)?;
                Ok(HistogramSummary {
                    name: get_str(&h, "name")?,
                    count: get_u64(&h, "count")?,
                    min: get_u64(&h, "min")?,
                    max: get_u64(&h, "max")?,
                    p50: get_u64(&h, "p50")?,
                    p99: get_u64(&h, "p99")?,
                })
            })
            .collect::<Result<Vec<_>, serde_json::Error>>()?;
        let timeline = match obj.get("timeline") {
            None => None,
            Some(v) => {
                let t = obj_of(v)?;
                let points = get_array(&t, "points")?
                    .iter()
                    .map(|p| {
                        let p = obj_of(p)?;
                        Ok(TimelinePoint {
                            start: get_u64(&p, "start")?,
                            delivered: get_u64(&p, "delivered")?,
                            dropped: get_u64(&p, "dropped")?,
                            masked: get_u64(&p, "masked")?,
                        })
                    })
                    .collect::<Result<Vec<_>, serde_json::Error>>()?;
                let events = get_array(&t, "events")?
                    .iter()
                    .map(|e| {
                        let e = obj_of(e)?;
                        Ok((get_u64(&e, "cycle")?, get_str(&e, "label")?))
                    })
                    .collect::<Result<Vec<_>, serde_json::Error>>()?;
                Some(RecoveryTimeline {
                    interval: get_u64(&t, "interval")?,
                    points,
                    events,
                })
            }
        };

        let run_id = match obj.get("run_id") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| serde_json::Error::custom("`run_id` must be a string"))?,
            ),
        };
        let get_f64 = |obj: &BTreeMap<String, Value>, key: &str| {
            obj.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| serde_json::Error::custom(format!("missing number `{key}`")))
        };
        let cost = match obj.get("cost") {
            None => None,
            Some(v) => {
                let c = obj_of(v)?;
                Some(CostEstimate {
                    hosts_used: get_u64(&c, "hosts_used")? as usize,
                    fleet_per_hour: get_f64(&c, "fleet_per_hour")?,
                    cut_links: get_u64(&c, "cut_links")? as usize,
                    sim_rate_hz: get_f64(&c, "sim_rate_hz")?,
                    target_hz: get_f64(&c, "target_hz")?,
                    slowdown: get_f64(&c, "slowdown")?,
                    dollars_per_sim_hour: get_f64(&c, "dollars_per_sim_hour")?,
                    bottleneck: get_str(&c, "bottleneck")?,
                })
            }
        };

        Ok(RunReport {
            cycles: get_u64(obj, "cycles")?,
            wall_ns: get_u64(obj, "wall_ns")?,
            host_threads: get_u64(obj, "host_threads")? as usize,
            sim_rate_mhz: obj
                .get("sim_rate_mhz")
                .and_then(Value::as_f64)
                .ok_or_else(|| serde_json::Error::custom("missing number `sim_rate_mhz`"))?,
            token_invariant_ok: matches!(obj.get("token_invariant_ok"), Some(Value::Bool(true))),
            agents,
            links,
            counters: counters_of(obj, "counters")?,
            histograms,
            timeline,
            run_id,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firesim_core::{AgentCtx, Cycle, Engine, SimAgent};

    /// Forwards its input to its output, one token per window offset 0.
    struct Echo;
    impl SimAgent for Echo {
        type Token = u8;
        fn name(&self) -> &str {
            "echo"
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn num_outputs(&self) -> usize {
            1
        }
        fn advance(&mut self, ctx: &mut AgentCtx<u8>) {
            let tokens: Vec<_> = ctx.drain_input(0).collect();
            let out = ctx.output_mut(0);
            for (off, t) in tokens {
                out.push(off, t).unwrap();
            }
        }
        fn app_counters(&self, out: &mut Vec<(String, u64)>) {
            out.push(("echoes".to_owned(), 7));
        }
    }

    fn looped_engine() -> Engine<u8> {
        let mut engine: Engine<u8> = Engine::new(4);
        let id = engine.add_agent(Box::new(Echo));
        engine.connect(id, 0, id, 0, Cycle::new(8)).unwrap();
        engine
    }

    #[test]
    fn collect_reports_profiles_links_and_counters() {
        let mut engine = looped_engine();
        engine.enable_metrics();
        engine.run_for(Cycle::new(32)).unwrap();
        let report = RunReport::collect(&engine, Duration::from_millis(2));

        assert_eq!(report.cycles, 32);
        assert_eq!(report.wall_ns, 2_000_000);
        assert!(report.token_invariant_ok);
        assert_eq!(report.agents.len(), 1);
        let a = &report.agents[0];
        assert_eq!(a.name, "echo");
        assert_eq!(a.rounds, 8);
        assert_eq!(a.target_cycles, 32);
        assert_eq!(a.counters, vec![("echoes".to_owned(), 7)]);
        assert_eq!(report.links.len(), 1);
        assert_eq!(report.links[0].latency, 8);
        assert_eq!(report.links[0].in_flight_tokens, 8);
        assert!(report
            .counters
            .iter()
            .any(|(k, v)| k == "engine/agent_steps" && *v == 8));
        // sim_rate: 32 cycles / 2 ms = 16 kHz = 0.016 MHz.
        assert!((report.sim_rate_mhz - 0.016).abs() < 1e-9);
    }

    #[test]
    fn report_round_trips_json() {
        let mut engine = looped_engine();
        engine.enable_metrics();
        engine.run_for(Cycle::new(16)).unwrap();
        let report = RunReport::collect(&engine, Duration::from_micros(500));
        let json = report.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn run_id_and_cost_round_trip_json() {
        let mut engine = looped_engine();
        engine.run_for(Cycle::new(16)).unwrap();
        let mut report = RunReport::collect(&engine, Duration::from_micros(500));
        report.run_id = Some("spec#4w#1000c#shm".into());
        report.cost = Some(CostEstimate {
            hosts_used: 37,
            fleet_per_hour: 438.40,
            cut_links: 72,
            sim_rate_hz: 31_007_751.937984496,
            target_hz: 3.2e9,
            slowdown: 103.2,
            dollars_per_sim_hour: 45_242.88,
            bottleneck: "compute on host 0 (f1.16xlarge)".into(),
        });
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        // The new fields stay out of the determinism fingerprint:
        // placement is exactly what equivalence tests vary.
        let mut stripped = report.clone();
        stripped.run_id = None;
        stripped.cost = None;
        assert_eq!(
            report.deterministic_aggregates(),
            stripped.deterministic_aggregates()
        );
    }

    #[test]
    fn merge_shards_rejects_mixed_runs() {
        let mut engine = looped_engine();
        engine.run_for(Cycle::new(16)).unwrap();
        let mut a = RunReport::collect(&engine, Duration::from_micros(500));
        a.run_id = Some("spec#2w#16c#shm".into());
        let mut b = a.clone();

        // Healthy merge: same run id, same cycles.
        let merged = RunReport::merge_shards(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(merged.run_id, a.run_id);
        assert_eq!(merged.agents.len(), 2);

        // A shard from a different run (by id) is refused...
        b.run_id = Some("other#2w#16c#shm".into());
        let err = RunReport::merge_shards(&[a.clone(), b.clone()]).unwrap_err();
        assert!(
            matches!(err, SimError::Protocol { .. }),
            "wanted a typed protocol error, got {err}"
        );
        assert!(err.to_string().contains("run id"), "{err}");

        // ...as is a desynchronised shard (by cycle count)...
        b.run_id = a.run_id.clone();
        b.cycles = 32;
        let err = RunReport::merge_shards(&[a.clone(), b]).unwrap_err();
        assert!(matches!(err, SimError::Protocol { .. }), "{err}");
        assert!(err.to_string().contains("cycle counts"), "{err}");

        // ...and so is merging nothing at all.
        assert!(RunReport::merge_shards(&[]).is_err());
    }

    #[test]
    fn human_summary_mentions_agents_and_links() {
        let mut engine = looped_engine();
        engine.run_for(Cycle::new(8)).unwrap();
        let report = RunReport::collect(&engine, Duration::from_millis(1));
        let text = report.human_summary();
        assert!(text.contains("echo"), "{text}");
        assert!(text.contains("token invariant OK"), "{text}");
        assert!(text.contains("latency 8 in-flight 8"), "{text}");
    }

    #[test]
    fn from_json_rejects_wrong_shapes() {
        assert!(RunReport::from_json("[1,2,3]").is_err());
        assert!(RunReport::from_json("{\"cycles\": \"nope\"}").is_err());
        assert!(RunReport::from_json("not json").is_err());
    }
}
