//! Turning a validated [`Topology`] into a running simulation.
//!
//! This is the "builds and deploys" half of the manager (§III-B3): it
//! instantiates blades and switch models, assigns MACs, populates every
//! switch's static MAC table from the tree structure, wires all links
//! with the configured latency, and hands back a [`Simulation`] whose
//! engine can be driven to completion. It also produces the deployment
//! plan (instances + cost) for the equivalent EC2 deployment.

use std::sync::Arc;

use parking_lot::Mutex;

use firesim_blade::model::{ModeledBlade, OsModel};
use firesim_blade::soc::{BladeProbe, RtlBlade};
use firesim_core::{
    AbortHandle, AgentId, BoundaryInput, BoundaryOutput, CompiledScenario, Cycle, Engine,
    EngineCheckpoint, FaultPlan, FaultRecord, MetricsRegistry, PressureWindow, ProgressProbe,
    RunSummary, SimResult, SpanTracer,
};
use firesim_net::{Flit, MacAddr, Switch, SwitchConfig, SwitchStats};
use firesim_platform::{DeploymentPlan, PlanRequest};

use crate::partition::PartitionPlan;
use crate::topology::{BladeSpec, NodeRef, SwitchId, Topology};

/// Simulation-level configuration (everything here is runtime-tunable in
/// FireSim — no "resynthesis" required).
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Link latency in cycles (applies to every link; the paper's
    /// default experiments use 6400 = 2 us at 3.2 GHz).
    pub link_latency: Cycle,
    /// Minimum port-to-port switching latency in cycles.
    pub switching_latency: u64,
    /// Per-port switch output buffering in bytes.
    pub switch_buffer_bytes: usize,
    /// Record aggregate ingress bandwidth at the *root* switch with this
    /// bucket size (cycles), for Fig 6-style measurements.
    pub root_bandwidth_bucket: Option<u64>,
    /// Host worker threads for the engine.
    pub host_threads: usize,
    /// Use supernode packing in the deployment plan.
    pub supernode: bool,
    /// Sampled timing for every RTL blade: alternate cycle-exact
    /// detailed windows with IPC-extrapolated fast-forward spans
    /// (DESIGN §18). `None` (the default) simulates every cycle.
    /// Overrides each blade's `TimingConfig::sampling`.
    pub sampling: Option<firesim_blade::SamplingConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_latency: Cycle::new(6_400),
            switching_latency: 10,
            switch_buffer_bytes: 512 * 1024,
            root_bandwidth_bucket: None,
            host_threads: 1,
            supernode: false,
            sampling: None,
        }
    }
}

/// Information about one deployed server.
#[derive(Debug, Clone)]
pub struct ServerInfo {
    /// Node name from the topology.
    pub name: String,
    /// Assigned MAC.
    pub mac: MacAddr,
    /// Assigned (informational) IP.
    pub ip: String,
    /// Probe handle for RTL blades (None for modeled blades, whose
    /// results flow through app-held handles).
    pub probe: Option<Arc<Mutex<BladeProbe>>>,
}

/// Boundary ports a sharded build leaves open for cross-process wiring.
///
/// Each entry pairs a deterministic link id with the local half of a
/// cross-shard link. The id names the *directed* tree edge — `l{s}p{p}d`
/// is switch `s`'s port `p` toward its child (downlink), `l{s}p{p}u` the
/// reverse — and is identical on both shards, so the two processes
/// rendezvous on it without any coordination beyond the shared partition
/// plan. `outputs` are drained toward the peer shard; `inputs` are fed
/// from it.
#[derive(Debug, Default)]
pub struct ShardBoundaries {
    /// Locally produced windows to ship out, `(link id, port)`.
    pub outputs: Vec<(String, BoundaryOutput<Flit>)>,
    /// Remotely produced windows to inject, `(link id, port)`.
    pub inputs: Vec<(String, BoundaryInput<Flit>)>,
}

impl ShardBoundaries {
    /// True when this shard has no cross-process links (1-way partition).
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty() && self.inputs.is_empty()
    }
}

/// A deployed, runnable simulation.
pub struct Simulation {
    engine: Engine<Flit>,
    servers: Vec<ServerInfo>,
    switch_stats: Vec<(String, Arc<Mutex<SwitchStats>>)>,
    switch_controls: Vec<(String, Arc<Mutex<Vec<PressureWindow>>>)>,
    plan: DeploymentPlan,
    boundaries: ShardBoundaries,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("servers", &self.servers.len())
            .field("switches", &self.switch_stats.len())
            .field(
                "boundary_links",
                &(self.boundaries.outputs.len() + self.boundaries.inputs.len()),
            )
            .finish()
    }
}

/// Deterministic id of the directed link leaving switch `sidx` port `port`
/// toward its child (`down == true`) or arriving from it (`down == false`).
pub(crate) fn link_id(sidx: usize, port: usize, down: bool) -> String {
    format!("l{sidx}p{port}{}", if down { 'd' } else { 'u' })
}

impl Topology {
    /// Builds and "deploys" the simulation: every blade and switch is
    /// instantiated, connected, and ready to run.
    ///
    /// # Errors
    ///
    /// Returns a topology validation error (as
    /// [`firesim_core::SimError::Topology`]) or an engine wiring error.
    pub fn build(self, config: SimConfig) -> SimResult<Simulation> {
        self.build_inner(config, None)
    }

    /// Builds only the agents assigned to `shard` by `plan`, leaving every
    /// link that crosses a shard boundary open as a
    /// [`BoundaryOutput`]/[`BoundaryInput`] pair in
    /// [`Simulation::take_boundaries`].
    ///
    /// Every worker process of a partitioned run calls this with the *same*
    /// topology and config; determinism of the token protocol (§III-B2)
    /// guarantees the union of the shards behaves bit-identically to
    /// [`build`](Topology::build)'s monolithic simulation.
    ///
    /// # Errors
    ///
    /// As for [`build`](Topology::build); additionally rejects supernode
    /// packing (whose host-unit grouping is not shard-stable) and a shard
    /// index outside the plan.
    pub fn build_shard(
        self,
        config: SimConfig,
        plan: &PartitionPlan,
        shard: usize,
    ) -> SimResult<Simulation> {
        if shard >= plan.workers() {
            return Err(firesim_core::SimError::topology(format!(
                "shard {shard} out of range for a {}-way partition",
                plan.workers()
            )));
        }
        if config.supernode && plan.workers() > 1 {
            return Err(firesim_core::SimError::topology(
                "supernode packing cannot be combined with multi-process partitioning",
            ));
        }
        self.build_inner(config, Some((plan, shard)))
    }

    fn build_inner(
        mut self,
        config: SimConfig,
        shard: Option<(&PartitionPlan, usize)>,
    ) -> SimResult<Simulation> {
        let root = self.validate().map_err(firesim_core::SimError::topology)?;
        let local_server = |idx: usize| shard.is_none_or(|(p, s)| p.server_shard(idx) == s);
        let local_switch = |idx: usize| shard.is_none_or(|(p, s)| p.switch_shard(idx) == s);

        let window = u32::try_from(config.link_latency.as_u64())
            .map_err(|_| firesim_core::SimError::topology("link latency too large"))?;
        let mut engine: Engine<Flit> = Engine::new(window);
        engine.set_host_threads(config.host_threads);

        // --- Instantiate server blades (not yet agents). ---
        // Variant sizes differ, but each value is boxed into an agent
        // immediately; the transient enum is fine.
        #[allow(clippy::large_enum_variant)]
        enum Built {
            Rtl(RtlBlade),
            Model(ModeledBlade),
        }
        let specs: Vec<_> = self
            .servers
            .iter_mut()
            .map(|s| {
                let name = s.name.clone();
                s.spec.take().ok_or_else(|| {
                    firesim_core::SimError::topology(format!(
                        "server {name:?} has no blade spec (topology already built?)"
                    ))
                })
            })
            .collect::<SimResult<_>>()?;
        let mut built: Vec<Option<Built>> = Vec::with_capacity(self.servers.len());
        let mut servers: Vec<ServerInfo> = Vec::with_capacity(self.servers.len());
        for (idx, spec) in specs.into_iter().enumerate() {
            if !local_server(idx) {
                // Another shard owns this blade; MAC/IP assignment stays
                // global (index-based) so routing tables agree everywhere.
                built.push(None);
                continue;
            }
            let name = self.servers[idx].name.clone();
            let mac = MacAddr::from_node_index(idx as u64);
            let ip = {
                let i = idx as u32;
                format!(
                    "10.{}.{}.{}",
                    (i >> 16) & 0xff,
                    (i >> 8) & 0xff,
                    (i & 0xff) + 1
                )
            };
            let (blade, probe) = match spec {
                BladeSpec::Rtl {
                    config: mut blade_config,
                    program,
                } => {
                    if let Some(sampling) = config.sampling {
                        blade_config.timing.sampling = Some(sampling);
                    }
                    let mut blade = RtlBlade::new(name.clone(), mac, blade_config);
                    program.install(&mut blade);
                    let probe = blade.probe();
                    (Built::Rtl(blade), Some(probe))
                }
                BladeSpec::Model {
                    os,
                    threads,
                    pinned,
                    app,
                } => {
                    let os_model = OsModel::new(os, threads, pinned);
                    let app = app(mac, idx);
                    (
                        Built::Model(ModeledBlade::new(name.clone(), mac, os_model, app)),
                        None,
                    )
                }
            };
            built.push(Some(blade));
            servers.push(ServerInfo {
                name,
                mac,
                ip,
                probe,
            });
        }

        // --- Register agents, packing supernodes if requested. ---
        // Supernode packing groups up to four RTL blades attached to the
        // SAME switch into one host unit (§III-A5); each blade keeps its
        // own network port on that unit.
        // Indexed by *global* server index; remote servers stay None.
        let mut server_endpoint: Vec<Option<(AgentId, usize)>> = vec![None; self.servers.len()];
        if config.supernode {
            let mut sn_count = 0usize;
            for sw in &self.switches {
                let rtl_children: Vec<usize> = sw
                    .children
                    .iter()
                    .filter_map(|c| match c {
                        NodeRef::Server(s) if matches!(built[s.0], Some(Built::Rtl(_))) => {
                            Some(s.0)
                        }
                        _ => None,
                    })
                    .collect();
                for chunk in rtl_children.chunks(4) {
                    let blades: Vec<RtlBlade> = chunk
                        .iter()
                        .map(|&i| match built[i].take() {
                            Some(Built::Rtl(b)) => b,
                            _ => unreachable!("filtered to RTL above"),
                        })
                        .collect();
                    let agent = engine.add_agent(Box::new(firesim_blade::Supernode::new(
                        format!("supernode{sn_count}"),
                        blades,
                    )));
                    sn_count += 1;
                    for (port, &i) in chunk.iter().enumerate() {
                        server_endpoint[i] = Some((agent, port));
                    }
                }
            }
        }
        for (idx, slot) in built.into_iter().enumerate() {
            let Some(blade) = slot else { continue };
            let agent: Box<dyn firesim_core::SimAgent<Token = Flit>> = match blade {
                Built::Rtl(b) => Box::new(b),
                Built::Model(b) => Box::new(b),
            };
            server_endpoint[idx] = Some((engine.add_agent(agent), 0));
        }
        // Remote servers legitimately stay unmapped in a sharded build;
        // local ones must all have an endpoint.
        for (idx, e) in server_endpoint.iter().enumerate() {
            if local_server(idx) && e.is_none() {
                return Err(firesim_core::SimError::topology(format!(
                    "server {:?} was never mapped to a simulation agent",
                    self.servers[idx].name
                )));
            }
        }

        // --- Instantiate switches with routes. ---
        // Port layout: ports 0..children are downlinks (in child order);
        // the uplink, if any, is the last port.
        let mut switch_agents: Vec<Option<AgentId>> = Vec::with_capacity(self.switches.len());
        let mut switch_stats = Vec::with_capacity(self.switches.len());
        let mut switch_controls = Vec::with_capacity(self.switches.len());
        for (sidx, sw) in self.switches.iter().enumerate() {
            if !local_switch(sidx) {
                switch_agents.push(None);
                continue;
            }
            let has_uplink = sw.parent.is_some();
            let ports = sw.children.len() + usize::from(has_uplink);
            let mut cfg = SwitchConfig::new(ports.max(2))
                .switching_latency(config.switching_latency)
                .output_buffer_bytes(config.switch_buffer_bytes);
            if sidx == root.0 {
                if let Some(bucket) = config.root_bandwidth_bucket {
                    cfg = cfg.sample_bandwidth(bucket);
                }
            }
            let mut switch = Switch::new(sw.name.clone(), cfg);
            // Downlink routes: MACs in each child's subtree.
            for (port, child) in sw.children.iter().enumerate() {
                let macs = match child {
                    NodeRef::Server(s) => vec![MacAddr::from_node_index(s.0 as u64)],
                    NodeRef::Switch(s) => self.subtree_macs(*s),
                };
                for mac in macs {
                    switch.add_route(mac, port);
                }
            }
            // Everything else goes out the uplink.
            if has_uplink {
                let local = self.subtree_macs(SwitchId(sidx));
                let uplink = sw.children.len();
                for idx in 0..self.servers.len() {
                    let mac = MacAddr::from_node_index(idx as u64);
                    if !local.contains(&mac) {
                        switch.add_route(mac, uplink);
                    }
                }
            }
            switch_stats.push((sw.name.clone(), switch.stats_handle()));
            switch_controls.push((sw.name.clone(), switch.pressure_handle()));
            switch_agents.push(Some(engine.add_agent(Box::new(switch))));
        }

        // --- Wire links. ---
        // Every tree edge carries two directed links (down and up). When
        // both endpoints live on this shard they get ordinary engine
        // links; when exactly one does, the local half becomes a boundary
        // port: the paper's token protocol needs the *receiving* side to
        // model the full link latency (its input link is pre-seeded with
        // `latency` empty tokens), while the sending side's stub link is
        // drained of its seed so it adds no latency of its own — the
        // cross-process hop is therefore latency-neutral and the edge
        // behaves exactly like its monolithic counterpart.
        let mut boundaries = ShardBoundaries::default();
        for (sidx, sw) in self.switches.iter().enumerate() {
            for (port, child) in sw.children.iter().enumerate() {
                let child_end: Option<(AgentId, usize)> = match child {
                    NodeRef::Server(s) => server_endpoint[s.0],
                    NodeRef::Switch(s) => {
                        // The child's uplink port is its last port.
                        switch_agents[s.0].map(|a| (a, self.switches[s.0].children.len()))
                    }
                };
                match (switch_agents[sidx], child_end) {
                    (Some(parent), Some((child_agent, child_port))) => {
                        engine.connect(
                            parent,
                            port,
                            child_agent,
                            child_port,
                            config.link_latency,
                        )?;
                        engine.connect(
                            child_agent,
                            child_port,
                            parent,
                            port,
                            config.link_latency,
                        )?;
                    }
                    (Some(parent), None) => {
                        // Child lives on a peer shard: ship our downlink
                        // windows out, accept uplink windows in.
                        let out =
                            engine.connect_external_output(parent, port, config.link_latency)?;
                        boundaries.outputs.push((link_id(sidx, port, true), out));
                        let inp =
                            engine.connect_external_input(parent, port, config.link_latency)?;
                        boundaries.inputs.push((link_id(sidx, port, false), inp));
                    }
                    (None, Some((child_agent, child_port))) => {
                        let inp = engine.connect_external_input(
                            child_agent,
                            child_port,
                            config.link_latency,
                        )?;
                        boundaries.inputs.push((link_id(sidx, port, true), inp));
                        let out = engine.connect_external_output(
                            child_agent,
                            child_port,
                            config.link_latency,
                        )?;
                        boundaries.outputs.push((link_id(sidx, port, false), out));
                    }
                    (None, None) => {} // Entirely a peer shard's edge.
                }
            }
        }

        // --- Deployment plan for the equivalent EC2 fleet. ---
        let tor_count = self
            .switches
            .iter()
            .filter(|s| s.children.iter().any(|c| matches!(c, NodeRef::Server(_))))
            .count();
        let plan = DeploymentPlan::new(PlanRequest {
            nodes: self.servers.len(),
            tor_switches: tor_count,
            upper_switches: self.switches.len() - tor_count,
            supernode: config.supernode,
        });

        Ok(Simulation {
            engine,
            servers,
            switch_stats,
            switch_controls,
            plan,
            boundaries,
        })
    }
}

impl Simulation {
    /// Deployed servers, in topology order (index = MAC node index).
    pub fn servers(&self) -> &[ServerInfo] {
        &self.servers
    }

    /// Per-switch statistics handles, `(name, stats)`.
    pub fn switch_stats(&self) -> &[(String, Arc<Mutex<SwitchStats>>)] {
        &self.switch_stats
    }

    /// The EC2 deployment plan for this topology.
    pub fn plan(&self) -> &DeploymentPlan {
        &self.plan
    }

    /// Direct access to the engine (advanced use).
    pub fn engine_mut(&mut self) -> &mut Engine<Flit> {
        &mut self.engine
    }

    /// Takes ownership of the open boundary ports of a sharded build so
    /// pump threads can wire them to a
    /// [`TokenTransport`](firesim_platform::TokenTransport). Empty for
    /// monolithic builds; empties the simulation's copy when called.
    pub fn take_boundaries(&mut self) -> ShardBoundaries {
        std::mem::take(&mut self.boundaries)
    }

    /// Enables sharded metrics collection and per-agent profiling on the
    /// engine. Idempotent; returns the shared registry.
    pub fn enable_metrics(&mut self) -> Arc<MetricsRegistry> {
        self.engine.enable_metrics()
    }

    /// Enables span tracing (engine windows, barrier waits, supervisor
    /// bursts). Idempotent; returns the shared tracer, whose
    /// [`SpanTracer::write_chrome_trace`] produces a Perfetto-loadable
    /// trace file.
    pub fn enable_tracing(&mut self) -> Arc<SpanTracer> {
        self.engine.enable_tracing()
    }

    /// Collects a [`RunReport`](crate::report::RunReport) at the current
    /// quiescent boundary. `wall` is the host time of the run(s) being
    /// reported (e.g. [`RunSummary::wall`] or
    /// [`SupervisedRun::wall`](crate::supervisor::SupervisedRun)).
    pub fn run_report(&self, wall: std::time::Duration) -> crate::report::RunReport {
        crate::report::RunReport::collect(&self.engine, wall)
    }

    /// Runs until every blade reports done, or `max` target cycles.
    ///
    /// Not meaningful for a sharded build: "done" is a *local* property,
    /// and shards finishing at different cycles would break the token
    /// protocol. Partitioned runs use [`run_for`](Simulation::run_for)
    /// with a cycle count agreed by all workers.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (broken channels, unwired ports).
    pub fn run_until_done(&mut self, max: Cycle) -> SimResult<RunSummary> {
        self.engine.run_until_done(max)
    }

    /// Runs exactly `cycles` target cycles (rounded up to windows).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn run_for(&mut self, cycles: Cycle) -> SimResult<RunSummary> {
        self.engine.run_for(cycles)
    }

    /// Current target time of the deployed simulation.
    pub fn now(&self) -> Cycle {
        self.engine.now()
    }

    /// True when every simulated agent reports itself done (all blades
    /// powered off; switches are always done). See
    /// [`firesim_core::Engine::all_done`].
    pub fn all_done(&self) -> bool {
        self.engine.all_done()
    }

    /// Takes a snapshot of every agent's state and all in-flight link
    /// tokens at the current (quiescent) window boundary.
    ///
    /// # Errors
    ///
    /// Returns [`firesim_core::SimError::Checkpoint`] when an agent in the
    /// topology does not support checkpointing.
    pub fn checkpoint(&mut self) -> SimResult<EngineCheckpoint<Flit>> {
        self.engine.checkpoint()
    }

    /// Restores a checkpoint taken from an identically built simulation.
    ///
    /// # Errors
    ///
    /// Returns [`firesim_core::SimError::Checkpoint`] on any topology or
    /// snapshot mismatch.
    pub fn restore(&mut self, cp: &EngineCheckpoint<Flit>) -> SimResult<()> {
        self.engine.restore(cp)
    }

    /// Restores this deployment's agents by *name* from a checkpoint that
    /// may cover a superset of them — the repartitioning path: a merged
    /// full-topology checkpoint (see
    /// [`EngineCheckpoint::merge`](firesim_core::EngineCheckpoint::merge))
    /// restores into a shard of **any** partitioning of the same topology.
    ///
    /// # Errors
    ///
    /// As for [`Engine::restore_by_name`](firesim_core::Engine::restore_by_name).
    pub fn restore_by_name(&mut self, cp: &EngineCheckpoint<Flit>) -> SimResult<()> {
        self.engine.restore_by_name(cp)
    }

    /// Installs a fault plan; faults fire during subsequent runs.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.engine.set_fault_plan(plan);
        self
    }

    /// Applies a compiled chaos scenario to this (possibly sharded)
    /// deployment: the scenario's link effects for *locally deployed*
    /// agents are merged into the engine's fault plan, and its pressure
    /// windows are installed on the local switches they address. Every
    /// shard of a partitioned run applies the same compiled scenario and
    /// picks up exactly its own share, so the union reproduces the
    /// monolithic behaviour bit-for-bit.
    ///
    /// Because all scenario effects are pure functions of the target
    /// cycle, re-applying the same scenario to a rebuilt simulation before
    /// restoring an `FSCKPT01` checkpoint resumes mid-scenario correctly.
    ///
    /// # Errors
    ///
    /// Returns [`firesim_core::SimError::Scenario`] when a pressure window
    /// addresses a switch that exists in no shard's topology. (Link-effect
    /// targets were already validated during
    /// [`compile`](firesim_core::Scenario::compile).)
    pub fn apply_scenario(&mut self, scenario: &CompiledScenario) -> SimResult<()> {
        let local: std::collections::BTreeSet<String> =
            self.engine.agent_names().into_iter().collect();
        let plan = scenario.fault_plan(|name| local.contains(name));
        if plan.has_effects() {
            self.engine.merge_fault_plan(&plan);
        }
        for name in scenario.pressured_switches() {
            let windows = scenario.pressure_for(name);
            if let Some((_, control)) = self.switch_controls.iter().find(|(n, _)| n == name) {
                control.lock().extend(windows);
            } else if !local.contains(name) {
                // A remote shard owns this switch (it will install the
                // windows itself); only a name matching *no* agent at all
                // is an error, and compile-time validation already caught
                // that, so nothing to do here.
            } else {
                return Err(firesim_core::SimError::scenario(format!(
                    "pressure target {name:?} is a local agent but not a switch"
                )));
            }
        }
        Ok(())
    }

    /// The recovery timeline accumulated by an applied scenario's watched
    /// links, if any (see
    /// [`RecoveryTimeline`](firesim_core::RecoveryTimeline)).
    pub fn fault_timeline(&self) -> Option<firesim_core::RecoveryTimeline> {
        self.engine.fault_timeline()
    }

    /// Provenance of injected faults that have fired so far.
    pub fn fault_records(&self) -> Vec<FaultRecord> {
        self.engine.fault_records()
    }

    /// A handle that aborts an in-flight run (watchdog, deadline).
    pub fn abort_handle(&self) -> AbortHandle {
        self.engine.abort_handle()
    }

    /// A lock-free progress view over all deployed agents, for watchdogs.
    pub fn progress_probe(&mut self) -> ProgressProbe {
        self.engine.progress_probe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::BladeSpec;
    use firesim_blade::programs;

    /// End-to-end: ping across two ToR switches and a root switch; the
    /// measured RTT reflects 4 links each way plus 2 switch traversals...
    /// i.e. the Fig 5 "cross-rack" structure at small scale.
    #[test]
    fn ping_across_three_switch_hops() {
        let count = 2;
        let mut topo = Topology::new();
        let root = topo.add_switch("root");
        let tor0 = topo.add_switch("tor0");
        let tor1 = topo.add_switch("tor1");
        topo.add_downlinks(root, [tor0, tor1]).unwrap();
        let sender = topo.add_server(
            "sender",
            BladeSpec::rtl_single_core(programs::ping_sender(
                MacAddr::from_node_index(0),
                MacAddr::from_node_index(1),
                count,
                26,
                10_000,
            )),
        );
        let responder = topo.add_server(
            "responder",
            BladeSpec::rtl_single_core(programs::echo_responder(count)),
        );
        topo.add_downlink(tor0, sender).unwrap();
        topo.add_downlink(tor1, responder).unwrap();

        let mut sim = topo
            .build(SimConfig {
                link_latency: Cycle::new(400),
                ..SimConfig::default()
            })
            .unwrap();
        assert_eq!(sim.servers().len(), 2);
        assert_eq!(sim.plan().request.nodes, 2);
        sim.run_until_done(Cycle::new(20_000_000)).unwrap();

        let probe = sim.servers()[0].probe.as_ref().unwrap();
        let p = probe.lock();
        assert_eq!(p.exit_code, Some(0));
        let rtt = u64::from_le_bytes(p.mailbox[8..16].try_into().unwrap());
        // 8 link crossings (4 out, 4 back) = 3200 cycles, plus 6 switch
        // traversals' latency and software turnaround.
        assert!(rtt > 3200, "rtt {rtt}");
        assert!(rtt < 3200 + 4000, "rtt {rtt}");
        // All three switches forwarded traffic.
        for (name, stats) in sim.switch_stats() {
            assert!(
                stats.lock().frames_forwarded >= 2 * count as u64,
                "switch {name}"
            );
        }
    }

    #[test]
    fn build_rejects_invalid_topology() {
        let topo = Topology::new();
        assert!(topo.build(SimConfig::default()).is_err());
    }

    #[test]
    fn plan_counts_tor_and_upper_switches() {
        let mut topo = Topology::new();
        let root = topo.add_switch("root");
        for x in 0..2 {
            let tor = topo.add_switch(format!("tor{x}"));
            topo.add_downlink(root, tor).unwrap();
            for y in 0..2 {
                let n = topo.add_server(
                    format!("n{x}{y}"),
                    BladeSpec::rtl_single_core(programs::boot_poweroff(1)),
                );
                topo.add_downlink(tor, n).unwrap();
            }
        }
        let sim = topo.build(SimConfig::default()).unwrap();
        let plan = sim.plan();
        assert_eq!(plan.request.nodes, 4);
        assert_eq!(plan.request.tor_switches, 2);
        assert_eq!(plan.request.upper_switches, 1);
    }
}
