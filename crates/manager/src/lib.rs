//! # firesim-manager
//!
//! The simulation manager (§III-B3): a programmatic topology description
//! (the Rust analogue of the paper's Fig 4 Python configuration),
//! automatic MAC/IP assignment and switch-table population, mapping onto
//! the host platform, and experiment result recording.
//!
//! ```
//! use firesim_manager::{Topology, BladeSpec, SimConfig};
//! use firesim_blade::{programs, BladeConfig};
//! use firesim_net::MacAddr;
//!
//! // An 8-node cluster under one ToR switch (the paper's §IV-A setup).
//! let mut topo = Topology::new();
//! let tor = topo.add_switch("tor0");
//! for i in 0..8 {
//!     let prog = programs::boot_poweroff(100);
//!     let node = topo.add_server(
//!         format!("node{i}"),
//!         BladeSpec::rtl_single_core(prog),
//!     );
//!     topo.add_downlink(tor, node).unwrap();
//! }
//! let sim = topo.build(SimConfig::default()).unwrap();
//! assert_eq!(sim.servers().len(), 8);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fleet;
pub mod partition;
pub mod report;
pub mod results;
pub mod simulation;
pub mod stream;
pub mod supervisor;
pub mod topology;

pub use firesim_blade::SamplingConfig;
pub use fleet::{CostEstimate, FleetSpec, HostAssignment, HostClass, LoadProfile, PlacementPlan};
pub use partition::{
    maybe_worker, run_partitioned, BuildFn, PartitionConfig, PartitionPlan, PartitionedRun,
    TransportChoice,
};
pub use report::{AgentReport, HistogramSummary, LinkReport, RunReport, SamplingSummary};
pub use results::{ExperimentRecord, ResultStore};
pub use simulation::{ShardBoundaries, SimConfig, Simulation};
pub use stream::{
    run_streamed, StreamMeta, StreamOut, StreamRecord, StreamSession, StreamSummary, StreamWriter,
    WIRE_VERSION,
};
pub use supervisor::{FailureReport, SupervisedRun, SupervisorConfig};
pub use topology::{BladeSpec, NodeRef, ServerId, SwitchId, Topology, TopologyError};
