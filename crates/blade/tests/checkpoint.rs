//! Checkpoint/restore round trips at the blade level: a restored
//! simulation must be bit-identical to one that never stopped, across
//! cycle-exact RTL blades, supernodes, and modeled blades.

use std::sync::Arc;

use firesim_blade::model::Actions;
use firesim_blade::programs;
use firesim_blade::soc::BladeProbe;
use firesim_blade::{BladeConfig, ModeledBlade, NodeApp, OsConfig, OsModel, RtlBlade, Supernode};
use firesim_core::snapshot::{SnapshotReader, SnapshotWriter};
use firesim_core::{Cycle, Engine, EngineCheckpoint, SimError, SimResult};
use firesim_net::{EthernetFrame, Flit, MacAddr};
use parking_lot::Mutex;

/// Two RTL blades playing ping-pong over a 100-cycle link.
fn build_ring() -> (Engine<Flit>, Arc<Mutex<BladeProbe>>) {
    let mac0 = MacAddr::from_node_index(0);
    let mac1 = MacAddr::from_node_index(1);
    let sender_prog = programs::ping_sender(mac0, mac1, 3, 26, 2_000);
    let responder_prog = programs::echo_responder(3);

    let mk = |name: &str, mac: MacAddr| {
        RtlBlade::new(
            name,
            mac,
            BladeConfig::single_core().with_dram_bytes(1 << 20),
        )
    };
    let mut sender = mk("sender", mac0);
    sender_prog.install(&mut sender);
    let mut responder = mk("responder", mac1);
    responder_prog.install(&mut responder);
    let probe = sender.probe();

    let mut engine: Engine<Flit> = Engine::new(100);
    let s = engine.add_agent(Box::new(sender));
    let r = engine.add_agent(Box::new(responder));
    engine.connect(s, 0, r, 0, Cycle::new(100)).unwrap();
    engine.connect(r, 0, s, 0, Cycle::new(100)).unwrap();
    (engine, probe)
}

#[test]
fn rtl_blade_ring_restores_bit_identically() {
    // Reference run: checkpoint mid-conversation, then keep going.
    let (mut a, probe_a) = build_ring();
    a.run_for(Cycle::new(1_000)).unwrap();
    let bytes = a.checkpoint().unwrap().to_bytes();
    let done_a = a.run_until_done(Cycle::new(10_000_000)).unwrap();

    // Restored run: fresh identically-built engine, restore, continue.
    let (mut b, probe_b) = build_ring();
    let cp = EngineCheckpoint::<Flit>::from_bytes(&bytes).unwrap();
    b.restore(&cp).unwrap();
    let done_b = b.run_until_done(Cycle::new(10_000_000)).unwrap();

    assert_eq!(done_a.cycles, done_b.cycles);
    // Full engine state (every core, cache, DRAM bank, NIC queue, link
    // token) must be byte-identical after the two histories converge.
    assert_eq!(
        a.checkpoint().unwrap().to_bytes(),
        b.checkpoint().unwrap().to_bytes()
    );
    let (pa, pb) = (probe_a.lock(), probe_b.lock());
    assert_eq!(pa.exit_code, Some(0));
    assert_eq!(pa.exit_code, pb.exit_code);
    assert_eq!(pa.mailbox, pb.mailbox);
    assert_eq!(pa.retired, pb.retired);
    assert_eq!(pa.cycles, pb.cycles);
}

#[test]
fn supernode_checkpoint_delegates_to_all_blades() {
    let build = || {
        let mac0 = MacAddr::from_node_index(0);
        let mac1 = MacAddr::from_node_index(1);
        let sender_prog = programs::ping_sender(mac0, mac1, 2, 26, 3_000);
        let responder_prog = programs::echo_responder(2);
        let mut sender = RtlBlade::new(
            "n0",
            mac0,
            BladeConfig::single_core().with_dram_bytes(1 << 20),
        );
        sender_prog.install(&mut sender);
        let mut responder = RtlBlade::new(
            "n1",
            mac1,
            BladeConfig::single_core().with_dram_bytes(1 << 20),
        );
        responder_prog.install(&mut responder);
        let probe = sender.probe();
        let sn = Supernode::new("sn0", vec![sender, responder]);
        let mut engine: Engine<Flit> = Engine::new(100);
        let id = engine.add_agent(Box::new(sn));
        engine.connect(id, 0, id, 1, Cycle::new(100)).unwrap();
        engine.connect(id, 1, id, 0, Cycle::new(100)).unwrap();
        (engine, probe)
    };

    let (mut a, probe_a) = build();
    a.run_for(Cycle::new(800)).unwrap();
    let bytes = a.checkpoint().unwrap().to_bytes();
    a.run_until_done(Cycle::new(10_000_000)).unwrap();

    let (mut b, probe_b) = build();
    b.restore(&EngineCheckpoint::<Flit>::from_bytes(&bytes).unwrap())
        .unwrap();
    b.run_until_done(Cycle::new(10_000_000)).unwrap();

    assert_eq!(
        a.checkpoint().unwrap().to_bytes(),
        b.checkpoint().unwrap().to_bytes()
    );
    let (pa, pb) = (probe_a.lock(), probe_b.lock());
    assert_eq!(pa.exit_code, Some(0));
    assert_eq!(pa.mailbox, pb.mailbox);
    assert_eq!(pa.retired, pb.retired);
}

/// A checkpointable app: counts frames, stops after a quota.
struct CountingApp {
    seen: u64,
    quota: u64,
}

impl NodeApp for CountingApp {
    fn on_frame(&mut self, _cycle: u64, _frame: &EthernetFrame, _out: &mut Actions) {
        self.seen += 1;
    }
    fn on_work_done(&mut self, _c: u64, _t: u64, _o: &mut Actions) {}
    fn poll(&mut self, _f: u64, _t: u64, _o: &mut Actions) {}
    fn done(&self) -> bool {
        self.seen >= self.quota
    }
    fn save_state(&self, w: &mut SnapshotWriter) -> SimResult<()> {
        w.put_u64(self.seen);
        w.put_u64(self.quota);
        Ok(())
    }
    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> SimResult<()> {
        self.seen = r.get_u64()?;
        self.quota = r.get_u64()?;
        Ok(())
    }
}

/// An app that never opted into checkpointing.
struct OpaqueApp;

impl NodeApp for OpaqueApp {
    fn on_frame(&mut self, _cycle: u64, _frame: &EthernetFrame, _out: &mut Actions) {}
    fn on_work_done(&mut self, _c: u64, _t: u64, _o: &mut Actions) {}
    fn poll(&mut self, _f: u64, _t: u64, _o: &mut Actions) {}
}

fn modeled_pair(app: Box<dyn NodeApp>) -> Engine<Flit> {
    let cfg = OsConfig {
        cores: 1,
        misplace_prob: 0.0,
        ..OsConfig::default()
    };
    let a = ModeledBlade::new(
        "m0",
        MacAddr::from_node_index(0),
        OsModel::new(cfg, 1, true),
        app,
    );
    let b = ModeledBlade::new(
        "m1",
        MacAddr::from_node_index(1),
        OsModel::new(cfg, 1, true),
        Box::new(CountingApp { seen: 0, quota: 1 }),
    );
    let mut engine: Engine<Flit> = Engine::new(100);
    let ai = engine.add_agent(Box::new(a));
    let bi = engine.add_agent(Box::new(b));
    engine.connect(ai, 0, bi, 0, Cycle::new(100)).unwrap();
    engine.connect(bi, 0, ai, 0, Cycle::new(100)).unwrap();
    engine
}

#[test]
fn modeled_blade_with_optin_app_round_trips() {
    let mut engine = modeled_pair(Box::new(CountingApp { seen: 3, quota: 9 }));
    engine.run_for(Cycle::new(500)).unwrap();
    let cp = engine.checkpoint().unwrap();
    engine.run_for(Cycle::new(500)).unwrap();
    let after = engine.checkpoint().unwrap().to_bytes();

    engine.restore(&cp).unwrap();
    engine.run_for(Cycle::new(500)).unwrap();
    assert_eq!(engine.checkpoint().unwrap().to_bytes(), after);
}

#[test]
fn modeled_blade_with_opaque_app_fails_with_typed_error() {
    let mut engine = modeled_pair(Box::new(OpaqueApp));
    engine.run_for(Cycle::new(200)).unwrap();
    match engine.checkpoint() {
        Err(SimError::Checkpoint { detail }) => {
            assert!(
                detail.contains("does not support checkpointing"),
                "{detail}"
            );
        }
        other => panic!("expected a Checkpoint error, got {other:?}"),
    }
}
