//! The behavioural ("hosted") blade: an OS-scheduler model running
//! service models, attached to the same token-exact network.
//!
//! The paper boots Linux on its RTL blades and runs memcached/mutilate at
//! 1024-node scale. FireSim-rs cannot boot Linux (no RISC-V Linux images,
//! see DESIGN.md), so scale experiments run on [`ModeledBlade`] — a node
//! whose *network interface remains cycle-exact* (one token per cycle, the
//! same flit framing the RTL blades use) while the software stack is a
//! parameterised model — cores, threads, run queues, scheduling quanta,
//! context-switch and network-stack costs. This is precisely the
//! "abstract model" category the paper embraces for switches, applied to
//! node software.
//!
//! The scheduler reproduces the mechanisms behind Fig 7:
//!
//! * more runnable threads than cores ⇒ a request landing on a
//!   descheduled thread waits out other threads' quanta ⇒ tail latency
//!   inflates while the median is untouched;
//! * unpinned threads occasionally wake on a busy core even when another
//!   core is free (placement noise) ⇒ mid-load tail inflation that
//!   pinning eliminates.

use std::collections::VecDeque;

use firesim_core::{AgentCtx, SimAgent, SimRng};
use firesim_net::{EthernetFrame, Flit, FrameDeframer, MacAddr, FLIT_BYTES};

/// Actions an application requests from the node.
#[derive(Debug, Default)]
pub struct Actions {
    /// Frames to transmit, each no earlier than the given cycle.
    pub send: Vec<(u64, EthernetFrame)>,
    /// Work items to enqueue: `(thread, cycles, tag)`.
    pub work: Vec<(usize, u64, u64)>,
    /// Set when the application has finished (powers the node off).
    pub stop: bool,
}

impl Actions {
    /// Queues a frame for transmission at or after `cycle`.
    pub fn send_at(&mut self, cycle: u64, frame: EthernetFrame) {
        self.send.push((cycle, frame));
    }

    /// Queues `cycles` of CPU work on `thread`, identified by `tag`.
    pub fn work_on(&mut self, thread: usize, cycles: u64, tag: u64) {
        self.work.push((thread, cycles, tag));
    }
}

/// An application running on a [`ModeledBlade`].
///
/// All callbacks receive absolute target cycles. Work enqueued via
/// [`Actions::work_on`] competes for the node's cores under the OS model;
/// [`NodeApp::on_work_done`] fires when an item has actually received that
/// much CPU time.
pub trait NodeApp: Send {
    /// A frame addressed to this node arrived (last flit at `cycle`).
    fn on_frame(&mut self, cycle: u64, frame: &EthernetFrame, out: &mut Actions);

    /// A work item completed on a core.
    fn on_work_done(&mut self, cycle: u64, tag: u64, out: &mut Actions);

    /// Called once per window so time-driven apps (load generators) can
    /// emit events in `[from, to)`.
    fn poll(&mut self, from: u64, to: u64, out: &mut Actions);

    /// True when the app has nothing further to do.
    fn done(&self) -> bool {
        false
    }

    /// Saves the application's mutable state for a checkpoint.
    ///
    /// The default refuses, so blades running apps that have not opted in
    /// fail checkpointing with a typed error instead of silently dropping
    /// state. Stateless apps can override with `Ok(())`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`](firesim_core::SimError) unless
    /// overridden.
    fn save_state(
        &self,
        _w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        Err(firesim_core::SimError::checkpoint(
            "node application does not support checkpointing",
        ))
    }

    /// Restores the application's mutable state from a checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`](firesim_core::SimError) unless
    /// overridden.
    fn restore_state(
        &mut self,
        _r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        Err(firesim_core::SimError::checkpoint(
            "node application does not support checkpointing",
        ))
    }
}

/// OS-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsConfig {
    /// Number of cores.
    pub cores: usize,
    /// Scheduler time slice in cycles (default 100 us at 3.2 GHz).
    pub quantum_cycles: u64,
    /// Context-switch cost in cycles (default ~1.25 us).
    pub ctx_switch_cycles: u64,
    /// Probability that an unpinned waking thread is placed on a busy
    /// core despite a free one existing (Linux placement noise).
    pub misplace_prob: f64,
    /// Seed for placement noise.
    pub seed: u64,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig {
            cores: 4,
            quantum_cycles: 320_000,
            ctx_switch_cycles: 4_000,
            misplace_prob: 0.1,
            seed: 1,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Idle,
    Queued(usize),
    Running(usize),
}

#[derive(Debug)]
struct Thread {
    queue: VecDeque<(u64, u64)>, // (cycles, tag)
    state: ThreadState,
    pinned: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    thread: usize,
    /// Remaining cycles of the current work item.
    remaining: u64,
    /// Cycles left in the quantum.
    quantum_left: u64,
    /// Context-switch overhead still to pay before work progresses.
    overhead: u64,
}

/// The OS scheduler model: cores with local run queues, round-robin
/// quanta, optional pinning, and placement noise.
#[derive(Debug)]
pub struct OsModel {
    config: OsConfig,
    threads: Vec<Thread>,
    running: Vec<Option<Running>>,
    runq: Vec<VecDeque<usize>>, // per-core local queues
    rng: SimRng,
}

impl OsModel {
    /// Creates the model with `threads` thread slots, optionally pinning
    /// thread `i` to core `i % cores`.
    pub fn new(config: OsConfig, threads: usize, pinned: bool) -> Self {
        assert!(config.cores > 0, "need at least one core");
        OsModel {
            threads: (0..threads)
                .map(|i| Thread {
                    queue: VecDeque::new(),
                    state: ThreadState::Idle,
                    pinned: pinned.then_some(i % config.cores),
                })
                .collect(),
            running: (0..config.cores).map(|_| None).collect(),
            runq: (0..config.cores).map(|_| VecDeque::new()).collect(),
            rng: SimRng::seed_from(config.seed),
            config,
        }
    }

    /// Number of thread slots.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Enqueues a work item and wakes the thread if idle.
    pub fn enqueue(&mut self, thread: usize, cycles: u64, tag: u64) {
        self.threads[thread].queue.push_back((cycles.max(1), tag));
        if self.threads[thread].state == ThreadState::Idle {
            self.wake(thread);
        }
    }

    fn wake(&mut self, thread: usize) {
        let core = match self.threads[thread].pinned {
            Some(c) => c,
            None => {
                let free: Vec<usize> = (0..self.config.cores)
                    .filter(|&c| self.running[c].is_none() && self.runq[c].is_empty())
                    .collect();
                if free.is_empty() || self.rng.next_bool(self.config.misplace_prob) {
                    // Misplacement (or no choice): a random core.
                    self.rng.next_below(self.config.cores as u64) as usize
                } else {
                    free[self.rng.next_below(free.len() as u64) as usize]
                }
            }
        };
        self.threads[thread].state = ThreadState::Queued(core);
        self.runq[core].push_back(thread);
    }

    fn dispatch(&mut self, core: usize) {
        if self.running[core].is_some() {
            return;
        }
        let thread = match self.runq[core].pop_front() {
            Some(t) => t,
            None => {
                // Idle load balancing: steal an unpinned thread from the
                // busiest other run queue (CFS idle balance).
                let Some(t) = self.steal_for(core) else {
                    return;
                };
                t
            }
        };
        let (cycles, _tag) = *self.threads[thread]
            .queue
            .front()
            .expect("queued thread has work");
        self.threads[thread].state = ThreadState::Running(core);
        self.running[core] = Some(Running {
            thread,
            remaining: cycles,
            quantum_left: self.config.quantum_cycles,
            overhead: self.config.ctx_switch_cycles,
        });
    }

    /// Picks an unpinned queued thread from the fullest other run queue.
    fn steal_for(&mut self, idle_core: usize) -> Option<usize> {
        let victim = (0..self.config.cores)
            .filter(|&c| c != idle_core)
            .max_by_key(|&c| {
                self.runq[c]
                    .iter()
                    .filter(|&&t| self.threads[t].pinned.is_none())
                    .count()
            })?;
        let pos = self.runq[victim]
            .iter()
            .position(|&t| self.threads[t].pinned.is_none())?;
        let thread = self.runq[victim].remove(pos).expect("position valid");
        self.threads[thread].state = ThreadState::Queued(idle_core);
        Some(thread)
    }

    /// Next cycle offset (≤ `horizon`) at which something completes or a
    /// quantum expires; `horizon` when the node is idle until then.
    fn next_step(&self, horizon: u64) -> u64 {
        let mut step = horizon;
        for r in self.running.iter().flatten() {
            step = step.min(r.overhead + r.remaining.min(r.quantum_left));
        }
        step.max(1)
    }

    /// Advances all cores by `dt` cycles; completed items are reported as
    /// `(end_cycle, tag)` via `completed` (with `now` the cycle at the
    /// start of the step).
    fn advance_by(&mut self, now: u64, dt: u64, completed: &mut Vec<(u64, u64)>) {
        // Breadth-first dispatch (including idle stealing) before any core
        // consumes time, so queued work spreads across idle cores the way
        // it would in a continuously scheduled system.
        for core in 0..self.config.cores {
            self.dispatch(core);
        }
        for core in 0..self.config.cores {
            let mut dt_left = dt;
            while dt_left > 0 {
                let Some(mut r) = self.running[core] else {
                    self.dispatch(core);
                    if self.running[core].is_none() {
                        break;
                    }
                    continue;
                };
                // Pay context-switch overhead first.
                if r.overhead > 0 {
                    let pay = r.overhead.min(dt_left);
                    r.overhead -= pay;
                    dt_left -= pay;
                    self.running[core] = Some(r);
                    continue;
                }
                let run = r.remaining.min(r.quantum_left).min(dt_left);
                r.remaining -= run;
                r.quantum_left -= run;
                dt_left -= run;
                if r.remaining == 0 {
                    // Work item done.
                    let end = now + (dt - dt_left);
                    let thread = r.thread;
                    let (_c, tag) = self.threads[thread]
                        .queue
                        .pop_front()
                        .expect("running thread has work");
                    completed.push((end, tag));
                    self.running[core] = None;
                    if let Some(&(next_cycles, _)) = self.threads[thread].queue.front() {
                        // Same thread keeps the core for its next item
                        // (no context switch) unless the quantum expired.
                        if r.quantum_left > 0 {
                            self.running[core] = Some(Running {
                                thread,
                                remaining: next_cycles,
                                quantum_left: r.quantum_left,
                                overhead: 0,
                            });
                        } else {
                            self.threads[thread].state = ThreadState::Queued(core);
                            self.runq[core].push_back(thread);
                            self.dispatch(core);
                        }
                    } else {
                        self.threads[thread].state = ThreadState::Idle;
                        self.dispatch(core);
                    }
                } else if r.quantum_left == 0 {
                    // Preemption: rotate if anyone is waiting.
                    if self.runq[core].is_empty() {
                        r.quantum_left = self.config.quantum_cycles;
                        self.running[core] = Some(r);
                    } else {
                        let thread = r.thread;
                        // Put the interrupted item back at the front.
                        if let Some(front) = self.threads[thread].queue.front_mut() {
                            front.0 = r.remaining;
                        }
                        self.threads[thread].state = ThreadState::Queued(core);
                        self.runq[core].push_back(thread);
                        self.running[core] = None;
                        self.dispatch(core);
                    }
                } else {
                    self.running[core] = Some(r);
                }
            }
        }
    }
}

impl firesim_core::snapshot::Checkpoint for OsModel {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        w.put_usize(self.config.cores);
        w.put_usize(self.threads.len());
        for t in &self.threads {
            w.put(&t.queue);
            let (tag, core) = match t.state {
                ThreadState::Idle => (0u8, 0usize),
                ThreadState::Queued(c) => (1, c),
                ThreadState::Running(c) => (2, c),
            };
            w.put_u8(tag);
            w.put_usize(core);
            w.put(&t.pinned);
        }
        for slot in &self.running {
            w.put_bool(slot.is_some());
            if let Some(r) = slot {
                w.put_usize(r.thread);
                w.put_u64(r.remaining);
                w.put_u64(r.quantum_left);
                w.put_u64(r.overhead);
            }
        }
        w.put(&self.runq);
        w.put(&self.rng);
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        let cores = r.get_usize()?;
        let threads = r.get_usize()?;
        if cores != self.config.cores || threads != self.threads.len() {
            return Err(firesim_core::SimError::checkpoint(format!(
                "OS-model snapshot is {threads} threads on {cores} cores, \
                 target is {} threads on {}",
                self.threads.len(),
                self.config.cores
            )));
        }
        for t in &mut self.threads {
            t.queue = r.get()?;
            let tag = r.get_u8()?;
            let core = r.get_usize()?;
            t.state = match tag {
                0 => ThreadState::Idle,
                1 => ThreadState::Queued(core),
                2 => ThreadState::Running(core),
                _ => {
                    return Err(firesim_core::SimError::checkpoint(format!(
                        "unknown thread-state tag {tag}"
                    )))
                }
            };
            t.pinned = r.get()?;
        }
        for slot in &mut self.running {
            *slot = if r.get_bool()? {
                Some(Running {
                    thread: r.get_usize()?,
                    remaining: r.get_u64()?,
                    quantum_left: r.get_u64()?,
                    overhead: r.get_u64()?,
                })
            } else {
                None
            };
        }
        self.runq = r.get()?;
        self.rng = r.get()?;
        Ok(())
    }
}

/// The transmit half of the modeled NIC: serialises frames at 8 bytes per
/// cycle with an optional token-bucket rate limit.
#[derive(Debug, Default)]
struct TxModel {
    /// Frames ready to go: `(earliest_cycle, wire bytes)`.
    queue: VecDeque<(u64, Vec<u8>)>,
    /// In-flight frame: `(bytes, cursor)`.
    current: Option<(Vec<u8>, usize)>,
}

/// A behavioural blade. See the [module docs](self).
pub struct ModeledBlade {
    name: String,
    mac: MacAddr,
    os: OsModel,
    app: Box<dyn NodeApp>,
    deframer: FrameDeframer,
    tx: TxModel,
    stopped: bool,
    /// Observability counters. Deliberately excluded from the checkpoint
    /// (they describe the run, not the architectural state, and adding
    /// them would change the snapshot format).
    rx_frames: u64,
    tx_frames: u64,
}

impl std::fmt::Debug for ModeledBlade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModeledBlade")
            .field("name", &self.name)
            .field("mac", &self.mac)
            .field("stopped", &self.stopped)
            .finish()
    }
}

impl ModeledBlade {
    /// Creates a node running `app` under the given OS model.
    pub fn new(name: impl Into<String>, mac: MacAddr, os: OsModel, app: Box<dyn NodeApp>) -> Self {
        ModeledBlade {
            name: name.into(),
            mac,
            os,
            app,
            deframer: FrameDeframer::new(),
            tx: TxModel::default(),
            stopped: false,
            rx_frames: 0,
            tx_frames: 0,
        }
    }

    /// The node's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    fn apply_actions(&mut self, actions: Actions) {
        for (cycle, frame) in actions.send {
            self.tx_frames += 1;
            self.tx.queue.push_back((cycle, frame.to_wire()));
        }
        for (thread, cycles, tag) in actions.work {
            // Enqueue immediately; completions surface from the OS loop.
            self.os.enqueue(thread, cycles, tag);
        }
        if actions.stop {
            self.stopped = true;
        }
    }
}

impl firesim_core::snapshot::Checkpoint for ModeledBlade {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        self.os.save_state(w)?;
        self.app.save_state(w)?;
        w.put(&self.deframer);
        w.put(&self.tx.queue);
        w.put(&self.tx.current);
        w.put_bool(self.stopped);
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        self.os.restore_state(r)?;
        self.app.restore_state(r)?;
        self.deframer = r.get()?;
        self.tx.queue = r.get()?;
        self.tx.current = r.get()?;
        self.stopped = r.get_bool()?;
        Ok(())
    }
}

impl SimAgent for ModeledBlade {
    type Token = Flit;

    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn done(&self) -> bool {
        self.stopped || self.app.done()
    }

    fn advance(&mut self, ctx: &mut AgentCtx<Flit>) {
        let window = u64::from(ctx.window());
        let base = ctx.now().as_u64();

        // --- 1. Gather frame arrivals (cycle of last flit). ---
        let mut arrivals: Vec<(u64, EthernetFrame)> = Vec::new();
        for (off, flit) in ctx.drain_input(0) {
            if let Ok(Some(frame)) = self.deframer.push(flit) {
                self.rx_frames += 1;
                arrivals.push((base + u64::from(off), frame));
            }
        }

        // --- 2. Time-driven app events for this window. ---
        let mut actions = Actions::default();
        self.app.poll(base, base + window, &mut actions);
        self.apply_actions(actions);

        // --- 3. Event loop over the window. ---
        let mut completed: Vec<(u64, u64)> = Vec::new();
        let mut arrival_idx = 0;
        let mut now = base;
        let end = base + window;
        while now < end {
            // Next OS step or next arrival, whichever is sooner.
            let os_step = self.os.next_step(end - now);
            let next_arrival = arrivals
                .get(arrival_idx)
                .map(|&(c, _)| c.max(now))
                .unwrap_or(u64::MAX);
            let target = (now + os_step).min(next_arrival).min(end);
            let dt = target - now;
            if dt > 0 {
                completed.clear();
                self.os.advance_by(now, dt, &mut completed);
                for &(cycle, tag) in &completed {
                    let mut actions = Actions::default();
                    self.app.on_work_done(cycle, tag, &mut actions);
                    self.apply_actions(actions);
                }
            }
            now = target;
            while arrival_idx < arrivals.len() && arrivals[arrival_idx].0 <= now {
                let (cycle, frame) = &arrivals[arrival_idx];
                let mut actions = Actions::default();
                self.app.on_frame(*cycle, frame, &mut actions);
                self.apply_actions(actions);
                arrival_idx += 1;
            }
            if dt == 0 && now < end && arrival_idx >= arrivals.len() {
                // Nothing scheduled and no arrivals: the OS is idle for
                // the remainder of the window.
                let os_step = self.os.next_step(end - now);
                if now + os_step >= end && self.os.running.iter().all(Option::is_none) {
                    break;
                }
            }
        }
        // Drain any remaining OS work up to the window end.
        if now < end {
            completed.clear();
            self.os.advance_by(now, end - now, &mut completed);
            for &(cycle, tag) in &completed {
                let mut actions = Actions::default();
                self.app.on_work_done(cycle, tag, &mut actions);
                self.apply_actions(actions);
            }
        }

        // --- 4. Transmit: serialise queued frames into output tokens. ---
        let out = ctx.output_mut(0);
        let mut off = 0u64;
        while off < window {
            if let Some((wire, cursor)) = self.tx.current.take() {
                let mut cursor = cursor;
                let mut wire = wire;
                while cursor < wire.len() && off < window {
                    let n = (wire.len() - cursor).min(FLIT_BYTES);
                    let last = wire.len() - cursor <= FLIT_BYTES;
                    let flit = Flit::from_bytes(&wire[cursor..cursor + n], last);
                    out.push(off as u32, flit).expect("offsets increase");
                    cursor += n;
                    off += 1;
                }
                if cursor < wire.len() {
                    wire.drain(..cursor);
                    self.tx.current = Some((wire, 0));
                    return;
                }
                continue;
            }
            let Some(&(ready, _)) = self.tx.queue.front() else {
                break;
            };
            if ready >= base + window {
                break;
            }
            let start = ready.max(base + off);
            if start >= base + window {
                break;
            }
            off = start - base;
            let (_, wire) = self.tx.queue.pop_front().expect("peeked");
            self.tx.current = Some((wire, 0));
        }
    }

    fn as_checkpoint(&mut self) -> Option<&mut dyn firesim_core::snapshot::Checkpoint> {
        Some(self)
    }

    fn app_counters(&self, out: &mut Vec<(String, u64)>) {
        out.push(("rx_frames".to_owned(), self.rx_frames));
        out.push(("tx_frames".to_owned(), self.tx_frames));
        out.push(("stopped".to_owned(), u64::from(self.stopped)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firesim_core::{Cycle, Engine, TokenWindow};
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// Echoes every frame back to its source after `work` cycles of CPU.
    struct EchoApp {
        mac: MacAddr,
        work: u64,
        pending: Vec<EthernetFrame>,
        replies: u64,
        limit: u64,
    }

    impl NodeApp for EchoApp {
        fn on_frame(&mut self, _cycle: u64, frame: &EthernetFrame, out: &mut Actions) {
            self.pending.push(frame.clone());
            out.work_on(0, self.work, self.pending.len() as u64 - 1);
        }
        fn on_work_done(&mut self, cycle: u64, tag: u64, out: &mut Actions) {
            let req = &self.pending[tag as usize];
            let reply = EthernetFrame::new(req.src, self.mac, req.ethertype, req.payload.clone());
            out.send_at(cycle, reply);
            self.replies += 1;
            if self.replies >= self.limit {
                out.stop = true;
            }
        }
        fn poll(&mut self, _from: u64, _to: u64, _out: &mut Actions) {}
    }

    /// Sends one frame at a fixed cycle and records the reply arrival.
    struct ProbeApp {
        mac: MacAddr,
        dst: MacAddr,
        send_at: u64,
        sent: bool,
        reply_at: Arc<Mutex<Option<u64>>>,
    }

    impl NodeApp for ProbeApp {
        fn on_frame(&mut self, cycle: u64, _frame: &EthernetFrame, out: &mut Actions) {
            *self.reply_at.lock() = Some(cycle);
            out.stop = true;
        }
        fn on_work_done(&mut self, _c: u64, _t: u64, _o: &mut Actions) {}
        fn poll(&mut self, from: u64, to: u64, out: &mut Actions) {
            if !self.sent && self.send_at >= from && self.send_at < to {
                self.sent = true;
                out.send_at(
                    self.send_at,
                    EthernetFrame::new(
                        self.dst,
                        self.mac,
                        firesim_net::EtherType::Echo,
                        bytes::Bytes::from_static(&[0u8; 26]),
                    ),
                );
            }
        }
    }

    #[test]
    fn modeled_round_trip_latency_is_cycle_exact() {
        // frame wire = 40 bytes = 5 flits; link latency 100; echo work
        // 1000 cycles (+ context switch 0 for determinism).
        let mac_a = MacAddr::from_node_index(0);
        let mac_b = MacAddr::from_node_index(1);
        let reply_at = Arc::new(Mutex::new(None));
        let probe = ProbeApp {
            mac: mac_a,
            dst: mac_b,
            send_at: 50,
            sent: false,
            reply_at: reply_at.clone(),
        };
        let os_cfg = OsConfig {
            cores: 1,
            ctx_switch_cycles: 0,
            misplace_prob: 0.0,
            ..OsConfig::default()
        };
        let echo = EchoApp {
            mac: mac_b,
            work: 1000,
            pending: Vec::new(),
            replies: 0,
            limit: 1,
        };
        let a = ModeledBlade::new("a", mac_a, OsModel::new(os_cfg, 1, true), Box::new(probe));
        let b = ModeledBlade::new("b", mac_b, OsModel::new(os_cfg, 1, true), Box::new(echo));

        let mut engine: Engine<Flit> = Engine::new(100);
        let ai = engine.add_agent(Box::new(a));
        let bi = engine.add_agent(Box::new(b));
        engine.connect(ai, 0, bi, 0, Cycle::new(100)).unwrap();
        engine.connect(bi, 0, ai, 0, Cycle::new(100)).unwrap();
        engine.run_until_done(Cycle::new(100_000)).unwrap();

        // Timeline: tx starts at 50, 5 flits, last flit leaves at 54,
        // arrives at 154. Echo work 1000 -> reply queued at 1154; reply
        // tx 1154..1158, last flit arrives 1158 + 100 = 1258.
        assert_eq!(*reply_at.lock(), Some(1258));
    }

    #[test]
    fn scheduler_more_threads_than_cores_queues() {
        // 2 threads, 1 core, no overheads: two 100-cycle items enqueued at
        // once finish at 100 and 200.
        let cfg = OsConfig {
            cores: 1,
            quantum_cycles: 1_000_000,
            ctx_switch_cycles: 0,
            misplace_prob: 0.0,
            ..OsConfig::default()
        };
        let mut os = OsModel::new(cfg, 2, false);
        os.enqueue(0, 100, 10);
        os.enqueue(1, 100, 11);
        let mut completed = Vec::new();
        os.advance_by(0, 250, &mut completed);
        assert_eq!(completed, vec![(100, 10), (200, 11)]);
    }

    #[test]
    fn scheduler_parallel_cores_overlap() {
        let cfg = OsConfig {
            cores: 2,
            quantum_cycles: 1_000_000,
            ctx_switch_cycles: 0,
            misplace_prob: 0.0,
            ..OsConfig::default()
        };
        let mut os = OsModel::new(cfg, 2, true);
        os.enqueue(0, 100, 10);
        os.enqueue(1, 100, 11);
        let mut completed = Vec::new();
        os.advance_by(0, 150, &mut completed);
        completed.sort_unstable();
        assert_eq!(completed, vec![(100, 10), (100, 11)]);
    }

    #[test]
    fn quantum_preemption_interleaves() {
        // One core, two threads with long work, tiny quantum: both make
        // progress (round-robin), so neither finishes before ~2x its work.
        let cfg = OsConfig {
            cores: 1,
            quantum_cycles: 100,
            ctx_switch_cycles: 0,
            misplace_prob: 0.0,
            ..OsConfig::default()
        };
        let mut os = OsModel::new(cfg, 2, false);
        os.enqueue(0, 500, 10);
        os.enqueue(1, 500, 11);
        let mut completed = Vec::new();
        os.advance_by(0, 2000, &mut completed);
        completed.sort_unstable();
        assert_eq!(completed.len(), 2);
        // With perfect interleaving thread 0 finishes around cycle 900-1000
        // and thread 1 right at ~1000.
        assert!(completed[0].0 >= 900, "{completed:?}");
        assert!(completed[1].0 <= 1100, "{completed:?}");
    }

    #[test]
    fn context_switch_cost_delays_completion() {
        let cfg = OsConfig {
            cores: 1,
            quantum_cycles: 1_000_000,
            ctx_switch_cycles: 50,
            misplace_prob: 0.0,
            ..OsConfig::default()
        };
        let mut os = OsModel::new(cfg, 1, false);
        os.enqueue(0, 100, 7);
        let mut completed = Vec::new();
        os.advance_by(0, 200, &mut completed);
        assert_eq!(completed, vec![(150, 7)]);
    }

    #[test]
    fn idle_balancing_steals_unpinned_work() {
        // Two unpinned threads misplaced onto core 0 while core 1 idles:
        // the steal path runs them in parallel anyway.
        let cfg = OsConfig {
            cores: 2,
            quantum_cycles: 1_000_000,
            ctx_switch_cycles: 0,
            misplace_prob: 1.0, // always misplace
            seed: 3,
        };
        let mut os = OsModel::new(cfg, 2, false);
        os.enqueue(0, 1_000, 1);
        os.enqueue(1, 1_000, 2);
        let mut completed = Vec::new();
        os.advance_by(0, 1_500, &mut completed);
        completed.sort_unstable();
        assert_eq!(completed.len(), 2, "{completed:?}");
        // Both finish around 1000 (parallel), not 2000 (serial).
        assert!(completed[1].0 <= 1_100, "{completed:?}");
    }

    #[test]
    fn pinned_threads_are_never_stolen() {
        let cfg = OsConfig {
            cores: 2,
            quantum_cycles: 1_000_000,
            ctx_switch_cycles: 0,
            misplace_prob: 0.0,
            ..OsConfig::default()
        };
        // Both threads pinned to core 0 (threads % cores: 0 -> 0, 2 -> 0).
        let mut os = OsModel::new(cfg, 1, true);
        os.enqueue(0, 500, 1);
        os.enqueue(0, 500, 2); // same thread, queued work
        let mut completed = Vec::new();
        os.advance_by(0, 2_000, &mut completed);
        // Serialised on the pinned core.
        assert_eq!(completed, vec![(500, 1), (1_000, 2)]);
    }

    #[test]
    fn tx_respects_earliest_cycle_and_serialises() {
        // Directly exercise the TX path through advance() with no input.
        struct SendTwo {
            sent: bool,
        }
        impl NodeApp for SendTwo {
            fn on_frame(&mut self, _c: u64, _f: &EthernetFrame, _o: &mut Actions) {}
            fn on_work_done(&mut self, _c: u64, _t: u64, _o: &mut Actions) {}
            fn poll(&mut self, from: u64, _to: u64, out: &mut Actions) {
                if !self.sent {
                    self.sent = true;
                    let f = EthernetFrame::new(
                        MacAddr::from_node_index(9),
                        MacAddr::from_node_index(8),
                        firesim_net::EtherType::Stream,
                        bytes::Bytes::from_static(&[1u8; 10]), // 24 wire bytes, 3 flits
                    );
                    out.send_at(from + 10, f.clone());
                    out.send_at(from + 11, f);
                }
            }
        }
        let cfg = OsConfig {
            cores: 1,
            misplace_prob: 0.0,
            ..OsConfig::default()
        };
        let mut blade = ModeledBlade::new(
            "tx",
            MacAddr::from_node_index(8),
            OsModel::new(cfg, 1, true),
            Box::new(SendTwo { sent: false }),
        );
        let mut ctx = AgentCtx::standalone(Cycle::new(0), 64, vec![TokenWindow::new(64)], 1);
        blade.advance(&mut ctx);
        let out = ctx.into_outputs().remove(0);
        let offsets: Vec<u32> = out.iter().map(|(o, _)| o).collect();
        // First frame: cycles 10,11,12; second frame immediately after:
        // 13,14,15.
        assert_eq!(offsets, vec![10, 11, 12, 13, 14, 15]);
        let lasts: Vec<bool> = out.iter().map(|(_, f)| f.last).collect();
        assert_eq!(lasts, vec![false, false, true, false, false, true]);
    }
}
