//! Blade configuration (paper Table I).

use firesim_core::Frequency;
use firesim_devices::{BlockDeviceConfig, NicConfig};
use firesim_uarch::{MemSystemConfig, TimingConfig};

/// Configuration of one server blade.
///
/// Defaults reproduce Table I of the paper: 4 RISC-V Rocket cores at
/// 3.2 GHz, 16 KiB L1I/L1D, 256 KiB L2, DDR3-modeled DRAM, a 200 Gbit/s
/// Ethernet NIC, and a block device — except that simulated DRAM capacity
/// defaults to 256 MiB instead of 16 GiB so that thousands of blades fit
/// in host memory (the paper's FPGAs have physical DRAM to back each
/// blade; we document this substitution in DESIGN.md). Programs that need
/// more can raise it.
///
/// # Examples
///
/// ```
/// use firesim_blade::BladeConfig;
///
/// let quad = BladeConfig::quad_core();
/// assert_eq!(quad.cores, 4);
/// let uni = BladeConfig::single_core();
/// assert_eq!(uni.cores, 1);
/// ```
#[derive(Debug, Clone)]
pub struct BladeConfig {
    /// Number of cores (1-4 in the paper).
    pub cores: usize,
    /// Target clock; all timing (network, DRAM) is derived from it.
    pub frequency: Frequency,
    /// Simulated DRAM bytes.
    pub dram_bytes: usize,
    /// Memory-hierarchy geometry and timing.
    pub mem: MemSystemConfig,
    /// Pipeline timing parameters.
    pub timing: TimingConfig,
    /// NIC parameters.
    pub nic: NicConfig,
    /// Block device parameters.
    pub blockdev: BlockDeviceConfig,
    /// Attach the DMA copy/fill accelerator (Table II's "Optional RoCC
    /// Accel." slot).
    pub accel: bool,
}

impl BladeConfig {
    /// The paper's quad-core server blade.
    pub fn quad_core() -> Self {
        BladeConfig {
            cores: 4,
            frequency: Frequency::GHZ_3_2,
            dram_bytes: 256 << 20,
            mem: MemSystemConfig::default(),
            timing: TimingConfig::default(),
            nic: NicConfig::default(),
            blockdev: BlockDeviceConfig::default(),
            accel: false,
        }
    }

    /// A single-core blade (used by fast-running validation experiments).
    pub fn single_core() -> Self {
        BladeConfig {
            cores: 1,
            ..Self::quad_core()
        }
    }

    /// Overrides the DRAM capacity.
    pub fn with_dram_bytes(mut self, bytes: usize) -> Self {
        self.dram_bytes = bytes;
        self
    }

    /// Attaches the DMA copy/fill accelerator.
    pub fn with_accel(mut self) -> Self {
        self.accel = true;
        self
    }
}

impl Default for BladeConfig {
    fn default() -> Self {
        Self::quad_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_one() {
        let c = BladeConfig::default();
        assert_eq!(c.cores, 4);
        assert_eq!(c.frequency, Frequency::GHZ_3_2);
        assert_eq!(c.mem.l1i.size_bytes, 16 * 1024);
        assert_eq!(c.mem.l1d.size_bytes, 16 * 1024);
        assert_eq!(c.mem.l2.size_bytes, 256 * 1024);
    }

    #[test]
    fn builders() {
        let c = BladeConfig::single_core().with_dram_bytes(1 << 20);
        assert_eq!(c.cores, 1);
        assert_eq!(c.dram_bytes, 1 << 20);
    }
}
