//! # firesim-blade
//!
//! FireSim-rs server blades: the composition of cores, caches, DRAM, NIC,
//! block device, and UART into a simulated datacenter node, plus the
//! software that runs on those nodes in the paper's evaluation.
//!
//! Two blade personalities implement the same token-decoupled agent
//! interface (one network token in, one out, per target cycle):
//!
//! * [`RtlBlade`] — the cycle-exact SoC (paper Table I): 1-4 RV64IMA
//!   Rocket-class cores at 3.2 GHz with L1/L2 caches and DDR3-modeled
//!   DRAM, a NIC, a block device, a UART, and a CLINT. It boots real
//!   RISC-V machine code built with `firesim_riscv::asm` — the bare-metal
//!   benchmark programs from §IV live in [`programs`].
//! * [`ModeledBlade`] — a behavioural node for scale experiments: an OS
//!   scheduler model (cores, threads, quanta, placement) running service
//!   models (memcached-style KV server, mutilate-style load generator,
//!   bulk streamers, ping) over the *same* simulated network. This is the
//!   substitution for "Linux + userspace" documented in DESIGN.md — the
//!   paper's switch models are exactly this kind of behavioural model.
//!
//! The remote-memory / page-fault-accelerator case study of §VI is in
//! [`paging`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod model;
pub mod paging;
pub mod programs;
pub mod services;
pub mod soc;
pub mod supernode;

pub use config::BladeConfig;
pub use firesim_uarch::SamplingConfig;
pub use model::{ModeledBlade, NodeApp, OsConfig, OsModel};
pub use soc::RtlBlade;
pub use supernode::Supernode;

/// MMIO address whose write powers off an [`RtlBlade`] (the low byte is
/// the exit code). Equivalent to the `tohost` convention used by RISC-V
/// bare-metal test harnesses.
pub const POWEROFF_ADDR: u64 = 0x0010_0000;
