//! The cycle-exact server blade SoC.
//!
//! [`RtlBlade`] composes the pieces the paper's Rocket Chip blades have
//! (Fig 2): 1-4 cores with L1s, a shared L2, DDR3-modeled DRAM, and the
//! NIC/block-device/UART peripherals, and exposes the whole node as a
//! [`SimAgent`] with a FAME-1 decoupled network interface: one token in
//! and one token out per target cycle (port 0 on both sides).
//!
//! The blade is "powered off" by a store to [`crate::POWEROFF_ADDR`],
//! which records an exit code, snapshots the probe, and makes
//! [`SimAgent::done`] true — the mechanism behind the paper's
//! boot-then-power-off simulation-rate benchmark (Fig 8).

use std::sync::Arc;

use parking_lot::Mutex;

use firesim_core::stats::WindowStats;
use firesim_core::{AgentCtx, SimAgent};
use firesim_devices::{map, BlockDevice, Clint, CopyAccel, MmioDevice, Nic, NicStats, Uart};
use firesim_net::Flit;
use firesim_riscv::exec::Cpu;
use firesim_riscv::mem::{Bus, MemFault, Memory};
use firesim_riscv::{Interrupt, DRAM_BASE};
use firesim_uarch::{MemSystem, SamplingConfig, TickEvent, TimingCore, TraceEntry};

use crate::config::BladeConfig;
use crate::POWEROFF_ADDR;

/// Observable state of a blade, shared with the harness while the engine
/// owns the blade itself.
#[derive(Debug, Default, Clone)]
pub struct BladeProbe {
    /// Console output so far.
    pub uart: String,
    /// Exit code once powered off.
    pub exit_code: Option<u8>,
    /// Copy of the mailbox memory region, captured at power-off.
    pub mailbox: Vec<u8>,
    /// Total instructions retired across cores.
    pub retired: u64,
    /// Target cycles simulated.
    pub cycles: u64,
    /// NIC statistics.
    pub nic: NicStats,
    /// AutoCounter-style samples: `(cycle, instructions retired so far)`,
    /// one per simulation window. IPC over an interval is the retired
    /// delta divided by the cycle delta.
    pub retired_samples: Vec<(u64, u64)>,
    /// TracerV-style trace of the last retired instructions per core
    /// (enabled with [`RtlBlade::enable_trace`]).
    pub trace: Vec<Vec<TraceEntry>>,
}

/// The SoC bus: dispatches physical addresses to DRAM and MMIO devices.
struct SocBus<'a> {
    mem: &'a mut Memory,
    nic: &'a mut Nic,
    blockdev: &'a mut BlockDevice,
    uart: &'a mut Uart,
    clint: &'a mut Clint,
    accel: Option<&'a mut CopyAccel>,
    poweroff: &'a mut Option<u8>,
    /// Store addresses performed this instruction (for LR/SC clobbering).
    stores: &'a mut Vec<u64>,
    /// Device ticks owed but not yet replayed during a batched issue span
    /// (see [`RtlBlade::advance_batched`]). The per-cycle paths never
    /// increment it, so the lazy catch-up below stays dormant there.
    device_lag: &'a mut u64,
}

impl SocBus<'_> {
    /// Replays deferred device cycles before an MMIO access can observe
    /// (or mutate) device state. Batched spans only start while the NIC
    /// is quiescent and end at the first MMIO cycle, and the span budget
    /// keeps the lag below every in-flight disk transfer's remaining
    /// latency, so both skips reproduce the per-cycle reference exactly.
    /// The CLINT needs no catch-up: span budgets never cross an `mtime`
    /// increment, so its MMIO-visible state is constant over the span.
    fn catch_up_devices(&mut self) {
        let lag = *self.device_lag;
        if lag > 0 {
            self.nic.skip_quiescent(lag);
            self.blockdev.skip(lag);
            *self.device_lag = 0;
        }
    }

    fn device_for(&mut self, addr: u64) -> Option<(&mut dyn MmioDevice, u64)> {
        self.catch_up_devices();
        if (map::CLINT_BASE..map::CLINT_BASE + map::CLINT_SIZE).contains(&addr) {
            Some((self.clint, addr - map::CLINT_BASE))
        } else if (map::UART_BASE..map::UART_BASE + map::UART_SIZE).contains(&addr) {
            Some((self.uart, addr - map::UART_BASE))
        } else if (map::NIC_BASE..map::NIC_BASE + map::NIC_SIZE).contains(&addr) {
            Some((self.nic, addr - map::NIC_BASE))
        } else if (map::BLKDEV_BASE..map::BLKDEV_BASE + map::BLKDEV_SIZE).contains(&addr) {
            Some((self.blockdev, addr - map::BLKDEV_BASE))
        } else if (map::ACCEL_BASE..map::ACCEL_BASE + map::ACCEL_SIZE).contains(&addr) {
            match &mut self.accel {
                Some(a) => Some((*a, addr - map::ACCEL_BASE)),
                None => None,
            }
        } else {
            None
        }
    }
}

impl Bus for SocBus<'_> {
    fn load(&mut self, addr: u64, size: usize) -> Result<u64, MemFault> {
        if self.mem.contains(addr, size) {
            return self.mem.load(addr, size);
        }
        if let Some((dev, off)) = self.device_for(addr) {
            return Ok(dev.read(off, size));
        }
        Err(MemFault {
            addr,
            is_store: false,
        })
    }

    fn store(&mut self, addr: u64, size: usize, value: u64) -> Result<(), MemFault> {
        if self.mem.contains(addr, size) {
            self.stores.push(addr);
            return self.mem.store(addr, size, value);
        }
        if addr == POWEROFF_ADDR {
            *self.poweroff = Some(value as u8);
            return Ok(());
        }
        if let Some((dev, off)) = self.device_for(addr) {
            dev.write(off, size, value);
            return Ok(());
        }
        Err(MemFault {
            addr,
            is_store: true,
        })
    }

    // Decode-cache generations: only DRAM is cacheable code (MMIO
    // fetches, were a program to attempt them, always take the slow
    // path); `Memory` answers `None` outside its range, which also
    // covers the POWEROFF word and unmapped holes. Device DMA
    // (NIC/blockdev/accel) funnels through `Memory::write_bytes`, so it
    // bumps the same generations CPU stores do.
    fn code_generation(&self, addr: u64) -> Option<u64> {
        self.mem.code_generation(addr)
    }

    fn write_generation(&self) -> u64 {
        self.mem.write_generation()
    }

    fn elapse_timing_cycles(&mut self, cycles: u64) {
        *self.device_lag += cycles;
    }
}

/// State of the sampled timing mode (SMARTS-style): the blade alternates
/// cycle-exact *detailed* windows with functional-only *fast-forward*
/// spans, extrapolating the fast-forwarded cores' progress from an IPC
/// estimate fitted over every detailed cycle so far. The phase is a pure
/// function of the absolute target cycle, so it is identical across
/// worker counts and checkpoint/restore boundaries.
///
/// Everything here is target-deterministic and checkpointed (DESIGN §18).
#[derive(Debug, Clone)]
struct SamplingState {
    cfg: SamplingConfig,
    /// Cumulative detailed cycles across all completed/partial windows.
    det_cycles: u64,
    /// Cumulative instructions retired inside detailed cycles, per core.
    det_retired: Vec<u64>,
    /// Q16.16 fractional-instruction carry per core, so fast-forward
    /// budgets round deterministically instead of truncating.
    carry_q16: Vec<u64>,
    /// Cycles and retirements accumulated in the current detailed window.
    win_cycles: u64,
    win_retired: u64,
    /// Per-completed-window blade IPC samples -> mean and 95% CI.
    windows: WindowStats,
    /// Scratch: per-core retired counts at the start of a detailed leg.
    leg_start: Vec<u64>,
}

impl SamplingState {
    fn new(cfg: SamplingConfig, cores: usize) -> Self {
        cfg.validate();
        SamplingState {
            cfg,
            det_cycles: 0,
            det_retired: vec![0; cores],
            carry_q16: vec![0; cores],
            win_cycles: 0,
            win_retired: 0,
            windows: WindowStats::new(),
            leg_start: vec![0; cores],
        }
    }

    /// Per-core IPC estimate in Q16.16, from the detailed totals. Zero
    /// until the first detailed cycle has run (the schedule always opens
    /// with a detailed window, so fast-forward spans never see zero).
    fn ipc_q16(&self, core: usize) -> u64 {
        if self.det_cycles == 0 {
            return 0;
        }
        (((self.det_retired[core] as u128) << 16) / self.det_cycles as u128) as u64
    }

    /// Blade-wide IPC estimate in permille (integer, no f64 on this path).
    fn ipc_est_permille(&self) -> u64 {
        if self.det_cycles == 0 {
            return 0;
        }
        let retired: u64 = self.det_retired.iter().sum();
        ((retired as u128) * 1000 / self.det_cycles as u128) as u64
    }
}

/// A cycle-exact server blade. See the [module docs](self).
pub struct RtlBlade {
    name: String,
    cores: Vec<TimingCore>,
    memsys: MemSystem,
    mem: Memory,
    nic: Nic,
    blockdev: BlockDevice,
    uart: Uart,
    clint: Clint,
    accel: Option<CopyAccel>,
    cycle: u64,
    powered_off: Option<u8>,
    mailbox: Option<(u64, usize)>,
    autocounter: bool,
    uart_read: usize,
    probe: Arc<Mutex<BladeProbe>>,
    store_scratch: Vec<u64>,
    rx_scratch: Vec<(u32, Flit)>,
    /// Device ticks owed during a batched issue span; scratch state that
    /// is always 0 between spans (not checkpointed).
    device_lag: u64,
    /// When set, [`advance_ports`](Self::advance_ports) runs the
    /// per-cycle reference loop instead of the event-driven scheduler.
    /// Taken from [`firesim_uarch::TimingConfig::reference_timing`].
    reference_timing: bool,
    /// Sampled timing mode, from [`firesim_uarch::TimingConfig::sampling`];
    /// `None` runs every cycle detailed.
    sampling: Option<SamplingState>,
    /// Gates the wall-clock reads behind `host_ns`; off by default so
    /// the fast path never touches the host clock.
    profile_host: bool,
    /// Host nanoseconds spent inside [`advance_ports`](Self::advance_ports),
    /// measured by the blade itself (one clock pair per window) so
    /// per-blade host MIPS is available without `enable_metrics`.
    /// Only populated after [`enable_host_profiling`](Self::enable_host_profiling).
    /// Host-side only: excluded from checkpoints and from deterministic
    /// report aggregates.
    host_ns: u64,
}

impl std::fmt::Debug for RtlBlade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtlBlade")
            .field("name", &self.name)
            .field("cores", &self.cores.len())
            .field("cycle", &self.cycle)
            .field("powered_off", &self.powered_off)
            .finish()
    }
}

impl RtlBlade {
    /// Builds a blade with the given NIC MAC address.
    pub fn new(name: impl Into<String>, mac: firesim_net::MacAddr, config: BladeConfig) -> Self {
        let cores = (0..config.cores)
            .map(|i| TimingCore::new(Cpu::new(i as u64, DRAM_BASE), config.timing))
            .collect();
        RtlBlade {
            name: name.into(),
            cores,
            memsys: MemSystem::new(config.cores, config.mem),
            mem: Memory::new(DRAM_BASE, config.dram_bytes),
            nic: Nic::new(mac, config.nic),
            blockdev: BlockDevice::new(config.blockdev),
            uart: Uart::new(),
            clint: Clint::new(config.cores, 3200),
            accel: config.accel.then(CopyAccel::new),
            cycle: 0,
            powered_off: None,
            mailbox: None,
            autocounter: false,
            uart_read: 0,
            probe: Arc::new(Mutex::new(BladeProbe::default())),
            store_scratch: Vec::new(),
            rx_scratch: Vec::new(),
            device_lag: 0,
            reference_timing: config.timing.reference_timing,
            sampling: config
                .timing
                .sampling
                .map(|cfg| SamplingState::new(cfg, config.cores)),
            profile_host: false,
            host_ns: 0,
        }
    }

    /// Loads a bare-metal program image at the reset vector.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit in DRAM.
    pub fn load_program(&mut self, image: &[u8]) {
        self.mem
            .write_bytes(DRAM_BASE, image)
            .expect("program image must fit in DRAM");
    }

    /// Writes raw bytes into blade DRAM (program arguments, data sets).
    ///
    /// # Panics
    ///
    /// Panics if the range is outside DRAM.
    pub fn write_dram(&mut self, addr: u64, bytes: &[u8]) {
        self.mem
            .write_bytes(addr, bytes)
            .expect("address range must be inside DRAM");
    }

    /// Declares a mailbox region to be snapshotted into the probe at
    /// power-off (how benchmark programs return measurements).
    pub fn set_mailbox(&mut self, addr: u64, len: usize) {
        self.mailbox = Some((addr, len));
    }

    /// Pre-loads the block device with an image.
    pub fn load_disk_image(&mut self, image: &[u8]) {
        self.blockdev.load_image(image);
    }

    /// Enables TracerV-style instruction tracing on every core, keeping
    /// the last `depth` records per core in the probe.
    pub fn enable_trace(&mut self, depth: usize) {
        for core in &mut self.cores {
            core.enable_trace(depth);
        }
    }

    /// Enables AutoCounter-style sampling: one `(cycle, retired)` sample
    /// per simulation window appears in the probe.
    pub fn enable_autocounter(&mut self) {
        self.autocounter = true;
    }

    /// Shared probe handle for reading results while/after the engine runs.
    pub fn probe(&self) -> Arc<Mutex<BladeProbe>> {
        Arc::clone(&self.probe)
    }

    /// Enables wall-clock measurement of [`advance_ports`](Self::advance_ports)
    /// (the `host_mips` app counter). Off by default: the measurement
    /// itself costs two host clock reads per window.
    pub fn enable_host_profiling(&mut self) {
        self.profile_host = true;
    }

    /// The blade's MAC address.
    pub fn mac(&self) -> firesim_net::MacAddr {
        self.nic.mac()
    }

    fn sync_probe(&mut self) {
        let mut p = self.probe.lock();
        let out = self.uart.output();
        if out.len() > self.uart_read {
            p.uart
                .push_str(&String::from_utf8_lossy(&out[self.uart_read..]));
            self.uart_read = out.len();
        }
        p.exit_code = self.powered_off;
        p.retired = self.cores.iter().map(TimingCore::retired).sum();
        p.cycles = self.cycle;
        p.nic = self.nic.stats();
        if self.autocounter {
            let retired = p.retired;
            p.retired_samples.push((self.cycle, retired));
        }
        if self.powered_off.is_some() && p.trace.is_empty() {
            p.trace = self
                .cores
                .iter()
                .map(|c| c.trace().copied().collect())
                .collect();
        }
        if self.powered_off.is_some() && p.mailbox.is_empty() {
            if let Some((addr, len)) = self.mailbox {
                if let Ok(bytes) = self.mem.read_bytes(addr, len) {
                    p.mailbox = bytes.to_vec();
                }
            }
        }
    }
}

impl RtlBlade {
    /// Advances the blade one window using the given ports of `ctx`.
    ///
    /// This is the whole blade model; [`SimAgent::advance`] calls it with
    /// ports `(0, 0)`, and [`Supernode`](crate::Supernode) drives several
    /// blades on distinct ports of one shared context. Input tokens are
    /// drained in place so the engine can recycle the window's buffer.
    pub fn advance_ports(&mut self, ctx: &mut AgentCtx<Flit>, in_port: usize, out_port: usize) {
        let host_start = self.profile_host.then(std::time::Instant::now);
        let window = ctx.window();
        self.rx_scratch.clear();
        self.rx_scratch.extend(ctx.drain_input(in_port));

        let mut off = 0u32;
        let mut rx_idx = 0usize;
        if self.sampling.is_some() {
            self.advance_sampled(ctx, out_port, window, &mut off, &mut rx_idx);
        } else if self.reference_timing {
            self.advance_reference(ctx, out_port, window, &mut off, &mut rx_idx);
        } else {
            self.advance_batched(ctx, out_port, window, &mut off, &mut rx_idx);
        }
        // Bring the DRAM's refresh bookkeeping up to the window boundary
        // even when no request observed the later cycles, so snapshots
        // taken here are independent of the blade's access pattern tail.
        self.memsys.advance_to(self.cycle);

        if let Some(start) = host_start {
            self.host_ns += start.elapsed().as_nanos() as u64;
        }
        self.sync_probe();
    }

    /// Wires the device interrupt lines and the `time` CSR into every
    /// core, exactly as the top of one reference-loop iteration does.
    fn wire_interrupts(&mut self) {
        let ext = self.nic.interrupt()
            || self.blockdev.interrupt()
            || self.accel.as_ref().is_some_and(MmioDevice::interrupt);
        for (i, core) in self.cores.iter_mut().enumerate() {
            let csrs = &mut core.cpu_mut().csrs;
            csrs.set_interrupt(Interrupt::External, ext);
            csrs.set_interrupt(Interrupt::Timer, self.clint.timer_pending(i));
            csrs.set_interrupt(Interrupt::Software, self.clint.software_pending(i));
            csrs.time = self.clint.mtime();
        }
    }

    /// One powered-on reference cycle after the wiring: tick each core,
    /// then the DMA devices and the CLINT.
    fn tick_cores_and_devices(&mut self) {
        for i in 0..self.cores.len() {
            self.store_scratch.clear();
            let mut bus = SocBus {
                mem: &mut self.mem,
                nic: &mut self.nic,
                blockdev: &mut self.blockdev,
                uart: &mut self.uart,
                clint: &mut self.clint,
                accel: self.accel.as_mut(),
                poweroff: &mut self.powered_off,
                stores: &mut self.store_scratch,
                device_lag: &mut self.device_lag,
            };
            let ev = self.cores[i].tick(&mut bus, &mut self.memsys, i, self.cycle);
            if let TickEvent::Issued(_) = ev {
                // LR/SC coherence: stores clobber other harts'
                // reservations and shoot down their L1 lines.
                for k in 0..self.store_scratch.len() {
                    let addr = self.store_scratch[k];
                    for (j, other) in self.cores.iter_mut().enumerate() {
                        if j != i {
                            other.cpu_mut().clobber_reservation(addr);
                        }
                    }
                    self.memsys.shootdown(addr, Some(i));
                }
            }
        }
        self.blockdev.tick(&mut self.mem);
        if let Some(accel) = &mut self.accel {
            accel.tick(&mut self.mem);
        }
        self.clint.advance(1);
    }

    /// The unconditional NIC token exchange for window offset `off`. The
    /// NIC keeps exchanging tokens even when the blade is powered off
    /// (the paper's token discipline: every cycle consumes and produces
    /// a token; a powered-off node just produces empty ones).
    fn nic_cycle(
        &mut self,
        ctx: &mut AgentCtx<Flit>,
        out_port: usize,
        off: u32,
        rx_idx: &mut usize,
    ) {
        let rx = match self.rx_scratch.get(*rx_idx) {
            Some(&(o, f)) if o == off => {
                *rx_idx += 1;
                Some(f)
            }
            _ => None,
        };
        if let Some(flit) = self.nic.tick(&mut self.mem, rx) {
            ctx.push_output(out_port, off, flit);
        }
    }

    /// The per-cycle reference schedule: every target cycle is hosted by
    /// one loop iteration. Kept verbatim as the differential-testing
    /// baseline for [`advance_batched`](Self::advance_batched); selected
    /// with [`firesim_uarch::TimingConfig::reference_timing`].
    ///
    /// Advances window offsets `*off..end` (the full window for plain
    /// runs; one detailed leg under sampled timing).
    fn advance_reference(
        &mut self,
        ctx: &mut AgentCtx<Flit>,
        out_port: usize,
        end: u32,
        off: &mut u32,
        rx_idx: &mut usize,
    ) {
        while *off < end {
            if self.powered_off.is_none() {
                self.wire_interrupts();
                self.tick_cores_and_devices();
            }
            self.nic_cycle(ctx, out_port, *off, rx_idx);
            self.cycle += 1;
            *off += 1;
        }
    }

    /// The event-driven schedule. Produces bit-identical state to
    /// [`advance_reference`](Self::advance_reference) while hosting many
    /// target cycles per iteration whenever the blade is quiescent enough:
    ///
    /// * **Full skip** — every core parked or stalled and every device
    ///   quiet: the gap up to the next event (timer expiry, stall end,
    ///   rx flit, disk completion) collapses into O(1) bulk updates.
    /// * **Batched issue** — exactly one runnable core: it issues up to a
    ///   budget of cycles against one bus borrow with the interrupt wiring
    ///   hoisted out of the loop; the budget guarantees every skipped
    ///   rewiring would have been a no-op, and the span stops at the
    ///   first MMIO-visible cycle.
    /// * **Reference cycle** — anything else falls back to one verbatim
    ///   per-cycle iteration.
    ///
    /// Advances window offsets `*off..end` (the full window for plain
    /// runs; one detailed leg under sampled timing).
    fn advance_batched(
        &mut self,
        ctx: &mut AgentCtx<Flit>,
        out_port: usize,
        end: u32,
        off: &mut u32,
        rx_idx: &mut usize,
    ) {
        while *off < end {
            // Offset of the next undelivered rx flit. An offset below
            // `off` can never match the exchange (mirroring the reference
            // loop, which would also never consume it), so clamping keeps
            // the arithmetic safe without changing behavior.
            let next_rx = self
                .rx_scratch
                .get(*rx_idx)
                .map_or(end, |&(o, _)| o)
                .clamp(*off, end);

            if self.powered_off.is_some() {
                // Only the NIC runs; skip straight to the next rx flit.
                if self.nic.is_quiescent() && next_rx > *off {
                    let k = next_rx - *off;
                    self.nic.skip_quiescent(u64::from(k));
                    self.cycle += u64::from(k);
                    *off += k;
                } else {
                    self.nic_cycle(ctx, out_port, *off, rx_idx);
                    self.cycle += 1;
                    *off += 1;
                }
                continue;
            }

            // Every reference iteration starts with this wiring; decide
            // from the post-wiring state how far the blade can jump.
            self.wire_interrupts();

            let mut active = 0usize;
            let mut active_idx = 0usize;
            // Tightest wakeup bound over the inactive cores (stall expiry
            // or armed-timer expiry; parked cores with the timer masked
            // are unbounded).
            let mut inactive_bound = u64::MAX;
            for (i, core) in self.cores.iter().enumerate() {
                let ev = core.next_event(self.clint.next_timer_expiry(i));
                if ev == 0 {
                    active += 1;
                    active_idx = i;
                } else {
                    inactive_bound = inactive_bound.min(ev);
                }
            }
            let nic_quiet = self.nic.is_quiescent();
            let accel_idle = !self.accel.as_ref().is_some_and(CopyAccel::busy);
            let blockdev_busy = self.blockdev.min_busy_cycles();
            let remaining = u64::from(end - *off);

            if active == 0 && nic_quiet && accel_idle {
                // Full skip: nothing observable happens before the
                // earliest bound, so replay k cycles in O(1). The `- 1`
                // on the disk bound keeps its next completion (and the
                // interrupt it raises) inside per-cycle handling.
                let mut k = remaining.min(inactive_bound).min(u64::from(next_rx - *off));
                if let Some(m) = blockdev_busy {
                    k = k.min(m.saturating_sub(1));
                }
                if k >= 2 {
                    for core in &mut self.cores {
                        core.skip(k);
                    }
                    self.blockdev.skip(k);
                    // The reference re-wires at the top of each skipped
                    // iteration, but with frozen devices only the last
                    // wiring (which sees mtime after k-1 CLINT advances)
                    // is ever observed. Reproduce exactly that one, then
                    // complete the final iteration's CLINT advance.
                    self.clint.advance(k - 1);
                    self.wire_interrupts();
                    self.clint.advance(1);
                    self.nic.skip_quiescent(k);
                    self.cycle += k;
                    *off += k as u32;
                    continue;
                }
            } else if active == 1 && nic_quiet && accel_idle {
                // Batched issue. The budget guarantees that over the span
                // (a) no other core would wake, (b) mtime never moves, so
                // the skipped rewirings are no-ops, (c) no disk transfer
                // completes before the final cycle, and (d) at most the
                // final cycle consumes an rx flit.
                let mut budget = remaining
                    .min(self.clint.cycles_to_next_tick())
                    .min(inactive_bound)
                    .min(u64::from(next_rx - *off).saturating_add(1));
                if let Some(m) = blockdev_busy {
                    budget = budget.min(m);
                }
                let i = active_idx;
                self.store_scratch.clear();
                self.device_lag = 0;
                let mut bus = SocBus {
                    mem: &mut self.mem,
                    nic: &mut self.nic,
                    blockdev: &mut self.blockdev,
                    uart: &mut self.uart,
                    clint: &mut self.clint,
                    accel: self.accel.as_mut(),
                    poweroff: &mut self.powered_off,
                    stores: &mut self.store_scratch,
                    device_lag: &mut self.device_lag,
                };
                let used = self.cores[i].advance(&mut bus, &mut self.memsys, i, self.cycle, budget);
                // LR/SC coherence for every store in the span, in order.
                // Deferring past the span end is exact: the other cores
                // never run inside it and `shootdown` only flips their
                // L1 valid bits (no stats, no LRU movement).
                for k in 0..self.store_scratch.len() {
                    let addr = self.store_scratch[k];
                    for (j, other) in self.cores.iter_mut().enumerate() {
                        if j != i {
                            other.cpu_mut().clobber_reservation(addr);
                        }
                    }
                    self.memsys.shootdown(addr, Some(i));
                }
                for (j, core) in self.cores.iter_mut().enumerate() {
                    if j != i {
                        core.skip(used);
                    }
                }
                // The devices owe one tick per span cycle. Any MMIO inside
                // the span already flushed the ticks before it lazily
                // (see `SocBus::catch_up_devices`); replay the remainder,
                // with the final cycle as real ticks since the span's last
                // cycle may have programmed a device.
                let lag = self.device_lag;
                self.device_lag = 0;
                debug_assert!(
                    used >= 1 && lag >= 1 && lag <= used,
                    "batched span accounting broken: used {used}, lag {lag}"
                );
                self.blockdev.skip(lag - 1);
                self.blockdev.tick(&mut self.mem);
                if let Some(accel) = &mut self.accel {
                    accel.tick(&mut self.mem);
                }
                self.clint.advance(used);
                self.nic.skip_quiescent(lag - 1);
                let last = *off + used as u32 - 1;
                self.nic_cycle(ctx, out_port, last, rx_idx);
                self.cycle += used;
                *off += used as u32;
                continue;
            }

            // Fallback: one verbatim reference cycle (wiring already done
            // above).
            self.tick_cores_and_devices();
            self.nic_cycle(ctx, out_port, *off, rx_idx);
            self.cycle += 1;
            *off += 1;
        }
    }

    /// The sampled schedule: detailed windows and fast-forward spans
    /// alternate with the phase a pure function of the absolute target
    /// cycle, `cycle % period < detailed_window`. Detailed legs reuse the
    /// cycle-exact schedulers above and feed the IPC estimator; fast-
    /// forward legs run [`advance_ff`](Self::advance_ff).
    fn advance_sampled(
        &mut self,
        ctx: &mut AgentCtx<Flit>,
        out_port: usize,
        window: u32,
        off: &mut u32,
        rx_idx: &mut usize,
    ) {
        let cfg = self.sampling.as_ref().expect("sampled mode").cfg;
        let period = cfg.period();
        while *off < window {
            let pos = self.cycle % period;
            if pos < cfg.detailed_window {
                // Detailed until the phase flips or the window ends.
                let span = (cfg.detailed_window - pos).min(u64::from(window - *off));
                let end = *off + span as u32;
                {
                    let samp = self.sampling.as_mut().expect("sampled mode");
                    samp.leg_start.clear();
                    samp.leg_start
                        .extend(self.cores.iter().map(TimingCore::retired));
                }
                let start_cycle = self.cycle;
                if self.reference_timing {
                    self.advance_reference(ctx, out_port, end, off, rx_idx);
                } else {
                    self.advance_batched(ctx, out_port, end, off, rx_idx);
                }
                let ran = self.cycle - start_cycle;
                let samp = self.sampling.as_mut().expect("sampled mode");
                samp.det_cycles += ran;
                samp.win_cycles += ran;
                for (i, core) in self.cores.iter().enumerate() {
                    let d = core.retired() - samp.leg_start[i];
                    samp.det_retired[i] += d;
                    samp.win_retired += d;
                }
                if self.cycle % period == cfg.detailed_window {
                    // Detailed window complete: fold one IPC sample into
                    // the error model. Always in target-cycle order, so
                    // the f64 accumulation is deterministic.
                    let ipc = samp.win_retired as f64 / samp.win_cycles as f64;
                    samp.windows.record(ipc);
                    samp.win_cycles = 0;
                    samp.win_retired = 0;
                }
            } else {
                let span = (period - pos).min(u64::from(window - *off));
                let end = *off + span as u32;
                self.advance_ff(ctx, out_port, end, off, rx_idx);
            }
        }
    }

    /// One fast-forward leg: cores execute functionally (no cache/DRAM
    /// timing) with an instruction budget extrapolated from the IPC
    /// estimate, devices advance in bulk, and the NIC keeps its exact
    /// one-token-per-cycle exchange so the network stays cycle-accurate.
    /// Interrupt lines are wired at leg boundaries only — the documented
    /// approximation of the sampled mode (DESIGN §18).
    fn advance_ff(
        &mut self,
        ctx: &mut AgentCtx<Flit>,
        out_port: usize,
        end: u32,
        off: &mut u32,
        rx_idx: &mut usize,
    ) {
        let span = u64::from(end - *off);
        if span == 0 {
            return;
        }
        if self.powered_off.is_none() {
            // Charge the span's cycles to every core (serving stalls,
            // accruing idle time on parked ones) and bulk-advance the
            // DMA devices and the CLINT. All of these are sums over
            // cycles, so they are invariant under how the engine slices
            // the leg into windows.
            for core in &mut self.cores {
                core.ff_charge(span);
            }
            let mut left = span;
            while left > 0 {
                match self.blockdev.min_busy_cycles() {
                    None => break,
                    Some(m) => {
                        let k = left.min(m.saturating_sub(1));
                        if k > 0 {
                            self.blockdev.skip(k);
                            left -= k;
                        }
                        if left > 0 {
                            self.blockdev.tick(&mut self.mem);
                            left -= 1;
                        }
                    }
                }
            }
            if let Some(accel) = &mut self.accel {
                let mut left = span;
                while left > 0 && accel.busy() {
                    accel.tick(&mut self.mem);
                    left -= 1;
                }
            }
            self.clint.advance(span);
        }
        // The NIC never fast-forwards: one token in, one token out per
        // target cycle, with the quiescent bulk skip from the batched
        // scheduler when nothing is in flight.
        while *off < end {
            if self.nic.is_quiescent() {
                let next_rx = self
                    .rx_scratch
                    .get(*rx_idx)
                    .map_or(end, |&(o, _)| o)
                    .clamp(*off, end);
                if next_rx > *off {
                    self.nic.skip_quiescent(u64::from(next_rx - *off));
                    *off = next_rx;
                    continue;
                }
            }
            self.nic_cycle(ctx, out_port, *off, rx_idx);
            *off += 1;
        }
        self.cycle += span;
        // Execute the leg's entire instruction budget only when this
        // slice reaches the absolute end of the fast-forward leg. The
        // engine is free to slice a leg across windows differently from
        // run to run (skip-ahead scheduling, checkpoint resume), so the
        // execution point must be a pure function of the target cycle —
        // like the phase itself — for sampled runs to stay deterministic.
        let cfg = self.sampling.as_ref().expect("sampled mode").cfg;
        if self.powered_off.is_none() && self.cycle.is_multiple_of(cfg.period()) {
            self.wire_interrupts();
            for i in 0..self.cores.len() {
                if self.powered_off.is_some() {
                    break;
                }
                let budget = {
                    let samp = self.sampling.as_mut().expect("sampled mode");
                    let q16 = samp.ipc_q16(i) * cfg.fastforward + samp.carry_q16[i];
                    samp.carry_q16[i] = q16 & 0xFFFF;
                    q16 >> 16
                };
                if budget == 0 {
                    continue;
                }
                self.store_scratch.clear();
                let mut bus = SocBus {
                    mem: &mut self.mem,
                    nic: &mut self.nic,
                    blockdev: &mut self.blockdev,
                    uart: &mut self.uart,
                    clint: &mut self.clint,
                    accel: self.accel.as_mut(),
                    poweroff: &mut self.powered_off,
                    stores: &mut self.store_scratch,
                    device_lag: &mut self.device_lag,
                };
                let _ = self.cores[i].fast_forward(&mut bus, budget);
                // LR/SC coherence, as in the batched span: deferring the
                // clobbers and shoot-downs to the end of the burst is
                // exact because no other core runs inside it.
                for k in 0..self.store_scratch.len() {
                    let addr = self.store_scratch[k];
                    for (j, other) in self.cores.iter_mut().enumerate() {
                        if j != i {
                            other.cpu_mut().clobber_reservation(addr);
                        }
                    }
                    self.memsys.shootdown(addr, Some(i));
                }
            }
        }
    }
}

impl firesim_core::snapshot::Checkpoint for RtlBlade {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        w.put_usize(self.cores.len());
        for core in &self.cores {
            core.save_state(w)?;
        }
        self.memsys.save_state(w)?;
        self.mem.save_state(w)?;
        self.nic.save_state(w)?;
        self.blockdev.save_state(w)?;
        self.uart.save_state(w)?;
        self.clint.save_state(w)?;
        w.put_bool(self.accel.is_some());
        if let Some(accel) = &self.accel {
            accel.save_state(w)?;
        }
        w.put_u64(self.cycle);
        w.put(&self.powered_off);
        w.put_usize(self.uart_read);
        let p = self.probe.lock();
        w.put_str(&p.uart);
        w.put(&p.exit_code);
        w.put_bytes(&p.mailbox);
        w.put_u64(p.retired);
        w.put_u64(p.cycles);
        w.put(&p.nic);
        w.put(&p.retired_samples);
        w.put(&p.trace);
        drop(p);
        // Sampled-mode estimator state, gated on the (config-carried)
        // mode so plain blades' snapshots stay compact.
        w.put_bool(self.sampling.is_some());
        if let Some(samp) = &self.sampling {
            w.put_u64(samp.det_cycles);
            w.put(&samp.det_retired);
            w.put(&samp.carry_q16);
            w.put_u64(samp.win_cycles);
            w.put_u64(samp.win_retired);
            w.put(&samp.windows);
        }
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        let cores = r.get_usize()?;
        if cores != self.cores.len() {
            return Err(firesim_core::SimError::checkpoint(format!(
                "blade snapshot has {cores} cores, target has {}",
                self.cores.len()
            )));
        }
        for core in &mut self.cores {
            core.restore_state(r)?;
        }
        self.memsys.restore_state(r)?;
        self.mem.restore_state(r)?;
        self.nic.restore_state(r)?;
        self.blockdev.restore_state(r)?;
        self.uart.restore_state(r)?;
        self.clint.restore_state(r)?;
        let has_accel = r.get_bool()?;
        if has_accel != self.accel.is_some() {
            return Err(firesim_core::SimError::checkpoint(format!(
                "blade snapshot {} an accelerator, target {}",
                if has_accel { "has" } else { "lacks" },
                if self.accel.is_some() {
                    "has one"
                } else {
                    "lacks one"
                }
            )));
        }
        if let Some(accel) = &mut self.accel {
            accel.restore_state(r)?;
        }
        self.cycle = r.get_u64()?;
        self.powered_off = r.get()?;
        self.uart_read = r.get_usize()?;
        // Restore probe contents in place so handles held by the harness
        // keep observing this blade.
        let mut p = self.probe.lock();
        p.uart = r.get_str()?;
        p.exit_code = r.get()?;
        p.mailbox = r.get_bytes()?.to_vec();
        p.retired = r.get_u64()?;
        p.cycles = r.get_u64()?;
        p.nic = r.get()?;
        p.retired_samples = r.get()?;
        p.trace = r.get()?;
        drop(p);
        let has_sampling = r.get_bool()?;
        if has_sampling != self.sampling.is_some() {
            return Err(firesim_core::SimError::checkpoint(format!(
                "blade snapshot {} sampled-mode state, target {}",
                if has_sampling { "has" } else { "lacks" },
                if self.sampling.is_some() {
                    "expects it"
                } else {
                    "does not"
                }
            )));
        }
        if let Some(samp) = &mut self.sampling {
            samp.det_cycles = r.get_u64()?;
            samp.det_retired = r.get()?;
            samp.carry_q16 = r.get()?;
            samp.win_cycles = r.get_u64()?;
            samp.win_retired = r.get_u64()?;
            samp.windows = r.get()?;
            if samp.det_retired.len() != self.cores.len()
                || samp.carry_q16.len() != self.cores.len()
            {
                return Err(firesim_core::SimError::checkpoint(
                    "sampled-mode snapshot core count mismatch".to_owned(),
                ));
            }
            samp.leg_start.clear();
        }
        self.store_scratch.clear();
        self.rx_scratch.clear();
        self.device_lag = 0;
        Ok(())
    }
}

impl SimAgent for RtlBlade {
    type Token = Flit;

    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn done(&self) -> bool {
        self.powered_off.is_some()
    }

    fn advance(&mut self, ctx: &mut AgentCtx<Flit>) {
        self.advance_ports(ctx, 0, 0);
    }

    fn as_checkpoint(&mut self) -> Option<&mut dyn firesim_core::snapshot::Checkpoint> {
        Some(self)
    }

    fn app_counters(&self, out: &mut Vec<(String, u64)>) {
        let retired: u64 = self.cores.iter().map(TimingCore::retired).sum();
        out.push(("retired".to_owned(), retired));
        out.push(("cycles".to_owned(), self.cycle));
        out.push((
            "powered_off".to_owned(),
            u64::from(self.powered_off.is_some()),
        ));
        self.nic.stats().export("nic_", out);
        // Host-dependent counters, `host_`-prefixed so report consumers
        // (and `RunReport::deterministic_aggregates`) can tell them from
        // target-deterministic ones.
        let (mut hits, mut misses, mut invalidations) = (0u64, 0u64, 0u64);
        for stats in self.cores.iter().filter_map(TimingCore::icache_stats) {
            hits += stats.hits;
            misses += stats.misses;
            invalidations += stats.invalidations;
        }
        out.push(("host_icache_hits".to_owned(), hits));
        out.push(("host_icache_misses".to_owned(), misses));
        out.push(("host_icache_invalidations".to_owned(), invalidations));
        out.push((
            "host_icache_hit_permille".to_owned(),
            (hits * 1000).checked_div(hits + misses).unwrap_or(0),
        ));
        // Memory-hierarchy counters. The values themselves are
        // target-deterministic, but they describe the simulator's model
        // internals rather than the workload, so they ride under the
        // `host_` prefix and stay out of deterministic aggregates.
        let ms = self.memsys.stats();
        for (name, stats) in [("l1i", ms.l1i), ("l1d", ms.l1d), ("l2", ms.l2)] {
            out.push((format!("host_{name}_hits"), stats.hits));
            out.push((format!("host_{name}_misses"), stats.misses));
        }
        out.push(("host_dram_row_hits".to_owned(), ms.dram.row_hits));
        out.push(("host_dram_row_empty".to_owned(), ms.dram.row_empty));
        out.push(("host_dram_row_conflicts".to_owned(), ms.dram.row_conflicts));
        out.push(("host_dram_refreshes".to_owned(), ms.dram.refreshes));
        out.push((
            "host_dram_refresh_stall_cycles".to_owned(),
            ms.dram.refresh_stall_cycles,
        ));
        // Sampled-mode estimator outputs. Target-deterministic (the
        // schedule and the Welford fold are pure functions of target
        // state), so they stay unprefixed and flow into deterministic
        // aggregates; only exported when the mode is on.
        if let Some(samp) = &self.sampling {
            out.push(("sampling_windows".to_owned(), samp.windows.n));
            out.push((
                "sampling_ipc_est_permille".to_owned(),
                samp.ipc_est_permille(),
            ));
            let (lo, hi) = samp.windows.confidence95();
            let permille = |v: f64| (v.max(0.0) * 1000.0) as u64;
            out.push(("sampling_ci_lo_permille".to_owned(), permille(lo)));
            out.push(("sampling_ci_hi_permille".to_owned(), permille(hi)));
        }
        // Retired instructions per host-second, in millions:
        // retired / (host_ns / 1e9) / 1e6 = retired * 1000 / host_ns.
        // Zero until `enable_host_profiling` has produced a measurement.
        out.push((
            "host_mips".to_owned(),
            retired
                .saturating_mul(1000)
                .checked_div(self.host_ns)
                .unwrap_or(0),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firesim_core::{Cycle, Engine};
    use firesim_net::MacAddr;
    use firesim_riscv::asm::Assembler;

    fn mk_blade(name: &str, idx: u64, image: &[u8]) -> RtlBlade {
        let mut b = RtlBlade::new(
            name,
            MacAddr::from_node_index(idx),
            BladeConfig::single_core().with_dram_bytes(1 << 20),
        );
        b.load_program(image);
        b
    }

    /// A program that prints "ok\n", stores 42 in the mailbox, and powers
    /// off.
    fn hello_image() -> Vec<u8> {
        let mut a = Assembler::new(DRAM_BASE);
        a.li(5, map::UART_BASE as i64);
        for ch in b"ok\n" {
            a.li(6, i64::from(*ch));
            a.sd(6, 5, 0);
        }
        a.li(5, DRAM_BASE as i64 + 0x8000);
        a.li(6, 42);
        a.sd(6, 5, 0);
        a.li(5, POWEROFF_ADDR as i64);
        a.li(6, 0); // exit code 0
        a.sd(6, 5, 0);
        a.label("spin");
        a.j("spin");
        a.assemble().unwrap()
    }

    #[test]
    fn boots_prints_and_powers_off() {
        let mut b = mk_blade("node0", 0, &hello_image());
        b.set_mailbox(DRAM_BASE + 0x8000, 8);
        let probe = b.probe();
        let mut engine: Engine<Flit> = Engine::new(100);
        let b0 = engine.add_agent(Box::new(b));
        let mut b1 = mk_blade("node1", 1, &hello_image());
        b1.set_mailbox(DRAM_BASE + 0x8000, 8);
        let b1 = engine.add_agent(Box::new(b1));
        engine.connect(b0, 0, b1, 0, Cycle::new(100)).unwrap();
        engine.connect(b1, 0, b0, 0, Cycle::new(100)).unwrap();
        let summary = engine.run_until_done(Cycle::new(1_000_000)).unwrap();
        assert!(summary.cycles < Cycle::new(1_000_000));
        let p = probe.lock();
        assert_eq!(p.uart, "ok\n");
        assert_eq!(p.exit_code, Some(0));
        assert_eq!(&p.mailbox[..], &42u64.to_le_bytes());
        assert!(p.retired > 10);
    }

    /// TracerV + AutoCounter: the probe carries an instruction trace and
    /// per-window retirement samples.
    #[test]
    fn trace_and_autocounter_instrumentation() {
        let mut b = mk_blade("traced", 0, &hello_image());
        b.set_mailbox(DRAM_BASE + 0x8000, 8);
        b.enable_trace(32);
        b.enable_autocounter();
        let probe = b.probe();
        let peer = mk_blade("peer", 1, &hello_image());
        let mut engine: Engine<Flit> = Engine::new(100);
        let b0 = engine.add_agent(Box::new(b));
        let b1 = engine.add_agent(Box::new(peer));
        engine.connect(b0, 0, b1, 0, Cycle::new(100)).unwrap();
        engine.connect(b1, 0, b0, 0, Cycle::new(100)).unwrap();
        engine.run_until_done(Cycle::new(1_000_000)).unwrap();

        let p = probe.lock();
        assert_eq!(p.exit_code, Some(0));
        // Trace: one ring per core; entries have increasing cycles and
        // DRAM-resident PCs.
        assert_eq!(p.trace.len(), 1);
        let trace = &p.trace[0];
        assert!(!trace.is_empty() && trace.len() <= 32);
        for w in trace.windows(2) {
            assert!(w[1].cycle > w[0].cycle, "{w:?}");
        }
        assert!(trace.iter().all(|e| e.pc >= DRAM_BASE));
        // AutoCounter: cumulative samples, nondecreasing in both fields.
        assert!(p.retired_samples.len() >= 2);
        for w in p.retired_samples.windows(2) {
            assert!(w[1].0 > w[0].0 && w[1].1 >= w[0].1, "{w:?}");
        }
        assert_eq!(p.retired_samples.last().unwrap().1, p.retired);
    }

    /// A timer interrupt flows CLINT -> mip -> trap handler: the program
    /// arms mtimecmp, parks in WFI, and powers off from the handler.
    #[test]
    fn clint_timer_interrupt_wakes_wfi() {
        use firesim_riscv::csr::addr as csr;
        let mtimecmp = (map::CLINT_BASE + firesim_devices::clint::MTIMECMP_BASE) as i64;
        let mut a = Assembler::new(DRAM_BASE);
        a.la(5, "handler");
        a.csrw(csr::MTVEC, 5);
        // Arm the timer ~50 RTC ticks out (RTC = core/3200).
        a.li(6, mtimecmp);
        a.li(7, 50);
        a.sd(7, 6, 0);
        a.li(7, 0x080); // MTIE
        a.csrw(csr::MIE, 7);
        a.csrsi(csr::MSTATUS, 8); // MIE
        a.label("sleep");
        a.wfi();
        a.j("sleep");
        a.label("handler");
        // Record mtime progress and power off.
        a.csrr(8, csr::TIME);
        a.li(13, DRAM_BASE as i64 + 0x8000);
        a.sd(8, 13, 0);
        a.li(5, POWEROFF_ADDR as i64);
        a.sd(0, 5, 0);
        a.label("spin");
        a.j("spin");
        let image = a.assemble().unwrap();

        let mut b = mk_blade("timer", 0, &image);
        b.set_mailbox(DRAM_BASE + 0x8000, 8);
        let probe = b.probe();
        let peer = mk_blade("peer", 1, &hello_image());
        let mut engine: Engine<Flit> = Engine::new(100);
        let b0 = engine.add_agent(Box::new(b));
        let b1 = engine.add_agent(Box::new(peer));
        engine.connect(b0, 0, b1, 0, Cycle::new(100)).unwrap();
        engine.connect(b1, 0, b0, 0, Cycle::new(100)).unwrap();
        let summary = engine.run_until_done(Cycle::new(5_000_000)).unwrap();
        assert!(summary.cycles < Cycle::new(5_000_000));
        let p = probe.lock();
        assert_eq!(p.exit_code, Some(0));
        let mtime = u64::from_le_bytes(p.mailbox[0..8].try_into().unwrap());
        assert!(mtime >= 50, "handler ran before mtimecmp: mtime {mtime}");
    }

    /// Four harts atomically increment a shared counter with AMOADD while
    /// hart 0 spins until all contributions land — exercising multicore
    /// scheduling, atomics, and the L1 shoot-down path.
    #[test]
    fn quad_core_atomic_counter() {
        let n = 200i64;
        let counter = DRAM_BASE as i64 + 0x9000;
        let mut a = Assembler::new(DRAM_BASE);
        a.csrr(5, firesim_riscv::csr::addr::MHARTID);
        a.li(10, counter);
        a.li(7, 1);
        a.li(8, n);
        a.label("work");
        a.amoadd_d(6, 7, 10);
        a.addi(8, 8, -1);
        a.bnez(8, "work");
        a.bnez(5, "park"); // non-zero harts park
                           // Hart 0: wait for all 4 harts' contributions.
        a.li(9, 4 * n);
        a.label("wait");
        a.ld(6, 10, 0);
        a.bne(6, 9, "wait");
        a.li(13, DRAM_BASE as i64 + 0x8000);
        a.sd(6, 13, 0);
        a.li(5, POWEROFF_ADDR as i64);
        a.sd(0, 5, 0);
        a.label("park");
        a.label("spin");
        a.j("spin");
        let image = a.assemble().unwrap();

        let mut blade = RtlBlade::new(
            "quad",
            MacAddr::from_node_index(0),
            BladeConfig::quad_core().with_dram_bytes(1 << 20),
        );
        blade.load_program(&image);
        blade.set_mailbox(DRAM_BASE + 0x8000, 8);
        let probe = blade.probe();
        let peer = mk_blade("peer", 1, &hello_image());
        let mut engine: Engine<Flit> = Engine::new(100);
        let b0 = engine.add_agent(Box::new(blade));
        let b1 = engine.add_agent(Box::new(peer));
        engine.connect(b0, 0, b1, 0, Cycle::new(100)).unwrap();
        engine.connect(b1, 0, b0, 0, Cycle::new(100)).unwrap();
        engine.run_until_done(Cycle::new(50_000_000)).unwrap();

        let p = probe.lock();
        assert_eq!(p.exit_code, Some(0), "hart 0 never saw the full count");
        assert_eq!(
            u64::from_le_bytes(p.mailbox[0..8].try_into().unwrap()),
            4 * n as u64
        );
    }

    #[test]
    fn two_blades_exchange_a_packet() {
        // Node 0 sends one raw Ethernet frame to node 1 via the NICs,
        // wired back-to-back with a 100-cycle link; node 1 busy-polls its
        // NIC and powers off once the frame lands in memory.
        use firesim_devices::nic::reg;

        let payload_len = 32u32;
        let frame_len = 14 + payload_len;

        // Sender: builds a frame in DRAM, posts a send request, waits for
        // the completion, powers off.
        let mut a = Assembler::new(DRAM_BASE);
        let buf = DRAM_BASE as i64 + 0x4000;
        // dst MAC = node 1.
        a.li(5, buf);
        a.li(6, 0x02); // dst byte 0
        a.sb(6, 5, 0);
        for i in 1..5 {
            a.sb(0, 5, i);
        }
        a.li(6, 0x01);
        a.sb(6, 5, 5);
        // src MAC = node 0 (zeros beyond the 0x02 prefix).
        a.li(6, 0x02);
        a.sb(6, 5, 6);
        for i in 7..12 {
            a.sb(0, 5, i);
        }
        // Ethertype 0x88B7 (stream) big-endian.
        a.li(6, 0x88);
        a.sb(6, 5, 12);
        a.li(6, 0xB7);
        a.sb(6, 5, 13);
        // Payload: bytes 0xA5.
        a.li(6, 0xA5);
        for i in 0..payload_len as i64 {
            a.sb(6, 5, 14 + i);
        }
        // Send request.
        a.li(7, map::NIC_BASE as i64 + reg::SEND_REQ as i64);
        a.li(6, buf | ((frame_len as i64) << 48));
        a.sd(6, 7, 0);
        // Wait for send completion.
        a.li(7, map::NIC_BASE as i64 + reg::SEND_COMP as i64);
        a.label("wait");
        a.ld(6, 7, 0);
        a.beqz(6, "wait");
        a.li(5, POWEROFF_ADDR as i64);
        a.sd(0, 5, 0);
        a.label("spin");
        a.j("spin");
        let sender = a.assemble().unwrap();

        // Receiver: posts a receive buffer, polls the receive completion,
        // copies the length to the mailbox, powers off.
        let mut a = Assembler::new(DRAM_BASE);
        let rxbuf = DRAM_BASE as i64 + 0x6000;
        a.li(7, map::NIC_BASE as i64 + reg::RECV_REQ as i64);
        a.li(6, rxbuf);
        a.sd(6, 7, 0);
        a.li(7, map::NIC_BASE as i64 + reg::RECV_COMP as i64);
        a.label("wait");
        a.ld(6, 7, 0);
        a.beqz(6, "wait");
        // mailbox <- completion value (len + 1), first payload byte.
        a.li(5, DRAM_BASE as i64 + 0x8000);
        a.sd(6, 5, 0);
        a.li(8, rxbuf);
        a.lbu(9, 8, 14);
        a.sd(9, 5, 8);
        a.li(5, POWEROFF_ADDR as i64);
        a.sd(0, 5, 0);
        a.label("spin");
        a.j("spin");
        let receiver = a.assemble().unwrap();

        let s = mk_blade("sender", 0, &sender);
        let mut r = mk_blade("receiver", 1, &receiver);
        r.set_mailbox(DRAM_BASE + 0x8000, 16);
        let r_probe = r.probe();
        let s_probe = s.probe();

        let mut engine: Engine<Flit> = Engine::new(100);
        let sid = engine.add_agent(Box::new(s));
        let rid = engine.add_agent(Box::new(r));
        engine.connect(sid, 0, rid, 0, Cycle::new(100)).unwrap();
        engine.connect(rid, 0, sid, 0, Cycle::new(100)).unwrap();
        engine.run_until_done(Cycle::new(2_000_000)).unwrap();

        let rp = r_probe.lock();
        assert_eq!(rp.exit_code, Some(0));
        let comp = u64::from_le_bytes(rp.mailbox[0..8].try_into().unwrap());
        assert_eq!(comp, u64::from(frame_len) + 1);
        assert_eq!(rp.mailbox[8], 0xA5);
        let sp = s_probe.lock();
        assert_eq!(sp.nic.tx_packets, 1);
        assert_eq!(rp.nic.rx_packets, 1);
    }
}
