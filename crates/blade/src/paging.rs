//! Remote memory paging and the Page-Fault Accelerator (paper §VI).
//!
//! In the paper's case study, each compute node has a modest amount of
//! fast local memory and pages to a remote *memory blade* (another node
//! running a bare-metal memory server) over the simulated network. Two
//! mechanisms are compared on the same workloads:
//!
//! * **Software paging** (the Infiniswap-style baseline): every remote
//!   access traps; the kernel fault handler runs synchronously — trap
//!   entry, eviction selection, metadata management — before the page
//!   request even leaves the node, and more metadata work runs inline
//!   when the page arrives.
//! * **PFA** (the paper's hardware/software co-design): the
//!   latency-critical fetch path is handled in hardware via a queue of
//!   free frames (`freeQ`), while the OS processes new-page descriptors
//!   (`newQ`) asynchronously in batches, with better cache locality —
//!   the paper measured a 2.5x reduction in metadata-management time and
//!   up to 1.4x end-to-end speedup.
//!
//! Both paths run over the same network, memory blade, and access
//! streams, so the comparison isolates the mechanism — mirroring Fig 11.
//!
//! Workloads follow the paper: **Genome** (de-novo assembly: random
//! probes into a large hash table — poor locality) and **Qsort**
//! (quicksort: recursive partitioning, most work in subranges that fit
//! in local memory — good locality).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use firesim_core::SimRng;
use firesim_net::{EtherType, EthernetFrame, MacAddr};

use crate::model::{Actions, NodeApp};

/// Page size in bytes (frame payloads carry this much data on fetches).
pub const PAGE_BYTES: usize = 4096;

const RM_GET: u8 = 0;
const RM_GET_RESP: u8 = 1;
const RM_PUT: u8 = 2;

fn rm_frame(dst: MacAddr, src: MacAddr, kind: u8, page: u64, with_data: bool) -> EthernetFrame {
    let mut p = Vec::with_capacity(9 + if with_data { PAGE_BYTES } else { 0 });
    p.push(kind);
    p.extend_from_slice(&page.to_le_bytes());
    if with_data {
        p.extend_from_slice(&[0u8; PAGE_BYTES]);
    }
    EthernetFrame::new(dst, src, EtherType::RemoteMem, Bytes::from(p))
}

fn rm_parse(frame: &EthernetFrame) -> Option<(u8, u64)> {
    if frame.ethertype != EtherType::RemoteMem || frame.payload.len() < 9 {
        return None;
    }
    let page = u64::from_le_bytes(frame.payload[1..9].try_into().expect("len checked"));
    Some((frame.payload[0], page))
}

// ---------------------------------------------------------------------
// Memory blade
// ---------------------------------------------------------------------

/// Configuration of the memory-blade server.
#[derive(Debug, Clone, Copy)]
pub struct MemBladeConfig {
    /// Cycles of service per GET (bare-metal server request handling).
    pub get_cycles: u64,
    /// Cycles of service per PUT.
    pub put_cycles: u64,
}

impl Default for MemBladeConfig {
    fn default() -> Self {
        MemBladeConfig {
            get_cycles: 1_500,
            put_cycles: 1_000,
        }
    }
}

/// The bare-metal memory server (the paper implements it as another
/// Rocket core running a custom network protocol).
#[derive(Debug)]
pub struct MemBlade {
    mac: MacAddr,
    config: MemBladeConfig,
    pending: HashMap<u64, (MacAddr, u64)>,
    next_tag: u64,
    /// GETs served.
    pub gets: Arc<Mutex<u64>>,
    /// PUTs absorbed.
    pub puts: Arc<Mutex<u64>>,
}

impl MemBlade {
    /// Creates a memory blade.
    pub fn new(mac: MacAddr, config: MemBladeConfig) -> Self {
        MemBlade {
            mac,
            config,
            pending: HashMap::new(),
            next_tag: 0,
            gets: Arc::new(Mutex::new(0)),
            puts: Arc::new(Mutex::new(0)),
        }
    }
}

impl NodeApp for MemBlade {
    fn on_frame(&mut self, _cycle: u64, frame: &EthernetFrame, out: &mut Actions) {
        match rm_parse(frame) {
            Some((RM_GET, page)) => {
                *self.gets.lock() += 1;
                let tag = self.next_tag;
                self.next_tag += 1;
                self.pending.insert(tag, (frame.src, page));
                out.work_on(0, self.config.get_cycles, tag);
            }
            Some((RM_PUT, _page)) => {
                *self.puts.lock() += 1;
                // Absorb: charge CPU but nothing to send back.
                let tag = self.next_tag | (1 << 63);
                self.next_tag += 1;
                out.work_on(0, self.config.put_cycles, tag);
            }
            _ => {}
        }
    }

    fn on_work_done(&mut self, cycle: u64, tag: u64, out: &mut Actions) {
        if tag & (1 << 63) != 0 {
            return; // PUT completion
        }
        if let Some((client, page)) = self.pending.remove(&tag) {
            out.send_at(cycle, rm_frame(client, self.mac, RM_GET_RESP, page, true));
        }
    }

    fn poll(&mut self, _f: u64, _t: u64, _o: &mut Actions) {}

    fn done(&self) -> bool {
        true // passive
    }
}

// ---------------------------------------------------------------------
// Access streams (workloads)
// ---------------------------------------------------------------------

/// A page-granular access stream.
#[derive(Debug)]
pub enum AccessStream {
    /// Genome assembly: uniform random probes into `pages` pages.
    Genome {
        /// Working-set size in pages.
        pages: u64,
        /// Accesses remaining.
        remaining: u64,
        /// Probe randomness.
        rng: SimRng,
    },
    /// Quicksort: depth-first partition scans; ranges at or below
    /// `leaf_pages` are leaves, scanned `leaf_reps` times (the
    /// insertion-sort-like tail where quicksort spends most of its time,
    /// and the reason it behaves well under paging).
    Qsort {
        /// Explicit recursion stack of `(lo, hi)` page ranges.
        stack: Vec<(u64, u64)>,
        /// Current scan: `(pos, lo, hi, repetitions left)`.
        scan: Option<(u64, u64, u64, u64)>,
        /// Ranges this small are leaves.
        leaf_pages: u64,
        /// Scans per leaf.
        leaf_reps: u64,
    },
}

impl AccessStream {
    /// A genome-style random-probe stream.
    pub fn genome(pages: u64, accesses: u64, seed: u64) -> Self {
        AccessStream::Genome {
            pages,
            remaining: accesses,
            rng: SimRng::seed_from(seed),
        }
    }

    /// A quicksort-style stream over `pages` pages.
    pub fn qsort(pages: u64) -> Self {
        AccessStream::Qsort {
            stack: vec![(0, pages)],
            scan: None,
            leaf_pages: 16,
            leaf_reps: 16,
        }
    }

    /// The next page accessed, or `None` at the end of the workload.
    pub fn next_page(&mut self) -> Option<u64> {
        match self {
            AccessStream::Genome {
                pages,
                remaining,
                rng,
            } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                Some(rng.next_below(*pages))
            }
            AccessStream::Qsort {
                stack,
                scan,
                leaf_pages,
                leaf_reps,
            } => loop {
                if let Some((pos, lo, hi, reps)) = scan {
                    if *pos < *hi {
                        let page = *pos;
                        *pos += 1;
                        return Some(page);
                    }
                    if *reps > 1 {
                        *scan = Some((*lo, *lo, *hi, *reps - 1));
                        continue;
                    }
                    *scan = None;
                }
                let (lo, hi) = stack.pop()?;
                if hi - lo > *leaf_pages {
                    // Partition pass: one scan, then recurse depth-first.
                    let mid = lo + (hi - lo) / 2;
                    stack.push((mid, hi));
                    stack.push((lo, mid));
                    *scan = Some((lo, lo, hi, 1));
                } else {
                    // Leaf: repeated in-cache scans.
                    *scan = Some((lo, lo, hi, *leaf_reps));
                }
            },
        }
    }
}

// ---------------------------------------------------------------------
// Paged workload node
// ---------------------------------------------------------------------

/// Which remote-paging mechanism the node uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagingMode {
    /// Kernel-only paging (baseline, Infiniswap-style).
    Software,
    /// The page-fault accelerator.
    Pfa,
}

/// Cost parameters of the two paging paths.
#[derive(Debug, Clone, Copy)]
pub struct PagingCosts {
    /// CPU cycles per access when the page is resident.
    pub compute_cycles: u64,
    /// SW path: trap entry + fault handler, paid before the GET leaves.
    pub sw_fault_cycles: u64,
    /// SW path: inline metadata management when the page arrives.
    pub sw_metadata_cycles: u64,
    /// SW path: inline eviction-selection work per eviction.
    pub sw_evict_cycles: u64,
    /// PFA path: hardware fault detection + freeQ pop before the GET.
    pub pfa_fault_cycles: u64,
    /// PFA path: resume cost when the page arrives.
    pub pfa_resume_cycles: u64,
    /// PFA path: per-page metadata cost, paid in newQ batches (2.5x
    /// cheaper than the SW path thanks to batching locality).
    pub pfa_metadata_cycles: u64,
    /// PFA newQ batch size.
    pub pfa_newq_batch: u64,
    /// PFA path: asynchronous eviction bookkeeping per eviction.
    pub pfa_evict_cycles: u64,
}

impl Default for PagingCosts {
    fn default() -> Self {
        PagingCosts {
            compute_cycles: 400,
            sw_fault_cycles: 8_000,
            sw_metadata_cycles: 4_000,
            sw_evict_cycles: 2_000,
            pfa_fault_cycles: 300,
            pfa_resume_cycles: 600,
            pfa_metadata_cycles: 1_600,
            pfa_newq_batch: 16,
            pfa_evict_cycles: 800,
        }
    }
}

/// Shared results of a [`PagedWorkload`] run.
#[derive(Debug, Default)]
pub struct PagingStats {
    /// Cycle at which the workload finished.
    pub finished_at: Option<u64>,
    /// Cycle at which the workload started.
    pub started_at: u64,
    /// Accesses performed.
    pub accesses: u64,
    /// Page faults (remote fetches).
    pub faults: u64,
    /// Evictions (dirty page writebacks to the memory blade).
    pub evictions: u64,
    /// Total cycles charged to metadata management.
    pub metadata_cycles: u64,
}

impl PagingStats {
    /// Total runtime in cycles, if finished.
    pub fn runtime(&self) -> Option<u64> {
        self.finished_at.map(|f| f - self.started_at)
    }
}

const TAG_STEP: u64 = 1;
const TAG_FAULT: u64 = 2;
const TAG_RESUME: u64 = 3;
const TAG_ASYNC: u64 = 4; // newQ batch / async eviction (PFA)

/// A compute node running a paged workload against a memory blade.
#[derive(Debug)]
pub struct PagedWorkload {
    mac: MacAddr,
    mem_blade: MacAddr,
    mode: PagingMode,
    costs: PagingCosts,
    stream: AccessStream,
    /// Resident pages: page -> LRU stamp (all pages dirty by policy: both
    /// workloads write).
    resident: HashMap<u64, u64>,
    lru: BTreeMap<u64, u64>, // stamp -> page
    stamp: u64,
    local_pages: u64,
    /// The page currently being faulted in.
    faulting: Option<u64>,
    newq_backlog: u64,
    started: bool,
    stats: Arc<Mutex<PagingStats>>,
}

impl PagedWorkload {
    /// Creates the node. `local_pages` is the fast local memory size.
    ///
    /// # Panics
    ///
    /// Panics if `local_pages` is zero.
    pub fn new(
        mac: MacAddr,
        mem_blade: MacAddr,
        mode: PagingMode,
        costs: PagingCosts,
        stream: AccessStream,
        local_pages: u64,
    ) -> Self {
        assert!(local_pages > 0, "need at least one local frame");
        PagedWorkload {
            mac,
            mem_blade,
            mode,
            costs,
            stream,
            resident: HashMap::new(),
            lru: BTreeMap::new(),
            stamp: 0,
            local_pages,
            faulting: None,
            newq_backlog: 0,
            started: false,
            stats: Arc::new(Mutex::new(PagingStats::default())),
        }
    }

    /// Shared results handle.
    pub fn stats(&self) -> Arc<Mutex<PagingStats>> {
        Arc::clone(&self.stats)
    }

    fn touch(&mut self, page: u64) {
        self.stamp += 1;
        if let Some(old) = self.resident.insert(page, self.stamp) {
            self.lru.remove(&old);
        }
        self.lru.insert(self.stamp, page);
    }

    /// Installs `page`, evicting the LRU page if full. Returns whether an
    /// eviction (writeback) happened.
    fn install(&mut self, page: u64) -> bool {
        let mut evicted = false;
        if self.resident.len() as u64 >= self.local_pages {
            if let Some((&old_stamp, &victim)) = self.lru.iter().next() {
                self.lru.remove(&old_stamp);
                self.resident.remove(&victim);
                evicted = true;
            }
        }
        self.touch(page);
        evicted
    }

    /// Advances to the next access; issues work or finishes.
    fn step(&mut self, cycle: u64, out: &mut Actions) {
        match self.stream.next_page() {
            None => {
                let mut s = self.stats.lock();
                s.finished_at = Some(cycle);
                out.stop = true;
            }
            Some(page) => {
                self.stats.lock().accesses += 1;
                if self.resident.contains_key(&page) {
                    self.touch(page);
                    out.work_on(0, self.costs.compute_cycles, TAG_STEP);
                } else {
                    self.stats.lock().faults += 1;
                    self.faulting = Some(page);
                    let fault_cost = match self.mode {
                        PagingMode::Software => {
                            self.costs.compute_cycles + self.costs.sw_fault_cycles
                        }
                        PagingMode::Pfa => self.costs.compute_cycles + self.costs.pfa_fault_cycles,
                    };
                    out.work_on(0, fault_cost, TAG_FAULT);
                }
            }
        }
    }
}

impl NodeApp for PagedWorkload {
    fn on_frame(&mut self, cycle: u64, frame: &EthernetFrame, out: &mut Actions) {
        let Some((RM_GET_RESP, page)) = rm_parse(frame) else {
            return;
        };
        if self.faulting != Some(page) {
            return;
        }
        self.faulting = None;
        let evicted = self.install(page);
        if evicted {
            self.stats.lock().evictions += 1;
            // Dirty victim: write it back to the memory blade.
            out.send_at(
                cycle,
                rm_frame(self.mem_blade, self.mac, RM_PUT, page, true),
            );
        }
        match self.mode {
            PagingMode::Software => {
                // Inline: map + metadata (+ eviction bookkeeping).
                let mut cost = self.costs.sw_metadata_cycles;
                if evicted {
                    cost += self.costs.sw_evict_cycles;
                }
                self.stats.lock().metadata_cycles += cost;
                out.work_on(0, cost, TAG_RESUME);
            }
            PagingMode::Pfa => {
                // Resume quickly; metadata is deferred to newQ batches.
                self.newq_backlog += 1;
                if self.newq_backlog >= self.costs.pfa_newq_batch {
                    let batch = self.newq_backlog;
                    self.newq_backlog = 0;
                    let mut cost = batch * self.costs.pfa_metadata_cycles;
                    if evicted {
                        cost += self.costs.pfa_evict_cycles;
                    }
                    self.stats.lock().metadata_cycles += cost;
                    // Batched processing runs as separate (lower-priority)
                    // work; it still contends for the CPU but off the
                    // critical fault path.
                    out.work_on(0, cost, TAG_ASYNC);
                } else if evicted {
                    self.stats.lock().metadata_cycles += self.costs.pfa_evict_cycles;
                    out.work_on(0, self.costs.pfa_evict_cycles, TAG_ASYNC);
                }
                out.work_on(0, self.costs.pfa_resume_cycles, TAG_RESUME);
            }
        }
    }

    fn on_work_done(&mut self, cycle: u64, tag: u64, out: &mut Actions) {
        match tag {
            TAG_STEP | TAG_RESUME => self.step(cycle, out),
            TAG_FAULT => {
                let page = self.faulting.expect("fault in progress");
                out.send_at(
                    cycle,
                    rm_frame(self.mem_blade, self.mac, RM_GET, page, false),
                );
            }
            TAG_ASYNC => {}
            _ => {}
        }
    }

    fn poll(&mut self, from: u64, _to: u64, out: &mut Actions) {
        if !self.started {
            self.started = true;
            self.stats.lock().started_at = from;
            self.step(from, out);
        }
    }

    fn done(&self) -> bool {
        self.started && self.stats.lock().finished_at.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModeledBlade, OsConfig, OsModel};
    use firesim_core::{Cycle, Engine};
    use firesim_net::Flit;

    fn run_paging(
        mode: PagingMode,
        stream: AccessStream,
        local_pages: u64,
    ) -> (u64, u64, u64, u64) {
        let wl_mac = MacAddr::from_node_index(0);
        let mb_mac = MacAddr::from_node_index(1);
        let wl = PagedWorkload::new(
            wl_mac,
            mb_mac,
            mode,
            PagingCosts::default(),
            stream,
            local_pages,
        );
        let stats = wl.stats();
        let mb = MemBlade::new(mb_mac, MemBladeConfig::default());
        let os_cfg = OsConfig {
            cores: 1,
            ctx_switch_cycles: 0,
            misplace_prob: 0.0,
            ..OsConfig::default()
        };
        let wl_blade = ModeledBlade::new("wl", wl_mac, OsModel::new(os_cfg, 1, true), Box::new(wl));
        let mb_blade = ModeledBlade::new("mb", mb_mac, OsModel::new(os_cfg, 1, true), Box::new(mb));
        let mut engine: Engine<Flit> = Engine::new(6_400);
        let w = engine.add_agent(Box::new(wl_blade));
        let m = engine.add_agent(Box::new(mb_blade));
        engine.connect(w, 0, m, 0, Cycle::new(6_400)).unwrap();
        engine.connect(m, 0, w, 0, Cycle::new(6_400)).unwrap();
        engine.run_until_done(Cycle::new(20_000_000_000)).unwrap();
        let s = stats.lock();
        (
            s.runtime().expect("finished"),
            s.faults,
            s.evictions,
            s.metadata_cycles,
        )
    }

    #[test]
    fn all_local_memory_means_no_faults() {
        let (rt, faults, evictions, _) =
            run_paging(PagingMode::Software, AccessStream::genome(64, 500, 11), 64);
        // Cold faults only (some of the 64 pages may go untouched).
        assert!((48..=64).contains(&faults), "faults {faults}");
        assert_eq!(evictions, 0);
        assert!(rt > 0);
    }

    #[test]
    fn pfa_beats_software_paging_when_fault_bound() {
        let stream = || AccessStream::genome(256, 1_500, 5);
        let (rt_sw, faults_sw, _, meta_sw) = run_paging(PagingMode::Software, stream(), 32);
        let (rt_pfa, faults_pfa, _, meta_pfa) = run_paging(PagingMode::Pfa, stream(), 32);
        // Identical access streams and replacement: identical faults.
        assert_eq!(faults_sw, faults_pfa);
        // PFA reduces metadata-management time (paper: ~2.5x).
        assert!(
            meta_sw as f64 / meta_pfa as f64 > 1.8,
            "metadata ratio {:.2}",
            meta_sw as f64 / meta_pfa as f64
        );
        // End-to-end speedup.
        let speedup = rt_sw as f64 / rt_pfa as f64;
        assert!(speedup > 1.1, "speedup {speedup:.3}");
    }

    #[test]
    fn qsort_is_less_sensitive_than_genome() {
        // Shrinking local memory 8x should hurt genome (random) much more
        // than qsort (mostly-local recursion).
        let genome = |local| {
            run_paging(
                PagingMode::Software,
                AccessStream::genome(256, 1_500, 5),
                local,
            )
            .0 as f64
        };
        let qsort =
            |local| run_paging(PagingMode::Software, AccessStream::qsort(256), local).0 as f64;
        let genome_slowdown = genome(32) / genome(256);
        let qsort_slowdown = qsort(32) / qsort(256);
        assert!(
            genome_slowdown > qsort_slowdown * 1.5,
            "genome {genome_slowdown:.2} vs qsort {qsort_slowdown:.2}"
        );
    }

    #[test]
    fn qsort_stream_terminates_and_covers_pages() {
        let mut s = AccessStream::qsort(64);
        let mut count = 0u64;
        let mut seen = std::collections::HashSet::new();
        while let Some(p) = s.next_page() {
            assert!(p < 64);
            seen.insert(p);
            count += 1;
            assert!(count < 100_000, "stream does not terminate");
        }
        assert_eq!(seen.len(), 64);
        // log2(64/16) subdivision levels: 64 + 2*32 + 4*16... roughly
        // pages * (levels + 1).
        assert!(count >= 64 * 3, "count {count}");
    }

    #[test]
    fn genome_stream_is_deterministic() {
        let collect = || {
            let mut s = AccessStream::genome(128, 50, 9);
            std::iter::from_fn(move || s.next_page()).collect::<Vec<_>>()
        };
        assert_eq!(collect(), collect());
        assert_eq!(collect().len(), 50);
    }
}
