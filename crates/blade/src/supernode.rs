//! Supernode packing (§III-A5): multiple blades per host execution unit.
//!
//! FireSim's supernode configuration packs four simulated nodes onto one
//! FPGA, multiplexing their network token streams over a single PCIe
//! link. The host-side analogue here is [`Supernode`]: one simulation
//! agent that advances up to four [`RtlBlade`]s, exposing one network
//! port per blade. Fewer agents means fewer host channels and less
//! scheduling overhead — the same lever the paper pulls to scale to 1024
//! nodes, and the second curve in Fig 8.

use firesim_core::{AgentCtx, SimAgent};
use firesim_net::Flit;

use crate::soc::RtlBlade;

/// Up to four RTL blades advancing as one host unit.
pub struct Supernode {
    name: String,
    blades: Vec<RtlBlade>,
}

impl std::fmt::Debug for Supernode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supernode")
            .field("name", &self.name)
            .field("blades", &self.blades.len())
            .finish()
    }
}

impl Supernode {
    /// Packs blades into one agent. Port `i` belongs to blade `i`.
    ///
    /// # Panics
    ///
    /// Panics unless 1..=4 blades are supplied (the FPGA has four DRAM
    /// channels).
    pub fn new(name: impl Into<String>, blades: Vec<RtlBlade>) -> Self {
        assert!(
            (1..=4).contains(&blades.len()),
            "a supernode packs 1..=4 blades"
        );
        Supernode {
            name: name.into(),
            blades,
        }
    }

    /// The packed blades.
    pub fn blades(&self) -> &[RtlBlade] {
        &self.blades
    }
}

impl firesim_core::snapshot::Checkpoint for Supernode {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        w.put_usize(self.blades.len());
        for blade in &self.blades {
            blade.save_state(w)?;
        }
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        let n = r.get_usize()?;
        if n != self.blades.len() {
            return Err(firesim_core::SimError::checkpoint(format!(
                "supernode snapshot packs {n} blades, target packs {}",
                self.blades.len()
            )));
        }
        for blade in &mut self.blades {
            blade.restore_state(r)?;
        }
        Ok(())
    }
}

impl SimAgent for Supernode {
    type Token = Flit;

    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        self.blades.len()
    }

    fn num_outputs(&self) -> usize {
        self.blades.len()
    }

    fn done(&self) -> bool {
        self.blades.iter().all(SimAgent::done)
    }

    fn advance(&mut self, ctx: &mut AgentCtx<Flit>) {
        // Each blade drains input port `i` and fills output port `i` of
        // the shared context directly — no per-blade sub-context, so the
        // engine's window recycling applies to supernode members too.
        for (i, blade) in self.blades.iter_mut().enumerate() {
            blade.advance_ports(ctx, i, i);
        }
    }

    fn as_checkpoint(&mut self) -> Option<&mut dyn firesim_core::snapshot::Checkpoint> {
        Some(self)
    }

    fn app_counters(&self, out: &mut Vec<(String, u64)>) {
        // Prefix each blade's counters with the blade name so the packed
        // members stay distinguishable in the aggregated report.
        let mut inner = Vec::new();
        for blade in &self.blades {
            inner.clear();
            blade.app_counters(&mut inner);
            for (key, value) in inner.drain(..) {
                out.push((format!("{}/{key}", blade.name()), value));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BladeConfig;
    use crate::programs;
    use firesim_core::{Cycle, Engine};
    use firesim_net::MacAddr;

    #[test]
    fn supernode_blades_ping_each_other() {
        // Two blades in ONE supernode, wired port 0 <-> port 1.
        let count = 2;
        let mk = |idx: u64, prog: &programs::Program| {
            let mut b = RtlBlade::new(
                format!("n{idx}"),
                MacAddr::from_node_index(idx),
                BladeConfig::single_core().with_dram_bytes(4 << 20),
            );
            prog.install(&mut b);
            b
        };
        let sender_prog = programs::ping_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            count,
            26,
            5_000,
        );
        let responder_prog = programs::echo_responder(count);
        let sender = mk(0, &sender_prog);
        let responder = mk(1, &responder_prog);
        let s_probe = sender.probe();
        let sn = Supernode::new("sn0", vec![sender, responder]);

        let mut engine: Engine<Flit> = Engine::new(200);
        let id = engine.add_agent(Box::new(sn));
        engine.connect(id, 0, id, 1, Cycle::new(200)).unwrap();
        engine.connect(id, 1, id, 0, Cycle::new(200)).unwrap();
        engine.run_until_done(Cycle::new(10_000_000)).unwrap();

        let p = s_probe.lock();
        assert_eq!(p.exit_code, Some(0));
        let rtt = u64::from_le_bytes(p.mailbox[8..16].try_into().unwrap());
        assert!(rtt > 400, "rtt {rtt}");
    }

    #[test]
    #[should_panic(expected = "1..=4 blades")]
    fn five_blades_panics() {
        let blades = (0..5)
            .map(|i| {
                RtlBlade::new(
                    format!("n{i}"),
                    MacAddr::from_node_index(i),
                    BladeConfig::single_core().with_dram_bytes(1 << 20),
                )
            })
            .collect();
        let _ = Supernode::new("bad", blades);
    }
}
