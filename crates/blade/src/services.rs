//! Service models: the software that runs on [`ModeledBlade`](crate::model::ModeledBlade)s.
//!
//! * [`KvServer`] — a memcached-style key-value server: requests are
//!   distributed over `threads` worker threads (connection round-robin,
//!   as memcached does); each request costs network-stack plus service
//!   CPU cycles on its thread before the response is produced. Run it on
//!   an OS model with more threads than cores to reproduce the thread
//!   imbalance of Fig 7.
//! * [`Mutilate`] — the mutilate-style load generator (Leverich &
//!   Kozyrakis): open-loop Poisson arrivals at a target QPS against one
//!   server, recording per-request latency into a shared histogram.
//! * [`IperfSender`]/[`IperfReceiver`] — an iperf3-style single-stream
//!   bandwidth test where every segment costs CPU on both sides (the
//!   "software stack" that limits the paper's §IV-B result to 1.4 Gbit/s
//!   despite a 200 Gbit/s link).

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use firesim_core::snapshot::{SnapshotReader, SnapshotWriter};
use firesim_core::stats::Histogram;
use firesim_core::{SimResult, SimRng};
use firesim_net::{EtherType, EthernetFrame, MacAddr};

use crate::model::{Actions, NodeApp};

/// Reads a MAC address written with [`SnapshotWriter::put_bytes`].
fn get_mac(r: &mut SnapshotReader<'_>) -> SimResult<MacAddr> {
    let bytes: [u8; 6] = r
        .get_bytes()?
        .try_into()
        .map_err(|_| firesim_core::SimError::checkpoint("MAC address must be 6 bytes"))?;
    Ok(MacAddr(bytes))
}

/// Writes a `tag -> value` map in ascending key order, so the snapshot
/// bytes (and therefore the checkpoint digests) are independent of
/// `HashMap`'s per-process iteration order.
fn put_sorted_map<V>(
    w: &mut SnapshotWriter,
    map: &HashMap<u64, V>,
    mut put_value: impl FnMut(&mut SnapshotWriter, &V),
) {
    let mut entries: Vec<(&u64, &V)> = map.iter().collect();
    entries.sort_by_key(|(k, _)| **k);
    w.put_usize(entries.len());
    for (k, v) in entries {
        w.put_u64(*k);
        put_value(w, v);
    }
}

/// Serialises a latency histogram as its raw samples; the restored
/// histogram keeps its name and re-records them in order.
fn put_histogram(w: &mut SnapshotWriter, h: &Histogram) {
    w.put_usize(h.samples().len());
    for &s in h.samples() {
        w.put_u64(s);
    }
}

fn get_histogram(r: &mut SnapshotReader<'_>, name: &str) -> SimResult<Histogram> {
    let mut h = Histogram::new(name);
    for _ in 0..r.get_usize()? {
        h.record(r.get_u64()?);
    }
    Ok(h)
}

// ---------------------------------------------------------------------
// Key-value protocol encoding
// ---------------------------------------------------------------------

const KV_GET: u8 = 0;
const KV_RESP: u8 = 1;

fn kv_frame(
    dst: MacAddr,
    src: MacAddr,
    kind: u8,
    id: u64,
    stamp: u64,
    pad: usize,
) -> EthernetFrame {
    let mut p = Vec::with_capacity(17 + pad);
    p.push(kind);
    p.extend_from_slice(&id.to_le_bytes());
    p.extend_from_slice(&stamp.to_le_bytes());
    p.extend_from_slice(&vec![0u8; pad]);
    EthernetFrame::new(dst, src, EtherType::KeyValue, Bytes::from(p))
}

fn kv_parse(frame: &EthernetFrame) -> Option<(u8, u64, u64)> {
    if frame.ethertype != EtherType::KeyValue || frame.payload.len() < 17 {
        return None;
    }
    let p = &frame.payload;
    let id = u64::from_le_bytes(p[1..9].try_into().expect("len checked"));
    let stamp = u64::from_le_bytes(p[9..17].try_into().expect("len checked"));
    Some((p[0], id, stamp))
}

// ---------------------------------------------------------------------
// KvServer
// ---------------------------------------------------------------------

/// Configuration for [`KvServer`].
#[derive(Debug, Clone, Copy)]
pub struct KvServerConfig {
    /// Worker threads (memcached `-t`).
    pub threads: usize,
    /// Per-request network-stack cycles (RX interrupt + protocol + TX).
    pub stack_cycles: u64,
    /// Mean request service cycles (hash lookup + response build).
    pub service_cycles: u64,
    /// Mean of an additional exponentially distributed service component
    /// (memory stalls, occasional slow paths). Zero disables jitter.
    pub service_jitter_cycles: u64,
    /// Response value padding in bytes.
    pub value_bytes: usize,
    /// Seed for the service-time distribution.
    pub seed: u64,
}

impl Default for KvServerConfig {
    fn default() -> Self {
        KvServerConfig {
            threads: 4,
            // ~6 us of combined kernel + userspace per request at 3.2 GHz:
            // the scale of the Linux-stack overheads measured in §IV-A.
            stack_cycles: 12_000,
            service_cycles: 8_000,
            service_jitter_cycles: 2_500,
            value_bytes: 64,
            seed: 11,
        }
    }
}

/// Counters shared by a [`KvServer`].
#[derive(Debug, Default)]
pub struct KvServerStats {
    /// Requests received.
    pub requests: u64,
    /// Responses sent.
    pub responses: u64,
}

/// A memcached-style server. See the [module docs](self).
#[derive(Debug)]
pub struct KvServer {
    mac: MacAddr,
    config: KvServerConfig,
    /// Requests awaiting CPU: tag -> (client, id, stamp).
    pending: HashMap<u64, (MacAddr, u64, u64)>,
    next_tag: u64,
    next_thread: usize,
    rng: SimRng,
    stats: Arc<Mutex<KvServerStats>>,
}

impl KvServer {
    /// Creates a server.
    pub fn new(mac: MacAddr, config: KvServerConfig) -> Self {
        KvServer {
            mac,
            pending: HashMap::new(),
            next_tag: 0,
            next_thread: 0,
            rng: SimRng::seed_from(config.seed),
            stats: Arc::new(Mutex::new(KvServerStats::default())),
            config,
        }
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> Arc<Mutex<KvServerStats>> {
        Arc::clone(&self.stats)
    }
}

impl NodeApp for KvServer {
    fn on_frame(&mut self, _cycle: u64, frame: &EthernetFrame, out: &mut Actions) {
        let Some((KV_GET, id, stamp)) = kv_parse(frame) else {
            return;
        };
        self.stats.lock().requests += 1;
        let tag = self.next_tag;
        self.next_tag += 1;
        self.pending.insert(tag, (frame.src, id, stamp));
        // Connection -> thread assignment round-robin, like memcached's
        // per-connection worker binding.
        let thread = self.next_thread;
        self.next_thread = (self.next_thread + 1) % self.config.threads;
        let jitter = if self.config.service_jitter_cycles > 0 {
            self.rng.next_exp(self.config.service_jitter_cycles as f64) as u64
        } else {
            0
        };
        out.work_on(
            thread,
            self.config.stack_cycles + self.config.service_cycles + jitter,
            tag,
        );
    }

    fn on_work_done(&mut self, cycle: u64, tag: u64, out: &mut Actions) {
        let Some((client, id, stamp)) = self.pending.remove(&tag) else {
            return;
        };
        self.stats.lock().responses += 1;
        out.send_at(
            cycle,
            kv_frame(
                client,
                self.mac,
                KV_RESP,
                id,
                stamp,
                self.config.value_bytes,
            ),
        );
    }

    fn poll(&mut self, _from: u64, _to: u64, _out: &mut Actions) {}

    fn done(&self) -> bool {
        // A server is passive; the run ends when the load generators end.
        true
    }

    fn save_state(&self, w: &mut SnapshotWriter) -> SimResult<()> {
        put_sorted_map(w, &self.pending, |w, (client, id, stamp)| {
            w.put_bytes(&client.0);
            w.put_u64(*id);
            w.put_u64(*stamp);
        });
        w.put_u64(self.next_tag);
        w.put_usize(self.next_thread);
        w.put(&self.rng);
        let s = self.stats.lock();
        w.put_u64(s.requests);
        w.put_u64(s.responses);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> SimResult<()> {
        self.pending.clear();
        for _ in 0..r.get_usize()? {
            let tag = r.get_u64()?;
            let client = get_mac(r)?;
            let id = r.get_u64()?;
            let stamp = r.get_u64()?;
            self.pending.insert(tag, (client, id, stamp));
        }
        self.next_tag = r.get_u64()?;
        self.next_thread = r.get_usize()?;
        self.rng = r.get()?;
        let mut s = self.stats.lock();
        s.requests = r.get_u64()?;
        s.responses = r.get_u64()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Mutilate
// ---------------------------------------------------------------------

/// Configuration for [`Mutilate`].
#[derive(Debug, Clone, Copy)]
pub struct MutilateConfig {
    /// Target server.
    pub server: MacAddr,
    /// Target queries per second (target-time seconds).
    pub qps: f64,
    /// Target clock in Hz (converts QPS to cycles).
    pub clock_hz: f64,
    /// Total requests to issue.
    pub requests: u64,
    /// Client-side overhead added to each latency sample (its own
    /// network stack, in cycles).
    pub client_overhead_cycles: u64,
    /// GET request padding bytes (key size).
    pub key_bytes: usize,
    /// RNG seed (vary per load generator).
    pub seed: u64,
    /// Maximum outstanding requests (mutilate's connection limit makes
    /// it partially closed-loop; achieved QPS then drops as latency
    /// grows, as seen in Table III). `0` means unlimited (pure open
    /// loop).
    pub max_outstanding: usize,
}

impl Default for MutilateConfig {
    fn default() -> Self {
        MutilateConfig {
            server: MacAddr::from_node_index(0),
            qps: 50_000.0,
            clock_hz: 3.2e9,
            requests: 1_000,
            client_overhead_cycles: 24_000,
            key_bytes: 16,
            seed: 7,
            max_outstanding: 0,
        }
    }
}

/// Results shared by a [`Mutilate`] generator.
#[derive(Debug, Default)]
pub struct MutilateStats {
    /// Latency samples in cycles.
    pub latency: Histogram,
    /// Requests sent.
    pub sent: u64,
    /// Responses received.
    pub received: u64,
    /// Cycle of the first request.
    pub first_send: u64,
    /// Cycle of the last response.
    pub last_recv: u64,
}

impl MutilateStats {
    /// Achieved queries per second given the target clock.
    pub fn achieved_qps(&self, clock_hz: f64) -> f64 {
        if self.last_recv <= self.first_send || self.received == 0 {
            return 0.0;
        }
        self.received as f64 / ((self.last_recv - self.first_send) as f64 / clock_hz)
    }
}

/// The mutilate-style load generator. See the [module docs](self).
#[derive(Debug)]
pub struct Mutilate {
    mac: MacAddr,
    config: MutilateConfig,
    rng: SimRng,
    next_send: Option<u64>,
    issued: u64,
    outstanding: HashMap<u64, u64>, // id -> send cycle
    stats: Arc<Mutex<MutilateStats>>,
}

impl Mutilate {
    /// Creates a load generator.
    pub fn new(mac: MacAddr, config: MutilateConfig) -> Self {
        Mutilate {
            mac,
            rng: SimRng::seed_from(config.seed),
            next_send: None,
            issued: 0,
            outstanding: HashMap::new(),
            stats: Arc::new(Mutex::new(MutilateStats::default())),
            config,
        }
    }

    /// Shared results handle.
    pub fn stats(&self) -> Arc<Mutex<MutilateStats>> {
        Arc::clone(&self.stats)
    }

    fn mean_gap_cycles(&self) -> f64 {
        self.config.clock_hz / self.config.qps
    }
}

impl NodeApp for Mutilate {
    fn on_frame(&mut self, cycle: u64, frame: &EthernetFrame, _out: &mut Actions) {
        let Some((KV_RESP, id, _stamp)) = kv_parse(frame) else {
            return;
        };
        if let Some(sent) = self.outstanding.remove(&id) {
            let mut s = self.stats.lock();
            s.latency
                .record(cycle - sent + self.config.client_overhead_cycles);
            s.received += 1;
            s.last_recv = cycle;
        }
    }

    fn on_work_done(&mut self, _cycle: u64, _tag: u64, _out: &mut Actions) {}

    fn poll(&mut self, from: u64, to: u64, out: &mut Actions) {
        if self.issued >= self.config.requests {
            return;
        }
        let mut t = match self.next_send {
            Some(t) => t,
            None => {
                let first = from + self.rng.next_exp(self.mean_gap_cycles()) as u64;
                self.next_send = Some(first);
                first
            }
        };
        while t < to && self.issued < self.config.requests {
            if self.config.max_outstanding > 0
                && self.outstanding.len() >= self.config.max_outstanding
            {
                // Closed-loop backpressure: retry next window.
                break;
            }
            let id = (self.config.seed << 32) | self.issued;
            out.send_at(
                t,
                kv_frame(
                    self.config.server,
                    self.mac,
                    KV_GET,
                    id,
                    t,
                    self.config.key_bytes,
                ),
            );
            self.outstanding.insert(id, t);
            {
                let mut s = self.stats.lock();
                if s.sent == 0 {
                    s.first_send = t;
                }
                s.sent += 1;
            }
            self.issued += 1;
            t += self.rng.next_exp(self.mean_gap_cycles()).max(1.0) as u64;
        }
        self.next_send = Some(t);
    }

    fn done(&self) -> bool {
        self.issued >= self.config.requests && self.outstanding.is_empty()
    }

    fn save_state(&self, w: &mut SnapshotWriter) -> SimResult<()> {
        w.put(&self.rng);
        w.put(&self.next_send);
        w.put_u64(self.issued);
        put_sorted_map(w, &self.outstanding, |w, sent| w.put_u64(*sent));
        let s = self.stats.lock();
        put_histogram(w, &s.latency);
        w.put_u64(s.sent);
        w.put_u64(s.received);
        w.put_u64(s.first_send);
        w.put_u64(s.last_recv);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> SimResult<()> {
        self.rng = r.get()?;
        self.next_send = r.get()?;
        self.issued = r.get_u64()?;
        self.outstanding.clear();
        for _ in 0..r.get_usize()? {
            let id = r.get_u64()?;
            let sent = r.get_u64()?;
            self.outstanding.insert(id, sent);
        }
        let mut s = self.stats.lock();
        let name = s.latency.name().to_string();
        s.latency = get_histogram(r, &name)?;
        s.sent = r.get_u64()?;
        s.received = r.get_u64()?;
        s.first_send = r.get_u64()?;
        s.last_recv = r.get_u64()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Iperf-style stream
// ---------------------------------------------------------------------

/// Configuration for the iperf-style pair.
#[derive(Debug, Clone, Copy)]
pub struct IperfConfig {
    /// Peer MAC address.
    pub peer: MacAddr,
    /// Segment payload bytes.
    pub segment_bytes: usize,
    /// Segments kept in flight (congestion/receive window).
    pub window: usize,
    /// Per-segment sender CPU cycles (syscall + TCP + driver).
    pub send_cycles: u64,
    /// Per-segment receiver CPU cycles.
    pub recv_cycles: u64,
    /// Total bytes to move.
    pub total_bytes: u64,
}

impl Default for IperfConfig {
    fn default() -> Self {
        IperfConfig {
            peer: MacAddr::from_node_index(0),
            segment_bytes: 1448,
            window: 8,
            // Calibrated so a single in-order core moves ~1.4 Gbit/s, the
            // paper's measured iperf3 result (§IV-B).
            send_cycles: 26_000,
            recv_cycles: 26_000,
            total_bytes: 1 << 20,
        }
    }
}

/// Results shared by an [`IperfSender`].
#[derive(Debug, Default)]
pub struct IperfStats {
    /// Bytes acknowledged.
    pub bytes_acked: u64,
    /// Cycle of the first segment send.
    pub started: u64,
    /// Cycle of the final ack.
    pub finished: u64,
}

impl IperfStats {
    /// Goodput in bits per target second.
    pub fn goodput_bps(&self, clock_hz: f64) -> f64 {
        if self.finished <= self.started {
            return 0.0;
        }
        self.bytes_acked as f64 * 8.0 / ((self.finished - self.started) as f64 / clock_hz)
    }
}

const SEG_DATA: u8 = 2;
const SEG_ACK: u8 = 3;

/// The sending side of the iperf-style stream.
#[derive(Debug)]
pub struct IperfSender {
    mac: MacAddr,
    config: IperfConfig,
    next_seq: u64,
    acked: u64,
    in_flight: usize,
    started: bool,
    stats: Arc<Mutex<IperfStats>>,
}

impl IperfSender {
    /// Creates the sender.
    pub fn new(mac: MacAddr, config: IperfConfig) -> Self {
        IperfSender {
            mac,
            config,
            next_seq: 0,
            acked: 0,
            in_flight: 0,
            started: false,
            stats: Arc::new(Mutex::new(IperfStats::default())),
        }
    }

    /// Shared results handle.
    pub fn stats(&self) -> Arc<Mutex<IperfStats>> {
        Arc::clone(&self.stats)
    }

    fn total_segments(&self) -> u64 {
        self.config
            .total_bytes
            .div_ceil(self.config.segment_bytes as u64)
    }

    fn maybe_send(&mut self, out: &mut Actions) {
        while self.in_flight < self.config.window && self.next_seq < self.total_segments() {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.in_flight += 1;
            // CPU first, then the wire: tag identifies the segment.
            out.work_on(0, self.config.send_cycles, seq);
        }
    }
}

impl NodeApp for IperfSender {
    fn on_frame(&mut self, cycle: u64, frame: &EthernetFrame, out: &mut Actions) {
        let Some((SEG_ACK, _id, _)) = kv_parse(frame) else {
            return;
        };
        self.acked += 1;
        self.in_flight = self.in_flight.saturating_sub(1);
        {
            let mut s = self.stats.lock();
            s.bytes_acked += self.config.segment_bytes as u64;
            s.finished = cycle;
        }
        self.maybe_send(out);
    }

    fn on_work_done(&mut self, cycle: u64, seq: u64, out: &mut Actions) {
        out.send_at(
            cycle,
            kv_frame(
                self.config.peer,
                self.mac,
                SEG_DATA,
                seq,
                cycle,
                self.config.segment_bytes.saturating_sub(17),
            ),
        );
    }

    fn poll(&mut self, from: u64, _to: u64, out: &mut Actions) {
        if !self.started {
            self.started = true;
            self.stats.lock().started = from;
            self.maybe_send(out);
        }
    }

    fn done(&self) -> bool {
        self.started && self.acked >= self.total_segments()
    }

    fn save_state(&self, w: &mut SnapshotWriter) -> SimResult<()> {
        w.put_u64(self.next_seq);
        w.put_u64(self.acked);
        w.put_usize(self.in_flight);
        w.put_bool(self.started);
        let s = self.stats.lock();
        w.put_u64(s.bytes_acked);
        w.put_u64(s.started);
        w.put_u64(s.finished);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> SimResult<()> {
        self.next_seq = r.get_u64()?;
        self.acked = r.get_u64()?;
        self.in_flight = r.get_usize()?;
        self.started = r.get_bool()?;
        let mut s = self.stats.lock();
        s.bytes_acked = r.get_u64()?;
        s.started = r.get_u64()?;
        s.finished = r.get_u64()?;
        Ok(())
    }
}

/// The receiving side of the iperf-style stream.
#[derive(Debug)]
pub struct IperfReceiver {
    mac: MacAddr,
    config: IperfConfig,
    pending: HashMap<u64, (MacAddr, u64)>,
    next_tag: u64,
}

impl IperfReceiver {
    /// Creates the receiver.
    pub fn new(mac: MacAddr, config: IperfConfig) -> Self {
        IperfReceiver {
            mac,
            config,
            pending: HashMap::new(),
            next_tag: 1 << 40,
        }
    }
}

impl NodeApp for IperfReceiver {
    fn on_frame(&mut self, _cycle: u64, frame: &EthernetFrame, out: &mut Actions) {
        let Some((SEG_DATA, id, _)) = kv_parse(frame) else {
            return;
        };
        let tag = self.next_tag;
        self.next_tag += 1;
        self.pending.insert(tag, (frame.src, id));
        out.work_on(0, self.config.recv_cycles, tag);
    }

    fn on_work_done(&mut self, cycle: u64, tag: u64, out: &mut Actions) {
        if let Some((src, id)) = self.pending.remove(&tag) {
            out.send_at(cycle, kv_frame(src, self.mac, SEG_ACK, id, cycle, 0));
        }
    }

    fn poll(&mut self, _f: u64, _t: u64, _o: &mut Actions) {}

    fn done(&self) -> bool {
        true // passive
    }

    fn save_state(&self, w: &mut SnapshotWriter) -> SimResult<()> {
        put_sorted_map(w, &self.pending, |w, (src, id)| {
            w.put_bytes(&src.0);
            w.put_u64(*id);
        });
        w.put_u64(self.next_tag);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> SimResult<()> {
        self.pending.clear();
        for _ in 0..r.get_usize()? {
            let tag = r.get_u64()?;
            let src = get_mac(r)?;
            let id = r.get_u64()?;
            self.pending.insert(tag, (src, id));
        }
        self.next_tag = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModeledBlade, OsConfig, OsModel};
    use firesim_core::{Cycle, Engine};
    use firesim_net::Flit;

    fn os(cores: usize, seed: u64) -> OsModel {
        OsModel::new(
            OsConfig {
                cores,
                seed,
                ..OsConfig::default()
            },
            cores,
            true,
        )
    }

    #[test]
    fn kv_pair_round_trips_all_requests() {
        let server_mac = MacAddr::from_node_index(0);
        let client_mac = MacAddr::from_node_index(1);
        let server = KvServer::new(server_mac, KvServerConfig::default());
        let server_stats = server.stats();
        let client = Mutilate::new(
            client_mac,
            MutilateConfig {
                server: server_mac,
                qps: 100_000.0,
                requests: 50,
                seed: 3,
                ..MutilateConfig::default()
            },
        );
        let client_stats = client.stats();

        let os_cfg = OsConfig::default();
        let s_blade = ModeledBlade::new(
            "kv",
            server_mac,
            OsModel::new(os_cfg, 4, false),
            Box::new(server),
        );
        let c_blade = ModeledBlade::new("gen", client_mac, os(1, 2), Box::new(client));

        let mut engine: Engine<Flit> = Engine::new(6_400);
        let s = engine.add_agent(Box::new(s_blade));
        let c = engine.add_agent(Box::new(c_blade));
        engine.connect(s, 0, c, 0, Cycle::new(6_400)).unwrap();
        engine.connect(c, 0, s, 0, Cycle::new(6_400)).unwrap();
        engine.run_until_done(Cycle::new(500_000_000)).unwrap();

        let cs = client_stats.lock();
        assert_eq!(cs.sent, 50);
        assert_eq!(cs.received, 50);
        let ss = server_stats.lock();
        assert_eq!(ss.requests, 50);
        assert_eq!(ss.responses, 50);
        // Latency must exceed 2 links + service + stack + client overhead.
        let mut lat = cs.latency.clone();
        let floor = 2 * 6_400
            + KvServerConfig::default().stack_cycles
            + KvServerConfig::default().service_cycles
            + MutilateConfig::default().client_overhead_cycles;
        assert!(lat.min().unwrap() >= floor, "min {:?}", lat.min());
        assert!(lat.percentile(50.0).unwrap() < 10 * floor);
    }

    #[test]
    fn iperf_pair_is_cpu_bound() {
        let a = MacAddr::from_node_index(0);
        let b = MacAddr::from_node_index(1);
        let cfg = IperfConfig {
            peer: b,
            total_bytes: 256 * 1024,
            ..IperfConfig::default()
        };
        let sender = IperfSender::new(a, cfg);
        let stats = sender.stats();
        let receiver = IperfReceiver::new(b, IperfConfig { peer: a, ..cfg });

        let s_blade = ModeledBlade::new("snd", a, os(1, 1), Box::new(sender));
        let r_blade = ModeledBlade::new("rcv", b, os(1, 2), Box::new(receiver));
        let mut engine: Engine<Flit> = Engine::new(6_400);
        let s = engine.add_agent(Box::new(s_blade));
        let r = engine.add_agent(Box::new(r_blade));
        engine.connect(s, 0, r, 0, Cycle::new(6_400)).unwrap();
        engine.connect(r, 0, s, 0, Cycle::new(6_400)).unwrap();
        engine.run_until_done(Cycle::new(2_000_000_000)).unwrap();

        let st = stats.lock();
        assert_eq!(st.bytes_acked, 182 * 1448); // rounded up to segments
        let gbps = st.goodput_bps(3.2e9) / 1e9;
        // CPU-bound: far below the 204.8 Gbit/s link, near the calibrated
        // ~1.4 Gbit/s.
        assert!(gbps > 0.5 && gbps < 3.0, "goodput {gbps:.2} Gbit/s");
    }

    /// Drives a kv client/server pair halfway, snapshots both apps,
    /// restores them into fresh instances, and checks the restored
    /// snapshot bytes are identical — the property partitioned runs rely
    /// on for placement-invariant digests.
    #[test]
    fn service_apps_checkpoint_round_trip() {
        let server_mac = MacAddr::from_node_index(0);
        let client_mac = MacAddr::from_node_index(1);
        let mut server = KvServer::new(server_mac, KvServerConfig::default());
        let mut client = Mutilate::new(
            client_mac,
            MutilateConfig {
                server: server_mac,
                qps: 100_000.0,
                requests: 20,
                max_outstanding: 4,
                seed: 5,
                ..MutilateConfig::default()
            },
        );

        // Hand-drive some traffic so maps/rng/stats are non-trivial and
        // requests are left in flight.
        let mut actions = Actions::default();
        client.poll(0, 400_000, &mut actions);
        let frames: Vec<EthernetFrame> = actions.send.drain(..).map(|(_, f)| f).collect();
        for f in &frames {
            server.on_frame(1_000, f, &mut actions);
        }
        // Complete one request end-to-end.
        server.on_work_done(2_000, 0, &mut actions);
        // Deliver the response after the poll window so it postdates the
        // request's send cycle.
        let resp = actions.send.pop().expect("response frame").1;
        client.on_frame(450_000, &resp, &mut actions);

        let snap = |s: &KvServer, c: &Mutilate| {
            let mut w = SnapshotWriter::new();
            NodeApp::save_state(s, &mut w).unwrap();
            NodeApp::save_state(c, &mut w).unwrap();
            w.into_bytes()
        };
        let bytes = snap(&server, &client);

        let mut server2 = KvServer::new(server_mac, KvServerConfig::default());
        let mut client2 = Mutilate::new(
            client_mac,
            MutilateConfig {
                server: server_mac,
                qps: 100_000.0,
                requests: 20,
                max_outstanding: 4,
                seed: 5,
                ..MutilateConfig::default()
            },
        );
        let mut r = SnapshotReader::new(&bytes);
        NodeApp::restore_state(&mut server2, &mut r).unwrap();
        NodeApp::restore_state(&mut client2, &mut r).unwrap();

        assert_eq!(bytes, snap(&server2, &client2), "snapshot not stable");
        assert_eq!(client2.issued, client.issued);
        assert_eq!(client2.outstanding, client.outstanding);
        assert_eq!(server2.pending, server.pending);
        let (s1, s2) = (client.stats(), client2.stats());
        assert_eq!(s1.lock().sent, s2.lock().sent);
        assert_eq!(s1.lock().latency.samples(), s2.lock().latency.samples());
    }

    #[test]
    fn kv_protocol_encoding_round_trips() {
        let f = kv_frame(
            MacAddr::from_node_index(1),
            MacAddr::from_node_index(2),
            KV_GET,
            0xabcdef,
            123_456,
            32,
        );
        assert_eq!(kv_parse(&f), Some((KV_GET, 0xabcdef, 123_456)));
        let short = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::from_node_index(0),
            EtherType::KeyValue,
            Bytes::from_static(&[0, 1, 2]),
        );
        assert_eq!(kv_parse(&short), None);
    }
}
