//! Bare-metal benchmark programs (the software side of §IV).
//!
//! Each constructor returns a [`Program`]: a machine-code image, DRAM
//! pre-initialisation (frame templates, data sets), and the mailbox region
//! the program reports results through. [`Program::install`] loads all of
//! it onto an [`RtlBlade`].
//!
//! The programs mirror the paper's benchmarks:
//!
//! * [`echo_responder`] / [`ping_sender`] — the `ping` latency
//!   benchmark of §IV-A (Fig 5), implemented directly against the NIC.
//! * [`stream_sender`] / [`stream_receiver`] — the bare-metal
//!   node-to-node bandwidth test of §IV-C ("constructs a sequence of
//!   Ethernet packets and sends them at maximum rate", with a final
//!   acknowledgement from the receiver).
//! * [`boot_poweroff`] — the boot-then-immediately-power-off workload
//!   used to measure simulation rate at scale (Fig 8).

use firesim_devices::map::NIC_BASE;
use firesim_devices::nic::reg;
use firesim_net::{EtherType, EthernetFrame, MacAddr};
use firesim_riscv::asm::Assembler;
use firesim_riscv::csr::addr as csr;
use firesim_riscv::DRAM_BASE;

use bytes::Bytes;

use crate::soc::RtlBlade;
use crate::POWEROFF_ADDR;

/// Mailbox base address used by all benchmark programs.
pub const MAILBOX: u64 = DRAM_BASE + 0x8000;
/// Transmit buffer base.
pub const TXBUF: u64 = DRAM_BASE + 0x1_0000;
/// Receive buffer base.
pub const RXBUF: u64 = DRAM_BASE + 0x2_0000;
/// Results array base (ping RTT samples).
pub const RESULTS: u64 = DRAM_BASE + 0x3_0000;

/// Offset of the request/reply kind byte within an echo frame (first
/// payload byte, right after the 14-byte Ethernet header).
const ECHO_KIND_OFF: i64 = 14;

/// A ready-to-install bare-metal workload.
#[derive(Debug, Clone)]
pub struct Program {
    /// Machine code, loaded at the reset vector.
    pub image: Vec<u8>,
    /// Additional DRAM initialisation: `(address, bytes)`.
    pub dram_init: Vec<(u64, Vec<u8>)>,
    /// Mailbox region `(address, length)` snapshotted at power-off.
    pub mailbox: (u64, usize),
}

impl Program {
    /// Loads the program, its data, and its mailbox onto a blade.
    pub fn install(&self, blade: &mut RtlBlade) {
        blade.load_program(&self.image);
        for (addr, bytes) in &self.dram_init {
            blade.write_dram(*addr, bytes);
        }
        blade.set_mailbox(self.mailbox.0, self.mailbox.1);
    }
}

fn nic_reg(r: u64) -> i64 {
    (NIC_BASE + r) as i64
}

/// Emits `poweroff <code>` followed by a parking loop.
fn emit_poweroff(a: &mut Assembler, code: u8) {
    a.li(5, POWEROFF_ADDR as i64);
    a.li(6, i64::from(code));
    a.sd(6, 5, 0);
    a.label("___park");
    a.j("___park");
}

/// Builds an Ethernet frame image for pre-loading into DRAM.
pub fn frame_bytes(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: &[u8]) -> Vec<u8> {
    EthernetFrame::new(dst, src, ethertype, Bytes::copy_from_slice(payload)).to_wire()
}

/// The ping sender (§IV-A): sends `count` echo requests of
/// `payload_len` bytes to `dst`, waits for each reply, and records each
/// RTT (in cycles) as a `u64` in the mailbox. Pings are spaced
/// `spacing_cycles` apart, mimicking `ping`'s fixed interval.
///
/// Mailbox layout: `count` little-endian `u64` RTT samples.
pub fn ping_sender(
    my_mac: MacAddr,
    dst: MacAddr,
    count: usize,
    payload_len: usize,
    spacing_cycles: u64,
) -> Program {
    assert!(
        payload_len >= 1,
        "echo payload needs at least the kind byte"
    );
    let mut payload = vec![0u8; payload_len];
    payload[0] = 0; // kind: request
    let frame = frame_bytes(dst, my_mac, EtherType::Echo, &payload);
    let frame_len = frame.len() as u64;

    let mut a = Assembler::new(DRAM_BASE);
    a.li(10, nic_reg(0)); // NIC base
    a.li(12, RXBUF as i64);
    a.li(13, RESULTS as i64);
    a.li(14, count as i64);
    a.li(15, spacing_cycles as i64);
    a.li(17, (TXBUF | (frame_len << 48)) as i64); // send request word
                                                  // Post the receive buffer for the first reply.
    a.sd(12, 10, reg::RECV_REQ as i64);
    a.label("loop");
    a.csrr(20, csr::CYCLE); // t_start
    a.sd(17, 10, reg::SEND_REQ as i64);
    a.label("wait_reply");
    a.ld(5, 10, reg::RECV_COMP as i64);
    a.beqz(5, "wait_reply");
    a.csrr(21, csr::CYCLE); // t_end
    a.sub(22, 21, 20);
    a.sd(22, 13, 0);
    a.addi(13, 13, 8);
    // Re-post the receive buffer and drain the send completion.
    a.sd(12, 10, reg::RECV_REQ as i64);
    a.label("drain");
    a.ld(5, 10, reg::SEND_COMP as i64);
    a.bnez(5, "drain");
    // Fixed-interval spacing.
    a.add(23, 21, 15);
    a.label("space");
    a.csrr(5, csr::CYCLE);
    a.bltu(5, 23, "space");
    a.addi(14, 14, -1);
    a.bnez(14, "loop");
    emit_poweroff(&mut a, 0);

    Program {
        image: a.assemble().expect("ping_sender assembles"),
        dram_init: vec![(TXBUF, frame)],
        mailbox: (RESULTS, count * 8),
    }
}

/// The echo responder: receives echo requests, swaps source and
/// destination MACs, flips the kind byte to "reply", and transmits the
/// frame back; powers off after `responses` replies.
pub fn echo_responder(responses: usize) -> Program {
    let mut a = Assembler::new(DRAM_BASE);
    a.li(10, nic_reg(0));
    a.li(12, RXBUF as i64);
    a.li(14, responses as i64);
    a.sd(12, 10, reg::RECV_REQ as i64);
    a.label("loop");
    a.ld(5, 10, reg::RECV_COMP as i64);
    a.beqz(5, "loop");
    a.addi(6, 5, -1); // frame length
                      // Swap dst (bytes 0-5) and src (bytes 6-11).
    for i in 0..6i64 {
        a.lbu(7, 12, i);
        a.lbu(8, 12, 6 + i);
        a.sb(8, 12, i);
        a.sb(7, 12, 6 + i);
    }
    // kind byte <- 1 (reply).
    a.li(7, 1);
    a.sb(7, 12, ECHO_KIND_OFF);
    // Send request: rxbuf | len << 48.
    a.slli(9, 6, 48);
    a.add(9, 9, 12);
    a.sd(9, 10, reg::SEND_REQ as i64);
    a.label("wait_send");
    a.ld(5, 10, reg::SEND_COMP as i64);
    a.beqz(5, "wait_send");
    a.sd(12, 10, reg::RECV_REQ as i64);
    a.addi(14, 14, -1);
    a.bnez(14, "loop");
    emit_poweroff(&mut a, 0);

    Program {
        image: a.assemble().expect("echo_responder assembles"),
        dram_init: Vec::new(),
        mailbox: (MAILBOX, 8),
    }
}

/// The bare-metal bandwidth sender (§IV-C): transmits `frames` frames of
/// `payload_len` bytes to `dst` at maximum rate, then waits for the
/// receiver's acknowledgement. Transmission begins only once the cycle
/// counter passes `start_delay` (used by the staggered-sender saturation
/// experiment, Fig 6).
///
/// Mailbox layout: `[elapsed_cycles: u64, frames_sent: u64]` where
/// `elapsed` spans from the first send request to ack receipt.
pub fn stream_sender(
    my_mac: MacAddr,
    dst: MacAddr,
    frames: usize,
    payload_len: usize,
    start_delay: u64,
) -> Program {
    let payload = vec![0x5A; payload_len];
    let frame = frame_bytes(dst, my_mac, EtherType::Stream, &payload);
    let frame_len = frame.len() as u64;

    let mut a = Assembler::new(DRAM_BASE);
    a.li(10, nic_reg(0));
    a.li(12, RXBUF as i64);
    a.li(14, frames as i64);
    a.li(17, (TXBUF | (frame_len << 48)) as i64);
    a.sd(12, 10, reg::RECV_REQ as i64); // for the ack
    if start_delay > 0 {
        a.li(5, start_delay as i64);
        a.label("stagger");
        a.csrr(6, csr::CYCLE);
        a.bltu(6, 5, "stagger");
    }
    a.csrr(20, csr::CYCLE);
    a.label("send_loop");
    // Wait for a free send-request slot.
    a.label("wait_slot");
    a.ld(5, 10, reg::COUNTS as i64);
    a.andi(5, 5, 0xff);
    a.beqz(5, "wait_slot");
    a.sd(17, 10, reg::SEND_REQ as i64);
    // Opportunistically drain one send completion.
    a.ld(5, 10, reg::SEND_COMP as i64);
    a.addi(14, 14, -1);
    a.bnez(14, "send_loop");
    // Wait for the ack frame.
    a.label("wait_ack");
    a.ld(5, 10, reg::RECV_COMP as i64);
    a.beqz(5, "wait_ack");
    a.csrr(21, csr::CYCLE);
    a.sub(22, 21, 20);
    a.li(13, MAILBOX as i64);
    a.sd(22, 13, 0);
    a.li(5, frames as i64);
    a.sd(5, 13, 8);
    emit_poweroff(&mut a, 0);

    Program {
        image: a.assemble().expect("stream_sender assembles"),
        dram_init: vec![(TXBUF, frame)],
        mailbox: (MAILBOX, 16),
    }
}

/// The bandwidth receiver (§IV-C): accumulates received bytes until
/// `expected_bytes` arrive, then sends a one-frame acknowledgement to
/// `ack_dst`.
///
/// Mailbox layout: `[received_bytes: u64, elapsed_cycles: u64]` where
/// `elapsed` spans from the first to the last received frame.
pub fn stream_receiver(my_mac: MacAddr, ack_dst: MacAddr, expected_bytes: u64) -> Program {
    let ack = frame_bytes(ack_dst, my_mac, EtherType::Stream, &[0xAC; 4]);
    let ack_len = ack.len() as u64;

    let mut a = Assembler::new(DRAM_BASE);
    a.li(10, nic_reg(0));
    a.li(12, RXBUF as i64);
    a.li(14, expected_bytes as i64);
    a.li(18, 0); // accumulated bytes
    a.li(19, 0); // first-frame flag
    a.li(17, ((TXBUF + 4096) | (ack_len << 48)) as i64);
    // Keep several buffers posted so back-to-back frames never stall.
    for _ in 0..8 {
        a.sd(12, 10, reg::RECV_REQ as i64);
    }
    a.label("loop");
    a.ld(5, 10, reg::RECV_COMP as i64);
    a.beqz(5, "loop");
    a.bnez(19, "not_first");
    a.csrr(20, csr::CYCLE);
    a.li(19, 1);
    a.label("not_first");
    a.addi(6, 5, -1);
    a.add(18, 18, 6);
    a.sd(12, 10, reg::RECV_REQ as i64);
    a.blt(18, 14, "loop");
    a.csrr(21, csr::CYCLE);
    a.sub(22, 21, 20);
    a.li(13, MAILBOX as i64);
    a.sd(18, 13, 0);
    a.sd(22, 13, 8);
    // Ack the sender.
    a.sd(17, 10, reg::SEND_REQ as i64);
    a.label("wait_send");
    a.ld(5, 10, reg::SEND_COMP as i64);
    a.beqz(5, "wait_send");
    emit_poweroff(&mut a, 0);

    Program {
        image: a.assemble().expect("stream_receiver assembles"),
        dram_init: vec![(TXBUF + 4096, ack)],
        mailbox: (MAILBOX, 16),
    }
}

/// The accelerator demonstration (Table II / §VIII): copies `len` bytes
/// first with a software doubleword loop, then with the DMA copy
/// accelerator, timing both and verifying the result.
///
/// Requires a blade built with [`crate::BladeConfig::with_accel`].
///
/// Mailbox layout: `[sw_cycles: u64, hw_cycles: u64, ok: u64]` where
/// `ok` is 1 when the accelerator's copy matched the source.
pub fn memcpy_race(len: u64) -> Program {
    use firesim_devices::accel::{reg as areg, CMD_COPY};
    use firesim_devices::map::ACCEL_BASE;
    assert!(
        len >= 16 && len.is_multiple_of(8),
        "len must be a multiple of 8, >= 16"
    );
    let src = DRAM_BASE + 0x10_0000;
    let dst_sw = DRAM_BASE + 0x14_0000;
    let dst_hw = DRAM_BASE + 0x18_0000;

    let mut a = Assembler::new(DRAM_BASE);
    // Fill the source with a recognisable pattern: src[i] = i * 8 + 1.
    a.li(5, src as i64);
    a.li(6, len as i64);
    a.li(7, 1);
    a.label("fill");
    a.sd(7, 5, 0);
    a.addi(5, 5, 8);
    a.addi(7, 7, 8);
    a.addi(6, 6, -8);
    a.bnez(6, "fill");

    // --- Software copy, timed. ---
    a.li(5, src as i64);
    a.li(8, dst_sw as i64);
    a.li(6, len as i64);
    a.csrr(20, csr::CYCLE);
    a.label("swcopy");
    a.ld(7, 5, 0);
    a.sd(7, 8, 0);
    a.addi(5, 5, 8);
    a.addi(8, 8, 8);
    a.addi(6, 6, -8);
    a.bnez(6, "swcopy");
    a.csrr(21, csr::CYCLE);
    a.sub(22, 21, 20); // sw_cycles

    // --- Accelerated copy, timed. ---
    a.li(10, ACCEL_BASE as i64);
    a.li(5, src as i64);
    a.sd(5, 10, areg::SRC as i64);
    a.li(5, dst_hw as i64);
    a.sd(5, 10, areg::DST as i64);
    a.li(5, len as i64);
    a.sd(5, 10, areg::LEN as i64);
    a.csrr(20, csr::CYCLE);
    a.li(5, CMD_COPY as i64);
    a.sd(5, 10, areg::GO as i64);
    a.label("busy");
    a.ld(5, 10, areg::BUSY as i64);
    a.bnez(5, "busy");
    a.csrr(21, csr::CYCLE);
    a.sub(23, 21, 20); // hw_cycles

    // --- Verify first and last doublewords of the accelerated copy. ---
    a.li(5, src as i64);
    a.li(8, dst_hw as i64);
    a.ld(6, 5, 0);
    a.ld(7, 8, 0);
    a.li(24, 0);
    a.bne(6, 7, "verdict");
    a.li(5, (src + len - 8) as i64);
    a.li(8, (dst_hw + len - 8) as i64);
    a.ld(6, 5, 0);
    a.ld(7, 8, 0);
    a.bne(6, 7, "verdict");
    a.li(24, 1);
    a.label("verdict");
    a.li(13, MAILBOX as i64);
    a.sd(22, 13, 0);
    a.sd(23, 13, 8);
    a.sd(24, 13, 16);
    emit_poweroff(&mut a, 0);

    Program {
        image: a.assemble().expect("memcpy_race assembles"),
        dram_init: Vec::new(),
        mailbox: (MAILBOX, 24),
    }
}

/// A workload that parks every core in WFI forever (with interrupts
/// masked). Used by simulation-rate measurements that need nodes alive —
/// consuming and producing tokens — without data-dependent work.
pub fn park() -> Program {
    let mut a = Assembler::new(DRAM_BASE);
    a.label("park");
    a.wfi();
    a.j("park");
    Program {
        image: a.assemble().expect("park assembles"),
        dram_init: Vec::new(),
        mailbox: (MAILBOX, 8),
    }
}

/// The boot-and-power-off workload used by the simulation-rate benchmark
/// (Fig 8): performs `work_iters` loop iterations of register and memory
/// work (standing in for "boot Linux to userspace"), then powers off.
pub fn boot_poweroff(work_iters: u64) -> Program {
    let mut a = Assembler::new(DRAM_BASE);
    a.li(5, work_iters as i64);
    a.li(6, DRAM_BASE as i64 + 0x4_0000);
    a.li(8, 0);
    a.label("work");
    // Touch memory to exercise the cache hierarchy like a booting kernel.
    a.sd(8, 6, 0);
    a.ld(7, 6, 0);
    a.add(8, 8, 7);
    a.addi(6, 6, 64);
    a.addi(5, 5, -1);
    a.bnez(5, "work");
    a.li(13, MAILBOX as i64);
    a.sd(8, 13, 0);
    emit_poweroff(&mut a, 0);

    Program {
        image: a.assemble().expect("boot_poweroff assembles"),
        dram_init: Vec::new(),
        mailbox: (MAILBOX, 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BladeConfig;
    use firesim_core::{Cycle, Engine};
    use firesim_net::Flit;

    fn blade_with(name: &str, idx: u64, p: &Program) -> RtlBlade {
        let mut b = RtlBlade::new(
            name,
            MacAddr::from_node_index(idx),
            BladeConfig::single_core().with_dram_bytes(4 << 20),
        );
        p.install(&mut b);
        b
    }

    fn mailbox_u64(bytes: &[u8], idx: usize) -> u64 {
        u64::from_le_bytes(bytes[idx * 8..idx * 8 + 8].try_into().unwrap())
    }

    #[test]
    fn ping_round_trip_rtt_tracks_link_latency() {
        let mut rtts_by_latency = Vec::new();
        for latency in [200u64, 800] {
            let count = 3;
            let sender_prog = ping_sender(
                MacAddr::from_node_index(0),
                MacAddr::from_node_index(1),
                count,
                26,
                4_000,
            );
            let responder_prog = echo_responder(count);
            let sender = blade_with("sender", 0, &sender_prog);
            let responder = blade_with("responder", 1, &responder_prog);
            let s_probe = sender.probe();

            let mut engine: Engine<Flit> = Engine::new(200);
            let s = engine.add_agent(Box::new(sender));
            let r = engine.add_agent(Box::new(responder));
            engine.connect(s, 0, r, 0, Cycle::new(latency)).unwrap();
            engine.connect(r, 0, s, 0, Cycle::new(latency)).unwrap();
            engine.run_until_done(Cycle::new(5_000_000)).unwrap();

            let p = s_probe.lock();
            assert_eq!(p.exit_code, Some(0), "latency {latency}");
            let rtts: Vec<u64> = (0..count).map(|i| mailbox_u64(&p.mailbox, i)).collect();
            // Every RTT must exceed 2x the link latency.
            for &rtt in &rtts {
                assert!(rtt > 2 * latency, "rtt {rtt} at latency {latency}");
            }
            rtts_by_latency.push(rtts[1]); // steady-state sample
        }
        // Increasing the link latency by 600 cycles raises RTT by ~1200.
        let delta = rtts_by_latency[1] as i64 - rtts_by_latency[0] as i64;
        assert!(
            (delta - 1200).abs() < 100,
            "RTT delta {delta}, expected ~1200"
        );
    }

    #[test]
    fn stream_saturates_link() {
        let frames = 50usize;
        let payload = 1024usize;
        let s_prog = stream_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            frames,
            payload,
            0,
        );
        let frame_wire = payload + 14;
        let r_prog = stream_receiver(
            MacAddr::from_node_index(1),
            MacAddr::from_node_index(0),
            (frames * frame_wire) as u64,
        );
        let sender = blade_with("sender", 0, &s_prog);
        let receiver = blade_with("receiver", 1, &r_prog);
        let s_probe = sender.probe();
        let r_probe = receiver.probe();

        let mut engine: Engine<Flit> = Engine::new(100);
        let s = engine.add_agent(Box::new(sender));
        let r = engine.add_agent(Box::new(receiver));
        engine.connect(s, 0, r, 0, Cycle::new(100)).unwrap();
        engine.connect(r, 0, s, 0, Cycle::new(100)).unwrap();
        engine.run_until_done(Cycle::new(10_000_000)).unwrap();

        let rp = r_probe.lock();
        assert_eq!(rp.exit_code, Some(0));
        let received = mailbox_u64(&rp.mailbox, 0);
        let elapsed = mailbox_u64(&rp.mailbox, 1);
        assert_eq!(received, (frames * frame_wire) as u64);
        // Achieved bandwidth: bytes/cycle; the link moves 8 B/cycle. A
        // saturating sender should exceed 6 B/cycle (~150 Gbit/s).
        let bpc = received as f64 / elapsed as f64;
        assert!(bpc > 6.0, "achieved only {bpc:.2} bytes/cycle");
        let sp = s_probe.lock();
        assert_eq!(sp.exit_code, Some(0));
        assert_eq!(sp.nic.tx_packets as usize, frames);
    }

    #[test]
    fn accelerator_beats_software_memcpy() {
        let len = 16 * 1024u64;
        let prog = memcpy_race(len);
        let mut blade = RtlBlade::new(
            "accel",
            MacAddr::from_node_index(0),
            crate::BladeConfig::single_core()
                .with_dram_bytes(4 << 20)
                .with_accel(),
        );
        prog.install(&mut blade);
        let probe = blade.probe();
        let peer = blade_with("peer", 1, &boot_poweroff(10));
        let mut engine: Engine<Flit> = Engine::new(100);
        let a = engine.add_agent(Box::new(blade));
        let b = engine.add_agent(Box::new(peer));
        engine.connect(a, 0, b, 0, Cycle::new(100)).unwrap();
        engine.connect(b, 0, a, 0, Cycle::new(100)).unwrap();
        engine.run_until_done(Cycle::new(50_000_000)).unwrap();

        let p = probe.lock();
        assert_eq!(p.exit_code, Some(0));
        let sw = mailbox_u64(&p.mailbox, 0);
        let hw = mailbox_u64(&p.mailbox, 1);
        let ok = mailbox_u64(&p.mailbox, 2);
        assert_eq!(ok, 1, "accelerated copy corrupted data");
        // 32 B/cycle DMA vs a 5-instruction-per-8-bytes loop: the
        // accelerator should win by an order of magnitude.
        assert!(hw * 8 < sw, "sw {sw} cycles vs hw {hw} cycles");
        // And the DMA time is close to len/32 plus polling granularity.
        assert!(hw >= len / 32, "hw {hw} too fast");
        assert!(hw < len / 32 + 2_000, "hw {hw} too slow");
    }

    #[test]
    fn boot_poweroff_completes() {
        let prog = boot_poweroff(1000);
        let b0 = blade_with("n0", 0, &prog);
        let b1 = blade_with("n1", 1, &prog);
        let probe = b0.probe();
        let mut engine: Engine<Flit> = Engine::new(100);
        let a0 = engine.add_agent(Box::new(b0));
        let a1 = engine.add_agent(Box::new(b1));
        engine.connect(a0, 0, a1, 0, Cycle::new(100)).unwrap();
        engine.connect(a1, 0, a0, 0, Cycle::new(100)).unwrap();
        let summary = engine.run_until_done(Cycle::new(10_000_000)).unwrap();
        assert!(summary.cycles < Cycle::new(10_000_000));
        assert_eq!(probe.lock().exit_code, Some(0));
        assert_eq!(mailbox_u64(&probe.lock().mailbox, 0), 0);
    }
}
