//! The core-local interruptor (CLINT): `mtime`, per-hart `mtimecmp`, and
//! software interrupts, with the standard SiFive/Rocket register layout.

use crate::mmio::MmioDevice;

/// Offset of hart 0's `msip` register.
pub const MSIP_BASE: u64 = 0x0;
/// Offset of hart 0's `mtimecmp` register.
pub const MTIMECMP_BASE: u64 = 0x4000;
/// Offset of the shared `mtime` register.
pub const MTIME: u64 = 0xbff8;

/// The CLINT.
#[derive(Debug)]
pub struct Clint {
    mtime: u64,
    mtimecmp: Vec<u64>,
    msip: Vec<bool>,
    /// Target cycles per `mtime` tick (the RTC runs slower than the core).
    cycles_per_tick: u64,
    cycle_accum: u64,
}

impl Clint {
    /// Creates a CLINT for `harts` harts. `cycles_per_tick` sets the RTC
    /// ratio (e.g. 3200 for a 1 MHz RTC under a 3.2 GHz core).
    ///
    /// # Panics
    ///
    /// Panics if `harts` or `cycles_per_tick` is zero.
    pub fn new(harts: usize, cycles_per_tick: u64) -> Self {
        assert!(harts > 0, "need at least one hart");
        assert!(cycles_per_tick > 0, "cycles_per_tick must be nonzero");
        Clint {
            mtime: 0,
            mtimecmp: vec![u64::MAX; harts],
            msip: vec![false; harts],
            cycles_per_tick,
            cycle_accum: 0,
        }
    }

    /// Advances target time by `cycles` core cycles.
    pub fn advance(&mut self, cycles: u64) {
        self.cycle_accum += cycles;
        let ticks = self.cycle_accum / self.cycles_per_tick;
        self.cycle_accum %= self.cycles_per_tick;
        self.mtime = self.mtime.wrapping_add(ticks);
    }

    /// Current `mtime` value.
    pub fn mtime(&self) -> u64 {
        self.mtime
    }

    /// Timer-interrupt level for `hart`.
    ///
    /// # Panics
    ///
    /// Panics if `hart` is out of range.
    pub fn timer_pending(&self, hart: usize) -> bool {
        self.mtime >= self.mtimecmp[hart]
    }

    /// Software-interrupt level for `hart`.
    ///
    /// # Panics
    ///
    /// Panics if `hart` is out of range.
    pub fn software_pending(&self, hart: usize) -> bool {
        self.msip[hart]
    }

    /// Core cycles of [`Clint::advance`] until `timer_pending(hart)` first
    /// becomes true: 0 when already pending, saturating at `u64::MAX` when
    /// the comparator is effectively unreachable (the reset value).
    ///
    /// Skip-ahead scheduling uses this as an upper bound on how many
    /// cycles a WFI-parked hart with the timer interrupt enabled can be
    /// bulk-advanced without missing its wake-up edge.
    ///
    /// # Panics
    ///
    /// Panics if `hart` is out of range.
    pub fn next_timer_expiry(&self, hart: usize) -> u64 {
        let cmp = self.mtimecmp[hart];
        if self.mtime >= cmp {
            return 0;
        }
        let ticks = u128::from(cmp - self.mtime);
        let cycles = ticks * u128::from(self.cycles_per_tick) - u128::from(self.cycle_accum);
        u64::try_from(cycles).unwrap_or(u64::MAX)
    }

    /// Core cycles of [`Clint::advance`] until `mtime` next increments.
    /// Always at least 1; advancing strictly fewer cycles leaves `mtime`
    /// (and therefore every `timer_pending` level) unchanged.
    pub fn cycles_to_next_tick(&self) -> u64 {
        self.cycles_per_tick - self.cycle_accum
    }
}

impl firesim_core::snapshot::Checkpoint for Clint {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        w.put_u64(self.mtime);
        w.put(&self.mtimecmp);
        w.put(&self.msip);
        w.put_u64(self.cycles_per_tick);
        w.put_u64(self.cycle_accum);
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        self.mtime = r.get_u64()?;
        let mtimecmp: Vec<u64> = r.get()?;
        let msip: Vec<bool> = r.get()?;
        if mtimecmp.len() != self.mtimecmp.len() {
            return Err(firesim_core::SimError::checkpoint(format!(
                "CLINT snapshot has {} harts, target has {}",
                mtimecmp.len(),
                self.mtimecmp.len()
            )));
        }
        self.mtimecmp = mtimecmp;
        self.msip = msip;
        let cycles_per_tick = r.get_u64()?;
        if cycles_per_tick != self.cycles_per_tick {
            return Err(firesim_core::SimError::checkpoint(format!(
                "CLINT snapshot ticks every {cycles_per_tick} cycles, target every {}",
                self.cycles_per_tick
            )));
        }
        self.cycle_accum = r.get_u64()?;
        Ok(())
    }
}

impl MmioDevice for Clint {
    fn read(&mut self, offset: u64, _size: usize) -> u64 {
        if offset == MTIME {
            return self.mtime;
        }
        if offset >= MTIMECMP_BASE {
            let hart = ((offset - MTIMECMP_BASE) / 8) as usize;
            return self.mtimecmp.get(hart).copied().unwrap_or(0);
        }
        let hart = (offset / 4) as usize;
        self.msip.get(hart).map_or(0, |&b| u64::from(b))
    }

    fn write(&mut self, offset: u64, _size: usize, value: u64) {
        if offset == MTIME {
            self.mtime = value;
            return;
        }
        if offset >= MTIMECMP_BASE {
            let hart = ((offset - MTIMECMP_BASE) / 8) as usize;
            if let Some(slot) = self.mtimecmp.get_mut(hart) {
                *slot = value;
            }
            return;
        }
        let hart = (offset / 4) as usize;
        if let Some(slot) = self.msip.get_mut(hart) {
            *slot = value & 1 != 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtime_advances_at_ratio() {
        let mut c = Clint::new(1, 100);
        c.advance(99);
        assert_eq!(c.mtime(), 0);
        c.advance(1);
        assert_eq!(c.mtime(), 1);
        c.advance(250);
        assert_eq!(c.mtime(), 3);
    }

    #[test]
    fn timer_interrupt_fires_at_mtimecmp() {
        let mut c = Clint::new(2, 1);
        c.write(MTIMECMP_BASE, 8, 50);
        c.write(MTIMECMP_BASE + 8, 8, 100);
        assert!(!c.timer_pending(0));
        c.advance(50);
        assert!(c.timer_pending(0));
        assert!(!c.timer_pending(1));
        c.advance(50);
        assert!(c.timer_pending(1));
        // Rearm by writing a future mtimecmp.
        c.write(MTIMECMP_BASE, 8, 1_000);
        assert!(!c.timer_pending(0));
    }

    #[test]
    fn software_interrupt_bits() {
        let mut c = Clint::new(2, 1);
        c.write(MSIP_BASE + 4, 8, 1);
        assert!(!c.software_pending(0));
        assert!(c.software_pending(1));
        c.write(MSIP_BASE + 4, 8, 0);
        assert!(!c.software_pending(1));
    }

    #[test]
    fn next_timer_expiry_matches_iterated_advance() {
        let mut c = Clint::new(1, 100);
        c.advance(37); // misalign the accumulator
        c.write(MTIMECMP_BASE, 8, 3);
        let predicted = c.next_timer_expiry(0);
        let mut actual = 0u64;
        while !c.timer_pending(0) {
            c.advance(1);
            actual += 1;
        }
        assert_eq!(predicted, actual);
        assert_eq!(c.next_timer_expiry(0), 0);
        // The reset comparator (u64::MAX) saturates rather than overflowing.
        let c2 = Clint::new(1, 3200);
        assert_eq!(c2.next_timer_expiry(0), u64::MAX);
    }

    #[test]
    fn cycles_to_next_tick_bounds_mtime() {
        let mut c = Clint::new(1, 100);
        c.advance(42);
        let gap = c.cycles_to_next_tick();
        assert_eq!(gap, 58);
        c.advance(gap - 1);
        assert_eq!(c.mtime(), 0);
        c.advance(1);
        assert_eq!(c.mtime(), 1);
        assert_eq!(c.cycles_to_next_tick(), 100);
    }

    #[test]
    fn mmio_reads() {
        let mut c = Clint::new(1, 1);
        c.advance(42);
        assert_eq!(c.read(MTIME, 8), 42);
        c.write(MTIMECMP_BASE, 8, 7);
        assert_eq!(c.read(MTIMECMP_BASE, 8), 7);
        c.write(MSIP_BASE, 8, 1);
        assert_eq!(c.read(MSIP_BASE, 8), 1);
    }
}
