//! The network interface controller (paper §III-A2, Fig 3).
//!
//! The NIC is split into three blocks exactly as in the paper:
//!
//! * **Controller** — four queues exposed to the CPU as memory-mapped IO:
//!   send requests, receive requests, send completions, receive
//!   completions; plus an interrupt line asserted while a completion queue
//!   is occupied.
//! * **Send path** — *reader* (issues 8-byte-aligned reads for packet data
//!   from memory), *reservation buffer* (holds read data awaiting
//!   transmission), *aligner* (drops the slack bytes produced by aligned
//!   reads of unaligned packets), and *rate limiter* (a token bucket:
//!   the counter is incremented by `k` every `p` cycles and decremented
//!   per flit sent, making the effective bandwidth `k/p` of the native
//!   200 Gbit/s — runtime-configurable, no resynthesis, and with proper
//!   backpressure into the NIC).
//! * **Receive path** — *packet buffer* (drops at full-packet granularity
//!   when space is insufficient, so the OS never sees a partial packet)
//!   and *writer* (writes packet bytes to the receive buffers supplied by
//!   the CPU, completing only after all writes are done).
//!
//! The top-level interface is FAME-1 decoupled: each target cycle the NIC
//! consumes at most one network token and produces at most one
//! ([`Nic::tick`]).

use std::collections::VecDeque;

use firesim_net::{Flit, MacAddr};
use firesim_riscv::mem::Memory;

use crate::mmio::MmioDevice;

/// Register map offsets (64-bit registers).
#[allow(missing_docs)]
pub mod reg {
    pub const SEND_REQ: u64 = 0x00;
    pub const RECV_REQ: u64 = 0x08;
    pub const COUNTS: u64 = 0x10;
    pub const SEND_COMP: u64 = 0x18;
    pub const RECV_COMP: u64 = 0x20;
    pub const INTR_MASK: u64 = 0x28;
    pub const MACADDR: u64 = 0x30;
    pub const RATE_LIMIT: u64 = 0x38;
}

/// NIC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicConfig {
    /// Depth of each controller queue.
    pub queue_depth: usize,
    /// Reservation buffer capacity in bytes (send path).
    pub resbuf_bytes: usize,
    /// Packet buffer capacity in bytes (receive path).
    pub pktbuf_bytes: usize,
    /// Token-bucket increment `k` (0 disables rate limiting).
    pub rate_k: u16,
    /// Token-bucket period `p` in cycles.
    pub rate_p: u16,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            queue_depth: 16,
            resbuf_bytes: 4096,
            pktbuf_bytes: 64 * 1024,
            rate_k: 0,
            rate_p: 1,
        }
    }
}

/// NIC statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Packets fully transmitted onto the link.
    pub tx_packets: u64,
    /// Bytes transmitted (packet payloads as seen on the wire).
    pub tx_bytes: u64,
    /// Packets fully received into the packet buffer.
    pub rx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Packets dropped because the packet buffer was full.
    pub rx_dropped: u64,
}

impl NicStats {
    /// Appends every counter as a `(name, value)` pair, prefixed with
    /// `prefix` (e.g. `"nic_"`), for [`SimAgent::app_counters`]-style
    /// observability exports.
    ///
    /// [`SimAgent::app_counters`]: firesim_core::SimAgent::app_counters
    pub fn export(&self, prefix: &str, out: &mut Vec<(String, u64)>) {
        out.push((format!("{prefix}tx_packets"), self.tx_packets));
        out.push((format!("{prefix}tx_bytes"), self.tx_bytes));
        out.push((format!("{prefix}rx_packets"), self.rx_packets));
        out.push((format!("{prefix}rx_bytes"), self.rx_bytes));
        out.push((format!("{prefix}rx_dropped"), self.rx_dropped));
    }
}

#[derive(Debug, Clone, Copy)]
struct ReaderState {
    /// Unaligned packet start address.
    addr: u64,
    /// Packet length in bytes.
    len: u32,
    /// Next aligned read cursor.
    cursor: u64,
    /// One past the last aligned address to read.
    end: u64,
}

/// The NIC. See the [module docs](self).
#[derive(Debug)]
pub struct Nic {
    mac: MacAddr,
    config: NicConfig,

    // Controller queues.
    send_reqs: VecDeque<(u64, u32)>,
    recv_reqs: VecDeque<u64>,
    send_comps: VecDeque<u64>,
    recv_comps: VecDeque<u32>,
    intr_mask: u64,

    // Send path.
    reader: Option<ReaderState>,
    resbuf: VecDeque<u8>,
    /// Lengths of packets whose bytes are flowing through the resbuf.
    tx_pkts: VecDeque<u32>,
    /// Remaining bytes of the packet currently transmitting.
    tx_remaining: Option<u32>,
    tokens: i64,
    cycle: u64,

    // Receive path.
    rx_cur: Vec<u8>,
    rx_dropping: bool,
    rx_buffered: VecDeque<Vec<u8>>,
    rx_buffered_bytes: usize,
    writer: Option<(Vec<u8>, usize, u64)>,

    stats: NicStats,
}

impl Nic {
    /// Creates a NIC with the given MAC address.
    pub fn new(mac: MacAddr, config: NicConfig) -> Self {
        Nic {
            mac,
            send_reqs: VecDeque::new(),
            recv_reqs: VecDeque::new(),
            send_comps: VecDeque::new(),
            recv_comps: VecDeque::new(),
            intr_mask: 0,
            reader: None,
            resbuf: VecDeque::new(),
            tx_pkts: VecDeque::new(),
            tx_remaining: None,
            tokens: i64::from(config.rate_k.max(1)),
            cycle: 0,
            rx_cur: Vec::new(),
            rx_dropping: false,
            rx_buffered: VecDeque::new(),
            rx_buffered_bytes: 0,
            writer: None,
            stats: NicStats::default(),
            config,
        }
    }

    /// The NIC's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Statistics counters.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// Reconfigures the token-bucket rate limiter at runtime: effective
    /// bandwidth becomes `k/p` of the native link rate. `k = 0` disables
    /// limiting.
    pub fn set_rate_limit(&mut self, k: u16, p: u16) {
        self.config.rate_k = k;
        self.config.rate_p = p.max(1);
        self.tokens = self.tokens.min(i64::from(k.max(1)) * 2);
    }

    /// True when a [`Nic::tick`] with no incoming flit would change
    /// nothing observable: no DMA engine active, no queued work that a
    /// tick could start, and nothing buffered for transmission. In this
    /// state the only per-cycle effects are the cycle counter and the
    /// rate-limiter refill, both reproduced in closed form by
    /// [`Nic::skip_quiescent`].
    ///
    /// `rx_buffered` plus `recv_reqs` both nonempty would let a tick pair
    /// them into a writer, so quiescence requires at least one empty.
    pub fn is_quiescent(&self) -> bool {
        self.reader.is_none()
            && self.writer.is_none()
            && self.send_reqs.is_empty()
            && self.resbuf.is_empty()
            && self.tx_pkts.is_empty()
            && self.tx_remaining.is_none()
            && (self.rx_buffered.is_empty() || self.recv_reqs.is_empty())
    }

    /// Bulk-advances a quiescent NIC by `cycles` target cycles with no
    /// incoming flits, bit-identical to `cycles` calls of
    /// `tick(mem, None)` in that state (which touch only the cycle
    /// counter and the token bucket).
    ///
    /// The token bucket admits a closed form because refills are monotone
    /// non-decreasing under the cap and nothing transmits:
    /// `t_n = min(t_0 + n*k, cap)`.
    ///
    /// # Panics
    ///
    /// Debug-panics when the NIC is not quiescent.
    pub fn skip_quiescent(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        debug_assert!(self.is_quiescent(), "skip_quiescent on a busy NIC");
        if self.config.rate_k > 0 {
            let p = u64::from(self.config.rate_p.max(1));
            let refills = (self.cycle + cycles) / p - self.cycle / p;
            if refills > 0 {
                let cap = i64::from(self.config.rate_k) * 2 + 2;
                let added = i64::try_from(refills)
                    .ok()
                    .and_then(|r| r.checked_mul(i64::from(self.config.rate_k)))
                    .and_then(|add| self.tokens.checked_add(add))
                    .unwrap_or(i64::MAX);
                self.tokens = added.min(cap);
            }
        } else {
            self.tokens = 1;
        }
        self.cycle += cycles;
    }

    /// Advances the NIC by one target cycle.
    ///
    /// `rx` is this cycle's incoming network token (if the link carried
    /// valid data); the return value is this cycle's outgoing token.
    /// `mem` is the blade's functional memory, used by the reader and
    /// writer DMA engines (8 bytes per cycle each, matching the TileLink
    /// port width).
    pub fn tick(&mut self, mem: &mut Memory, rx: Option<Flit>) -> Option<Flit> {
        self.cycle += 1;

        // --- Rate limiter refill. ---
        if self.config.rate_k > 0 {
            if self
                .cycle
                .is_multiple_of(u64::from(self.config.rate_p.max(1)))
            {
                let cap = i64::from(self.config.rate_k) * 2 + 2;
                self.tokens = (self.tokens + i64::from(self.config.rate_k)).min(cap);
            }
        } else {
            self.tokens = 1; // unlimited: always exactly one flit per cycle
        }

        // --- Receive path: packet buffer. ---
        if let Some(flit) = rx {
            let bytes = &flit.bytes()[..flit.byte_len()];
            if !self.rx_dropping {
                if self.rx_buffered_bytes + self.rx_cur.len() + bytes.len()
                    > self.config.pktbuf_bytes
                {
                    // Insufficient space: drop this packet entirely.
                    self.rx_dropping = true;
                    self.rx_cur.clear();
                    self.stats.rx_dropped += 1;
                } else {
                    self.rx_cur.extend_from_slice(bytes);
                }
            }
            if flit.last {
                if !self.rx_dropping {
                    let pkt = std::mem::take(&mut self.rx_cur);
                    self.rx_buffered_bytes += pkt.len();
                    self.stats.rx_packets += 1;
                    self.stats.rx_bytes += pkt.len() as u64;
                    self.rx_buffered.push_back(pkt);
                }
                self.rx_dropping = false;
            }
        }

        // --- Receive path: writer (8 bytes per cycle). ---
        if self.writer.is_none() {
            if let (Some(_), Some(_)) = (self.rx_buffered.front(), self.recv_reqs.front()) {
                let pkt = self.rx_buffered.pop_front().expect("checked");
                let addr = self.recv_reqs.pop_front().expect("checked");
                self.rx_buffered_bytes -= pkt.len();
                self.writer = Some((pkt, 0, addr));
            }
        }
        if let Some((pkt, cursor, addr)) = self.writer.take() {
            let n = (pkt.len() - cursor).min(8);
            // Writes to unmapped addresses are dropped silently (a real
            // DMA would raise a bus error; software owns buffer validity).
            let _ = mem.write_bytes(addr + cursor as u64, &pkt[cursor..cursor + n]);
            let cursor = cursor + n;
            if cursor >= pkt.len() {
                if self.recv_comps.len() < self.config.queue_depth {
                    self.recv_comps.push_back(pkt.len() as u32);
                }
            } else {
                self.writer = Some((pkt, cursor, addr));
            }
        }

        // --- Send path: reader (one aligned 8-byte read per cycle). ---
        if self.reader.is_none() {
            if let Some(&(addr, len)) = self.send_reqs.front() {
                let start = addr & !7;
                let end = (addr + u64::from(len) + 7) & !7;
                self.send_reqs.pop_front();
                self.reader = Some(ReaderState {
                    addr,
                    len,
                    cursor: start,
                    end,
                });
                self.tx_pkts.push_back(len);
            }
        }
        if let Some(mut r) = self.reader.take() {
            // Respect reservation-buffer backpressure.
            if self.resbuf.len() + 8 <= self.config.resbuf_bytes && r.cursor < r.end {
                if let Ok(chunk) = mem.read_bytes(r.cursor, 8) {
                    // Aligner: keep only the packet's own bytes.
                    let pkt_start = r.addr;
                    let pkt_end = r.addr + u64::from(r.len);
                    for (i, &b) in chunk.iter().enumerate() {
                        let a = r.cursor + i as u64;
                        if a >= pkt_start && a < pkt_end {
                            self.resbuf.push_back(b);
                        }
                    }
                }
                r.cursor += 8;
            }
            if r.cursor >= r.end {
                // All reads issued: send completion (paper semantics).
                if self.send_comps.len() < self.config.queue_depth {
                    self.send_comps.push_back(1);
                }
            } else {
                self.reader = Some(r);
            }
        }

        // --- Send path: transmit one flit through the rate limiter. ---
        let mut out = None;
        if self.tokens > 0 {
            if self.tx_remaining.is_none() {
                if let Some(len) = self.tx_pkts.front().copied() {
                    if len > 0 {
                        self.tx_remaining = Some(len);
                    } else {
                        self.tx_pkts.pop_front();
                    }
                }
            }
            if let Some(remaining) = self.tx_remaining {
                let n = (remaining as usize).min(8);
                if self.resbuf.len() >= n {
                    let mut buf = [0u8; 8];
                    for slot in buf.iter_mut().take(n) {
                        *slot = self.resbuf.pop_front().expect("len checked");
                    }
                    let last = remaining as usize == n;
                    out = Some(Flit::from_bytes(&buf[..n], last));
                    self.tokens -= 1;
                    self.stats.tx_bytes += n as u64;
                    if last {
                        self.tx_remaining = None;
                        self.tx_pkts.pop_front();
                        self.stats.tx_packets += 1;
                    } else {
                        self.tx_remaining = Some(remaining - n as u32);
                    }
                }
            }
        }
        out
    }
}

impl firesim_core::snapshot::Snapshot for NicStats {
    fn save(&self, w: &mut firesim_core::snapshot::SnapshotWriter) {
        w.put_u64(self.tx_packets);
        w.put_u64(self.tx_bytes);
        w.put_u64(self.rx_packets);
        w.put_u64(self.rx_bytes);
        w.put_u64(self.rx_dropped);
    }
    fn load(r: &mut firesim_core::snapshot::SnapshotReader<'_>) -> firesim_core::SimResult<Self> {
        Ok(NicStats {
            tx_packets: r.get_u64()?,
            tx_bytes: r.get_u64()?,
            rx_packets: r.get_u64()?,
            rx_bytes: r.get_u64()?,
            rx_dropped: r.get_u64()?,
        })
    }
}

impl firesim_core::snapshot::Checkpoint for Nic {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        w.put(&self.mac);
        // The rate limiter is runtime-configurable (MMIO RATE_LIMIT), so
        // it is state, not construction config.
        w.put(&self.config.rate_k);
        w.put(&self.config.rate_p);
        w.put_seq(self.send_reqs.iter());
        w.put_seq(self.recv_reqs.iter());
        w.put_seq(self.send_comps.iter());
        w.put_seq(self.recv_comps.iter());
        w.put_u64(self.intr_mask);
        w.put_bool(self.reader.is_some());
        if let Some(rd) = &self.reader {
            w.put_u64(rd.addr);
            w.put_u32(rd.len);
            w.put_u64(rd.cursor);
            w.put_u64(rd.end);
        }
        w.put(&self.resbuf);
        w.put(&self.tx_pkts);
        w.put(&self.tx_remaining);
        w.put_i64(self.tokens);
        w.put_u64(self.cycle);
        w.put_bytes(&self.rx_cur);
        w.put_bool(self.rx_dropping);
        w.put(&self.rx_buffered);
        w.put_usize(self.rx_buffered_bytes);
        w.put_bool(self.writer.is_some());
        if let Some((pkt, cursor, addr)) = &self.writer {
            w.put_bytes(pkt);
            w.put_usize(*cursor);
            w.put_u64(*addr);
        }
        w.put(&self.stats);
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        let mac: MacAddr = r.get()?;
        if mac != self.mac {
            return Err(firesim_core::SimError::checkpoint(format!(
                "NIC snapshot is for MAC {mac}, restoring onto {}",
                self.mac
            )));
        }
        self.config.rate_k = r.get()?;
        self.config.rate_p = r.get()?;
        self.send_reqs = r.get()?;
        self.recv_reqs = r.get()?;
        self.send_comps = r.get()?;
        self.recv_comps = r.get()?;
        self.intr_mask = r.get_u64()?;
        self.reader = if r.get_bool()? {
            Some(ReaderState {
                addr: r.get_u64()?,
                len: r.get_u32()?,
                cursor: r.get_u64()?,
                end: r.get_u64()?,
            })
        } else {
            None
        };
        self.resbuf = r.get()?;
        self.tx_pkts = r.get()?;
        self.tx_remaining = r.get()?;
        self.tokens = r.get_i64()?;
        self.cycle = r.get_u64()?;
        self.rx_cur = r.get_bytes()?.to_vec();
        self.rx_dropping = r.get_bool()?;
        self.rx_buffered = r.get()?;
        self.rx_buffered_bytes = r.get_usize()?;
        self.writer = if r.get_bool()? {
            let pkt = r.get_bytes()?.to_vec();
            Some((pkt, r.get_usize()?, r.get_u64()?))
        } else {
            None
        };
        self.stats = r.get()?;
        Ok(())
    }
}

impl MmioDevice for Nic {
    fn read(&mut self, offset: u64, _size: usize) -> u64 {
        match offset {
            reg::COUNTS => {
                let free_send = (self.config.queue_depth - self.send_reqs.len()) as u64;
                let free_recv = (self.config.queue_depth - self.recv_reqs.len()) as u64;
                let send_comps = self.send_comps.len() as u64;
                let recv_comps = self.recv_comps.len() as u64;
                free_send | (free_recv << 8) | (send_comps << 16) | (recv_comps << 24)
            }
            reg::SEND_COMP => self.send_comps.pop_front().unwrap_or_default(),
            reg::RECV_COMP => match self.recv_comps.pop_front() {
                // Length + 1 so that 0 unambiguously means "empty".
                Some(len) => u64::from(len) + 1,
                None => 0,
            },
            reg::INTR_MASK => self.intr_mask,
            reg::MACADDR => {
                let b = self.mac.0;
                u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], 0, 0])
            }
            reg::RATE_LIMIT => {
                u64::from(self.config.rate_k) | (u64::from(self.config.rate_p) << 16)
            }
            _ => 0,
        }
    }

    fn write(&mut self, offset: u64, _size: usize, value: u64) {
        match offset {
            reg::SEND_REQ if self.send_reqs.len() < self.config.queue_depth => {
                let addr = value & 0xffff_ffff_ffff;
                let len = ((value >> 48) & 0x7fff) as u32;
                if len > 0 {
                    self.send_reqs.push_back((addr, len));
                }
            }
            reg::RECV_REQ if self.recv_reqs.len() < self.config.queue_depth => {
                self.recv_reqs.push_back(value);
            }
            reg::INTR_MASK => self.intr_mask = value & 0b11,
            reg::RATE_LIMIT => {
                self.set_rate_limit((value & 0xffff) as u16, ((value >> 16) & 0xffff) as u16);
            }
            _ => {}
        }
    }

    fn interrupt(&self) -> bool {
        (self.intr_mask & 0b01 != 0 && !self.send_comps.is_empty())
            || (self.intr_mask & 0b10 != 0 && !self.recv_comps.is_empty())
    }
}

/// Packs a send request register value from a buffer address and length.
pub fn send_req(addr: u64, len: u32) -> u64 {
    (addr & 0xffff_ffff_ffff) | (u64::from(len & 0x7fff) << 48)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firesim_riscv::DRAM_BASE;

    fn mk() -> (Nic, Memory) {
        let nic = Nic::new(MacAddr::from_node_index(1), NicConfig::default());
        let mem = Memory::new(DRAM_BASE, 1 << 20);
        (nic, mem)
    }

    fn drive_tx(nic: &mut Nic, mem: &mut Memory, cycles: usize) -> Vec<Flit> {
        let mut flits = Vec::new();
        for _ in 0..cycles {
            if let Some(f) = nic.tick(mem, None) {
                flits.push(f);
            }
        }
        flits
    }

    fn flits_to_bytes(flits: &[Flit]) -> Vec<u8> {
        let mut out = Vec::new();
        for f in flits {
            out.extend_from_slice(&f.bytes()[..f.byte_len()]);
        }
        out
    }

    #[test]
    fn skip_quiescent_matches_iterated_ticks() {
        // Sweep rate-limiter configs and skip lengths, comparing the
        // closed-form bulk advance against literally iterating tick().
        for (k, p) in [(0u16, 1u16), (1, 1), (3, 7), (8, 2), (5, 64)] {
            for skip in [1u64, 2, 5, 63, 64, 65, 1000] {
                let (mut a, mut mem) = mk();
                let (mut b, _) = mk();
                a.set_rate_limit(k, p);
                b.set_rate_limit(k, p);
                // Drain some tokens first so the bucket is mid-range.
                let payload = [0u8; 32];
                mem.write_bytes(DRAM_BASE + 0x100, &payload).unwrap();
                for nic in [&mut a, &mut b] {
                    nic.write(reg::SEND_REQ, 8, send_req(DRAM_BASE + 0x100, 32));
                    let _ = drive_tx(nic, &mut mem, 400);
                    assert!(nic.is_quiescent(), "k={k} p={p}: NIC should drain");
                }
                assert_eq!(a.tokens, b.tokens);
                for _ in 0..skip {
                    let tx = a.tick(&mut mem, None);
                    assert!(tx.is_none(), "quiescent NIC must not transmit");
                }
                b.skip_quiescent(skip);
                assert_eq!(a.cycle, b.cycle, "k={k} p={p} skip={skip}");
                assert_eq!(a.tokens, b.tokens, "k={k} p={p} skip={skip}");
            }
        }
    }

    #[test]
    fn quiescence_predicate_tracks_activity() {
        let (mut nic, mut mem) = mk();
        assert!(nic.is_quiescent());
        let payload = [7u8; 16];
        mem.write_bytes(DRAM_BASE + 0x100, &payload).unwrap();
        nic.write(reg::SEND_REQ, 8, send_req(DRAM_BASE + 0x100, 16));
        assert!(!nic.is_quiescent(), "pending send request is activity");
        let _ = drive_tx(&mut nic, &mut mem, 40);
        assert!(nic.is_quiescent(), "drained NIC is quiescent again");
        // A posted receive buffer alone is quiescent (nothing to pair).
        nic.write(reg::RECV_REQ, 8, DRAM_BASE + 0x200);
        assert!(nic.is_quiescent());
    }

    #[test]
    fn transmits_aligned_packet() {
        let (mut nic, mut mem) = mk();
        let payload: Vec<u8> = (0..64u8).collect();
        mem.write_bytes(DRAM_BASE + 0x100, &payload).unwrap();
        nic.write(reg::SEND_REQ, 8, send_req(DRAM_BASE + 0x100, 64));
        let flits = drive_tx(&mut nic, &mut mem, 100);
        assert_eq!(flits.len(), 8);
        assert!(flits.last().unwrap().last);
        assert!(flits[..7].iter().all(|f| !f.last));
        assert_eq!(flits_to_bytes(&flits), payload);
        assert_eq!(nic.stats().tx_packets, 1);
        assert_eq!(nic.stats().tx_bytes, 64);
        // Send completion shows up.
        assert_eq!(nic.read(reg::SEND_COMP, 8), 1);
        assert_eq!(nic.read(reg::SEND_COMP, 8), 0);
    }

    #[test]
    fn transmits_unaligned_packet_via_aligner() {
        let (mut nic, mut mem) = mk();
        // Surround the packet with sentinel bytes that must NOT leak.
        let mut region = vec![0xEE; 64];
        for (i, b) in region.iter_mut().enumerate().skip(3).take(21) {
            *b = i as u8;
        }
        mem.write_bytes(DRAM_BASE + 0x200, &region).unwrap();
        nic.write(reg::SEND_REQ, 8, send_req(DRAM_BASE + 0x200 + 3, 21));
        let flits = drive_tx(&mut nic, &mut mem, 100);
        let bytes = flits_to_bytes(&flits);
        assert_eq!(bytes.len(), 21);
        assert_eq!(bytes, (3..24).map(|i| i as u8).collect::<Vec<_>>());
        assert!(!bytes.contains(&0xEE));
    }

    #[test]
    fn rate_limiter_halves_throughput() {
        let (mut nic, mut mem) = mk();
        let payload = vec![0xAB; 800]; // 100 flits
        mem.write_bytes(DRAM_BASE + 0x1000, &payload).unwrap();
        // k=1, p=2: one flit every other cycle, i.e. ~100 Gbit/s.
        nic.set_rate_limit(1, 2);
        // Drain the initial burst allowance first for a clean measurement.
        nic.write(reg::SEND_REQ, 8, send_req(DRAM_BASE + 0x1000, 800));
        let mut sent_at = Vec::new();
        let mut mem2 = mem;
        for cycle in 0..1000u64 {
            if nic.tick(&mut mem2, None).is_some() {
                sent_at.push(cycle);
            }
        }
        assert_eq!(sent_at.len(), 100);
        // Steady-state spacing is 2 cycles (ignore the initial burst).
        let tail = &sent_at[8..];
        let deltas: Vec<u64> = tail.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(deltas.iter().all(|&d| d == 2), "{deltas:?}");
    }

    #[test]
    fn unlimited_rate_is_one_flit_per_cycle() {
        let (mut nic, mut mem) = mk();
        let payload = vec![0xCD; 160]; // 20 flits
        mem.write_bytes(DRAM_BASE + 0x1000, &payload).unwrap();
        nic.write(reg::SEND_REQ, 8, send_req(DRAM_BASE + 0x1000, 160));
        let mut sent_at = Vec::new();
        for cycle in 0..100u64 {
            if nic.tick(&mut mem, None).is_some() {
                sent_at.push(cycle);
            }
        }
        assert_eq!(sent_at.len(), 20);
        let deltas: Vec<u64> = sent_at.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(deltas.iter().all(|&d| d == 1), "{deltas:?}");
    }

    #[test]
    fn receives_packet_into_posted_buffer() {
        let (mut nic, mut mem) = mk();
        nic.write(reg::RECV_REQ, 8, DRAM_BASE + 0x3000);
        let payload: Vec<u8> = (0..20u8).collect();
        // Feed 3 flits: 8 + 8 + 4 bytes.
        let f1 = Flit::from_bytes(&payload[0..8], false);
        let f2 = Flit::from_bytes(&payload[8..16], false);
        let f3 = Flit::from_bytes(&payload[16..20], true);
        nic.tick(&mut mem, Some(f1));
        nic.tick(&mut mem, Some(f2));
        nic.tick(&mut mem, Some(f3));
        // Writer needs a few cycles to drain.
        for _ in 0..10 {
            nic.tick(&mut mem, None);
        }
        assert_eq!(nic.read(reg::RECV_COMP, 8), 21); // len 20 + 1
        assert_eq!(
            mem.read_bytes(DRAM_BASE + 0x3000, 20).unwrap(),
            &payload[..]
        );
        assert_eq!(nic.stats().rx_packets, 1);
    }

    #[test]
    fn packet_buffer_overflow_drops_whole_packets() {
        let mut nic = Nic::new(
            MacAddr::from_node_index(1),
            NicConfig {
                pktbuf_bytes: 16,
                ..NicConfig::default()
            },
        );
        let mut mem = Memory::new(DRAM_BASE, 4096);
        // No recv requests posted: writer cannot drain. First packet (8B)
        // fits; second (16B) overflows and is dropped whole.
        nic.tick(&mut mem, Some(Flit::from_bytes(&[1; 8], true)));
        nic.tick(&mut mem, Some(Flit::from_bytes(&[2; 8], false)));
        nic.tick(&mut mem, Some(Flit::from_bytes(&[2; 8], true)));
        assert_eq!(nic.stats().rx_packets, 1);
        assert_eq!(nic.stats().rx_dropped, 1);
        // A third small packet still fits (8 bytes left).
        nic.tick(&mut mem, Some(Flit::from_bytes(&[3; 8], true)));
        assert_eq!(nic.stats().rx_packets, 2);
    }

    #[test]
    fn interrupts_follow_mask_and_completions() {
        let (mut nic, mut mem) = mk();
        assert!(!nic.interrupt());
        nic.write(reg::INTR_MASK, 8, 0b10);
        nic.write(reg::RECV_REQ, 8, DRAM_BASE + 0x3000);
        nic.tick(&mut mem, Some(Flit::from_bytes(&[7; 8], true)));
        for _ in 0..5 {
            nic.tick(&mut mem, None);
        }
        assert!(nic.interrupt());
        let _ = nic.read(reg::RECV_COMP, 8);
        assert!(!nic.interrupt());
    }

    #[test]
    fn counts_register_reflects_queues() {
        let (mut nic, _mem) = mk();
        let counts = nic.read(reg::COUNTS, 8);
        assert_eq!(counts & 0xff, 16);
        assert_eq!((counts >> 8) & 0xff, 16);
        nic.write(reg::SEND_REQ, 8, send_req(DRAM_BASE, 8));
        nic.write(reg::RECV_REQ, 8, DRAM_BASE);
        let counts = nic.read(reg::COUNTS, 8);
        assert_eq!(counts & 0xff, 15);
        assert_eq!((counts >> 8) & 0xff, 15);
    }

    #[test]
    fn mac_register_matches() {
        let (mut nic, _mem) = mk();
        let raw = nic.read(reg::MACADDR, 8);
        let b = raw.to_le_bytes();
        assert_eq!(MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]]), nic.mac());
    }

    #[test]
    fn back_to_back_packets_keep_boundaries() {
        let (mut nic, mut mem) = mk();
        mem.write_bytes(DRAM_BASE + 0x100, &[0x11; 12]).unwrap();
        mem.write_bytes(DRAM_BASE + 0x200, &[0x22; 12]).unwrap();
        nic.write(reg::SEND_REQ, 8, send_req(DRAM_BASE + 0x100, 12));
        nic.write(reg::SEND_REQ, 8, send_req(DRAM_BASE + 0x200, 12));
        let flits = drive_tx(&mut nic, &mut mem, 100);
        assert_eq!(flits.len(), 4); // 2 flits per 12-byte packet
        assert!(flits[1].last && flits[3].last);
        assert!(!flits[0].last && !flits[2].last);
        assert_eq!(flits[1].byte_len(), 4);
        assert_eq!(nic.stats().tx_packets, 2);
    }
}
