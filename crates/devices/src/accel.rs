//! A custom accelerator blade peripheral (paper Table II / §VIII).
//!
//! FireSim's value proposition includes attaching *arbitrary RTL* to the
//! blades — the paper lists RoCC accelerators (Hwacha, HLS-generated
//! units) and contains "a custom pass that can automatically transform
//! Verilog generated from HLS tools into accelerators that plug into a
//! simulation". [`CopyAccel`] is such a unit for FireSim-rs: a DMA
//! copy/fill engine of the kind HLS commonly produces, attached over
//! MMIO, moving 32 bytes per cycle out of the blade's memory system with
//! a completion interrupt — the standard offload pattern benchmark
//! programs race against a software loop.

use firesim_riscv::mem::Memory;

use crate::mmio::MmioDevice;

/// Register map offsets.
#[allow(missing_docs)]
pub mod reg {
    pub const SRC: u64 = 0x00;
    pub const DST: u64 = 0x08;
    pub const LEN: u64 = 0x10;
    /// Write 1 = copy SRC->DST, 2 = fill DST with the low byte of SRC.
    pub const GO: u64 = 0x18;
    /// Read: 1 while busy, 0 when idle.
    pub const BUSY: u64 = 0x20;
    /// Read: completions since last read (clears; deasserts interrupt).
    pub const DONE: u64 = 0x28;
}

/// Copy command value for [`reg::GO`].
pub const CMD_COPY: u64 = 1;
/// Fill command value for [`reg::GO`].
pub const CMD_FILL: u64 = 2;

/// Bytes moved per cycle while the engine runs.
pub const BYTES_PER_CYCLE: usize = 32;

/// Fixed start-up cycles per command (command decode + first DMA issue).
pub const START_CYCLES: u64 = 12;

#[derive(Debug, Clone, Copy)]
enum Op {
    Copy,
    Fill(u8),
}

#[derive(Debug)]
struct Job {
    op: Op,
    src: u64,
    dst: u64,
    remaining: usize,
    startup: u64,
}

/// The DMA copy/fill accelerator. See the [module docs](self).
#[derive(Debug, Default)]
pub struct CopyAccel {
    src: u64,
    dst: u64,
    len: u64,
    job: Option<Job>,
    completions: u64,
    /// Total bytes moved (for tests/stats).
    pub bytes_moved: u64,
}

impl CopyAccel {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances one cycle, moving up to [`BYTES_PER_CYCLE`] bytes.
    pub fn tick(&mut self, mem: &mut Memory) {
        let Some(job) = &mut self.job else {
            return;
        };
        if job.startup > 0 {
            job.startup -= 1;
            return;
        }
        let n = job.remaining.min(BYTES_PER_CYCLE);
        match job.op {
            Op::Copy => {
                if let Ok(chunk) = mem.read_bytes(job.src, n) {
                    let data = chunk.to_vec();
                    let _ = mem.write_bytes(job.dst, &data);
                }
            }
            Op::Fill(byte) => {
                let _ = mem.write_bytes(job.dst, &vec![byte; n]);
            }
        }
        job.src += n as u64;
        job.dst += n as u64;
        job.remaining -= n;
        self.bytes_moved += n as u64;
        if job.remaining == 0 {
            self.job = None;
            self.completions += 1;
        }
    }

    /// True while a job is running.
    pub fn busy(&self) -> bool {
        self.job.is_some()
    }
}

impl firesim_core::snapshot::Checkpoint for CopyAccel {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        w.put_u64(self.src);
        w.put_u64(self.dst);
        w.put_u64(self.len);
        w.put_bool(self.job.is_some());
        if let Some(job) = &self.job {
            let (op, fill) = match job.op {
                Op::Copy => (0u8, 0u8),
                Op::Fill(b) => (1u8, b),
            };
            w.put_u8(op);
            w.put_u8(fill);
            w.put_u64(job.src);
            w.put_u64(job.dst);
            w.put_usize(job.remaining);
            w.put_u64(job.startup);
        }
        w.put_u64(self.completions);
        w.put_u64(self.bytes_moved);
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        self.src = r.get_u64()?;
        self.dst = r.get_u64()?;
        self.len = r.get_u64()?;
        self.job = if r.get_bool()? {
            let op = match (r.get_u8()?, r.get_u8()?) {
                (0, _) => Op::Copy,
                (1, b) => Op::Fill(b),
                (tag, _) => {
                    return Err(firesim_core::SimError::checkpoint(format!(
                        "unknown copy-accelerator op tag {tag}"
                    )))
                }
            };
            Some(Job {
                op,
                src: r.get_u64()?,
                dst: r.get_u64()?,
                remaining: r.get_usize()?,
                startup: r.get_u64()?,
            })
        } else {
            None
        };
        self.completions = r.get_u64()?;
        self.bytes_moved = r.get_u64()?;
        Ok(())
    }
}

impl MmioDevice for CopyAccel {
    fn read(&mut self, offset: u64, _size: usize) -> u64 {
        match offset {
            reg::BUSY => u64::from(self.job.is_some()),
            reg::DONE => std::mem::take(&mut self.completions),
            reg::SRC => self.src,
            reg::DST => self.dst,
            reg::LEN => self.len,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u64, _size: usize, value: u64) {
        match offset {
            reg::SRC => self.src = value,
            reg::DST => self.dst = value,
            reg::LEN => self.len = value,
            reg::GO if self.job.is_none() && self.len > 0 => {
                let op = match value {
                    CMD_COPY => Op::Copy,
                    CMD_FILL => Op::Fill(self.src as u8),
                    _ => return,
                };
                self.job = Some(Job {
                    op,
                    src: self.src,
                    dst: self.dst,
                    remaining: self.len as usize,
                    startup: START_CYCLES,
                });
            }
            _ => {}
        }
    }

    fn interrupt(&self) -> bool {
        self.completions > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firesim_riscv::DRAM_BASE;

    fn mk() -> (CopyAccel, Memory) {
        (CopyAccel::new(), Memory::new(DRAM_BASE, 1 << 20))
    }

    #[test]
    fn copies_at_32_bytes_per_cycle() {
        let (mut acc, mut mem) = mk();
        let data: Vec<u8> = (0..1024u32).map(|i| i as u8).collect();
        mem.write_bytes(DRAM_BASE, &data).unwrap();
        acc.write(reg::SRC, 8, DRAM_BASE);
        acc.write(reg::DST, 8, DRAM_BASE + 0x8000);
        acc.write(reg::LEN, 8, 1024);
        acc.write(reg::GO, 8, CMD_COPY);
        assert!(acc.busy());
        let mut cycles = 0u64;
        while acc.busy() {
            acc.tick(&mut mem);
            cycles += 1;
        }
        assert_eq!(cycles, START_CYCLES + 1024 / 32);
        assert_eq!(mem.read_bytes(DRAM_BASE + 0x8000, 1024).unwrap(), &data[..]);
        assert!(acc.interrupt());
        assert_eq!(acc.read(reg::DONE, 8), 1);
        assert!(!acc.interrupt());
        assert_eq!(acc.bytes_moved, 1024);
    }

    #[test]
    fn fill_writes_pattern() {
        let (mut acc, mut mem) = mk();
        acc.write(reg::SRC, 8, 0xA7); // fill byte
        acc.write(reg::DST, 8, DRAM_BASE + 64);
        acc.write(reg::LEN, 8, 100);
        acc.write(reg::GO, 8, CMD_FILL);
        while acc.busy() {
            acc.tick(&mut mem);
        }
        assert!(mem
            .read_bytes(DRAM_BASE + 64, 100)
            .unwrap()
            .iter()
            .all(|&b| b == 0xA7));
        // Byte 101 untouched.
        assert_eq!(mem.read_bytes(DRAM_BASE + 164, 1).unwrap()[0], 0);
    }

    #[test]
    fn go_ignored_while_busy_or_zero_length() {
        let (mut acc, mut mem) = mk();
        acc.write(reg::LEN, 8, 0);
        acc.write(reg::GO, 8, CMD_COPY);
        assert!(!acc.busy()); // zero length rejected
        acc.write(reg::LEN, 8, 64);
        acc.write(reg::DST, 8, DRAM_BASE);
        acc.write(reg::SRC, 8, DRAM_BASE + 128);
        acc.write(reg::GO, 8, CMD_COPY);
        assert!(acc.busy());
        acc.write(reg::LEN, 8, 9999);
        acc.write(reg::GO, 8, CMD_COPY); // ignored while busy
        while acc.busy() {
            acc.tick(&mut mem);
        }
        assert_eq!(acc.bytes_moved, 64);
    }

    #[test]
    fn partial_tail_handled() {
        let (mut acc, mut mem) = mk();
        mem.write_bytes(DRAM_BASE, &[0x5A; 70]).unwrap();
        acc.write(reg::SRC, 8, DRAM_BASE);
        acc.write(reg::DST, 8, DRAM_BASE + 4096);
        acc.write(reg::LEN, 8, 70);
        acc.write(reg::GO, 8, CMD_COPY);
        let mut cycles = 0;
        while acc.busy() {
            acc.tick(&mut mem);
            cycles += 1;
        }
        assert_eq!(cycles, START_CYCLES + 3); // 32 + 32 + 6
        assert_eq!(mem.read_bytes(DRAM_BASE + 4096, 70).unwrap(), &[0x5A; 70]);
    }
}
