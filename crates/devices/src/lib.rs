//! # firesim-devices
//!
//! The server-blade peripherals from §III-A of the FireSim paper, modeled
//! cycle-by-cycle:
//!
//! * [`Nic`] — the network interface controller of Fig 3: a controller
//!   with four MMIO-exposed queues (send/receive request and completion),
//!   a send path (reader → reservation buffer → aligner → token-bucket
//!   rate limiter), and a receive path (packet buffer → writer), with an
//!   interrupt line and a FAME-1 style one-token-per-cycle top-level
//!   network interface.
//! * [`BlockDevice`] — the block device controller of §III-A3: an MMIO
//!   frontend plus data-moving trackers operating on 512-byte sectors.
//! * [`CopyAccel`] — an HLS-style DMA copy/fill accelerator, the
//!   "custom blade" integration point of Table II / §VIII.
//! * [`Uart`] — a minimal console for program output.
//! * [`Clint`] — the core-local interruptor: `mtime`, per-hart `mtimecmp`
//!   and software-interrupt bits.
//!
//! All devices implement [`MmioDevice`] so the blade SoC can dispatch
//! memory-mapped accesses, and expose per-cycle `tick`-style methods so the
//! blade can advance them in lock-step with the cores.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accel;
pub mod blockdev;
pub mod clint;
pub mod mmio;
pub mod nic;
pub mod uart;

pub use accel::CopyAccel;
pub use blockdev::{BlockDevice, BlockDeviceConfig};
pub use clint::Clint;
pub use mmio::MmioDevice;
pub use nic::{Nic, NicConfig, NicStats};
pub use uart::Uart;

/// Default MMIO base addresses for the FireSim-rs SoC memory map.
pub mod map {
    /// CLINT (mtime, mtimecmp, msip).
    pub const CLINT_BASE: u64 = 0x0200_0000;
    /// CLINT region size.
    pub const CLINT_SIZE: u64 = 0x1_0000;
    /// UART.
    pub const UART_BASE: u64 = 0x1000_0000;
    /// UART region size.
    pub const UART_SIZE: u64 = 0x1000;
    /// NIC.
    pub const NIC_BASE: u64 = 0x1001_0000;
    /// NIC region size.
    pub const NIC_SIZE: u64 = 0x1000;
    /// Block device.
    pub const BLKDEV_BASE: u64 = 0x1002_0000;
    /// Block device region size.
    pub const BLKDEV_SIZE: u64 = 0x1000;
    /// DMA copy/fill accelerator (optional, Table II).
    pub const ACCEL_BASE: u64 = 0x1003_0000;
    /// Accelerator region size.
    pub const ACCEL_SIZE: u64 = 0x1000;
}
