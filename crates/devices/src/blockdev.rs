//! The block device controller (paper §III-A3).
//!
//! The controller contains a *frontend* that interfaces with the CPU over
//! MMIO and one or more *trackers* that move data between memory and the
//! block device. To start a transfer the CPU programs the request fields
//! and reads the allocation register, which dispatches the request to a
//! tracker and returns the tracker's ID. When a transfer completes, the
//! tracker posts its ID to the completion queue and raises the interrupt;
//! the CPU pops the completion queue and matches IDs. The device is
//! organised in 512-byte sectors: transfers are multiples of 512 bytes,
//! sector-aligned on the device but byte-addressable in memory.

use std::collections::VecDeque;

use firesim_riscv::mem::Memory;

use crate::mmio::MmioDevice;

/// Sector size in bytes.
pub const SECTOR_BYTES: usize = 512;

/// Register map offsets.
#[allow(missing_docs)]
pub mod reg {
    pub const ADDR: u64 = 0x00;
    pub const OFFSET: u64 = 0x08;
    pub const LEN: u64 = 0x10;
    pub const WRITE: u64 = 0x18;
    pub const ALLOC: u64 = 0x20;
    pub const COMP: u64 = 0x28;
    pub const NSECTORS: u64 = 0x30;
    pub const NTRACKERS: u64 = 0x38;
}

/// Returned by [`reg::ALLOC`] when no tracker is free.
pub const ALLOC_FAIL: u64 = u64::MAX;

/// Block device configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDeviceConfig {
    /// Device capacity in sectors.
    pub sectors: u64,
    /// Number of concurrent trackers.
    pub trackers: usize,
    /// Fixed access latency per request, in cycles (seek/command overhead).
    pub base_latency: u64,
    /// Additional cycles per sector transferred.
    pub per_sector_latency: u64,
}

impl Default for BlockDeviceConfig {
    fn default() -> Self {
        Self::ssd()
    }
}

impl BlockDeviceConfig {
    /// Spinning-disk timing: ~4 ms seek + rotational delay, streaming
    /// transfers afterwards (at 3.2 GHz target cycles).
    pub fn disk() -> Self {
        BlockDeviceConfig {
            sectors: 64 * 1024,
            trackers: 1,                // one head
            base_latency: 12_800_000,   // ~4 ms
            per_sector_latency: 12_800, // ~250 MB/s streaming
        }
    }

    /// NAND SSD timing: ~60 us access, high internal parallelism.
    pub fn ssd() -> Self {
        BlockDeviceConfig {
            sectors: 64 * 1024, // 32 MiB image
            trackers: 4,
            base_latency: 4_000,
            per_sector_latency: 400,
        }
    }

    /// 3D XPoint-class timing: ~10 us access (the emerging technology
    /// the paper's §VIII plans to evaluate with pluggable timing).
    pub fn xpoint() -> Self {
        BlockDeviceConfig {
            sectors: 64 * 1024,
            trackers: 8,
            base_latency: 640, // ~200 ns device + controller
            per_sector_latency: 180,
        }
    }
}

#[derive(Debug, Clone)]
struct Request {
    mem_addr: u64,
    sector: u64,
    sectors: u64,
    is_write: bool,
    remaining_cycles: u64,
}

/// The block device. See the [module docs](self).
#[derive(Debug)]
pub struct BlockDevice {
    config: BlockDeviceConfig,
    data: Vec<u8>,
    // Frontend staging registers.
    addr: u64,
    offset: u64,
    len: u64,
    is_write: bool,
    trackers: Vec<Option<Request>>,
    completions: VecDeque<u64>,
    /// Requests rejected for being out of range or zero-length.
    pub rejected: u64,
}

impl BlockDevice {
    /// Creates a zero-filled device.
    pub fn new(config: BlockDeviceConfig) -> Self {
        BlockDevice {
            data: vec![0; config.sectors as usize * SECTOR_BYTES],
            addr: 0,
            offset: 0,
            len: 0,
            is_write: false,
            trackers: (0..config.trackers).map(|_| None).collect(),
            completions: VecDeque::new(),
            rejected: 0,
            config,
        }
    }

    /// Loads an image into the device starting at sector 0.
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds the device capacity.
    pub fn load_image(&mut self, image: &[u8]) {
        assert!(
            image.len() <= self.data.len(),
            "image larger than block device"
        );
        self.data[..image.len()].copy_from_slice(image);
    }

    /// Raw device contents (for assertions in tests).
    pub fn contents(&self) -> &[u8] {
        &self.data
    }

    /// Advances one cycle: progresses all busy trackers, moving data and
    /// posting completions when transfers finish.
    pub fn tick(&mut self, mem: &mut Memory) {
        for (id, slot) in self.trackers.iter_mut().enumerate() {
            if let Some(req) = slot {
                if req.remaining_cycles > 1 {
                    req.remaining_cycles -= 1;
                    continue;
                }
                // Transfer completes this cycle: move the data.
                let bytes = (req.sectors as usize) * SECTOR_BYTES;
                let dev_off = req.sector as usize * SECTOR_BYTES;
                if req.is_write {
                    if let Ok(src) = mem.read_bytes(req.mem_addr, bytes) {
                        self.data[dev_off..dev_off + bytes].copy_from_slice(src);
                    }
                } else {
                    let src = self.data[dev_off..dev_off + bytes].to_vec();
                    let _ = mem.write_bytes(req.mem_addr, &src);
                }
                self.completions.push_back(id as u64);
                *slot = None;
            }
        }
    }

    /// Cycles until the most imminent busy tracker would complete, or
    /// `None` when every tracker is idle (a [`BlockDevice::tick`] is then
    /// a no-op). A return of `Some(m)` means the next `m - 1` ticks are
    /// pure countdown and the `m`-th performs a transfer.
    pub fn min_busy_cycles(&self) -> Option<u64> {
        self.trackers
            .iter()
            .filter_map(|slot| slot.as_ref().map(|req| req.remaining_cycles))
            .min()
    }

    /// Bulk-advances `cycles` ticks' worth of tracker countdown without
    /// touching memory, bit-identical to `cycles` calls of `tick` when no
    /// tracker completes in that span.
    ///
    /// # Panics
    ///
    /// Debug-panics if any busy tracker has `remaining_cycles <= cycles`
    /// (its completion would be skipped over).
    pub fn skip(&mut self, cycles: u64) {
        for req in self.trackers.iter_mut().flatten() {
            debug_assert!(
                req.remaining_cycles > cycles,
                "blockdev skip of {cycles} would cross a completion"
            );
            req.remaining_cycles -= cycles;
        }
    }

    fn try_alloc(&mut self) -> u64 {
        if self.len == 0 || self.offset + self.len > self.config.sectors {
            self.rejected += 1;
            return ALLOC_FAIL;
        }
        let Some(id) = self.trackers.iter().position(Option::is_none) else {
            return ALLOC_FAIL;
        };
        let cycles = self.config.base_latency + self.config.per_sector_latency * self.len;
        self.trackers[id] = Some(Request {
            mem_addr: self.addr,
            sector: self.offset,
            sectors: self.len,
            is_write: self.is_write,
            remaining_cycles: cycles.max(1),
        });
        id as u64
    }
}

impl firesim_core::snapshot::Checkpoint for BlockDevice {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        w.put_bytes(&self.data);
        w.put_u64(self.addr);
        w.put_u64(self.offset);
        w.put_u64(self.len);
        w.put_bool(self.is_write);
        w.put_usize(self.trackers.len());
        for slot in &self.trackers {
            w.put_bool(slot.is_some());
            if let Some(req) = slot {
                w.put_u64(req.mem_addr);
                w.put_u64(req.sector);
                w.put_u64(req.sectors);
                w.put_bool(req.is_write);
                w.put_u64(req.remaining_cycles);
            }
        }
        w.put(&self.completions);
        w.put_u64(self.rejected);
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        let data = r.get_bytes()?;
        if data.len() != self.data.len() {
            return Err(firesim_core::SimError::checkpoint(format!(
                "block-device snapshot holds {} bytes, target holds {}",
                data.len(),
                self.data.len()
            )));
        }
        self.data.copy_from_slice(data);
        self.addr = r.get_u64()?;
        self.offset = r.get_u64()?;
        self.len = r.get_u64()?;
        self.is_write = r.get_bool()?;
        let trackers = r.get_usize()?;
        if trackers != self.trackers.len() {
            return Err(firesim_core::SimError::checkpoint(format!(
                "block-device snapshot has {trackers} trackers, config expects {}",
                self.trackers.len()
            )));
        }
        for slot in &mut self.trackers {
            *slot = if r.get_bool()? {
                Some(Request {
                    mem_addr: r.get_u64()?,
                    sector: r.get_u64()?,
                    sectors: r.get_u64()?,
                    is_write: r.get_bool()?,
                    remaining_cycles: r.get_u64()?,
                })
            } else {
                None
            };
        }
        self.completions = r.get()?;
        self.rejected = r.get_u64()?;
        Ok(())
    }
}

impl MmioDevice for BlockDevice {
    fn read(&mut self, offset: u64, _size: usize) -> u64 {
        match offset {
            reg::ALLOC => self.try_alloc(),
            reg::COMP => self.completions.pop_front().map_or(ALLOC_FAIL, |id| id),
            reg::NSECTORS => self.config.sectors,
            reg::NTRACKERS => self.trackers.len() as u64,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u64, _size: usize, value: u64) {
        match offset {
            reg::ADDR => self.addr = value,
            reg::OFFSET => self.offset = value,
            reg::LEN => self.len = value,
            reg::WRITE => self.is_write = value != 0,
            _ => {}
        }
    }

    fn interrupt(&self) -> bool {
        !self.completions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firesim_riscv::DRAM_BASE;

    fn mk() -> (BlockDevice, Memory) {
        (
            BlockDevice::new(BlockDeviceConfig {
                sectors: 64,
                trackers: 2,
                base_latency: 10,
                per_sector_latency: 5,
            }),
            Memory::new(DRAM_BASE, 1 << 20),
        )
    }

    fn submit(bd: &mut BlockDevice, addr: u64, sector: u64, len: u64, write: bool) -> u64 {
        bd.write(reg::ADDR, 8, addr);
        bd.write(reg::OFFSET, 8, sector);
        bd.write(reg::LEN, 8, len);
        bd.write(reg::WRITE, 8, u64::from(write));
        bd.read(reg::ALLOC, 8)
    }

    #[test]
    fn skip_matches_iterated_countdown() {
        let (mut bd, mut mem) = mk();
        assert_eq!(bd.min_busy_cycles(), None);
        let payload = vec![0xabu8; SECTOR_BYTES];
        mem.write_bytes(DRAM_BASE, &payload).unwrap();
        submit(&mut bd, DRAM_BASE, 0, 1, true); // 10 + 5 = 15 cycles
        assert_eq!(bd.min_busy_cycles(), Some(15));

        let (mut bd2, mut mem2) = mk();
        mem2.write_bytes(DRAM_BASE, &payload).unwrap();
        submit(&mut bd2, DRAM_BASE, 0, 1, true);

        // Skip 14, then one real tick completes; the reference ticks 15x.
        bd.skip(14);
        assert_eq!(bd.min_busy_cycles(), Some(1));
        bd.tick(&mut mem);
        for _ in 0..15 {
            bd2.tick(&mut mem2);
        }
        assert!(bd.interrupt() && bd2.interrupt());
        assert_eq!(bd.contents(), bd2.contents());
        assert_eq!(bd.min_busy_cycles(), None);
    }

    #[test]
    fn write_then_read_round_trip() {
        let (mut bd, mut mem) = mk();
        let payload: Vec<u8> = (0..SECTOR_BYTES * 2).map(|i| i as u8).collect();
        mem.write_bytes(DRAM_BASE, &payload).unwrap();

        let id = submit(&mut bd, DRAM_BASE, 4, 2, true);
        assert_eq!(id, 0);
        // Latency: 10 + 5*2 = 20 cycles.
        for _ in 0..19 {
            bd.tick(&mut mem);
            assert!(!bd.interrupt());
        }
        bd.tick(&mut mem);
        assert!(bd.interrupt());
        assert_eq!(bd.read(reg::COMP, 8), 0);
        assert!(!bd.interrupt());

        // Read back into another buffer.
        let id = submit(&mut bd, DRAM_BASE + 0x8000, 4, 2, false);
        assert_eq!(id, 0);
        for _ in 0..20 {
            bd.tick(&mut mem);
        }
        assert_eq!(bd.read(reg::COMP, 8), 0);
        assert_eq!(
            mem.read_bytes(DRAM_BASE + 0x8000, payload.len()).unwrap(),
            &payload[..]
        );
    }

    #[test]
    fn trackers_run_concurrently() {
        let (mut bd, mut mem) = mk();
        assert_eq!(submit(&mut bd, DRAM_BASE, 0, 1, true), 0);
        assert_eq!(submit(&mut bd, DRAM_BASE + 4096, 1, 1, true), 1);
        // Both busy: a third allocation fails.
        assert_eq!(submit(&mut bd, DRAM_BASE, 2, 1, true), ALLOC_FAIL);
        for _ in 0..15 {
            bd.tick(&mut mem);
        }
        // Both complete (same latency), IDs in tracker order.
        assert_eq!(bd.read(reg::COMP, 8), 0);
        assert_eq!(bd.read(reg::COMP, 8), 1);
        assert_eq!(bd.read(reg::COMP, 8), ALLOC_FAIL);
    }

    #[test]
    fn out_of_range_requests_rejected() {
        let (mut bd, _mem) = mk();
        assert_eq!(submit(&mut bd, DRAM_BASE, 63, 2, false), ALLOC_FAIL);
        assert_eq!(submit(&mut bd, DRAM_BASE, 0, 0, false), ALLOC_FAIL);
        assert_eq!(bd.rejected, 2);
    }

    #[test]
    fn image_loading() {
        let (mut bd, _) = mk();
        bd.load_image(&[7; 600]);
        assert_eq!(bd.contents()[599], 7);
        assert_eq!(bd.contents()[600], 0);
        assert_eq!(bd.read(reg::NSECTORS, 8), 64);
        assert_eq!(bd.read(reg::NTRACKERS, 8), 2);
    }

    #[test]
    #[should_panic(expected = "image larger")]
    fn oversized_image_panics() {
        let (mut bd, _) = mk();
        bd.load_image(&vec![0; 64 * SECTOR_BYTES + 1]);
    }

    /// §VIII: pluggable storage timing — the same request is served with
    /// technology-dependent latency (disk >> SSD >> 3D XPoint).
    #[test]
    fn storage_technology_presets_order_latencies() {
        let mut mem = Memory::new(DRAM_BASE, 1 << 20);
        let mut complete_after = |cfg: BlockDeviceConfig| {
            let mut bd = BlockDevice::new(cfg);
            assert_eq!(submit(&mut bd, DRAM_BASE, 0, 4, false), 0);
            let mut cycles = 0u64;
            while !bd.interrupt() {
                bd.tick(&mut mem);
                cycles += 1;
                assert!(cycles < 100_000_000, "request never completed");
            }
            cycles
        };
        let disk = complete_after(BlockDeviceConfig::disk());
        let ssd = complete_after(BlockDeviceConfig::ssd());
        let xpoint = complete_after(BlockDeviceConfig::xpoint());
        assert!(disk > 100 * ssd, "disk {disk} vs ssd {ssd}");
        assert!(ssd > 2 * xpoint, "ssd {ssd} vs xpoint {xpoint}");
        // XPoint-class: ~a microsecond for a small read.
        assert!(xpoint < 5_000, "xpoint {xpoint}");
    }
}
