//! A minimal UART for console output from simulated software.
//!
//! FireSim's UART is one of the "other devices" whose functional side is
//! handled by the software simulation controller (§III-A4); here the
//! controller is the host test harness, which reads the accumulated output.

use crate::mmio::MmioDevice;

/// Register map offsets.
#[allow(missing_docs)]
pub mod reg {
    pub const TXDATA: u64 = 0x00;
    pub const RXDATA: u64 = 0x08;
    pub const STATUS: u64 = 0x10;
}

/// The UART device.
#[derive(Debug, Default)]
pub struct Uart {
    tx: Vec<u8>,
    rx: std::collections::VecDeque<u8>,
}

impl Uart {
    /// Creates an idle UART.
    pub fn new() -> Self {
        Self::default()
    }

    /// All bytes the simulated software has transmitted.
    pub fn output(&self) -> &[u8] {
        &self.tx
    }

    /// The transmitted bytes as lossy UTF-8 (for assertions and logs).
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.tx).into_owned()
    }

    /// Queues bytes for the simulated software to read.
    pub fn push_input(&mut self, bytes: &[u8]) {
        self.rx.extend(bytes);
    }
}

impl firesim_core::snapshot::Checkpoint for Uart {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        w.put_bytes(&self.tx);
        w.put(&self.rx);
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        self.tx = r.get_bytes()?.to_vec();
        self.rx = r.get()?;
        Ok(())
    }
}

impl MmioDevice for Uart {
    fn read(&mut self, offset: u64, _size: usize) -> u64 {
        match offset {
            // Bit 8 set = valid data in bits 0-7 (SiFive-style).
            reg::RXDATA => match self.rx.pop_front() {
                Some(b) => u64::from(b) | 0x100,
                None => 0,
            },
            reg::STATUS => u64::from(!self.rx.is_empty()),
            _ => 0,
        }
    }

    fn write(&mut self, offset: u64, _size: usize, value: u64) {
        if offset == reg::TXDATA {
            self.tx.push(value as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_accumulates() {
        let mut u = Uart::new();
        for b in b"hi\n" {
            u.write(reg::TXDATA, 1, u64::from(*b));
        }
        assert_eq!(u.output(), b"hi\n");
        assert_eq!(u.output_string(), "hi\n");
    }

    #[test]
    fn rx_pops_with_valid_bit() {
        let mut u = Uart::new();
        assert_eq!(u.read(reg::RXDATA, 8), 0);
        u.push_input(b"ab");
        assert_eq!(u.read(reg::STATUS, 8), 1);
        assert_eq!(u.read(reg::RXDATA, 8), u64::from(b'a') | 0x100);
        assert_eq!(u.read(reg::RXDATA, 8), u64::from(b'b') | 0x100);
        assert_eq!(u.read(reg::RXDATA, 8), 0);
        assert_eq!(u.read(reg::STATUS, 8), 0);
    }
}
