//! The memory-mapped device interface.

/// A device reachable through loads and stores on the SoC bus.
///
/// Offsets are relative to the device's base address; the SoC performs the
/// address-range dispatch. Reads and writes are at most 8 bytes and are
/// assumed naturally aligned (device registers are 64-bit).
pub trait MmioDevice {
    /// Handles a load of `size` bytes at `offset`.
    fn read(&mut self, offset: u64, size: usize) -> u64;

    /// Handles a store of the low `size` bytes of `value` at `offset`.
    fn write(&mut self, offset: u64, size: usize, value: u64);

    /// Level-sensitive interrupt output (wired to the cores' MEIP).
    fn interrupt(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Reg(u64);
    impl MmioDevice for Reg {
        fn read(&mut self, _offset: u64, _size: usize) -> u64 {
            self.0
        }
        fn write(&mut self, _offset: u64, _size: usize, value: u64) {
            self.0 = value;
        }
    }

    #[test]
    fn object_safety_and_default_interrupt() {
        let mut dev: Box<dyn MmioDevice> = Box::new(Reg(0));
        dev.write(0, 8, 42);
        assert_eq!(dev.read(0, 8), 42);
        assert!(!dev.interrupt());
    }
}
