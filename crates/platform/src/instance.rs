//! EC2 instance types used by FireSim (§II) and their pricing.

use core::fmt;

/// The EC2 instance types FireSim deploys onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum InstanceType {
    /// 8 vCPUs, 122 GiB, 10 Gbit/s, 1 Xilinx VU9P FPGA.
    F1_2xlarge,
    /// 64 vCPUs, 976 GiB, 25 Gbit/s, 8 Xilinx VU9P FPGAs.
    F1_16xlarge,
    /// 64 vCPUs, 256 GiB, 25 Gbit/s, no FPGA — switch-model host.
    M4_16xlarge,
}

impl InstanceType {
    /// Number of attached FPGAs.
    pub fn fpgas(self) -> usize {
        match self {
            InstanceType::F1_2xlarge => 1,
            InstanceType::F1_16xlarge => 8,
            InstanceType::M4_16xlarge => 0,
        }
    }

    /// Host vCPUs.
    pub fn vcpus(self) -> usize {
        match self {
            InstanceType::F1_2xlarge => 8,
            InstanceType::F1_16xlarge | InstanceType::M4_16xlarge => 64,
        }
    }

    /// Host DRAM in GiB.
    pub fn dram_gib(self) -> usize {
        match self {
            InstanceType::F1_2xlarge => 122,
            InstanceType::F1_16xlarge => 976,
            InstanceType::M4_16xlarge => 256,
        }
    }

    /// Host network bandwidth in Gbit/s.
    pub fn network_gbps(self) -> f64 {
        match self {
            InstanceType::F1_2xlarge => 10.0,
            InstanceType::F1_16xlarge | InstanceType::M4_16xlarge => 25.0,
        }
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstanceType::F1_2xlarge => "f1.2xlarge",
            InstanceType::F1_16xlarge => "f1.16xlarge",
            InstanceType::M4_16xlarge => "m4.16xlarge",
        };
        f.write_str(s)
    }
}

/// Hourly pricing for the instance fleet, in dollars.
///
/// Defaults are the 2018-era us-east-1 prices the paper's §V-C arithmetic
/// is based on: spot prices taken as "the longest stable prices in recent
/// history" (32 f1.16xlarge + 5 m4.16xlarge ≈ $100/hour), on-demand
/// prices ≈ $440/hour for the same fleet, and a ≈$50k public list price
/// per VU9P FPGA (32 x 8 = 256 FPGAs ≈ $12.8M).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pricing {
    /// On-demand $/hour for `f1.2xlarge`.
    pub f1_2xl_ondemand: f64,
    /// On-demand $/hour for `f1.16xlarge`.
    pub f1_16xl_ondemand: f64,
    /// On-demand $/hour for `m4.16xlarge`.
    pub m4_16xl_ondemand: f64,
    /// Spot $/hour for `f1.2xlarge`.
    pub f1_2xl_spot: f64,
    /// Spot $/hour for `f1.16xlarge`.
    pub f1_16xl_spot: f64,
    /// Spot $/hour for `m4.16xlarge`.
    pub m4_16xl_spot: f64,
    /// Retail price of one FPGA, dollars.
    pub fpga_retail: f64,
}

impl Default for Pricing {
    fn default() -> Self {
        Pricing {
            f1_2xl_ondemand: 1.65,
            f1_16xl_ondemand: 13.20,
            m4_16xl_ondemand: 3.20,
            f1_2xl_spot: 0.48,
            f1_16xl_spot: 3.03,
            m4_16xl_spot: 0.62,
            fpga_retail: 50_000.0,
        }
    }
}

impl Pricing {
    /// On-demand $/hour for an instance type.
    pub fn ondemand(&self, t: InstanceType) -> f64 {
        match t {
            InstanceType::F1_2xlarge => self.f1_2xl_ondemand,
            InstanceType::F1_16xlarge => self.f1_16xl_ondemand,
            InstanceType::M4_16xlarge => self.m4_16xl_ondemand,
        }
    }

    /// Spot $/hour for an instance type.
    pub fn spot(&self, t: InstanceType) -> f64 {
        match t {
            InstanceType::F1_2xlarge => self.f1_2xl_spot,
            InstanceType::F1_16xlarge => self.f1_16xl_spot,
            InstanceType::M4_16xlarge => self.m4_16xl_spot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_attributes() {
        assert_eq!(InstanceType::F1_16xlarge.fpgas(), 8);
        assert_eq!(InstanceType::F1_2xlarge.fpgas(), 1);
        assert_eq!(InstanceType::M4_16xlarge.fpgas(), 0);
        assert_eq!(InstanceType::F1_16xlarge.vcpus(), 64);
        assert_eq!(InstanceType::F1_2xlarge.dram_gib(), 122);
        assert_eq!(InstanceType::M4_16xlarge.network_gbps(), 25.0);
        assert_eq!(InstanceType::F1_2xlarge.to_string(), "f1.2xlarge");
    }

    #[test]
    fn paper_fleet_prices() {
        let p = Pricing::default();
        // §V-C: 32 f1.16xlarge + 5 m4.16xlarge.
        let ondemand = 32.0 * p.ondemand(InstanceType::F1_16xlarge)
            + 5.0 * p.ondemand(InstanceType::M4_16xlarge);
        assert!(
            (ondemand - 440.0).abs() < 10.0,
            "on-demand fleet ${ondemand:.0}/hr"
        );
        let spot =
            32.0 * p.spot(InstanceType::F1_16xlarge) + 5.0 * p.spot(InstanceType::M4_16xlarge);
        assert!((spot - 100.0).abs() < 5.0, "spot fleet ${spot:.0}/hr");
        let fpga_value = 32.0 * 8.0 * p.fpga_retail;
        assert_eq!(fpga_value, 12_800_000.0);
    }
}
