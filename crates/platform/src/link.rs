//! Inter-process token transport backends (§III-B2).
//!
//! The paper's decoupled simulation moves **one link-latency of tokens per
//! batch** between partitions, and the batching is what makes distribution
//! cheap: the host cost of a transfer is amortised over `latency` target
//! cycles. [`Transport`](crate::Transport) models *how fast* each physical
//! hop can do this; the [`TokenTransport`] trait in this module actually
//! *does* it, with three backends mirroring the paper's three hops:
//!
//! * [`ChannelTransport`] — same-process fast path over an in-memory
//!   channel (the equivalent of FireSim's intra-FPGA wires; used for tests
//!   and as the reference implementation).
//! * [`ShmTransport`] — processes on one host exchange batches through a
//!   pair of file-backed single-producer/single-consumer rings, the
//!   software analogue of the paper's shared-memory port between switch
//!   processes on one instance.
//! * [`SocketTransport`] — cross-"instance" links over TCP or Unix-domain
//!   sockets with the length-prefixed wire framing from
//!   [`firesim_net::codec`], the analogue of the paper's socket port
//!   between EC2 instances.
//!
//! Every backend transfers whole [`TokenWindow`]s tagged with a per-link
//! monotonic sequence number and fails loudly (`SimError::Protocol`) if a
//! window is dropped, duplicated, or reordered — determinism depends on the
//! stream being exactly-once, in-order.

use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::fs::FileExt;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use firesim_core::snapshot::Snapshot;
use firesim_core::{SimError, SimResult, TokenWindow};
use firesim_net::codec::{encode_token_frame, TokenDeframer};

use crate::transport::TransportKind;

/// How long a blocking receive sleeps between polls of a quiet peer.
const POLL_SLEEP: Duration = Duration::from_micros(100);

/// A bidirectional endpoint that moves token batches to exactly one peer.
///
/// One instance lives on each side of a partition boundary; a simulation
/// "pump" thread drains a boundary output into `send_window` and feeds
/// `recv_window` into a boundary input. Sequence numbers are assigned and
/// verified internally, so callers just move windows.
///
/// `recv_window` blocks until a window arrives, returning `Ok(None)` only
/// when `halt` is set (or the peer has cleanly closed) *and* every window
/// already in flight has been delivered — a late halt never truncates the
/// token stream.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::AtomicBool;
/// use firesim_core::TokenWindow;
/// use firesim_platform::link::{ChannelTransport, TokenTransport};
///
/// let (mut a, mut b) = ChannelTransport::<u64>::pair();
/// let mut w = TokenWindow::new(4);
/// w.push(2, 99).unwrap();
/// a.send_window(&w).unwrap();
///
/// let halt = AtomicBool::new(false);
/// let got = b.recv_window(&halt).unwrap().unwrap();
/// assert_eq!(got.get(2), Some(&99));
///
/// // A set halt flag still lets queued windows drain first.
/// a.send_window(&w).unwrap();
/// drop(a);
/// halt.store(true, std::sync::atomic::Ordering::SeqCst);
/// assert!(b.recv_window(&halt).unwrap().is_some());
/// assert!(b.recv_window(&halt).unwrap().is_none());
/// ```
pub trait TokenTransport<T: Snapshot>: Send {
    /// Which physical transport this backend models, for rate accounting
    /// against [`Transport::sim_rate_bound_hz`](crate::Transport::sim_rate_bound_hz).
    fn kind(&self) -> TransportKind;

    /// Sends one token batch to the peer, blocking if the peer is slow.
    ///
    /// # Errors
    ///
    /// Fails if the peer has disappeared (closed socket, dropped channel)
    /// or the underlying I/O fails.
    fn send_window(&mut self, window: &TokenWindow<T>) -> SimResult<()>;

    /// Receives the next token batch in order.
    ///
    /// Blocks until a window arrives; returns `Ok(None)` once `halt` is
    /// set (or the peer closed cleanly) and no further windows are in
    /// flight.
    ///
    /// # Errors
    ///
    /// Fails on wire corruption or a sequence-number gap — both mean the
    /// stream can no longer be trusted to be cycle-exact.
    fn recv_window(&mut self, halt: &AtomicBool) -> SimResult<Option<TokenWindow<T>>>;
}

/// Verifies the per-link monotonic sequence number on the receive path.
fn check_seq(expected: &mut u64, got: u64) -> SimResult<()> {
    if got != *expected {
        return Err(SimError::protocol(format!(
            "token window sequence gap: expected {expected}, received {got} \
             (a batch was dropped, duplicated, or reordered in transit)"
        )));
    }
    *expected += 1;
    Ok(())
}

// ---------------------------------------------------------------------------
// In-process channel backend
// ---------------------------------------------------------------------------

/// In-process [`TokenTransport`] over a pair of standard channels.
///
/// The zero-serialisation fast path: windows move by pointer, exactly as
/// the engine's own links do. Used when a "partitioned" run keeps every
/// shard in one process (worker threads), and as the reference backend in
/// tests — the other backends must be observationally identical to this
/// one.
#[derive(Debug)]
pub struct ChannelTransport<T> {
    tx: mpsc::Sender<TokenWindow<T>>,
    rx: mpsc::Receiver<TokenWindow<T>>,
}

impl<T: Snapshot> ChannelTransport<T> {
    /// Creates two connected endpoints; what one sends the other receives.
    pub fn pair() -> (Self, Self) {
        let (tx_ab, rx_ab) = mpsc::channel();
        let (tx_ba, rx_ba) = mpsc::channel();
        (
            ChannelTransport {
                tx: tx_ab,
                rx: rx_ba,
            },
            ChannelTransport {
                tx: tx_ba,
                rx: rx_ab,
            },
        )
    }
}

impl<T: Snapshot + Send> TokenTransport<T> for ChannelTransport<T> {
    fn kind(&self) -> TransportKind {
        TransportKind::SharedMemory
    }

    fn send_window(&mut self, window: &TokenWindow<T>) -> SimResult<()> {
        // Clone via snapshot round-trip so all backends share value
        // semantics (the caller retains its window for recycling).
        self.tx
            .send(snapshot_clone(window)?)
            .map_err(|_| SimError::protocol("channel transport peer dropped"))
    }

    fn recv_window(&mut self, halt: &AtomicBool) -> SimResult<Option<TokenWindow<T>>> {
        loop {
            // Drain before honouring halt: in-flight windows must land.
            match self.rx.try_recv() {
                Ok(w) => return Ok(Some(w)),
                Err(mpsc::TryRecvError::Disconnected) => return Ok(None),
                Err(mpsc::TryRecvError::Empty) => {}
            }
            if halt.load(Ordering::SeqCst) {
                return Ok(None);
            }
            match self.rx.recv_timeout(POLL_SLEEP * 10) {
                Ok(w) => return Ok(Some(w)),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(None),
            }
        }
    }
}

/// Deep-copies a window through its snapshot encoding.
fn snapshot_clone<T: Snapshot>(w: &TokenWindow<T>) -> SimResult<TokenWindow<T>> {
    let mut writer = firesim_core::SnapshotWriter::new();
    w.save(&mut writer);
    let bytes = writer.into_bytes();
    let mut reader = firesim_core::SnapshotReader::new(&bytes);
    TokenWindow::load(&mut reader)
}

// ---------------------------------------------------------------------------
// Shared-memory ring backend
// ---------------------------------------------------------------------------

/// On-disk layout of one SPSC ring: magic, capacity, then two monotonic
/// byte counters. Data bytes start at [`RING_HEADER_BYTES`].
const RING_MAGIC: u64 = 0x4649_5245_5349_4D31; // "FIRESIM1"
const RING_HEADER_BYTES: u64 = 32;
const OFF_MAGIC: u64 = 0;
const OFF_CAPACITY: u64 = 8;
const OFF_WRITE_POS: u64 = 16;
const OFF_READ_POS: u64 = 24;

/// A single-producer single-consumer byte ring backed by a plain file.
///
/// Both processes open the same file; reads and writes go through the
/// kernel page cache, which is coherent across processes on one host, so
/// `pwrite` in the producer is immediately visible to `pread` in the
/// consumer. The producer publishes data *before* advancing `write_pos`
/// (and the consumer conversely frees space by advancing `read_pos`), so
/// each counter update is a release of everything behind it. Counters are
/// monotonic byte offsets; `pos % capacity` locates the byte in the ring.
#[derive(Debug)]
struct ShmRing {
    file: File,
    capacity: u64,
}

impl ShmRing {
    /// Creates (truncating) a ring file with `capacity` data bytes.
    fn create(path: &Path, capacity: u64) -> SimResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| SimError::io(format!("creating shm ring {}", path.display()), &e))?;
        file.set_len(RING_HEADER_BYTES + capacity)
            .map_err(|e| SimError::io("sizing shm ring", &e))?;
        let ring = ShmRing { file, capacity };
        ring.put_u64(OFF_CAPACITY, capacity)?;
        ring.put_u64(OFF_WRITE_POS, 0)?;
        ring.put_u64(OFF_READ_POS, 0)?;
        // Magic last: openers treat its presence as "header initialised".
        ring.put_u64(OFF_MAGIC, RING_MAGIC)?;
        Ok(ring)
    }

    /// Opens a ring created by a peer, polling until its header is valid.
    fn open(path: &Path, halt: &AtomicBool) -> SimResult<Self> {
        loop {
            if let Ok(file) = OpenOptions::new().read(true).write(true).open(path) {
                let ring = ShmRing { file, capacity: 0 };
                if ring.get_u64(OFF_MAGIC).unwrap_or(0) == RING_MAGIC {
                    let capacity = ring.get_u64(OFF_CAPACITY)?;
                    return Ok(ShmRing {
                        file: ring.file,
                        capacity,
                    });
                }
            }
            if halt.load(Ordering::SeqCst) {
                return Err(SimError::aborted(format!(
                    "halted while waiting for shm ring {}",
                    path.display()
                )));
            }
            std::thread::sleep(POLL_SLEEP * 10);
        }
    }

    fn get_u64(&self, off: u64) -> SimResult<u64> {
        let mut buf = [0u8; 8];
        self.file
            .read_exact_at(&mut buf, off)
            .map_err(|e| SimError::io("reading shm ring header", &e))?;
        Ok(u64::from_le_bytes(buf))
    }

    fn put_u64(&self, off: u64, v: u64) -> SimResult<()> {
        self.file
            .write_all_at(&v.to_le_bytes(), off)
            .map_err(|e| SimError::io("writing shm ring header", &e))
    }

    /// Appends `bytes`, blocking while the consumer is behind.
    fn push(&self, bytes: &[u8], halt: &AtomicBool) -> SimResult<()> {
        assert!(
            (bytes.len() as u64) < self.capacity,
            "frame of {} bytes cannot fit a {}-byte ring",
            bytes.len(),
            self.capacity
        );
        let write_pos = self.get_u64(OFF_WRITE_POS)?;
        loop {
            let read_pos = self.get_u64(OFF_READ_POS)?;
            if self.capacity - (write_pos - read_pos) >= bytes.len() as u64 {
                break;
            }
            if halt.load(Ordering::SeqCst) {
                return Err(SimError::aborted("halted while shm ring was full"));
            }
            std::thread::sleep(POLL_SLEEP);
        }
        let at = write_pos % self.capacity;
        let first = ((self.capacity - at) as usize).min(bytes.len());
        self.file
            .write_all_at(&bytes[..first], RING_HEADER_BYTES + at)
            .map_err(|e| SimError::io("writing shm ring data", &e))?;
        if first < bytes.len() {
            self.file
                .write_all_at(&bytes[first..], RING_HEADER_BYTES)
                .map_err(|e| SimError::io("writing shm ring data (wrap)", &e))?;
        }
        // Publish: data is durably in the page cache before the counter
        // moves, so a consumer that sees the new write_pos sees the bytes.
        self.put_u64(OFF_WRITE_POS, write_pos + bytes.len() as u64)
    }

    /// Pops whatever bytes are available into `buf`, without blocking.
    fn pop_available(&self, buf: &mut Vec<u8>) -> SimResult<usize> {
        let read_pos = self.get_u64(OFF_READ_POS)?;
        let write_pos = self.get_u64(OFF_WRITE_POS)?;
        let avail = write_pos - read_pos;
        if avail == 0 {
            return Ok(0);
        }
        let take = avail.min(64 * 1024) as usize;
        let at = read_pos % self.capacity;
        let first = ((self.capacity - at) as usize).min(take);
        let start = buf.len();
        buf.resize(start + take, 0);
        self.file
            .read_exact_at(&mut buf[start..start + first], RING_HEADER_BYTES + at)
            .map_err(|e| SimError::io("reading shm ring data", &e))?;
        if first < take {
            self.file
                .read_exact_at(&mut buf[start + first..], RING_HEADER_BYTES)
                .map_err(|e| SimError::io("reading shm ring data (wrap)", &e))?;
        }
        self.put_u64(OFF_READ_POS, read_pos + take as u64)?;
        Ok(take)
    }
}

/// Shared-memory [`TokenTransport`] between two processes on one host.
///
/// The "creator" side lays out two ring files under a rendezvous prefix —
/// `<prefix>.c2o` (creator-to-opener) and `<prefix>.o2c` — and the
/// "opener" side polls until both exist. Each direction is an independent
/// SPSC ring, so the duplex endpoint never contends with itself. Windows
/// are framed with [`encode_token_frame`] exactly as on a socket; the
/// ring is a byte stream, not a window queue, which keeps the wire format
/// identical across backends.
#[derive(Debug)]
pub struct ShmTransport<T> {
    tx_ring: ShmRing,
    rx_ring: ShmRing,
    deframer: TokenDeframer,
    scratch: Vec<u8>,
    send_seq: u64,
    recv_seq: u64,
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Default per-direction ring capacity: comfortably holds several maximum
/// link-latency batches of 8-byte tokens.
pub const SHM_RING_BYTES: u64 = 4 * 1024 * 1024;

impl<T: Snapshot> ShmTransport<T> {
    /// Creates both ring files under `prefix` and returns the creator end.
    ///
    /// # Errors
    ///
    /// Fails if the ring files cannot be created or sized.
    pub fn create(prefix: &Path) -> SimResult<Self> {
        let tx_ring = ShmRing::create(&prefix.with_extension("c2o"), SHM_RING_BYTES)?;
        let rx_ring = ShmRing::create(&prefix.with_extension("o2c"), SHM_RING_BYTES)?;
        Ok(ShmTransport {
            tx_ring,
            rx_ring,
            deframer: TokenDeframer::new(),
            scratch: Vec::new(),
            send_seq: 0,
            recv_seq: 0,
            _marker: std::marker::PhantomData,
        })
    }

    /// Opens the rings created by a peer's [`create`](Self::create),
    /// polling until they appear or `halt` is set.
    ///
    /// # Errors
    ///
    /// Fails if `halt` is set before the peer creates the rings.
    pub fn open(prefix: &Path, halt: &AtomicBool) -> SimResult<Self> {
        // Mirror of create: our tx is the peer's rx.
        let tx_ring = ShmRing::open(&prefix.with_extension("o2c"), halt)?;
        let rx_ring = ShmRing::open(&prefix.with_extension("c2o"), halt)?;
        Ok(ShmTransport {
            tx_ring,
            rx_ring,
            deframer: TokenDeframer::new(),
            scratch: Vec::new(),
            send_seq: 0,
            recv_seq: 0,
            _marker: std::marker::PhantomData,
        })
    }
}

impl<T: Snapshot + Send> TokenTransport<T> for ShmTransport<T> {
    fn kind(&self) -> TransportKind {
        TransportKind::SharedMemory
    }

    fn send_window(&mut self, window: &TokenWindow<T>) -> SimResult<()> {
        let frame = encode_token_frame(self.send_seq, window);
        self.send_seq += 1;
        // Backpressure (ring full) is bounded by the engine's own link
        // capacity, so a permanently-full ring means the peer died; the
        // halt flag is how the supervisor breaks us out of that.
        static NO_HALT: AtomicBool = AtomicBool::new(false);
        self.tx_ring.push(&frame, &NO_HALT)
    }

    fn recv_window(&mut self, halt: &AtomicBool) -> SimResult<Option<TokenWindow<T>>> {
        loop {
            if let Some((seq, w)) = self.deframer.next_frame::<T>()? {
                check_seq(&mut self.recv_seq, seq)?;
                return Ok(Some(w));
            }
            self.scratch.clear();
            let n = self.rx_ring.pop_available(&mut self.scratch)?;
            if n > 0 {
                self.deframer.feed(&self.scratch);
                continue;
            }
            // Ring empty and no partial frame pending: safe to halt.
            if halt.load(Ordering::SeqCst) {
                return Ok(None);
            }
            std::thread::sleep(POLL_SLEEP);
        }
    }
}

// ---------------------------------------------------------------------------
// Socket backend
// ---------------------------------------------------------------------------

/// The stream flavours [`SocketTransport`] can run over.
#[derive(Debug)]
enum SocketStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl SocketStream {
    fn set_read_timeout(&self, d: Duration) -> std::io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.set_read_timeout(Some(d)),
            SocketStream::Unix(s) => s.set_read_timeout(Some(d)),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.read(buf),
            SocketStream::Unix(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.write_all(buf),
            SocketStream::Unix(s) => s.write_all(buf),
        }
    }
}

/// A bound, not-yet-accepted listening socket for [`SocketTransport`].
///
/// Created by the receiving side of a cross-instance link; the address it
/// reports (via [`local_addr`](Self::local_addr)) is published through the
/// rendezvous directory so the sending side knows where to connect.
#[derive(Debug)]
pub enum SocketListener {
    /// TCP listener (cross-host capable; loopback in tests).
    Tcp(TcpListener),
    /// Unix-domain listener (same-host only, no port allocation).
    Unix(UnixListener),
}

impl SocketListener {
    /// Binds a TCP listener on `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn tcp(addr: &str) -> SimResult<Self> {
        TcpListener::bind(addr)
            .map(SocketListener::Tcp)
            .map_err(|e| SimError::io(format!("binding tcp listener on {addr}"), &e))
    }

    /// Binds a Unix-domain listener at `path`.
    ///
    /// # Errors
    ///
    /// Fails if the socket file cannot be created.
    pub fn unix(path: &Path) -> SimResult<Self> {
        UnixListener::bind(path)
            .map(SocketListener::Unix)
            .map_err(|e| SimError::io(format!("binding unix listener at {}", path.display()), &e))
    }

    /// The concrete TCP address after an ephemeral-port bind.
    ///
    /// # Errors
    ///
    /// Fails on a Unix-domain listener (its address is the path it was
    /// bound to) or if the socket has been invalidated.
    pub fn local_addr(&self) -> SimResult<SocketAddr> {
        match self {
            SocketListener::Tcp(l) => l
                .local_addr()
                .map_err(|e| SimError::io("reading listener address", &e)),
            SocketListener::Unix(_) => Err(SimError::protocol(
                "unix listeners are addressed by their path",
            )),
        }
    }

    /// Accepts the peer connection, completing the transport.
    ///
    /// # Errors
    ///
    /// Fails if the accept itself fails.
    pub fn accept<T: Snapshot>(self) -> SimResult<SocketTransport<T>> {
        let stream = match self {
            SocketListener::Tcp(l) => {
                let (s, _) = l
                    .accept()
                    .map_err(|e| SimError::io("accepting tcp peer", &e))?;
                s.set_nodelay(true).ok();
                SocketStream::Tcp(s)
            }
            SocketListener::Unix(l) => {
                let (s, _) = l
                    .accept()
                    .map_err(|e| SimError::io("accepting unix peer", &e))?;
                SocketStream::Unix(s)
            }
        };
        SocketTransport::from_stream(stream)
    }
}

/// Socket [`TokenTransport`] using the length-prefixed wire framing of
/// [`firesim_net::codec::encode_token_frame`].
///
/// This is the cross-"instance" hop: the paper runs one of these per
/// inter-switch link between EC2 instances (§III-B2). TCP's in-order
/// exactly-once delivery plus the codec's sequence numbers give the
/// determinism argument its transport leg: the receiving shard consumes
/// batch *m* as its `(m + latency/window)`-th input window no matter how
/// the bytes were segmented in flight.
#[derive(Debug)]
pub struct SocketTransport<T> {
    stream: SocketStream,
    deframer: TokenDeframer,
    read_buf: Vec<u8>,
    send_seq: u64,
    recv_seq: u64,
    /// Peer sent EOF: drain the deframer, then report end-of-stream.
    eof: bool,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Snapshot> SocketTransport<T> {
    fn from_stream(stream: SocketStream) -> SimResult<Self> {
        stream
            .set_read_timeout(Duration::from_millis(20))
            .map_err(|e| SimError::io("setting socket read timeout", &e))?;
        Ok(SocketTransport {
            stream,
            deframer: TokenDeframer::new(),
            read_buf: vec![0; 64 * 1024],
            send_seq: 0,
            recv_seq: 0,
            eof: false,
            _marker: std::marker::PhantomData,
        })
    }

    /// Connects to a TCP listener, retrying until it appears or `halt`.
    ///
    /// # Errors
    ///
    /// Fails if `halt` is set before the connection succeeds.
    pub fn connect_tcp(addr: &str, halt: &AtomicBool) -> SimResult<Self> {
        loop {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    s.set_nodelay(true).ok();
                    return Self::from_stream(SocketStream::Tcp(s));
                }
                Err(_) if !halt.load(Ordering::SeqCst) => std::thread::sleep(POLL_SLEEP * 10),
                Err(e) => {
                    return Err(SimError::io(format!("connecting tcp to {addr}"), &e));
                }
            }
        }
    }

    /// Connects to a Unix-domain listener, retrying until it appears.
    ///
    /// # Errors
    ///
    /// Fails if `halt` is set before the connection succeeds.
    pub fn connect_unix(path: &Path, halt: &AtomicBool) -> SimResult<Self> {
        loop {
            match UnixStream::connect(path) {
                Ok(s) => return Self::from_stream(SocketStream::Unix(s)),
                Err(_) if !halt.load(Ordering::SeqCst) => std::thread::sleep(POLL_SLEEP * 10),
                Err(e) => {
                    return Err(SimError::io(
                        format!("connecting unix to {}", path.display()),
                        &e,
                    ));
                }
            }
        }
    }
}

impl<T: Snapshot + Send> TokenTransport<T> for SocketTransport<T> {
    fn kind(&self) -> TransportKind {
        TransportKind::Tcp
    }

    fn send_window(&mut self, window: &TokenWindow<T>) -> SimResult<()> {
        let frame = encode_token_frame(self.send_seq, window);
        self.send_seq += 1;
        self.stream
            .write_all(&frame)
            .map_err(|e| SimError::io("sending token window", &e))
    }

    fn recv_window(&mut self, halt: &AtomicBool) -> SimResult<Option<TokenWindow<T>>> {
        loop {
            if let Some((seq, w)) = self.deframer.next_frame::<T>()? {
                check_seq(&mut self.recv_seq, seq)?;
                return Ok(Some(w));
            }
            if self.eof {
                if self.deframer.buffered_bytes() > 0 {
                    return Err(SimError::protocol(format!(
                        "peer closed mid-frame with {} bytes buffered",
                        self.deframer.buffered_bytes()
                    )));
                }
                return Ok(None);
            }
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => self.eof = true,
                Ok(n) => self.deframer.feed(&self.read_buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    // Quiet socket with no partial frame: halt is safe.
                    if halt.load(Ordering::SeqCst) && self.deframer.buffered_bytes() == 0 {
                        return Ok(None);
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == ErrorKind::ConnectionReset
                        || e.kind() == ErrorKind::BrokenPipe =>
                {
                    self.eof = true;
                }
                Err(e) => return Err(SimError::io("receiving token window", &e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn window(len: u32, fill: &[(u32, u64)]) -> TokenWindow<u64> {
        let mut w = TokenWindow::new(len);
        for &(off, v) in fill {
            w.push(off, v).unwrap();
        }
        w
    }

    /// Sends `n` numbered windows through `tx` while receiving on `rx`,
    /// asserting order and payload integrity.
    fn exercise(
        mut tx: impl TokenTransport<u64> + 'static,
        mut rx: impl TokenTransport<u64> + 'static,
        n: u64,
    ) {
        let halt = Arc::new(AtomicBool::new(false));
        let h2 = Arc::clone(&halt);
        let sender = std::thread::spawn(move || {
            for i in 0..n {
                tx.send_window(&window(8, &[(0, i), (7, i * 2)])).unwrap();
            }
            tx // keep the endpoint alive until the receiver is done
        });
        for i in 0..n {
            let w = rx.recv_window(&h2).unwrap().expect("stream ended early");
            assert_eq!(w.get(0), Some(&i));
            assert_eq!(w.get(7), Some(&(i * 2)));
        }
        halt.store(true, Ordering::SeqCst);
        assert!(rx.recv_window(&halt).unwrap().is_none());
        drop(sender.join().unwrap());
    }

    #[test]
    fn channel_round_trip() {
        let (a, b) = ChannelTransport::<u64>::pair();
        exercise(a, b, 100);
    }

    #[test]
    fn channel_is_duplex() {
        let (mut a, mut b) = ChannelTransport::<u64>::pair();
        let halt = AtomicBool::new(false);
        a.send_window(&window(4, &[(1, 10)])).unwrap();
        b.send_window(&window(4, &[(2, 20)])).unwrap();
        assert_eq!(b.recv_window(&halt).unwrap().unwrap().get(1), Some(&10));
        assert_eq!(a.recv_window(&halt).unwrap().unwrap().get(2), Some(&20));
    }

    #[test]
    fn shm_round_trip() {
        let dir = std::env::temp_dir().join(format!("firesim-shm-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("ring");
        let halt = AtomicBool::new(false);
        let a = ShmTransport::<u64>::create(&prefix).unwrap();
        let b = ShmTransport::<u64>::open(&prefix, &halt).unwrap();
        exercise(a, b, 200);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shm_ring_wraps() {
        // A tiny ring forces many wrap-arounds.
        let dir = std::env::temp_dir().join(format!("firesim-shm-wrap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.ring");
        let ring = ShmRing::create(&path, 96).unwrap();
        let reader = ShmRing {
            file: OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap(),
            capacity: 96,
        };
        let halt = AtomicBool::new(false);
        let mut got = Vec::new();
        for round in 0..20u8 {
            let msg = [round; 40];
            ring.push(&msg, &halt).unwrap();
            let mut buf = Vec::new();
            while buf.len() < 40 {
                reader.pop_available(&mut buf).unwrap();
            }
            got.push(buf);
        }
        for (round, buf) in got.iter().enumerate() {
            assert_eq!(buf, &[round as u8; 40], "round {round}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tcp_round_trip() {
        let listener = SocketListener::tcp("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let halt = AtomicBool::new(false);
        let connect = std::thread::spawn(move || {
            SocketTransport::<u64>::connect_tcp(&addr, &AtomicBool::new(false)).unwrap()
        });
        let a = listener.accept::<u64>().unwrap();
        let b = connect.join().unwrap();
        let _ = &halt;
        exercise(b, a, 150);
    }

    #[test]
    fn unix_round_trip() {
        let dir = std::env::temp_dir().join(format!("firesim-uds-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("link.sock");
        let listener = SocketListener::unix(&path).unwrap();
        let p2 = path.clone();
        let connect = std::thread::spawn(move || {
            SocketTransport::<u64>::connect_unix(&p2, &AtomicBool::new(false)).unwrap()
        });
        let a = listener.accept::<u64>().unwrap();
        let b = connect.join().unwrap();
        exercise(a, b, 50);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn socket_detects_sequence_gap() {
        let listener = SocketListener::tcp("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let connect = std::thread::spawn(move || {
            SocketTransport::<u64>::connect_tcp(&addr, &AtomicBool::new(false)).unwrap()
        });
        let mut rx = listener.accept::<u64>().unwrap();
        let mut tx = connect.join().unwrap();
        tx.send_seq = 5; // simulate a dropped batch
        tx.send_window(&window(4, &[])).unwrap();
        let halt = AtomicBool::new(false);
        let err = rx.recv_window(&halt).unwrap_err();
        assert!(matches!(err, SimError::Protocol { .. }), "{err}");
    }

    #[test]
    fn halt_drains_in_flight_windows_first() {
        let (mut a, mut b) = ChannelTransport::<u64>::pair();
        for i in 0..5 {
            a.send_window(&window(4, &[(0, i)])).unwrap();
        }
        let halt = AtomicBool::new(true); // halt set *before* first recv
        for i in 0..5 {
            let w = b.recv_window(&halt).unwrap().expect("window lost to halt");
            assert_eq!(w.get(0), Some(&i));
        }
        assert!(b.recv_window(&halt).unwrap().is_none());
    }
}
