//! FPGA resource accounting, including supernode packing (§III-A5).
//!
//! The paper reports that a single simulated node uses 32.6% of the
//! host FPGA's LUTs — 14.4% for the custom server-blade RTL and the rest
//! for simulation infrastructure (shell, DMA, token transport, DRAM
//! model) — and one of the four FPGA DRAM channels. The "supernode"
//! configuration packs four simulated blades per FPGA, raising blade LUT
//! usage to ~57.7% and total utilisation to ~76%.

/// Resource model of one host FPGA (Xilinx Virtex UltraScale+ VU9P).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaModel {
    /// Total LUTs available.
    pub total_luts: u64,
    /// Fraction of LUTs used by simulation infrastructure (shell, token
    /// transport, DRAM model) regardless of blade count.
    pub infra_fraction: f64,
    /// Fraction of LUTs used per simulated blade.
    pub blade_fraction: f64,
    /// DRAM channels on the FPGA board.
    pub dram_channels: usize,
    /// Utilisation above which place-and-route is assumed to fail.
    pub routable_limit: f64,
}

impl Default for FpgaModel {
    fn default() -> Self {
        FpgaModel {
            total_luts: 1_182_000,
            infra_fraction: 0.182,
            blade_fraction: 0.144,
            dram_channels: 4,
            routable_limit: 0.85,
        }
    }
}

/// Utilisation report for one FPGA hosting `blades` simulated nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaUtilization {
    /// Simulated blades on this FPGA.
    pub blades: usize,
    /// LUT fraction used by blade RTL.
    pub blade_luts: f64,
    /// Total LUT fraction used.
    pub total_luts: f64,
    /// DRAM channels in use (one per blade).
    pub dram_channels_used: usize,
}

impl FpgaModel {
    /// Utilisation when hosting `blades` simulated nodes.
    pub fn utilization(&self, blades: usize) -> FpgaUtilization {
        FpgaUtilization {
            blades,
            blade_luts: self.blade_fraction * blades as f64,
            total_luts: self.infra_fraction + self.blade_fraction * blades as f64,
            dram_channels_used: blades.min(self.dram_channels),
        }
    }

    /// True when a design with `blades` nodes fits (LUTs and DRAM
    /// channels).
    pub fn fits(&self, blades: usize) -> bool {
        blades <= self.dram_channels && self.utilization(blades).total_luts <= self.routable_limit
    }

    /// The largest supernode packing that fits.
    pub fn max_blades(&self) -> usize {
        (1..=self.dram_channels)
            .take_while(|&n| self.fits(n))
            .last()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_configuration_matches_paper() {
        let f = FpgaModel::default();
        let u = f.utilization(1);
        assert!((u.total_luts - 0.326).abs() < 0.001, "{u:?}");
        assert!((u.blade_luts - 0.144).abs() < 0.001);
        assert_eq!(u.dram_channels_used, 1);
    }

    #[test]
    fn supernode_configuration_matches_paper() {
        let f = FpgaModel::default();
        let u = f.utilization(4);
        assert!((u.blade_luts - 0.577).abs() < 0.002, "{u:?}"); // ~57.7%
        assert!((u.total_luts - 0.758).abs() < 0.005, "{u:?}"); // ~76%
        assert_eq!(u.dram_channels_used, 4);
        assert!(f.fits(4));
    }

    #[test]
    fn five_blades_do_not_fit() {
        let f = FpgaModel::default();
        assert!(!f.fits(5)); // out of DRAM channels and LUT budget
        assert_eq!(f.max_blades(), 4);
    }
}
