//! # firesim-platform
//!
//! The EC2 F1 host-platform model: instance types and pricing, FPGA
//! resource accounting (including the "supernode" packing optimisation of
//! §III-A5), host transport characteristics, and the deployment planner
//! that maps a target cluster onto cloud instances — reproducing the
//! §V-C cost arithmetic ($100/hour spot, $440/hour on-demand, $12.8M of
//! FPGAs for the 1024-node datacenter).
//!
//! FireSim-rs runs its simulations on local host threads rather than real
//! F1 instances (see DESIGN.md), so most of this crate is a *model*: it
//! answers "what would this simulation need on EC2, and what would it
//! cost?" and feeds the deployment summaries the manager prints.
//!
//! The exception is [`link`], which is *live*: the [`TokenTransport`]
//! backends there actually move token batches between worker processes —
//! the in-software analogue of the paper's shared-memory and socket ports
//! (§III-B2) — and are what `firesim-manager`'s partitioned runs are
//! wired with.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fpga;
pub mod instance;
pub mod link;
pub mod plan;
pub mod transport;

pub use fpga::{FpgaModel, FpgaUtilization};
pub use instance::{InstanceType, Pricing};
pub use link::{ChannelTransport, ShmTransport, SocketListener, SocketTransport, TokenTransport};
pub use plan::{DeploymentPlan, PlanRequest};
pub use transport::{Transport, TransportKind};
