//! Host token-transport characteristics (§III-B2).
//!
//! Three physical transports move token batches between simulated
//! components on the host platform: PCIe between an FPGA and its host
//! CPU, shared memory between processes on one instance, and TCP sockets
//! between instances. Since FireSim batches one link-latency of tokens
//! per transfer, the time to move one batch bounds the achievable
//! simulation rate — this model is used to explain and sanity-check the
//! measured Fig 8/9 scaling curves.

/// The physical transport carrying a token stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// FPGA <-> host CPU over PCIe (Amazon EDMA).
    Pcie,
    /// Same-host processes over shared memory (zero copy).
    SharedMemory,
    /// Host <-> host over the EC2 network (25 Gbit/s instances).
    Tcp,
}

impl TransportKind {
    /// Every transport class, in descending-throughput order.
    pub const ALL: [TransportKind; 3] = [
        TransportKind::SharedMemory,
        TransportKind::Pcie,
        TransportKind::Tcp,
    ];

    /// Stable lowercase name, as used in fleet specs and cost baselines.
    pub fn as_str(self) -> &'static str {
        match self {
            TransportKind::Pcie => "pcie",
            TransportKind::SharedMemory => "shm",
            TransportKind::Tcp => "tcp",
        }
    }

    /// Parses the name produced by [`TransportKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "pcie" => Some(TransportKind::Pcie),
            "shm" | "shared-memory" => Some(TransportKind::SharedMemory),
            "tcp" => Some(TransportKind::Tcp),
            _ => None,
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Latency/bandwidth parameters of one transport hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transport {
    /// Which physical mechanism.
    pub kind: TransportKind,
    /// One-way latency per batch transfer, microseconds.
    pub latency_us: f64,
    /// Sustained bandwidth, gigabits per second.
    pub gbps: f64,
}

impl Transport {
    /// Default parameters for a transport kind (2018-era EC2).
    pub fn of(kind: TransportKind) -> Self {
        match kind {
            TransportKind::Pcie => Transport {
                kind,
                latency_us: 8.0,
                gbps: 50.0,
            },
            TransportKind::SharedMemory => Transport {
                kind,
                latency_us: 0.5,
                gbps: 200.0,
            },
            TransportKind::Tcp => Transport {
                kind,
                latency_us: 50.0,
                gbps: 20.0,
            },
        }
    }

    /// Host time (microseconds) to move one batch of `tokens` tokens of
    /// `token_bytes` bytes each.
    ///
    /// Unit derivation for the `gbps * 1e3` divisor, pinned by
    /// `pin_known_batch_times` so the Fig 9 model cannot silently drift:
    /// 1 Gbit/s = 10⁹ bits / 10⁶ µs = **10³ bits per microsecond**, so
    /// `bits / (gbps · 10³)` is `bits / (bits/µs)` = microseconds. E.g. a
    /// 6400-token batch of 8-byte tokens is 409 600 bits; over PCIe at
    /// 50 Gbit/s that's 409 600 / 50 000 = 8.192 µs of wire time, plus
    /// the 8 µs per-transfer latency = 16.192 µs.
    pub fn batch_time_us(&self, tokens: u64, token_bytes: u64) -> f64 {
        let bits = (tokens * token_bytes * 8) as f64;
        self.latency_us + bits / (self.gbps * 1e3)
    }

    /// Upper bound on simulation rate (target Hz) for a link whose token
    /// batches cross this transport twice per batch round-trip, with
    /// `batch_tokens` tokens per batch (= the target link latency).
    ///
    /// This is the first-order model behind Fig 9: larger batches
    /// amortise the per-transfer latency.
    pub fn sim_rate_bound_hz(&self, batch_tokens: u64, token_bytes: u64) -> f64 {
        let us_per_batch = 2.0 * self.batch_time_us(batch_tokens, token_bytes);
        batch_tokens as f64 / (us_per_batch * 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_time_scales_with_size() {
        let t = Transport::of(TransportKind::Pcie);
        let small = t.batch_time_us(100, 8);
        let large = t.batch_time_us(10_000, 8);
        assert!(large > small);
        // Latency dominates small batches.
        assert!((small - t.latency_us).abs() / t.latency_us < 0.1);
    }

    #[test]
    fn bigger_batches_raise_the_rate_bound() {
        let t = Transport::of(TransportKind::Pcie);
        let slow = t.sim_rate_bound_hz(640, 8); // 200 ns link
        let fast = t.sim_rate_bound_hz(6_400, 8); // 2 us link
        assert!(fast > slow * 5.0, "fast {fast:.0} slow {slow:.0}");
    }

    #[test]
    fn pin_known_batch_times() {
        // 6400 tokens x 8 B = 409600 bits. At 50 Gbit/s (= 50e3 bits/us)
        // the wire time is 8.192 us; PCIe adds 8.0 us of latency.
        let pcie = Transport::of(TransportKind::Pcie);
        assert!((pcie.batch_time_us(6_400, 8) - 16.192).abs() < 1e-9);
        // Shm: 409600 / 200e3 = 2.048 us + 0.5 us latency.
        let shm = Transport::of(TransportKind::SharedMemory);
        assert!((shm.batch_time_us(6_400, 8) - 2.548).abs() < 1e-9);
        // Tcp: 409600 / 20e3 = 20.48 us + 50 us latency.
        let tcp = Transport::of(TransportKind::Tcp);
        assert!((tcp.batch_time_us(6_400, 8) - 70.48).abs() < 1e-9);
        // And the derived rate bound: 6400 tokens per 2*16.192 us round
        // trip = 197.628... MHz for PCIe.
        let hz = pcie.sim_rate_bound_hz(6_400, 8);
        assert!((hz - 6_400.0 / (2.0 * 16.192e-6)).abs() < 1.0);
        assert!((hz / 1e6 - 197.628).abs() < 1e-2, "{hz}");
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in TransportKind::ALL {
            assert_eq!(TransportKind::parse(kind.as_str()), Some(kind));
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert_eq!(
            TransportKind::parse("shared-memory"),
            Some(TransportKind::SharedMemory)
        );
        assert_eq!(TransportKind::parse("carrier-pigeon"), None);
    }

    #[test]
    fn shm_beats_pcie_beats_tcp() {
        let batch = 6_400;
        let shm = Transport::of(TransportKind::SharedMemory).sim_rate_bound_hz(batch, 8);
        let pcie = Transport::of(TransportKind::Pcie).sim_rate_bound_hz(batch, 8);
        let tcp = Transport::of(TransportKind::Tcp).sim_rate_bound_hz(batch, 8);
        assert!(shm > pcie && pcie > tcp);
    }
}
