//! Host token-transport characteristics (§III-B2).
//!
//! Three physical transports move token batches between simulated
//! components on the host platform: PCIe between an FPGA and its host
//! CPU, shared memory between processes on one instance, and TCP sockets
//! between instances. Since FireSim batches one link-latency of tokens
//! per transfer, the time to move one batch bounds the achievable
//! simulation rate — this model is used to explain and sanity-check the
//! measured Fig 8/9 scaling curves.

/// The physical transport carrying a token stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// FPGA <-> host CPU over PCIe (Amazon EDMA).
    Pcie,
    /// Same-host processes over shared memory (zero copy).
    SharedMemory,
    /// Host <-> host over the EC2 network (25 Gbit/s instances).
    Tcp,
}

/// Latency/bandwidth parameters of one transport hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transport {
    /// Which physical mechanism.
    pub kind: TransportKind,
    /// One-way latency per batch transfer, microseconds.
    pub latency_us: f64,
    /// Sustained bandwidth, gigabits per second.
    pub gbps: f64,
}

impl Transport {
    /// Default parameters for a transport kind (2018-era EC2).
    pub fn of(kind: TransportKind) -> Self {
        match kind {
            TransportKind::Pcie => Transport {
                kind,
                latency_us: 8.0,
                gbps: 50.0,
            },
            TransportKind::SharedMemory => Transport {
                kind,
                latency_us: 0.5,
                gbps: 200.0,
            },
            TransportKind::Tcp => Transport {
                kind,
                latency_us: 50.0,
                gbps: 20.0,
            },
        }
    }

    /// Host time (microseconds) to move one batch of `tokens` tokens of
    /// `token_bytes` bytes each.
    pub fn batch_time_us(&self, tokens: u64, token_bytes: u64) -> f64 {
        let bits = (tokens * token_bytes * 8) as f64;
        self.latency_us + bits / (self.gbps * 1e3)
    }

    /// Upper bound on simulation rate (target Hz) for a link whose token
    /// batches cross this transport twice per batch round-trip, with
    /// `batch_tokens` tokens per batch (= the target link latency).
    ///
    /// This is the first-order model behind Fig 9: larger batches
    /// amortise the per-transfer latency.
    pub fn sim_rate_bound_hz(&self, batch_tokens: u64, token_bytes: u64) -> f64 {
        let us_per_batch = 2.0 * self.batch_time_us(batch_tokens, token_bytes);
        batch_tokens as f64 / (us_per_batch * 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_time_scales_with_size() {
        let t = Transport::of(TransportKind::Pcie);
        let small = t.batch_time_us(100, 8);
        let large = t.batch_time_us(10_000, 8);
        assert!(large > small);
        // Latency dominates small batches.
        assert!((small - t.latency_us).abs() / t.latency_us < 0.1);
    }

    #[test]
    fn bigger_batches_raise_the_rate_bound() {
        let t = Transport::of(TransportKind::Pcie);
        let slow = t.sim_rate_bound_hz(640, 8); // 200 ns link
        let fast = t.sim_rate_bound_hz(6_400, 8); // 2 us link
        assert!(fast > slow * 5.0, "fast {fast:.0} slow {slow:.0}");
    }

    #[test]
    fn shm_beats_pcie_beats_tcp() {
        let batch = 6_400;
        let shm = Transport::of(TransportKind::SharedMemory).sim_rate_bound_hz(batch, 8);
        let pcie = Transport::of(TransportKind::Pcie).sim_rate_bound_hz(batch, 8);
        let tcp = Transport::of(TransportKind::Tcp).sim_rate_bound_hz(batch, 8);
        assert!(shm > pcie && pcie > tcp);
    }
}
