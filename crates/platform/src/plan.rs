//! The deployment planner: maps a target cluster onto EC2 instances and
//! prices it (§III-B3 mapping + §V-C cost arithmetic).

use core::fmt;

use crate::fpga::FpgaModel;
use crate::instance::{InstanceType, Pricing};

/// What needs to be deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanRequest {
    /// Simulated server blades.
    pub nodes: usize,
    /// Top-of-rack switch models (hosted on the F1 instances).
    pub tor_switches: usize,
    /// Aggregation + root switch models (hosted on m4 instances, one
    /// instance per switch as in §V-C).
    pub upper_switches: usize,
    /// Pack four blades per FPGA (supernode, §III-A5).
    pub supernode: bool,
}

/// The planned fleet and its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentPlan {
    /// The request this plan satisfies.
    pub request: PlanRequest,
    /// Simulated blades per FPGA (1 standard, 4 supernode).
    pub blades_per_fpga: usize,
    /// FPGAs needed.
    pub fpgas: usize,
    /// `f1.16xlarge` instances (8 FPGAs each; partially-filled last
    /// instance still counts whole).
    pub f1_16xlarge: usize,
    /// `m4.16xlarge` instances for upper-level switches.
    pub m4_16xlarge: usize,
    /// Spot cost, $/hour.
    pub spot_per_hour: f64,
    /// On-demand cost, $/hour.
    pub ondemand_per_hour: f64,
    /// Retail value of the FPGAs used.
    pub fpga_value: f64,
}

impl DeploymentPlan {
    /// Plans a deployment with default FPGA and pricing models.
    pub fn new(request: PlanRequest) -> Self {
        Self::with_models(request, &FpgaModel::default(), &Pricing::default())
    }

    /// Plans a deployment with explicit models.
    ///
    /// # Panics
    ///
    /// Panics if the supernode packing does not fit the FPGA model.
    pub fn with_models(request: PlanRequest, fpga: &FpgaModel, pricing: &Pricing) -> Self {
        let blades_per_fpga = if request.supernode {
            let n = fpga.max_blades();
            assert!(n >= 1, "supernode packing does not fit");
            n
        } else {
            1
        };
        let fpgas = request.nodes.div_ceil(blades_per_fpga.max(1));
        let f1_16 = fpgas.div_ceil(InstanceType::F1_16xlarge.fpgas());
        let m4 = request.upper_switches;
        let spot = f1_16 as f64 * pricing.spot(InstanceType::F1_16xlarge)
            + m4 as f64 * pricing.spot(InstanceType::M4_16xlarge);
        let ondemand = f1_16 as f64 * pricing.ondemand(InstanceType::F1_16xlarge)
            + m4 as f64 * pricing.ondemand(InstanceType::M4_16xlarge);
        DeploymentPlan {
            request,
            blades_per_fpga,
            fpgas,
            f1_16xlarge: f1_16,
            m4_16xlarge: m4,
            spot_per_hour: spot,
            ondemand_per_hour: ondemand,
            fpga_value: (f1_16 * InstanceType::F1_16xlarge.fpgas()) as f64 * pricing.fpga_retail,
        }
    }
}

impl fmt::Display for DeploymentPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deployment: {} nodes ({} per FPGA{}), {} ToR + {} upper switches",
            self.request.nodes,
            self.blades_per_fpga,
            if self.request.supernode {
                ", supernode"
            } else {
                ""
            },
            self.request.tor_switches,
            self.request.upper_switches,
        )?;
        writeln!(
            f,
            "fleet: {} f1.16xlarge ({} FPGAs) + {} m4.16xlarge",
            self.f1_16xlarge, self.fpgas, self.m4_16xlarge
        )?;
        write!(
            f,
            "cost: ${:.0}/hr spot, ${:.0}/hr on-demand; ${:.1}M of FPGAs",
            self.spot_per_hour,
            self.ondemand_per_hour,
            self.fpga_value / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §V-C: the 1024-node datacenter simulation.
    #[test]
    fn thousand_node_plan_matches_paper() {
        let plan = DeploymentPlan::new(PlanRequest {
            nodes: 1024,
            tor_switches: 32,
            upper_switches: 5, // 4 aggregation + 1 root
            supernode: true,
        });
        assert_eq!(plan.blades_per_fpga, 4);
        assert_eq!(plan.fpgas, 256);
        assert_eq!(plan.f1_16xlarge, 32);
        assert_eq!(plan.m4_16xlarge, 5);
        assert!(
            (plan.spot_per_hour - 100.0).abs() < 5.0,
            "spot ${:.0}",
            plan.spot_per_hour
        );
        assert!(
            (plan.ondemand_per_hour - 440.0).abs() < 10.0,
            "on-demand ${:.0}",
            plan.ondemand_per_hour
        );
        assert_eq!(plan.fpga_value, 12_800_000.0);
        let text = plan.to_string();
        assert!(text.contains("1024 nodes"));
        assert!(text.contains("32 f1.16xlarge"));
    }

    /// §III: the 64-node example (8 ToR + root, standard config).
    #[test]
    fn sixty_four_node_plan() {
        let plan = DeploymentPlan::new(PlanRequest {
            nodes: 64,
            tor_switches: 8,
            upper_switches: 1,
            supernode: false,
        });
        assert_eq!(plan.blades_per_fpga, 1);
        assert_eq!(plan.fpgas, 64);
        assert_eq!(plan.f1_16xlarge, 8);
        assert_eq!(plan.m4_16xlarge, 1);
    }

    #[test]
    fn partial_instances_round_up() {
        let plan = DeploymentPlan::new(PlanRequest {
            nodes: 9,
            tor_switches: 1,
            upper_switches: 0,
            supernode: false,
        });
        assert_eq!(plan.fpgas, 9);
        assert_eq!(plan.f1_16xlarge, 2); // 9 FPGAs -> 2 instances
        let plan = DeploymentPlan::new(PlanRequest {
            nodes: 9,
            tor_switches: 1,
            upper_switches: 0,
            supernode: true,
        });
        assert_eq!(plan.fpgas, 3);
        assert_eq!(plan.f1_16xlarge, 1);
    }
}
