//! Measurement primitives used by the evaluation harness: counters,
//! latency histograms with percentiles, and time series.
//!
//! The paper's experiments report 50th/95th-percentile latencies (Fig 7,
//! Table III), aggregate bandwidth over time (Fig 6), and simulation rates
//! (Figs 8-9). These types collect those measurements inside simulated
//! components and are cheap enough to leave enabled always.

use core::fmt;

use crate::error::SimResult;
use crate::snapshot::{Snapshot, SnapshotReader, SnapshotWriter};
use crate::time::Cycle;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use firesim_core::stats::Counter;
///
/// let mut packets = Counter::new("packets_rx");
/// packets.add(3);
/// packets.inc();
/// assert_eq!(packets.get(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a counter with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.value)
    }
}

/// A sample reservoir with exact percentiles.
///
/// Stores every sample (the experiments here collect at most a few hundred
/// thousand), sorts lazily on query.
///
/// # Examples
///
/// ```
/// use firesim_core::stats::Histogram;
///
/// let mut h = Histogram::new("rtt_us");
/// for v in 0..=100 {
///     h.record(v);
/// }
/// assert_eq!(h.percentile(50.0), Some(50));
/// assert_eq!(h.percentile(95.0), Some(95));
/// assert_eq!(h.min(), Some(0));
/// assert_eq!(h.max(), Some(100));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    name: String,
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Histogram {
            name: name.into(),
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (0-100) by linear interpolation between ranks,
    /// or `None` when empty.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let rank = p / 100.0 * (self.samples.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            return Some(self.samples[lo]);
        }
        let frac = rank - lo as f64;
        let a = self.samples[lo] as f64;
        let b = self.samples[hi] as f64;
        Some((a + (b - a) * frac).round() as u64)
    }

    /// The `p`-th percentile (0-100) by the nearest-rank definition: the
    /// smallest sample `v` such that at least `p` percent of all samples
    /// are `<= v`. Unlike [`Histogram::percentile`] this always returns an
    /// actual sample, which matters for duplicate-heavy distributions.
    /// `None` when empty.
    pub fn percentile_nearest_rank(&mut self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let n = self.samples.len();
        let rank = (p / 100.0 * n as f64).ceil() as usize;
        Some(self.samples[rank.clamp(1, n) - 1])
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|&v| v as f64).sum::<f64>() / self.samples.len() as f64)
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// All samples in insertion order (unsorted view not guaranteed after a
    /// percentile query).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }
}

/// A `(cycle, value)` time series, e.g. bandwidth at a switch over time
/// (Fig 6).
///
/// # Examples
///
/// ```
/// use firesim_core::stats::TimeSeries;
/// use firesim_core::Cycle;
///
/// let mut ts = TimeSeries::new("root_bw_gbps");
/// ts.record(Cycle::new(0), 0.0);
/// ts.record(Cycle::new(6400), 100.0);
/// assert_eq!(ts.len(), 2);
/// assert_eq!(ts.points()[1].1, 100.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    name: String,
    points: Vec<(Cycle, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series' name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point. Callers should append in nondecreasing cycle order.
    pub fn record(&mut self, at: Cycle, value: f64) {
        self.points.push((at, value));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The recorded points in insertion order.
    pub fn points(&self) -> &[(Cycle, f64)] {
        &self.points
    }

    /// Merges another series' points into this one by cycle (stable: on
    /// equal cycles, this series' points keep their place ahead of
    /// `other`'s). For series recorded in nondecreasing cycle order the
    /// merge is associative, so per-worker series can be combined in any
    /// grouping with the same result.
    pub fn merge(&mut self, other: &TimeSeries) {
        let mut merged = Vec::with_capacity(self.points.len() + other.points.len());
        let (mut i, mut j) = (0, 0);
        while i < self.points.len() && j < other.points.len() {
            if other.points[j].0 < self.points[i].0 {
                merged.push(other.points[j]);
                j += 1;
            } else {
                merged.push(self.points[i]);
                i += 1;
            }
        }
        merged.extend_from_slice(&self.points[i..]);
        merged.extend_from_slice(&other.points[j..]);
        self.points = merged;
    }

    /// Maximum value in the series, or `None` when empty.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// Running mean/variance over a stream of samples (Welford's online
/// algorithm), with a normal-approximation confidence interval.
///
/// Used by the sampled timing mode to turn per-detailed-window IPC
/// samples into error bars (DESIGN §18). Updates are performed in a
/// fixed order (one sample per completed window, in target-cycle order),
/// so the f64 state — and therefore the `FSCKPT01` bytes it snapshots
/// into — is deterministic across hosts and worker counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowStats {
    /// Samples observed.
    pub n: u64,
    /// Running mean.
    pub mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    pub m2: f64,
}

impl WindowStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        WindowStats::default()
    }

    /// Folds one sample in.
    pub fn record(&mut self, sample: f64) {
        self.n += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (sample - self.mean);
    }

    /// Sample variance (unbiased); 0 until two samples exist.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard error of the mean; 0 until two samples exist.
    pub fn std_error(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.variance() / self.n as f64).sqrt()
        }
    }

    /// 95% confidence interval `(lo, hi)` for the mean, using the normal
    /// approximation (`mean ± 1.96 · s/√n`). Collapses to the point
    /// estimate until two samples exist.
    pub fn confidence95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error();
        (self.mean - half, self.mean + half)
    }
}

impl Snapshot for WindowStats {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.n);
        w.put(&self.mean);
        w.put(&self.m2);
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        Ok(WindowStats {
            n: r.get_u64()?,
            mean: r.get()?,
            m2: r.get()?,
        })
    }
}

impl Snapshot for Counter {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_str(&self.name);
        w.put_u64(self.value);
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        Ok(Counter {
            name: r.get_str()?,
            value: r.get_u64()?,
        })
    }
}

impl Snapshot for Histogram {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_str(&self.name);
        w.put(&self.samples);
        // Sample order is observable (percentile queries sort in place), so
        // the sorted flag is real state.
        w.put_bool(self.sorted);
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        Ok(Histogram {
            name: r.get_str()?,
            samples: r.get()?,
            sorted: r.get_bool()?,
        })
    }
}

impl Snapshot for TimeSeries {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_str(&self.name);
        w.put(&self.points);
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        Ok(TimeSeries {
            name: r.get_str()?,
            points: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_stats_mean_and_ci() {
        let mut s = WindowStats::new();
        // One sample: CI collapses to the point estimate.
        s.record(2.0);
        assert_eq!(s.confidence95(), (2.0, 2.0));
        for v in [4.0, 4.0, 6.0] {
            s.record(v);
        }
        assert_eq!(s.n, 4);
        assert!((s.mean - 4.0).abs() < 1e-12);
        let (lo, hi) = s.confidence95();
        assert!(lo < 4.0 && 4.0 < hi);
        // Round-trips through a snapshot bit-exactly.
        let mut w = SnapshotWriter::new();
        s.save(&mut w);
        let bytes = w.into_bytes();
        let got = WindowStats::load(&mut SnapshotReader::new(&bytes)).unwrap();
        assert_eq!(got, s);
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
        assert_eq!(c.to_string(), "x: 11");
    }

    #[test]
    fn histogram_percentiles_small() {
        let mut h = Histogram::new("h");
        assert_eq!(h.percentile(50.0), None);
        h.record(5);
        assert_eq!(h.percentile(0.0), Some(5));
        assert_eq!(h.percentile(100.0), Some(5));
        h.record(15);
        assert_eq!(h.percentile(50.0), Some(10)); // interpolated
    }

    #[test]
    fn histogram_percentiles_uniform() {
        let mut h = Histogram::new("h");
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), Some(51)); // rank 49.5 -> 50.5 -> 51 rounded
        assert_eq!(h.percentile(95.0), Some(95));
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean().unwrap() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_unsorted_insertion() {
        let mut h = Histogram::new("h");
        for v in [9, 1, 5, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), Some(5));
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new("a");
        let mut b = Histogram::new("b");
        a.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Some(3));
    }

    #[test]
    fn nearest_rank_percentiles() {
        let mut h = Histogram::new("h");
        assert_eq!(h.percentile_nearest_rank(50.0), None);
        for v in [15, 20, 35, 40, 50] {
            h.record(v);
        }
        // Classic nearest-rank worked example.
        assert_eq!(h.percentile_nearest_rank(5.0), Some(15));
        assert_eq!(h.percentile_nearest_rank(30.0), Some(20));
        assert_eq!(h.percentile_nearest_rank(40.0), Some(20));
        assert_eq!(h.percentile_nearest_rank(50.0), Some(35));
        assert_eq!(h.percentile_nearest_rank(100.0), Some(50));
        assert_eq!(h.percentile_nearest_rank(0.0), Some(15));
    }

    #[test]
    fn timeseries_merge_interleaves_by_cycle() {
        let mut a = TimeSeries::new("a");
        a.record(Cycle::new(0), 1.0);
        a.record(Cycle::new(20), 3.0);
        let mut b = TimeSeries::new("b");
        b.record(Cycle::new(10), 2.0);
        b.record(Cycle::new(20), 4.0);
        a.merge(&b);
        assert_eq!(
            a.points(),
            &[
                (Cycle::new(0), 1.0),
                (Cycle::new(10), 2.0),
                (Cycle::new(20), 3.0), // stable: self's point first on ties
                (Cycle::new(20), 4.0),
            ]
        );
    }

    #[test]
    fn timeseries_points() {
        let mut ts = TimeSeries::new("bw");
        assert!(ts.is_empty());
        ts.record(Cycle::new(10), 1.5);
        ts.record(Cycle::new(20), 4.5);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.max_value(), Some(4.5));
        assert_eq!(ts.points()[0], (Cycle::new(10), 1.5));
    }
}
