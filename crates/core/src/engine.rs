//! The simulation engine: agents, wiring, and deterministic execution.
//!
//! An [`Engine`] owns a set of [`SimAgent`]s (server blades, switches,
//! instrumentation) and the latency channels connecting them. Execution
//! proceeds in *rounds* of one token window each: every round, every agent
//! consumes exactly one window per input port and produces exactly one window
//! per output port. Channels are pre-seeded with one link-latency of empty
//! tokens, so the whole system can start immediately and never deadlocks —
//! exactly the scheme in §III-B2 of the FireSim paper.
//!
//! ## Determinism
//!
//! Because an agent's `advance` sees exactly the tokens for its current
//! window and nothing else, the simulation result is a pure function of the
//! initial state. [`Engine::run_for`] produces bit-identical results whether
//! run with 1 host thread or many — and regardless of how agents are
//! partitioned across those threads; the property tests in this crate and
//! the integration suite check this.
//!
//! ## Host parallelism and scheduling
//!
//! With [`Engine::set_host_threads`], agents are partitioned across host
//! worker threads. Workers do not run in lockstep — a worker only blocks
//! when a channel it needs is still empty — mirroring how FireSim decouples
//! host nodes and lets the token flow control enforce ordering.
//!
//! Workers are never oversubscribed: requests for more threads than the
//! host has cores are clamped (see [`Engine::set_host_threads`]), because
//! extra workers on a saturated host only add context-switch overhead.
//!
//! The partition is *load-aware*: each agent's host cost is measured during
//! the first chunk of rounds (or supplied up front via
//! [`Engine::set_agent_weight`]) and agents are re-packed across workers
//! with a greedy longest-processing-time heuristic at a deterministic chunk
//! boundary. A heavyweight RTL blade and a near-idle switch therefore no
//! longer land on the same worker by round-robin accident. Because the
//! token protocol alone fixes the simulation result, rebalancing never
//! changes simulated behaviour — only wall-clock time.
//!
//! ## Host cost
//!
//! The steady-state hot path performs **no heap allocation**: consumed
//! input windows are recycled back to their link's spare pool
//! ([`LinkReceiver::recycle`]), output windows are drawn from that pool
//! ([`LinkSender::take_buffer`]), and the per-agent scratch vectors live in
//! the agent's slot between rounds. Blocking operations use condvar-based
//! waits (microsecond wakeups) rather than coarse timeout polling, and
//! stop requests are honoured at deterministic chunk boundaries so that
//! early termination cannot introduce nondeterminism.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::channel::{link, LinkReceiver, LinkSender};
use crate::error::{SimError, SimResult};
use crate::fault::{AgentFaults, FaultPlan, FaultRecord, HostFaultAction, RecoveryTimeline};
use crate::metrics::{
    AgentProfile, CounterId, HistogramId, IntervalProbe, IntervalSnapshot, MetricsRegistry,
    MetricsShard, SpanBuffer, SpanTracer,
};
use crate::snapshot::{Checkpoint, Snapshot, SnapshotReader, SnapshotWriter};
use crate::sync::{BarrierCancelled, EpochBarrier};
use crate::time::Cycle;
use crate::token::TokenWindow;

/// Identifier of an agent registered with an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(usize);

impl AgentId {
    /// The raw index of this agent within its engine.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A simulated component that advances in token windows.
///
/// Implementors include server blades (whose `advance` runs a cycle-accurate
/// SoC model for `window` cycles) and switches (which run the store-and-
/// forward switching algorithm over the window). The token type is the unit
/// of per-cycle data on this agent's links — for the datacenter simulation
/// it is a network flit.
pub trait SimAgent: Send {
    /// Per-cycle payload carried on this agent's links.
    type Token: Send + 'static;

    /// Short human-readable name, used in error messages.
    fn name(&self) -> &str;

    /// Number of input ports. Every port must be connected before running.
    fn num_inputs(&self) -> usize;

    /// Number of output ports. Every port must be connected before running.
    fn num_outputs(&self) -> usize;

    /// Advances the agent by one window of target cycles.
    ///
    /// The context carries one input [`TokenWindow`] per input port and
    /// empty output windows to fill. Implementations must model exactly
    /// `ctx.window()` cycles.
    ///
    /// Prefer consuming inputs with [`AgentCtx::drain_input`] (which keeps
    /// the window's buffer recyclable) over [`AgentCtx::take_input`].
    fn advance(&mut self, ctx: &mut AgentCtx<Self::Token>);

    /// True when this agent has finished its work (e.g. a blade has powered
    /// off). [`Engine::run_until_done`] stops once every agent is done.
    fn done(&self) -> bool {
        false
    }

    /// Checkpoint support, when this agent has it. Agents that return their
    /// [`Checkpoint`] view here participate in [`Engine::checkpoint`] /
    /// [`Engine::restore`]; the default (`None`) makes engine-level
    /// checkpointing fail with a [`SimError::Checkpoint`] naming the agent.
    fn as_checkpoint(&mut self) -> Option<&mut dyn Checkpoint> {
        None
    }

    /// Appends this agent's application-level counters as `(name, value)`
    /// pairs — e.g. a switch's forwarded-frame count or a NIC's packet
    /// counts. Used by observability reports; the default exports nothing.
    ///
    /// Counter values must be functions of the deterministic simulation
    /// alone (no host timing), so reports are reproducible.
    fn app_counters(&self, _out: &mut Vec<(String, u64)>) {}
}

/// Execution context handed to [`SimAgent::advance`] each round.
///
/// Offsets passed to [`push_output`](AgentCtx::push_output) are relative to
/// the start of the current window; the absolute target cycle is
/// `ctx.now() + offset`.
#[derive(Debug)]
pub struct AgentCtx<T> {
    now: Cycle,
    window: u32,
    inputs: Vec<TokenWindow<T>>,
    outputs: Vec<TokenWindow<T>>,
    stop: bool,
    /// Bitmask of input ports masked by an injected link fault this window.
    down_mask: u64,
}

impl<T> AgentCtx<T> {
    /// Builds a free-standing context for driving an agent by hand (unit
    /// tests, trace replay, co-simulation harnesses).
    ///
    /// # Panics
    ///
    /// Panics if any input window's length differs from `window` or if
    /// `window` is zero.
    pub fn standalone(
        now: Cycle,
        window: u32,
        inputs: Vec<TokenWindow<T>>,
        num_outputs: usize,
    ) -> Self {
        assert!(window > 0, "window must be nonzero");
        for w in &inputs {
            assert_eq!(w.len(), window, "input window length mismatch");
        }
        AgentCtx {
            now,
            window,
            inputs,
            outputs: (0..num_outputs).map(|_| TokenWindow::new(window)).collect(),
            stop: false,
            down_mask: 0,
        }
    }

    /// Consumes the context, returning the output windows that the agent
    /// produced. Counterpart of [`AgentCtx::standalone`].
    pub fn into_outputs(self) -> Vec<TokenWindow<T>> {
        self.outputs
    }

    /// True when the agent called [`AgentCtx::request_stop`].
    pub fn stop_requested(&self) -> bool {
        self.stop
    }

    /// Target cycle at the start of this window.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Window length in cycles.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Takes the input window for `port`, leaving an empty one behind.
    ///
    /// Prefer [`AgentCtx::drain_input`] on hot paths: taking the window
    /// removes its buffer from the link's recycling loop, so the sender
    /// has to re-grow a fresh buffer every round.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn take_input(&mut self, port: usize) -> TokenWindow<T> {
        let w = self.inputs[port].len();
        std::mem::replace(&mut self.inputs[port], TokenWindow::new(w))
    }

    /// Drains the input window for `port` in place, yielding
    /// `(offset, payload)` pairs in cycle order. The window's buffer stays
    /// behind (empty) and is recycled back to the link after `advance`
    /// returns, keeping the steady-state round allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn drain_input(&mut self, port: usize) -> impl Iterator<Item = (u32, T)> + '_ {
        self.inputs[port].drain()
    }

    /// Borrows the input window for `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn input(&self, port: usize) -> &TokenWindow<T> {
        &self.inputs[port]
    }

    /// Pushes a valid token on output `port` at cycle-offset `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range, `offset` is outside the window, or
    /// tokens are pushed out of cycle order (at most one token per cycle).
    pub fn push_output(&mut self, port: usize, offset: u32, token: T) {
        if self.outputs[port].push(offset, token).is_err() {
            panic!(
                "push_output: offset {offset} out of range or out of order (window {})",
                self.window
            );
        }
    }

    /// Mutable access to the raw output window for `port`, for models that
    /// assemble windows themselves.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn output_mut(&mut self, port: usize) -> &mut TokenWindow<T> {
        &mut self.outputs[port]
    }

    /// Requests that the whole simulation stop at the next deterministic
    /// boundary (see [`Engine::run_until_done`]).
    pub fn request_stop(&mut self) {
        self.stop = true;
    }

    /// True when an injected target-side fault ([`FaultPlan::link_down`] /
    /// [`FaultPlan::link_flaky`]) masked tokens on input `port` during this
    /// window. Models with link-state awareness (e.g. a NIC reporting
    /// carrier loss) can surface the outage; ports ≥ 64 are never reported.
    pub fn input_link_down(&self, port: usize) -> bool {
        port < 64 && self.down_mask & (1u64 << port) != 0
    }
}

/// A handle that can stop a running simulation from outside (e.g. a
/// harness timeout). Stops take effect at deterministic chunk boundaries.
#[derive(Debug, Clone)]
pub struct StopHandle {
    flag: Arc<AtomicBool>,
}

impl StopHandle {
    /// Requests the simulation stop.
    pub fn stop(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True if a stop has been requested.
    pub fn is_stopped(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A handle that *aborts* a running simulation from outside (watchdog,
/// wall-clock deadline). Unlike [`StopHandle`] — which is a cooperative
/// stop honoured at a chunk boundary and reported as success — an abort
/// wakes workers blocked in channel waits and makes the run fail with
/// [`SimError::Aborted`]. After an aborted run the engine's agent states
/// may be torn mid-round; continue only via [`Engine::restore`].
#[derive(Debug, Clone)]
pub struct AbortHandle {
    abort: Arc<AtomicBool>,
    halt: Arc<AtomicBool>,
    reason: Arc<parking_lot::Mutex<Option<String>>>,
}

impl AbortHandle {
    /// Aborts the current run (if any) with the given reason. The first
    /// reason wins; later calls are no-ops. The flag is re-armed at the
    /// start of each run, so an abort only applies to the run in flight.
    pub fn abort(&self, reason: impl Into<String>) {
        {
            let mut r = self.reason.lock();
            if r.is_none() {
                *r = Some(reason.into());
            }
        }
        self.abort.store(true, Ordering::SeqCst);
        self.halt.store(true, Ordering::SeqCst);
    }

    /// True when an abort has been requested and not yet re-armed.
    pub fn is_aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }
}

#[derive(Debug)]
struct ProgressShared {
    /// Windows completed per agent, in registration order.
    steps: Vec<AtomicU64>,
    names: Vec<String>,
}

/// A cheap, lock-free view of run progress for external watchdogs.
///
/// Created by [`Engine::progress_probe`] after the topology is complete.
/// A supervisor polls [`total_steps`](ProgressProbe::total_steps); when the
/// count stops moving, [`slowest_agent`](ProgressProbe::slowest_agent)
/// names the laggard — with token flow control, the agent with the fewest
/// completed windows is the one everyone else is blocked on.
#[derive(Debug, Clone)]
pub struct ProgressProbe {
    inner: Arc<ProgressShared>,
}

impl ProgressProbe {
    /// Total agent-windows completed across all runs since the probe was
    /// created. Strictly monotonic while the simulation makes progress.
    pub fn total_steps(&self) -> u64 {
        self.inner
            .steps
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// The agent with the fewest completed windows and its count — the
    /// best-effort culprit when progress stalls.
    pub fn slowest_agent(&self) -> Option<(String, u64)> {
        self.inner
            .steps
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.load(Ordering::Relaxed)))
            .min_by_key(|&(i, c)| (c, i))
            .map(|(i, c)| (self.inner.names[i].clone(), c))
    }
}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Target cycles simulated in this call.
    pub cycles: Cycle,
    /// Host wall-clock time spent.
    pub wall: Duration,
    /// Number of host threads used (1 = sequential).
    pub host_threads: usize,
    /// Number of agents simulated.
    pub agents: usize,
}

impl RunSummary {
    /// Achieved simulation rate in target-Hz (target cycles per host
    /// second). FireSim reports this as the "simulation rate" in MHz.
    pub fn sim_rate_hz(&self) -> f64 {
        if self.wall.as_secs_f64() == 0.0 {
            return f64::INFINITY;
        }
        self.cycles.as_u64() as f64 / self.wall.as_secs_f64()
    }

    /// Achieved simulation rate in target-MHz.
    pub fn sim_rate_mhz(&self) -> f64 {
        self.sim_rate_hz() / 1e6
    }
}

/// The occupancy of one connected input link, reported by
/// [`Engine::link_occupancies`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkOccupancy {
    /// Receiving agent's name.
    pub agent: String,
    /// Receiving agent's input port.
    pub port: usize,
    /// Modeled link latency in cycles.
    pub latency: u64,
    /// Tokens currently in flight (`queued windows × window length`). At a
    /// quiescent boundary this equals `latency`.
    pub in_flight_tokens: u64,
}

/// Counter/histogram handles the engine itself records into when metrics
/// are enabled.
#[derive(Debug, Clone, Copy)]
struct EngineMetricIds {
    /// `engine/agent_steps`: total agent-windows stepped. Deterministic —
    /// independent of host thread count.
    steps: CounterId,
    /// `engine/barrier_wait_ns`: host ns spent waiting at chunk barriers
    /// (parallel mode only). Host-dependent.
    barrier_ns: CounterId,
    /// `engine/chunk_host_ns`: host ns per worker-chunk. Host-dependent.
    chunk_ns: HistogramId,
}

struct AgentSlot<T> {
    agent: Box<dyn SimAgent<Token = T>>,
    inputs: Vec<Option<LinkReceiver<T>>>,
    outputs: Vec<Option<LinkSender<T>>>,
    /// Reused between rounds so `step_agent` never allocates once warm.
    scratch_in: Vec<TokenWindow<T>>,
    scratch_out: Vec<TokenWindow<T>>,
    /// Caller-supplied relative host cost, for load-aware partitioning.
    weight: Option<u64>,
    /// Token/host-time accounting, updated only when metrics are enabled.
    /// The stepping worker owns the slot, so plain stores suffice.
    profile: AgentProfile,
}

/// The simulation executor. See the [module docs](self) for the execution
/// model.
pub struct Engine<T> {
    window: u32,
    agents: Vec<AgentSlot<T>>,
    now: Cycle,
    host_threads: usize,
    oversubscribe: bool,
    chunk_rounds: u64,
    stop: Arc<AtomicBool>,
    /// Set by [`AbortHandle::abort`]; re-armed at run start.
    abort: Arc<AtomicBool>,
    abort_reason: Arc<parking_lot::Mutex<Option<String>>>,
    /// Worker wake-up flag shared with abort handles so an abort can break
    /// workers out of blocking channel waits; re-armed at run start.
    run_halt: Arc<AtomicBool>,
    fault_plan: Option<FaultPlan>,
    progress: Option<Arc<ProgressShared>>,
    /// Installed by [`Engine::enable_metrics`]; absent = zero cost.
    metrics: Option<Arc<MetricsRegistry>>,
    /// Installed by [`Engine::enable_tracing`]; absent = zero cost.
    tracer: Option<Arc<SpanTracer>>,
    /// `(agent index, input port)` of every link whose sender lives outside
    /// this engine (another process or an external pump). See
    /// [`Engine::connect_external_input`].
    boundary_inputs: Vec<(usize, usize)>,
    /// How long [`Engine::run_for`] waits at the end of a run for external
    /// boundary inputs to refill to their seeded occupancy before declaring
    /// the peer dead. See [`Engine::set_boundary_quiesce_timeout`].
    boundary_quiesce_timeout: Duration,
}

impl<T: Send + 'static> Engine<T> {
    /// Creates an engine exchanging token windows of `window` cycles.
    ///
    /// In FireSim the window equals the smallest link latency being modeled
    /// (the paper's "batch size = link latency" rule).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u32) -> Self {
        assert!(window > 0, "engine window must be nonzero");
        Engine {
            window,
            agents: Vec::new(),
            now: Cycle::ZERO,
            host_threads: 1,
            oversubscribe: false,
            chunk_rounds: 16,
            stop: Arc::new(AtomicBool::new(false)),
            abort: Arc::new(AtomicBool::new(false)),
            abort_reason: Arc::new(parking_lot::Mutex::new(None)),
            run_halt: Arc::new(AtomicBool::new(false)),
            fault_plan: None,
            progress: None,
            metrics: None,
            tracer: None,
            boundary_inputs: Vec::new(),
            boundary_quiesce_timeout: Duration::from_secs(30),
        }
    }

    /// The engine's window length in cycles.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Current target time (start of the next unsimulated window).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of registered agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// True when every registered agent reports [`SimAgent::done`]. This is
    /// the same condition [`Engine::run_until_done`] checks at chunk
    /// boundaries; callers driving the engine in short bursts (e.g. a
    /// supervisor taking periodic checkpoints) use it to decide whether
    /// another burst is needed, since a burst shorter than one scheduler
    /// chunk always reports its full cycle budget even if all agents
    /// finished mid-way.
    pub fn all_done(&self) -> bool {
        self.agents.iter().all(|s| s.agent.done())
    }

    /// Ids of all registered agents, in registration order.
    pub fn agent_ids(&self) -> impl Iterator<Item = AgentId> + '_ {
        (0..self.agents.len()).map(AgentId)
    }

    /// Sets the number of host worker threads used by subsequent runs.
    /// `0` and `1` both mean sequential execution on the calling thread.
    ///
    /// The scheduler never uses more workers than the host has cores
    /// (oversubscribing buys nothing but context-switch overhead and can
    /// cost several times the sequential rate); the request is clamped to
    /// [`std::thread::available_parallelism`] at run time unless
    /// [`Engine::set_host_oversubscribe`] lifts the cap. Thanks to the
    /// token protocol the worker count never affects simulated behaviour,
    /// only wall-clock time.
    pub fn set_host_threads(&mut self, threads: usize) -> &mut Self {
        self.host_threads = threads.max(1);
        self
    }

    /// Allows more host workers than the machine has cores. Useful for
    /// testing the parallel execution paths on small hosts; a performance
    /// anti-pattern otherwise.
    pub fn set_host_oversubscribe(&mut self, allow: bool) -> &mut Self {
        self.oversubscribe = allow;
        self
    }

    /// Sets how many rounds run between stop-flag checks in parallel mode.
    /// Larger chunks amortise synchronisation; stops are honoured at chunk
    /// boundaries only (deterministically).
    pub fn set_chunk_rounds(&mut self, rounds: u64) -> &mut Self {
        self.chunk_rounds = rounds.max(1);
        self
    }

    /// Supplies a relative host-cost weight for an agent, used by the
    /// load-aware partitioner in parallel runs.
    ///
    /// Weighted agents skip the first-chunk cost measurement: the caller's
    /// number wins. Unweighted agents are measured. Weights are relative —
    /// only ratios matter — and a weight of zero is treated as one.
    /// Weights never affect simulated behaviour, only how agents are
    /// packed onto host threads.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this engine.
    pub fn set_agent_weight(&mut self, id: AgentId, weight: u64) -> &mut Self {
        self.agents[id.0].weight = Some(weight.max(1));
        self
    }

    /// A handle for stopping the simulation from another thread.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            flag: Arc::clone(&self.stop),
        }
    }

    /// A handle for *aborting* the current run from another thread
    /// (watchdogs, deadlines). See [`AbortHandle`] for semantics.
    pub fn abort_handle(&self) -> AbortHandle {
        AbortHandle {
            abort: Arc::clone(&self.abort),
            halt: Arc::clone(&self.run_halt),
            reason: Arc::clone(&self.abort_reason),
        }
    }

    /// Installs a fault plan; faults fire during subsequent runs. Handing a
    /// clone of the same plan to a rebuilt engine preserves one-shot
    /// (transient) fault semantics — see [`FaultPlan`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Merges `plan` into the installed fault plan, or installs a clone of
    /// it when none is installed. Merged entries keep their own seeds and
    /// shared fired-flags (see [`FaultPlan::merge_from`]) — this is how
    /// scenario-derived plans compose with user fault plans.
    pub fn merge_fault_plan(&mut self, plan: &FaultPlan) -> &mut Self {
        match &mut self.fault_plan {
            Some(existing) => existing.merge_from(plan),
            None => self.fault_plan = Some(plan.clone()),
        }
        self
    }

    /// Provenance of injected faults that have fired so far (empty when no
    /// plan is installed).
    pub fn fault_records(&self) -> Vec<FaultRecord> {
        self.fault_plan
            .as_ref()
            .map(FaultPlan::records)
            .unwrap_or_default()
    }

    /// The recovery timeline accumulated by the installed fault plan's
    /// link watches, or `None` when no plan records one.
    pub fn fault_timeline(&self) -> Option<RecoveryTimeline> {
        self.fault_plan
            .as_ref()
            .and_then(FaultPlan::recovery_timeline)
    }

    /// Names of the registered agents, in registration order.
    pub fn agent_names(&self) -> Vec<String> {
        self.agents
            .iter()
            .map(|s| s.agent.name().to_owned())
            .collect()
    }

    /// Creates a progress probe over the currently registered agents.
    /// Call after the topology is complete: agents added later are not
    /// tracked by this probe (their steps are simply not counted).
    pub fn progress_probe(&mut self) -> ProgressProbe {
        let shared = Arc::new(ProgressShared {
            steps: (0..self.agents.len()).map(|_| AtomicU64::new(0)).collect(),
            names: self
                .agents
                .iter()
                .map(|s| s.agent.name().to_owned())
                .collect(),
        });
        self.progress = Some(Arc::clone(&shared));
        ProgressProbe { inner: shared }
    }

    /// Enables metrics collection and per-agent profiling for subsequent
    /// runs, returning the engine's registry (creating it on first call).
    ///
    /// Workers record into private [`MetricsShard`]s and fold them into the
    /// registry at chunk barriers, so the hot path stays contention-free;
    /// when metrics have never been enabled the engine holds no registry
    /// and pays nothing at all.
    pub fn enable_metrics(&mut self) -> Arc<MetricsRegistry> {
        if self.metrics.is_none() {
            self.metrics = Some(Arc::new(MetricsRegistry::new()));
        }
        Arc::clone(self.metrics.as_ref().expect("just installed"))
    }

    /// The metrics registry, when [`Engine::enable_metrics`] has been
    /// called.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Enables span tracing for subsequent runs, returning the engine's
    /// tracer (creating it on first call). Export the collected spans with
    /// [`SpanTracer::export_chrome_trace`] after the run.
    pub fn enable_tracing(&mut self) -> Arc<SpanTracer> {
        if self.tracer.is_none() {
            self.tracer = Some(Arc::new(SpanTracer::new()));
        }
        Arc::clone(self.tracer.as_ref().expect("just installed"))
    }

    /// The span tracer, when [`Engine::enable_tracing`] has been called.
    pub fn tracer(&self) -> Option<&Arc<SpanTracer>> {
        self.tracer.as_ref()
    }

    /// Number of host worker threads configured via
    /// [`Engine::set_host_threads`] (before run-time core clamping).
    pub fn host_threads(&self) -> usize {
        self.host_threads
    }

    /// The profile accumulated for one agent across metric-enabled runs.
    ///
    /// All zeros until [`Engine::enable_metrics`] is called.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this engine.
    pub fn agent_profile(&self, id: AgentId) -> AgentProfile {
        self.agents[id.0].profile
    }

    /// `(name, profile)` for every agent, in registration order.
    pub fn agent_profiles(&self) -> Vec<(String, AgentProfile)> {
        self.agents
            .iter()
            .map(|s| (s.agent.name().to_owned(), s.profile))
            .collect()
    }

    /// `(name, application counters)` for every agent, in registration
    /// order, as reported by [`SimAgent::app_counters`]. Agents that do
    /// not export counters contribute an empty list.
    pub fn agent_app_counters(&self) -> Vec<(String, Vec<(String, u64)>)> {
        self.agents
            .iter()
            .map(|s| {
                let mut counters = Vec::new();
                s.agent.app_counters(&mut counters);
                (s.agent.name().to_owned(), counters)
            })
            .collect()
    }

    /// Samples the per-interval telemetry delta at the current quiescent
    /// boundary (the live-streaming hook, DESIGN §17).
    ///
    /// Diffs the cumulative [`AgentProfile`]s and app counters against the
    /// probe's previous call; the first call on a fresh probe primes the
    /// baseline and returns an all-zero snapshot. Only meaningful between
    /// runs — mid-run the profiles are owned by the workers. All zeros
    /// until [`Engine::enable_metrics`] is called.
    pub fn sample_interval(&self, probe: &mut IntervalProbe) -> IntervalSnapshot {
        let profiles = self.agent_profiles();
        let counters: Vec<Vec<(String, u64)>> = self
            .agents
            .iter()
            .map(|s| {
                let mut counters = Vec::new();
                s.agent.app_counters(&mut counters);
                counters
            })
            .collect();
        probe.sample(self.now.as_u64(), &profiles, &counters)
    }

    /// The current occupancy of every connected input link, in registration
    /// order. Between runs the engine is quiescent, so each latency-*N*
    /// link reports exactly *N* tokens in flight — the paper's
    /// token-transport invariant, checked by [`verify_token_invariant`].
    ///
    /// [`verify_token_invariant`]: Engine::verify_token_invariant
    pub fn link_occupancies(&self) -> Vec<LinkOccupancy> {
        let mut out = Vec::new();
        for slot in &self.agents {
            for (port, rx) in slot.inputs.iter().enumerate() {
                if let Some(rx) = rx.as_ref() {
                    out.push(LinkOccupancy {
                        agent: slot.agent.name().to_owned(),
                        port,
                        latency: rx.latency().as_u64(),
                        in_flight_tokens: rx.in_flight_windows() as u64 * self.window as u64,
                    });
                }
            }
        }
        out
    }

    /// Checks the token-transport invariant at the current quiescent
    /// boundary: every connected latency-*N* input link must hold exactly
    /// *N* tokens in flight. Only meaningful between runs (mid-run a link
    /// transiently holds one extra window).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Agent`] naming the first violating agent/port.
    pub fn verify_token_invariant(&self) -> SimResult<()> {
        self.verify_invariant_inner(false)
    }

    /// The invariant check, optionally skipping boundary inputs: mid-run a
    /// cross-process link's refill is asynchronous (the pump injects when
    /// the peer's window arrives), so only the quiescent end-of-run check —
    /// which runs after [`Engine::wait_boundary_quiesce`] — may include
    /// them.
    fn verify_invariant_inner(&self, skip_boundaries: bool) -> SimResult<()> {
        for (idx, slot) in self.agents.iter().enumerate() {
            for (port, rx) in slot.inputs.iter().enumerate() {
                if skip_boundaries && self.boundary_inputs.contains(&(idx, port)) {
                    continue;
                }
                if let Some(rx) = rx.as_ref() {
                    let got = rx.in_flight_windows() as u64 * self.window as u64;
                    let want = rx.latency().as_u64();
                    if got != want {
                        return Err(SimError::agent(
                            slot.agent.name(),
                            format!(
                                "token invariant violated on input port {port}: \
                                 {got} tokens in flight on a latency-{want} link"
                            ),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Registers an agent and returns its id.
    pub fn add_agent(&mut self, agent: Box<dyn SimAgent<Token = T>>) -> AgentId {
        let id = AgentId(self.agents.len());
        let n_in = agent.num_inputs();
        let n_out = agent.num_outputs();
        self.agents.push(AgentSlot {
            agent,
            inputs: (0..n_in).map(|_| None).collect(),
            outputs: (0..n_out).map(|_| None).collect(),
            scratch_in: Vec::with_capacity(n_in),
            scratch_out: Vec::with_capacity(n_out),
            weight: None,
            profile: AgentProfile::default(),
        });
        id
    }

    /// Connects `src`'s output port to `dst`'s input port with a link of the
    /// given latency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Topology`] for bad ids/ports or double
    /// connection, and [`SimError::BadLatency`] if `latency` is not a
    /// nonzero multiple of the engine window.
    pub fn connect(
        &mut self,
        src: AgentId,
        src_port: usize,
        dst: AgentId,
        dst_port: usize,
        latency: Cycle,
    ) -> SimResult<()> {
        let (tx, rx) = link(self.window, latency)?;
        {
            let s = self
                .agents
                .get_mut(src.0)
                .ok_or_else(|| SimError::topology(format!("no agent {:?}", src)))?;
            let slot = s.outputs.get_mut(src_port).ok_or_else(|| {
                SimError::topology(format!(
                    "agent {} has no output port {src_port}",
                    s.agent.name()
                ))
            })?;
            if slot.is_some() {
                return Err(SimError::topology(format!(
                    "output port {src_port} of agent {} already connected",
                    s.agent.name()
                )));
            }
            *slot = Some(tx);
        }
        {
            let d = self
                .agents
                .get_mut(dst.0)
                .ok_or_else(|| SimError::topology(format!("no agent {:?}", dst)))?;
            let slot = d.inputs.get_mut(dst_port).ok_or_else(|| {
                SimError::topology(format!(
                    "agent {} has no input port {dst_port}",
                    d.agent.name()
                ))
            })?;
            if slot.is_some() {
                return Err(SimError::topology(format!(
                    "input port {dst_port} of agent {} already connected",
                    d.agent.name()
                )));
            }
            *slot = Some(rx);
        }
        Ok(())
    }

    /// Connects `dst`'s input port to a sender *outside* this engine — the
    /// receiving half of a cross-process link (§III-B2).
    ///
    /// The underlying channel is created exactly as by [`Engine::connect`]:
    /// pre-seeded with `latency / window` empty windows, so the full target
    /// link latency is modeled **on the receiving shard**. An external pump
    /// (e.g. `manager::partition`'s transport pumps) injects one window per
    /// simulated round through the returned [`BoundaryInput`]; the agent
    /// consumes the seed windows first and sees every remote token exactly
    /// `latency` cycles after it was produced — bit-identical to a
    /// monolithic in-process link.
    ///
    /// At the end of every run the engine waits (bounded by
    /// [`Engine::set_boundary_quiesce_timeout`]) until each boundary input
    /// has been refilled to its seeded occupancy, so runs still end at the
    /// paper's quiescent boundary where a latency-*N* link holds exactly
    /// *N* tokens — the property [`Engine::checkpoint`] relies on.
    ///
    /// # Errors
    ///
    /// As for [`Engine::connect`]: bad id/port, double connection, or a
    /// latency that is not a nonzero multiple of the window.
    pub fn connect_external_input(
        &mut self,
        dst: AgentId,
        dst_port: usize,
        latency: Cycle,
    ) -> SimResult<BoundaryInput<T>> {
        let (tx, rx) = link(self.window, latency)?;
        let d = self
            .agents
            .get_mut(dst.0)
            .ok_or_else(|| SimError::topology(format!("no agent {:?}", dst)))?;
        let name = d.agent.name().to_owned();
        let slot = d.inputs.get_mut(dst_port).ok_or_else(|| {
            SimError::topology(format!("agent {name} has no input port {dst_port}"))
        })?;
        if slot.is_some() {
            return Err(SimError::topology(format!(
                "input port {dst_port} of agent {name} already connected"
            )));
        }
        *slot = Some(rx);
        self.boundary_inputs.push((dst.0, dst_port));
        Ok(BoundaryInput {
            tx,
            agent: name,
            port: dst_port,
        })
    }

    /// Connects `src`'s output port to a receiver *outside* this engine —
    /// the sending half of a cross-process link (§III-B2).
    ///
    /// The channel's seed windows are drained and recycled at creation, so
    /// this side contributes **zero** modeled latency (the receiving shard's
    /// [`Engine::connect_external_input`] link models all of it); what
    /// remains is a bounded host-side buffer of `latency / window + 1`
    /// windows that back-pressures the producing agent exactly as far as
    /// token flow control would in a monolithic engine. An external pump
    /// drains one window per simulated round through the returned
    /// [`BoundaryOutput`] and ships it to the peer shard.
    ///
    /// # Errors
    ///
    /// As for [`Engine::connect`].
    pub fn connect_external_output(
        &mut self,
        src: AgentId,
        src_port: usize,
        latency: Cycle,
    ) -> SimResult<BoundaryOutput<T>> {
        let (tx, rx) = link(self.window, latency)?;
        {
            let s = self
                .agents
                .get_mut(src.0)
                .ok_or_else(|| SimError::topology(format!("no agent {:?}", src)))?;
            let name = s.agent.name().to_owned();
            let slot = s.outputs.get_mut(src_port).ok_or_else(|| {
                SimError::topology(format!("agent {name} has no output port {src_port}"))
            })?;
            if slot.is_some() {
                return Err(SimError::topology(format!(
                    "output port {src_port} of agent {name} already connected"
                )));
            }
            *slot = Some(tx);
        }
        // Drain the seed windows: they model latency on the receiving shard,
        // not here. Recycling them stocks the spare pool the producing
        // agent's sends will draw from.
        let seeded = (latency.as_u64() / self.window as u64) as usize;
        for _ in 0..seeded {
            let w = rx
                .try_recv()?
                .expect("freshly created link holds its seed windows");
            rx.recycle(w);
        }
        let name = self.agents[src.0].agent.name().to_owned();
        Ok(BoundaryOutput {
            rx,
            agent: name,
            port: src_port,
        })
    }

    /// Sets how long runs wait at their final window boundary for external
    /// boundary inputs (see [`Engine::connect_external_input`]) to return to
    /// seeded occupancy before giving up on the peer. Default 30 s.
    pub fn set_boundary_quiesce_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.boundary_quiesce_timeout = timeout;
        self
    }

    /// Blocks until every boundary input link holds exactly its seeded
    /// `latency / window` windows again — i.e. until the external pumps
    /// have delivered every window the peer shard produced for the rounds
    /// just run. No-op without boundary inputs.
    fn wait_boundary_quiesce(&self) -> SimResult<()> {
        if self.boundary_inputs.is_empty() {
            return Ok(());
        }
        let deadline = Instant::now() + self.boundary_quiesce_timeout;
        for &(a, p) in &self.boundary_inputs {
            let slot = &self.agents[a];
            let rx = slot.inputs[p].as_ref().expect("boundary input is wired");
            let want = (rx.latency().as_u64() / self.window as u64) as usize;
            loop {
                let got = rx.in_flight_windows();
                if got >= want {
                    break;
                }
                if Instant::now() >= deadline {
                    return Err(SimError::agent(
                        slot.agent.name(),
                        format!(
                            "boundary input port {p} did not quiesce: {got} of {want} \
                             windows in flight after {:?} (peer shard dead or stalled?)",
                            self.boundary_quiesce_timeout
                        ),
                    ));
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        Ok(())
    }

    fn check_wired(&self) -> SimResult<()> {
        for slot in &self.agents {
            if slot.inputs.iter().any(Option::is_none) || slot.outputs.iter().any(Option::is_none) {
                return Err(SimError::topology(format!(
                    "agent {} has unconnected ports",
                    slot.agent.name()
                )));
            }
        }
        Ok(())
    }

    /// Runs for (at least) `cycles` target cycles, rounded up to whole
    /// windows. Does not stop early for `done` agents.
    ///
    /// # Errors
    ///
    /// Returns an error if the topology has unconnected ports or a channel
    /// breaks mid-run (a panicking agent).
    pub fn run_for(&mut self, cycles: Cycle) -> SimResult<RunSummary> {
        let rounds = cycles.as_u64().div_ceil(self.window as u64);
        self.run_rounds(rounds, false)
    }

    /// Runs until every agent reports [`SimAgent::done`], an agent calls
    /// [`AgentCtx::request_stop`], a [`StopHandle`] fires, or `max_cycles`
    /// elapse — whichever comes first. Stop conditions are evaluated at
    /// deterministic chunk boundaries.
    ///
    /// # Errors
    ///
    /// As for [`Engine::run_for`].
    pub fn run_until_done(&mut self, max_cycles: Cycle) -> SimResult<RunSummary> {
        let rounds = max_cycles.as_u64().div_ceil(self.window as u64);
        self.run_rounds(rounds, true)
    }

    fn run_rounds(&mut self, rounds: u64, stoppable: bool) -> SimResult<RunSummary> {
        self.check_wired()?;
        self.stop.store(false, Ordering::Release);
        self.abort.store(false, Ordering::Release);
        self.run_halt.store(false, Ordering::Release);
        *self.abort_reason.lock() = None;
        // Empty when no plan is installed, so the common path allocates
        // nothing; call sites index with `.get(i)`.
        let faults: Vec<Option<AgentFaults>> = match &self.fault_plan {
            Some(plan) => {
                let agents: Vec<(&str, usize)> = self
                    .agents
                    .iter()
                    .map(|s| (s.agent.name(), s.agent.num_inputs()))
                    .collect();
                plan.resolve(&agents)?
            }
            None => Vec::new(),
        };
        let start = Instant::now();
        let cores = if self.oversubscribe {
            usize::MAX
        } else {
            host_cores()
        };
        let threads = self.host_threads.min(cores).min(self.agents.len()).max(1);
        let ids = self.metrics.as_ref().map(|m| EngineMetricIds {
            steps: m.counter("engine/agent_steps"),
            barrier_ns: m.counter("engine/barrier_wait_ns"),
            chunk_ns: m.histogram("engine/chunk_host_ns"),
        });
        let result = if threads <= 1 {
            self.run_sequential(rounds, stoppable, &faults, ids)
        } else {
            self.run_parallel(rounds, stoppable, threads, &faults, ids)
        };
        let rounds_run = match result {
            Ok(r) => {
                if self.abort.load(Ordering::Acquire) {
                    return Err(self.abort_error());
                }
                r
            }
            Err(e) => {
                // An abort wakes blocked workers by halting them, which
                // surfaces as ChannelClosed on their side; report the abort
                // (the cause), not the wake-up mechanics (the symptom) —
                // unless a more diagnostic error was recorded.
                if self.abort.load(Ordering::Acquire) && e.severity() <= 1 {
                    return Err(self.abort_error());
                }
                return Err(e);
            }
        };
        // With cross-process boundary inputs, the local agents can finish
        // their rounds while the last windows of the peer's matching output
        // are still in transit; wait for the pumps to deliver them so the
        // boundary below really is quiescent.
        self.wait_boundary_quiesce()?;
        // Every successful run ends at a quiescent window boundary, where
        // the paper's invariant must hold: a latency-N link has exactly N
        // tokens in flight. Always-on in debug builds.
        #[cfg(debug_assertions)]
        if let Err(e) = self.verify_token_invariant() {
            panic!("{e}");
        }
        let cycles = Cycle::new(rounds_run * self.window as u64);
        self.now += cycles;
        Ok(RunSummary {
            cycles,
            wall: start.elapsed(),
            host_threads: threads,
            agents: self.agents.len(),
        })
    }

    fn abort_error(&self) -> SimError {
        let reason = self
            .abort_reason
            .lock()
            .clone()
            .unwrap_or_else(|| "abort requested".to_owned());
        SimError::Aborted { reason }
    }

    fn run_sequential(
        &mut self,
        rounds: u64,
        stoppable: bool,
        faults: &[Option<AgentFaults>],
        ids: Option<EngineMetricIds>,
    ) -> SimResult<u64> {
        let window = self.window;
        let mut now = self.now;
        let mut round = 0u64;
        let progress = self.progress.clone();
        let metrics = self.metrics.clone();
        let profiling = metrics.is_some();
        let mut shard = metrics.as_ref().map(|m| m.shard());
        let tracer = self.tracer.clone();
        if let Some(t) = &tracer {
            t.name_thread(0, "engine");
        }
        let mut span_buf = tracer.as_ref().map(|t| t.buffer(0));
        // Observability pays one clock read per step, not two: the read
        // that closes step N's span/host_ns opens step N+1's.
        let need_clock = profiling || tracer.is_some();
        while round < rounds {
            let chunk_end = (round + self.chunk_rounds).min(rounds);
            let chunk_t0 = need_clock.then(Instant::now);
            let mut t_prev = chunk_t0;
            while round < chunk_end {
                for (i, slot) in self.agents.iter_mut().enumerate() {
                    if step_agent(
                        slot,
                        now,
                        window,
                        None,
                        faults.get(i).and_then(Option::as_ref),
                        profiling,
                    )? {
                        self.stop.store(true, Ordering::Release);
                    }
                    if let Some(prev) = t_prev {
                        let t_now = Instant::now();
                        if profiling {
                            slot.profile.host_ns += t_now.duration_since(prev).as_nanos() as u64;
                        }
                        if let (Some(t), Some(buf)) = (&tracer, span_buf.as_mut()) {
                            buf.span_args(
                                slot.agent.name(),
                                "agent",
                                t.ns_of(prev),
                                t.ns_of(t_now),
                                vec![("cycle", now.as_u64())],
                            );
                        }
                        t_prev = Some(t_now);
                    }
                    if let (Some(sh), Some(ids)) = (shard.as_mut(), ids) {
                        sh.inc(ids.steps);
                    }
                    if let Some(p) = &progress {
                        if let Some(c) = p.steps.get(i) {
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                now += Cycle::new(window as u64);
                round += 1;
                // In sequential mode every round ends quiescent, so the
                // token invariant can be checked continuously (debug only).
                // Boundary inputs refill asynchronously and are excluded
                // here; the end-of-run check covers them after the quiesce
                // wait.
                #[cfg(debug_assertions)]
                if let Err(e) = self.verify_invariant_inner(true) {
                    panic!("{e}");
                }
            }
            if let (Some(m), Some(sh)) = (metrics.as_ref(), shard.as_mut()) {
                if let (Some(ids), Some(t0)) = (ids, chunk_t0) {
                    sh.record(ids.chunk_ns, t0.elapsed().as_nanos() as u64);
                }
                m.absorb(sh);
            }
            if self.abort.load(Ordering::Acquire) {
                return Err(self.abort_error());
            }
            if stoppable {
                let done =
                    self.stop.load(Ordering::Acquire) || self.agents.iter().all(|s| s.agent.done());
                if done {
                    break;
                }
            }
        }
        if let (Some(t), Some(mut buf)) = (tracer.as_ref(), span_buf.take()) {
            t.flush(&mut buf);
        }
        Ok(round)
    }

    fn run_parallel(
        &mut self,
        rounds: u64,
        stoppable: bool,
        threads: usize,
        faults: &[Option<AgentFaults>],
        ids: Option<EngineMetricIds>,
    ) -> SimResult<u64> {
        let window = self.window;
        let start_now = self.now;
        let chunk = self.chunk_rounds;
        let n_agents = self.agents.len();
        let stop = Arc::clone(&self.stop);
        let progress = self.progress.clone();
        let metrics = self.metrics.clone();
        let tracer = self.tracer.clone();

        let barrier = EpochBarrier::new(threads);
        // Set on error, panic, or abort; sleeping peers notice within
        // ~500µs. Shared with [`AbortHandle`]s via the engine.
        let halt_arc = Arc::clone(&self.run_halt);
        let halt: &AtomicBool = &halt_arc;
        let error: parking_lot::Mutex<Option<SimError>> = parking_lot::Mutex::new(None);

        // Load-aware partitioning state. The initial assignment packs
        // caller weights (default 1, i.e. round-robin-ish); if the run is
        // long enough to profit, per-agent host cost is measured during
        // the first chunk and agents are re-packed once at its boundary.
        let hints: Vec<Option<u64>> = self.agents.iter().map(|s| s.weight).collect();
        let measured: Vec<AtomicU64> = (0..n_agents).map(|_| AtomicU64::new(0)).collect();
        let initial_costs: Vec<u64> = hints.iter().map(|h| h.unwrap_or(1)).collect();
        let assignment: Vec<AtomicUsize> = lpt_partition(&initial_costs, threads)
            .into_iter()
            .map(AtomicUsize::new)
            .collect();
        let measure = rounds > chunk && n_agents > threads;

        // Agents are only ever touched by their assigned worker within a
        // chunk; the mutexes make the hand-off at repartition boundaries
        // safe and keep the compiler honest. They are uncontended.
        let slots: Vec<parking_lot::Mutex<&mut AgentSlot<T>>> = self
            .agents
            .iter_mut()
            .map(parking_lot::Mutex::new)
            .collect();

        // Per-worker chunk votes (VOTE_DONE / VOTE_STOPPED bits),
        // double-buffered by chunk parity: the bucket for chunk `c` is
        // re-written at chunk `c + 2`, by which time every reader of the
        // chunk-`c` values has passed two barriers. One barrier per chunk
        // thus suffices — every input to the continue/stop decision is a
        // pre-barrier snapshot, so all workers decide identically.
        let votes: Vec<AtomicU8> = (0..2 * threads).map(|_| AtomicU8::new(0)).collect();
        const VOTE_DONE: u8 = 1;
        const VOTE_STOPPED: u8 = 2;

        let worker_results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|widx| {
                    let barrier = &barrier;
                    let error = &error;
                    let stop = &stop;
                    let slots = &slots;
                    let assignment = &assignment;
                    let measured = &measured;
                    let hints = &hints;
                    let votes = &votes;
                    let progress = &progress;
                    let metrics = &metrics;
                    let tracer = &tracer;
                    scope.spawn(move || {
                        let _guard = PanicGuard { halt, barrier };
                        let mut my_agents: Vec<usize> = (0..n_agents)
                            .filter(|&i| assignment[i].load(Ordering::Relaxed) == widx)
                            .collect();
                        let mut now = start_now;
                        let mut round = 0u64;
                        let mut measuring = measure;
                        let mut repartitioned = !measure;
                        let mut parity = 0usize;
                        let profiling = metrics.is_some();
                        let mut shard = metrics.as_ref().map(|m| m.shard());
                        if let Some(t) = tracer {
                            t.name_thread(widx as u32, format!("worker{widx}"));
                        }
                        let mut span_buf = tracer.as_ref().map(|t| t.buffer(widx as u32));
                        'chunks: while round < rounds {
                            if halt.load(Ordering::Acquire) {
                                break;
                            }
                            let chunk_end = (round + chunk).min(rounds);
                            // One clock read per step, chained: it closes
                            // the previous step's span / host_ns / load
                            // measurement and opens the next one's.
                            let need_clock = profiling || tracer.is_some() || measuring;
                            let chunk_t0 = need_clock.then(Instant::now);
                            let mut t_prev = chunk_t0;
                            while round < chunk_end {
                                for &i in &my_agents {
                                    let slot: &mut AgentSlot<T> = &mut slots[i].lock();
                                    let agent_faults = faults.get(i).and_then(Option::as_ref);
                                    match step_agent(
                                        slot,
                                        now,
                                        window,
                                        Some(halt),
                                        agent_faults,
                                        profiling,
                                    ) {
                                        Ok(true) => stop.store(true, Ordering::Release),
                                        Ok(false) => {}
                                        Err(e) => {
                                            // Keep the most diagnostic error:
                                            // the panicking agent's own report
                                            // must not be clobbered by a peer
                                            // observing the fallout.
                                            let mut err = error.lock();
                                            let replace = match &*err {
                                                Some(prev) => e.severity() > prev.severity(),
                                                None => true,
                                            };
                                            if replace {
                                                *err = Some(e);
                                            }
                                            drop(err);
                                            halt.store(true, Ordering::Release);
                                            barrier.cancel();
                                            break 'chunks;
                                        }
                                    }
                                    if let Some(prev) = t_prev {
                                        let t_now = Instant::now();
                                        let ns = t_now.duration_since(prev).as_nanos() as u64;
                                        if measuring {
                                            measured[i].fetch_add(ns, Ordering::Relaxed);
                                        }
                                        if profiling {
                                            slot.profile.host_ns += ns;
                                        }
                                        if let (Some(t), Some(buf)) = (tracer, span_buf.as_mut()) {
                                            buf.span_args(
                                                slot.agent.name(),
                                                "agent",
                                                t.ns_of(prev),
                                                t.ns_of(t_now),
                                                vec![("cycle", now.as_u64())],
                                            );
                                        }
                                        t_prev = Some(t_now);
                                    }
                                    if let (Some(sh), Some(ids)) = (shard.as_mut(), ids) {
                                        sh.inc(ids.steps);
                                    }
                                    if let Some(p) = progress {
                                        if let Some(c) = p.steps.get(i) {
                                            c.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                }
                                now += Cycle::new(window as u64);
                                round += 1;
                            }
                            // Fold this chunk's metrics into the registry at
                            // the chunk boundary — the one place a lock is
                            // already tolerable.
                            if let (Some(m), Some(sh)) = (metrics.as_ref(), shard.as_mut()) {
                                if let (Some(ids), Some(t0)) = (ids, chunk_t0) {
                                    sh.record(ids.chunk_ns, t0.elapsed().as_nanos() as u64);
                                }
                                m.absorb(sh);
                            }
                            if !repartitioned {
                                repartitioned = true;
                                measuring = false;
                                let Ok(is_leader) = traced_wait(
                                    barrier,
                                    tracer.as_ref(),
                                    span_buf.as_mut(),
                                    shard.as_mut(),
                                    ids.map(|ids| ids.barrier_ns),
                                ) else {
                                    break;
                                };
                                if is_leader {
                                    let rep_start = tracer.as_ref().map(|t| t.now_ns());
                                    let costs: Vec<u64> = (0..n_agents)
                                        .map(|i| {
                                            hints[i]
                                                .unwrap_or_else(|| {
                                                    measured[i].load(Ordering::Relaxed)
                                                })
                                                .max(1)
                                        })
                                        .collect();
                                    for (i, w) in
                                        lpt_partition(&costs, threads).into_iter().enumerate()
                                    {
                                        assignment[i].store(w, Ordering::Relaxed);
                                    }
                                    if let (Some(t), Some(buf)) = (tracer, span_buf.as_mut()) {
                                        buf.span(
                                            "repartition",
                                            "sched",
                                            rep_start.unwrap_or(0),
                                            t.now_ns(),
                                        );
                                    }
                                }
                                if traced_wait(
                                    barrier,
                                    tracer.as_ref(),
                                    span_buf.as_mut(),
                                    shard.as_mut(),
                                    ids.map(|ids| ids.barrier_ns),
                                )
                                .is_err()
                                {
                                    break;
                                }
                                my_agents.clear();
                                my_agents
                                    .extend((0..n_agents).filter(|&i| {
                                        assignment[i].load(Ordering::Relaxed) == widx
                                    }));
                            }
                            if stoppable {
                                let mut vote = 0u8;
                                if my_agents.iter().all(|&i| slots[i].lock().agent.done()) {
                                    vote |= VOTE_DONE;
                                }
                                if stop.load(Ordering::Acquire) {
                                    vote |= VOTE_STOPPED;
                                }
                                votes[parity * threads + widx].store(vote, Ordering::Relaxed);
                                if traced_wait(
                                    barrier,
                                    tracer.as_ref(),
                                    span_buf.as_mut(),
                                    shard.as_mut(),
                                    ids.map(|ids| ids.barrier_ns),
                                )
                                .is_err()
                                {
                                    break;
                                }
                                let mut all_done = true;
                                let mut stopped = false;
                                for w in 0..threads {
                                    let v = votes[parity * threads + w].load(Ordering::Relaxed);
                                    all_done &= v & VOTE_DONE != 0;
                                    stopped |= v & VOTE_STOPPED != 0;
                                }
                                parity ^= 1;
                                if all_done || stopped {
                                    break;
                                }
                            }
                        }
                        if let (Some(m), Some(sh)) = (metrics.as_ref(), shard.as_mut()) {
                            m.absorb(sh);
                        }
                        if let (Some(t), Some(mut buf)) = (tracer.as_ref(), span_buf.take()) {
                            t.flush(&mut buf);
                        }
                        round
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join())
                .collect::<Vec<std::thread::Result<u64>>>()
        });

        let mut min_rounds = rounds;
        for r in worker_results {
            match r {
                Ok(r) => min_rounds = min_rounds.min(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        if let Some(e) = error.lock().take() {
            return Err(e);
        }
        Ok(min_rounds)
    }

    /// Immutable access to a registered agent.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this engine.
    pub fn agent(&self, id: AgentId) -> &dyn SimAgent<Token = T> {
        self.agents[id.0].agent.as_ref()
    }

    /// Mutable access to a registered agent (e.g. to extract results after a
    /// run, via a concrete-type handle kept by the caller or downcasting in
    /// the agent's own API).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this engine.
    pub fn agent_mut(&mut self, id: AgentId) -> &mut dyn SimAgent<Token = T> {
        self.agents[id.0].agent.as_mut()
    }

    /// Snapshots the complete simulation state — every agent's mutable
    /// state plus all in-flight link tokens — at the current (deterministic)
    /// boundary between runs.
    ///
    /// Between runs each link's queue holds exactly `latency / window`
    /// windows, so the checkpoint captures the same quiescent state the
    /// engine started from, just at a later cycle: restoring it into an
    /// identically built engine and continuing produces bit-identical
    /// results to never having stopped.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Topology`] for unconnected ports and
    /// [`SimError::Checkpoint`] when an agent does not implement
    /// [`Checkpoint`].
    pub fn checkpoint(&mut self) -> SimResult<EngineCheckpoint<T>>
    where
        T: Clone,
    {
        self.check_wired()?;
        let mut agent_names = Vec::with_capacity(self.agents.len());
        let mut agent_state = Vec::with_capacity(self.agents.len());
        let mut link_state = Vec::with_capacity(self.agents.len());
        for slot in &mut self.agents {
            let name = slot.agent.name().to_owned();
            let links: Vec<Vec<TokenWindow<T>>> = slot
                .inputs
                .iter()
                .map(|rx| {
                    rx.as_ref()
                        .map(LinkReceiver::queue_snapshot)
                        .unwrap_or_default()
                })
                .collect();
            let mut w = SnapshotWriter::new();
            match slot.agent.as_checkpoint() {
                Some(cp) => cp.save_state(&mut w)?,
                None => {
                    return Err(SimError::checkpoint(format!(
                        "agent {name} does not implement Checkpoint"
                    )))
                }
            }
            agent_names.push(name);
            agent_state.push(w.into_bytes());
            link_state.push(links);
        }
        Ok(EngineCheckpoint {
            now: self.now,
            window: self.window,
            agent_names,
            agent_state,
            link_state,
        })
    }

    /// Restores a checkpoint taken from an identically built engine
    /// (same topology, same window, same agent names in the same order),
    /// replacing every agent's state and all in-flight link tokens, and
    /// rewinding/advancing [`Engine::now`] to the checkpoint's cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] when the checkpoint does not match
    /// this engine's topology or an agent snapshot is malformed, and
    /// [`SimError::Topology`] for unconnected ports.
    pub fn restore(&mut self, cp: &EngineCheckpoint<T>) -> SimResult<()>
    where
        T: Clone,
    {
        self.check_wired()?;
        if cp.window != self.window {
            return Err(SimError::checkpoint(format!(
                "checkpoint window {} does not match engine window {}",
                cp.window, self.window
            )));
        }
        if cp.agent_names.len() != self.agents.len() {
            return Err(SimError::checkpoint(format!(
                "checkpoint has {} agents, engine has {}",
                cp.agent_names.len(),
                self.agents.len()
            )));
        }
        for (slot, name) in self.agents.iter().zip(&cp.agent_names) {
            if slot.agent.name() != name {
                return Err(SimError::checkpoint(format!(
                    "checkpoint agent {name:?} does not match engine agent {:?}",
                    slot.agent.name()
                )));
            }
        }
        for (i, slot) in self.agents.iter_mut().enumerate() {
            if slot.inputs.len() != cp.link_state[i].len() {
                return Err(SimError::checkpoint(format!(
                    "checkpoint agent {} has {} input links, engine has {}",
                    cp.agent_names[i],
                    cp.link_state[i].len(),
                    slot.inputs.len()
                )));
            }
            let mut r = SnapshotReader::new(&cp.agent_state[i]);
            match slot.agent.as_checkpoint() {
                Some(c) => c.restore_state(&mut r)?,
                None => {
                    return Err(SimError::checkpoint(format!(
                        "agent {} does not implement Checkpoint",
                        cp.agent_names[i]
                    )))
                }
            }
            if r.remaining() != 0 {
                return Err(SimError::checkpoint(format!(
                    "agent {} snapshot has {} trailing bytes",
                    cp.agent_names[i],
                    r.remaining()
                )));
            }
            for (rx, windows) in slot.inputs.iter().zip(&cp.link_state[i]) {
                if let Some(rx) = rx.as_ref() {
                    rx.replace_queue(windows.clone());
                }
            }
        }
        self.now = cp.now;
        Ok(())
    }

    /// Restores this engine's agents from a checkpoint that may cover a
    /// **superset** of them, matching by agent name instead of position.
    ///
    /// This is the re-split primitive behind repartitioning: a full
    /// checkpoint (or a merge of per-shard checkpoints, see
    /// [`EngineCheckpoint::merge`]) can be restored into an engine built
    /// for *any* sharding of the same topology — each shard simply picks
    /// its own agents out of the checkpoint by name. It is sound because
    /// an agent's state blob and queued input windows are identical
    /// whatever shard its neighbours live on (the receiving side models
    /// the full link latency), so per-agent checkpoint entries carry no
    /// placement information.
    ///
    /// Every agent in *this* engine must appear in the checkpoint;
    /// checkpoint agents this engine does not host are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] when the windows differ, an
    /// engine agent is missing from the checkpoint, an input-link count
    /// disagrees, or an agent snapshot is malformed, and
    /// [`SimError::Topology`] for unconnected ports.
    pub fn restore_by_name(&mut self, cp: &EngineCheckpoint<T>) -> SimResult<()>
    where
        T: Clone,
    {
        self.check_wired()?;
        if cp.window != self.window {
            return Err(SimError::checkpoint(format!(
                "checkpoint window {} does not match engine window {}",
                cp.window, self.window
            )));
        }
        for slot in &mut self.agents {
            let name = slot.agent.name().to_owned();
            let i = cp
                .agent_names
                .iter()
                .position(|n| *n == name)
                .ok_or_else(|| {
                    SimError::checkpoint(format!("checkpoint has no agent named {name:?}"))
                })?;
            if slot.inputs.len() != cp.link_state[i].len() {
                return Err(SimError::checkpoint(format!(
                    "checkpoint agent {name} has {} input links, engine has {}",
                    cp.link_state[i].len(),
                    slot.inputs.len()
                )));
            }
            let mut r = SnapshotReader::new(&cp.agent_state[i]);
            match slot.agent.as_checkpoint() {
                Some(c) => c.restore_state(&mut r)?,
                None => {
                    return Err(SimError::checkpoint(format!(
                        "agent {name} does not implement Checkpoint"
                    )))
                }
            }
            if r.remaining() != 0 {
                return Err(SimError::checkpoint(format!(
                    "agent {name} snapshot has {} trailing bytes",
                    r.remaining()
                )));
            }
            for (rx, windows) in slot.inputs.iter().zip(&cp.link_state[i]) {
                if let Some(rx) = rx.as_ref() {
                    rx.replace_queue(windows.clone());
                }
            }
        }
        self.now = cp.now;
        Ok(())
    }
}

/// The injecting half of a cross-process link: windows received from a
/// peer shard are pushed here and flow to the destination agent after the
/// link's modeled latency. Created by [`Engine::connect_external_input`].
///
/// The underlying channel is bounded (capacity `latency / window + 1`
/// windows), so injection naturally back-pressures a transport pump that
/// runs ahead of the consuming agent — host scheduling can never violate
/// the paper's token flow control (§III-B2).
#[derive(Debug)]
pub struct BoundaryInput<T> {
    tx: LinkSender<T>,
    agent: String,
    port: usize,
}

impl<T: Send + 'static> BoundaryInput<T> {
    /// Name of the agent this boundary feeds.
    pub fn agent(&self) -> &str {
        &self.agent
    }

    /// The destination agent's input port.
    pub fn port(&self) -> usize {
        self.port
    }

    /// Window length in cycles.
    pub fn window(&self) -> u32 {
        self.tx.window()
    }

    /// Modeled link latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.tx.latency()
    }

    /// A spare window buffer to fill before injecting (recycled, so the
    /// steady state allocates nothing).
    pub fn take_buffer(&self) -> TokenWindow<T> {
        self.tx.take_buffer()
    }

    /// Injects one window, blocking while the link is at capacity. Returns
    /// `Ok(Some(w))` — the window handed back untouched — when `halt` was
    /// set before space appeared, `Ok(None)` on success.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ChannelClosed`] when the consuming engine has
    /// torn the link down.
    pub fn inject_or_halt(
        &self,
        w: TokenWindow<T>,
        halt: &AtomicBool,
    ) -> SimResult<Option<TokenWindow<T>>> {
        self.tx.send_or_halt(w, halt)
    }
}

/// The draining half of a cross-process link: windows the source agent
/// produced are pulled here, one per simulated round, for shipment to the
/// peer shard. Created by [`Engine::connect_external_output`].
#[derive(Debug)]
pub struct BoundaryOutput<T> {
    rx: LinkReceiver<T>,
    agent: String,
    port: usize,
}

impl<T: Send + 'static> BoundaryOutput<T> {
    /// Name of the agent this boundary drains.
    pub fn agent(&self) -> &str {
        &self.agent
    }

    /// The source agent's output port.
    pub fn port(&self) -> usize {
        self.port
    }

    /// Window length in cycles.
    pub fn window(&self) -> u32 {
        self.rx.window()
    }

    /// Modeled link latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.rx.latency()
    }

    /// Drains one produced window, blocking until the agent sends one.
    /// Returns `Ok(None)` when `halt` was set **and** no window is queued —
    /// so a halting pump always flushes what the agent already produced.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ChannelClosed`] when the producing engine has
    /// torn the link down.
    pub fn drain_or_halt(&self, halt: &AtomicBool) -> SimResult<Option<TokenWindow<T>>> {
        self.rx.recv_or_halt(halt)
    }

    /// Returns a shipped window's buffer to the spare pool, keeping the
    /// producing agent's sends allocation-free.
    pub fn recycle(&self, w: TokenWindow<T>) {
        self.rx.recycle(w)
    }
}

/// A point-in-time snapshot of an [`Engine`]: target time, per-agent state
/// blobs, and every link's in-flight token windows. Produced by
/// [`Engine::checkpoint`], consumed by [`Engine::restore`], and (for
/// `T: Snapshot`) serializable to disk.
pub struct EngineCheckpoint<T> {
    now: Cycle,
    window: u32,
    agent_names: Vec<String>,
    agent_state: Vec<Vec<u8>>,
    /// `link_state[agent][port]` = that input link's queued windows,
    /// oldest first.
    link_state: Vec<Vec<Vec<TokenWindow<T>>>>,
}

/// Magic + version prefix of the on-disk checkpoint encoding.
const CHECKPOINT_MAGIC: &[u8; 8] = b"FSCKPT01";

impl<T> EngineCheckpoint<T> {
    /// Target cycle at which this checkpoint was taken.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The engine window the checkpoint was taken with.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Names of the checkpointed agents, in registration order.
    pub fn agent_names(&self) -> impl Iterator<Item = &str> {
        self.agent_names.iter().map(String::as_str)
    }

    /// Merges per-shard checkpoints of one partitioned run into a single
    /// full-topology checkpoint.
    ///
    /// Every part must have been taken at the same cycle with the same
    /// window (the partitioned runner checkpoints all shards at a common
    /// run boundary), and no agent may appear in more than one part. The
    /// merged checkpoint lists agents sorted by name, so the result is
    /// independent of shard order and of how the run was partitioned —
    /// restore it anywhere with [`Engine::restore_by_name`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] when `parts` is empty, the cycles
    /// or windows disagree, or an agent name is duplicated across parts.
    pub fn merge(parts: Vec<EngineCheckpoint<T>>) -> SimResult<EngineCheckpoint<T>> {
        let Some(first) = parts.first() else {
            return Err(SimError::checkpoint("cannot merge zero checkpoints"));
        };
        let (now, window) = (first.now, first.window);
        for p in &parts {
            if p.now != now || p.window != window {
                return Err(SimError::checkpoint(format!(
                    "cannot merge checkpoints from different run points: \
                     cycle {} window {} vs cycle {} window {}",
                    p.now.as_u64(),
                    p.window,
                    now.as_u64(),
                    window
                )));
            }
        }
        #[allow(clippy::type_complexity)]
        let mut agents: Vec<(String, Vec<u8>, Vec<Vec<TokenWindow<T>>>)> = Vec::new();
        for p in parts {
            let mut state = p.agent_state.into_iter();
            let mut links = p.link_state.into_iter();
            for name in p.agent_names {
                agents.push((
                    name,
                    state.next().expect("state per agent"),
                    links.next().expect("links per agent"),
                ));
            }
        }
        agents.sort_by(|a, b| a.0.cmp(&b.0));
        if let Some(w) = agents.windows(2).find(|w| w[0].0 == w[1].0) {
            return Err(SimError::checkpoint(format!(
                "agent {:?} appears in more than one shard checkpoint",
                w[0].0
            )));
        }
        let mut agent_names = Vec::with_capacity(agents.len());
        let mut agent_state = Vec::with_capacity(agents.len());
        let mut link_state = Vec::with_capacity(agents.len());
        for (name, state, links) in agents {
            agent_names.push(name);
            agent_state.push(state);
            link_state.push(links);
        }
        Ok(EngineCheckpoint {
            now,
            window,
            agent_names,
            agent_state,
            link_state,
        })
    }
}

impl<T: Snapshot> EngineCheckpoint<T> {
    /// Serializes the checkpoint to its on-disk byte encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_bytes(CHECKPOINT_MAGIC);
        w.put_u32(self.window);
        w.put(&self.now);
        w.put_usize(self.agent_names.len());
        for i in 0..self.agent_names.len() {
            w.put_str(&self.agent_names[i]);
            w.put_bytes(&self.agent_state[i]);
            w.put(&self.link_state[i]);
        }
        w.into_bytes()
    }

    /// Parses a checkpoint from its on-disk byte encoding.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on bad magic, truncation, or
    /// malformed content.
    pub fn from_bytes(bytes: &[u8]) -> SimResult<Self> {
        let mut r = SnapshotReader::new(bytes);
        let magic = r.get_bytes()?;
        if magic != CHECKPOINT_MAGIC {
            return Err(SimError::checkpoint(
                "not a checkpoint file (bad magic / unsupported version)",
            ));
        }
        let window = r.get_u32()?;
        let now = r.get()?;
        let n = r.get_usize()?;
        let mut agent_names = Vec::with_capacity(n.min(1 << 16));
        let mut agent_state = Vec::with_capacity(n.min(1 << 16));
        let mut link_state = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            agent_names.push(r.get_str()?);
            agent_state.push(r.get_bytes()?.to_vec());
            link_state.push(r.get()?);
        }
        if r.remaining() != 0 {
            return Err(SimError::checkpoint(format!(
                "checkpoint has {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(EngineCheckpoint {
            now,
            window,
            agent_names,
            agent_state,
            link_state,
        })
    }

    /// A stable digest of each agent's complete checkpointed state —
    /// `(name, hash of state blob + in-flight input windows)` — in
    /// registration order.
    ///
    /// Because an agent's input links (and their queued windows) are
    /// identical whether the sending side lives in the same engine or
    /// behind a cross-process boundary, the *union* of per-agent digests
    /// over all shards of a partitioned run equals the digests of a
    /// monolithic run of the same topology: the paper's bit-identical
    /// partitioning invariant, made checkable. Combine with
    /// [`combined_digest`].
    pub fn agent_digests(&self) -> Vec<(String, u64)> {
        (0..self.agent_names.len())
            .map(|i| {
                let mut w = SnapshotWriter::new();
                w.put_str(&self.agent_names[i]);
                w.put_bytes(&self.agent_state[i]);
                w.put(&self.link_state[i]);
                (self.agent_names[i].clone(), fnv1a64(&w.into_bytes()))
            })
            .collect()
    }

    /// Writes the checkpoint to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] when the write fails.
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> SimResult<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_bytes())
            .map_err(|e| SimError::io(format!("writing checkpoint {}", path.display()), &e))
    }

    /// Reads a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] when the read fails and
    /// [`SimError::Checkpoint`] when the content is malformed.
    pub fn load_from(path: impl AsRef<std::path::Path>) -> SimResult<Self> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| SimError::io(format!("reading checkpoint {}", path.display()), &e))?;
        Self::from_bytes(&bytes)
    }
}

/// FNV-1a over a byte slice; the stable hash behind checkpoint digests.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Folds per-agent checkpoint digests (from
/// [`EngineCheckpoint::agent_digests`], possibly gathered from several
/// shards) into one order-independent run digest.
///
/// The pairs are sorted by agent name first, so the result is the same
/// however the topology was partitioned — equal combined digests mean
/// bit-identical per-agent state and in-flight tokens, the acceptance bar
/// the paper sets for distributed runs (§III-B2).
pub fn combined_digest(digests: &[(String, u64)]) -> u64 {
    let mut sorted: Vec<&(String, u64)> = digests.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (name, d) in sorted {
        h = fnv1a64(name.as_bytes()) ^ h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= *d;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl<T> std::fmt::Debug for EngineCheckpoint<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineCheckpoint")
            .field("now", &self.now)
            .field("window", &self.window)
            .field("agents", &self.agent_names)
            .finish()
    }
}

impl<T> std::fmt::Debug for Engine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("window", &self.window)
            .field("agents", &self.agents.len())
            .field("now", &self.now)
            .field("host_threads", &self.host_threads)
            .finish()
    }
}

/// Cached [`std::thread::available_parallelism`] — the probe reads cgroup
/// files on Linux (slow, allocating), and the answer never changes.
fn host_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Unwind guard: an agent panicking on one worker must not leave the other
/// workers blocked in channel receives or at the barrier forever.
struct PanicGuard<'a> {
    halt: &'a AtomicBool,
    barrier: &'a EpochBarrier,
}

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.halt.store(true, Ordering::Release);
            self.barrier.cancel();
        }
    }
}

/// Greedy longest-processing-time bin packing: heaviest agents first, each
/// onto the currently lightest worker. Deterministic: ties break towards
/// the lower agent index and the lower worker index.
fn lpt_partition(costs: &[u64], threads: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i].max(1)), i));
    let mut load = vec![0u128; threads];
    let mut assignment = vec![0usize; costs.len()];
    for i in order {
        let lightest = (0..threads).min_by_key(|&w| load[w]).expect("threads >= 1");
        assignment[i] = lightest;
        load[lightest] += u128::from(costs[i].max(1));
    }
    assignment
}

fn closed_by_peer(agent: &str) -> SimError {
    SimError::ChannelClosed {
        agent: agent.to_owned(),
    }
}

/// A barrier wait that (optionally) accounts its duration to the
/// `engine/barrier_wait_ns` counter and records a `"barrier"` span.
/// With observability off this is exactly `barrier.wait()`.
fn traced_wait(
    barrier: &EpochBarrier,
    tracer: Option<&Arc<SpanTracer>>,
    buf: Option<&mut SpanBuffer>,
    shard: Option<&mut MetricsShard>,
    barrier_ns: Option<CounterId>,
) -> Result<bool, BarrierCancelled> {
    let t0 = shard.is_some().then(Instant::now);
    let start_ns = tracer.map(|t| t.now_ns());
    let result = barrier.wait();
    if let (Some(t0), Some(sh), Some(id)) = (t0, shard, barrier_ns) {
        sh.add(id, t0.elapsed().as_nanos() as u64);
    }
    if let (Some(t), Some(buf), Some(start)) = (tracer, buf, start_ns) {
        buf.span("barrier", "sync", start, t.now_ns());
    }
    result
}

/// Advances one agent by one window. Returns `true` when the agent
/// requested a simulation stop via [`AgentCtx::request_stop`].
///
/// When `halt` is provided (parallel mode), blocking channel operations
/// wake on the halt flag so that one worker failing cannot deadlock the
/// rest.
///
/// Steady-state this performs **zero heap allocations**: input windows are
/// received into the slot's scratch vector and recycled back to their link
/// after `advance`; output windows come from each link's spare-buffer pool.
fn step_agent<T: Send + 'static>(
    slot: &mut AgentSlot<T>,
    now: Cycle,
    window: u32,
    halt: Option<&AtomicBool>,
    faults: Option<&AgentFaults>,
    profiling: bool,
) -> SimResult<bool> {
    let mut inject_panic: Option<String> = None;
    if let Some(faults) = faults {
        let name = slot.agent.name();
        for action in faults.due_host_faults(name, now.as_u64(), window) {
            match action {
                HostFaultAction::Stall(millis) => {
                    std::thread::sleep(std::time::Duration::from_millis(millis));
                }
                HostFaultAction::DropChannel(port) => {
                    if let Some(Some(rx)) = slot.inputs.get(port) {
                        rx.poison();
                    }
                    return Err(SimError::agent(
                        name,
                        format!(
                            "injected channel drop on input port {port} at cycle {}",
                            now.as_u64()
                        ),
                    ));
                }
                HostFaultAction::Panic(message) => inject_panic = Some(message),
            }
        }
    }

    let mut inputs = std::mem::take(&mut slot.scratch_in);
    debug_assert!(inputs.is_empty());
    for (port, rx) in slot.inputs.iter().enumerate() {
        let rx = rx.as_ref().ok_or_else(|| {
            SimError::topology(format!(
                "agent {} input port {port} unconnected mid-run",
                slot.agent.name()
            ))
        })?;
        let w = match halt {
            None => rx.recv().map_err(|_| closed_by_peer(slot.agent.name()))?,
            Some(halt) => match rx.recv_or_halt(halt) {
                Ok(Some(w)) => w,
                // Halted while waiting, or the peer is gone.
                Ok(None) | Err(_) => return Err(closed_by_peer(slot.agent.name())),
            },
        };
        inputs.push(w);
    }
    let down_mask = match faults {
        Some(faults) => faults.mask_inputs(slot.agent.name(), &mut inputs, now.as_u64(), window),
        None => 0,
    };
    if profiling {
        slot.profile.windows_in += inputs.len() as u64;
        slot.profile.tokens_in += inputs.iter().map(|w| w.occupancy() as u64).sum::<u64>();
    }
    let mut outputs = std::mem::take(&mut slot.scratch_out);
    debug_assert!(outputs.is_empty());
    for (port, tx) in slot.outputs.iter().enumerate() {
        let tx = tx.as_ref().ok_or_else(|| {
            SimError::topology(format!(
                "agent {} output port {port} unconnected mid-run",
                slot.agent.name()
            ))
        })?;
        outputs.push(tx.take_buffer());
    }

    let mut ctx = AgentCtx {
        now,
        window,
        inputs,
        outputs,
        stop: false,
        down_mask,
    };
    let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(message) = inject_panic {
            panic!("{message}");
        }
        slot.agent.advance(&mut ctx);
    }));
    if let Err(payload) = step {
        return Err(SimError::AgentPanicked {
            agent: slot.agent.name().to_owned(),
            cycle: now.as_u64(),
            message: panic_message(payload.as_ref()),
        });
    }
    let AgentCtx {
        mut inputs,
        mut outputs,
        stop,
        ..
    } = ctx;
    if profiling {
        slot.profile.windows_out += outputs.len() as u64;
        slot.profile.tokens_out += outputs.iter().map(|w| w.occupancy() as u64).sum::<u64>();
    }

    // Hand consumed input buffers back to their links for reuse.
    for (rx, w) in slot.inputs.iter().zip(inputs.drain(..)) {
        if let Some(rx) = rx.as_ref() {
            rx.recycle(w);
        }
    }
    slot.scratch_in = inputs;

    for (tx, w) in slot.outputs.iter().zip(outputs.drain(..)) {
        let tx = match tx.as_ref() {
            Some(tx) => tx,
            None => continue,
        };
        match halt {
            None => tx.send(w)?,
            Some(halt) => {
                if tx.send_or_halt(w, halt)?.is_some() {
                    // Halted while the link was full.
                    return Err(closed_by_peer(slot.agent.name()));
                }
            }
        }
    }
    slot.scratch_out = outputs;
    // host_ns is accounted by the caller, which chains one clock read per
    // step instead of bracketing each step with two.
    if profiling {
        slot.profile.rounds += 1;
        slot.profile.target_cycles += window as u64;
    }
    Ok(stop)
}

/// Best-effort rendering of a panic payload: the common `&str` / `String`
/// payloads come through verbatim, anything else is described opaquely.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts tokens received; sends a token every `period` cycles.
    struct Pulser {
        period: u64,
        sent: u64,
        received: Vec<u64>, // absolute arrival cycles
    }

    impl Pulser {
        fn new(period: u64) -> Self {
            Pulser {
                period,
                sent: 0,
                received: Vec::new(),
            }
        }
    }

    impl SimAgent for Pulser {
        type Token = u64;
        fn name(&self) -> &str {
            "pulser"
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn num_outputs(&self) -> usize {
            1
        }
        fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
            let base = ctx.now().as_u64();
            for (off, v) in ctx.drain_input(0) {
                let _sent_cycle = v;
                self.received.push(base + u64::from(off));
            }
            for off in 0..ctx.window() {
                let cycle = base + u64::from(off);
                if cycle.is_multiple_of(self.period) {
                    ctx.push_output(0, off, cycle);
                    self.sent += 1;
                }
            }
        }
        fn as_checkpoint(&mut self) -> Option<&mut dyn Checkpoint> {
            Some(self)
        }
    }

    impl Checkpoint for Pulser {
        fn save_state(&self, w: &mut SnapshotWriter) -> SimResult<()> {
            w.put_u64(self.sent);
            w.put(&self.received);
            Ok(())
        }
        fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> SimResult<()> {
            self.sent = r.get_u64()?;
            self.received = r.get()?;
            Ok(())
        }
    }

    #[test]
    fn two_agents_ring_latency() {
        let mut engine = Engine::new(8);
        let a = engine.add_agent(Box::new(Pulser::new(16)));
        let b = engine.add_agent(Box::new(Pulser::new(16)));
        engine.connect(a, 0, b, 0, Cycle::new(8)).unwrap();
        engine.connect(b, 0, a, 0, Cycle::new(8)).unwrap();
        let summary = engine.run_for(Cycle::new(64)).unwrap();
        assert_eq!(summary.cycles, Cycle::new(64));
        // Tokens sent at cycles 0, 16, 32, 48 arrive 8 cycles later.
        // (Pull results out by rebuilding — engine owns agents; we use a
        // second engine run pattern in integration tests. Here just check
        // the run completed and advanced time.)
        assert_eq!(engine.now(), Cycle::new(64));
    }

    /// Echo agent used to observe arrival times through shared state.
    struct Probe {
        arrivals: std::sync::Arc<parking_lot::Mutex<Vec<u64>>>,
    }

    impl SimAgent for Probe {
        type Token = u64;
        fn name(&self) -> &str {
            "probe"
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn num_outputs(&self) -> usize {
            0
        }
        fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
            let base = ctx.now().as_u64();
            let mut arr = self.arrivals.lock();
            for (off, _v) in ctx.drain_input(0) {
                arr.push(base + u64::from(off));
            }
        }
    }

    struct OneShot {
        at: u64,
        fired: bool,
    }

    impl SimAgent for OneShot {
        type Token = u64;
        fn name(&self) -> &str {
            "oneshot"
        }
        fn num_inputs(&self) -> usize {
            0
        }
        fn num_outputs(&self) -> usize {
            1
        }
        fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
            let base = ctx.now().as_u64();
            if !self.fired && self.at >= base && self.at < base + u64::from(ctx.window()) {
                ctx.push_output(0, (self.at - base) as u32, self.at);
                self.fired = true;
            }
        }
        fn done(&self) -> bool {
            self.fired
        }
    }

    #[test]
    fn token_arrives_exactly_latency_later() {
        for latency in [8u64, 16, 64] {
            let arrivals = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
            let mut engine = Engine::new(8);
            let s = engine.add_agent(Box::new(OneShot {
                at: 13,
                fired: false,
            }));
            let p = engine.add_agent(Box::new(Probe {
                arrivals: arrivals.clone(),
            }));
            engine.connect(s, 0, p, 0, Cycle::new(latency)).unwrap();
            engine.run_for(Cycle::new(256)).unwrap();
            assert_eq!(*arrivals.lock(), vec![13 + latency], "latency {latency}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let run = |threads: usize| {
            let arrivals = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
            let mut engine = Engine::new(4);
            engine
                .set_host_threads(threads)
                .set_host_oversubscribe(true);
            let s = engine.add_agent(Box::new(OneShot {
                at: 7,
                fired: false,
            }));
            let p = engine.add_agent(Box::new(Probe {
                arrivals: arrivals.clone(),
            }));
            // extra agents to exercise partitioning
            let a = engine.add_agent(Box::new(Pulser::new(8)));
            let b = engine.add_agent(Box::new(Pulser::new(8)));
            engine.connect(s, 0, p, 0, Cycle::new(12)).unwrap();
            engine.connect(a, 0, b, 0, Cycle::new(4)).unwrap();
            engine.connect(b, 0, a, 0, Cycle::new(8)).unwrap();
            engine.run_for(Cycle::new(128)).unwrap();
            let v = arrivals.lock().clone();
            v
        };
        let seq = run(1);
        for threads in 2..=4 {
            assert_eq!(run(threads), seq, "threads {threads}");
        }
    }

    #[test]
    fn parallel_matches_sequential_with_adversarial_weights() {
        // Weights only steer the partitioner; results must not move.
        let run = |threads: usize, weights: &[u64]| {
            let arrivals = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
            let mut engine = Engine::new(4);
            engine
                .set_host_threads(threads)
                .set_host_oversubscribe(true);
            engine.set_chunk_rounds(2); // force several repartition-eligible chunks
            let s = engine.add_agent(Box::new(OneShot {
                at: 7,
                fired: false,
            }));
            let p = engine.add_agent(Box::new(Probe {
                arrivals: arrivals.clone(),
            }));
            let a = engine.add_agent(Box::new(Pulser::new(8)));
            let b = engine.add_agent(Box::new(Pulser::new(8)));
            for (id, w) in [s, p, a, b].into_iter().zip(weights) {
                engine.set_agent_weight(id, *w);
            }
            engine.connect(s, 0, p, 0, Cycle::new(12)).unwrap();
            engine.connect(a, 0, b, 0, Cycle::new(4)).unwrap();
            engine.connect(b, 0, a, 0, Cycle::new(8)).unwrap();
            engine.run_for(Cycle::new(128)).unwrap();
            let v = arrivals.lock().clone();
            v
        };
        let baseline = run(1, &[1, 1, 1, 1]);
        for weights in [
            [1u64, 1, 1, 1],
            [u64::MAX, 1, 1, 1],
            [1, u64::MAX, u64::MAX, 1],
            [0, 0, 0, 0],
            [7, 3, 100, 1],
        ] {
            for threads in 2..=4 {
                assert_eq!(run(threads, &weights), baseline, "{threads} {weights:?}");
            }
        }
    }

    #[test]
    fn lpt_balances_and_is_deterministic() {
        // One heavy agent and many light ones: the heavy one gets a
        // worker mostly to itself.
        let costs = [1000u64, 10, 10, 10, 10, 10, 10, 10];
        let a = lpt_partition(&costs, 2);
        assert_eq!(a, lpt_partition(&costs, 2), "deterministic");
        let heavy_worker = a[0];
        let peers = (1..8).filter(|&i| a[i] == heavy_worker).count();
        assert_eq!(peers, 0, "light agents avoid the heavy worker: {a:?}");
        // Everything lands on a valid worker and no worker is empty.
        for threads in 1..=4 {
            let a = lpt_partition(&costs, threads);
            assert!(a.iter().all(|&w| w < threads));
            for w in 0..threads {
                assert!(a.contains(&w), "worker {w} empty: {a:?}");
            }
        }
    }

    #[test]
    fn run_until_done_stops_early() {
        let mut engine = Engine::new(4);
        engine.set_chunk_rounds(2);
        let arrivals = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s = engine.add_agent(Box::new(OneShot {
            at: 3,
            fired: false,
        }));
        let p = engine.add_agent(Box::new(Probe {
            arrivals: arrivals.clone(),
        }));
        engine.connect(s, 0, p, 0, Cycle::new(4)).unwrap();
        // Probe is never "done"... it has no done override, defaults false.
        // So run_until_done will run to max. Use a short max.
        let summary = engine.run_until_done(Cycle::new(40)).unwrap();
        assert!(summary.cycles <= Cycle::new(40));
        assert_eq!(*arrivals.lock(), vec![7]);
    }

    #[test]
    fn parallel_reports_min_rounds_across_workers() {
        // All-done termination at a chunk boundary: every worker agrees on
        // the same boundary, and the reported cycle count must reflect the
        // minimum rounds completed by ANY worker (not worker 0's view).
        struct Done;
        impl SimAgent for Done {
            type Token = u64;
            fn name(&self) -> &str {
                "done"
            }
            fn num_inputs(&self) -> usize {
                1
            }
            fn num_outputs(&self) -> usize {
                1
            }
            fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
                for _ in ctx.drain_input(0) {}
            }
            fn done(&self) -> bool {
                true
            }
        }
        let mut engine = Engine::new(4);
        engine
            .set_host_threads(4)
            .set_host_oversubscribe(true)
            .set_chunk_rounds(2);
        let ids: Vec<AgentId> = (0..4).map(|_| engine.add_agent(Box::new(Done))).collect();
        for i in 0..4 {
            engine
                .connect(ids[i], 0, ids[(i + 1) % 4], 0, Cycle::new(4))
                .unwrap();
        }
        let summary = engine.run_until_done(Cycle::new(4000)).unwrap();
        // All agents are done from the start; the run ends at the first
        // chunk boundary (2 rounds = 8 cycles) on every worker.
        assert_eq!(summary.cycles, Cycle::new(8));
        assert_eq!(engine.now(), Cycle::new(8));
    }

    #[test]
    fn unconnected_port_is_error() {
        let mut engine: Engine<u64> = Engine::new(4);
        let _ = engine.add_agent(Box::new(Pulser::new(4)));
        assert!(matches!(
            engine.run_for(Cycle::new(4)),
            Err(SimError::Topology { .. })
        ));
    }

    #[test]
    fn double_connect_is_error() {
        let mut engine: Engine<u64> = Engine::new(4);
        let a = engine.add_agent(Box::new(Pulser::new(4)));
        let b = engine.add_agent(Box::new(Pulser::new(4)));
        engine.connect(a, 0, b, 0, Cycle::new(4)).unwrap();
        assert!(matches!(
            engine.connect(a, 0, b, 0, Cycle::new(4)),
            Err(SimError::Topology { .. })
        ));
    }

    #[test]
    fn bad_latency_is_error() {
        let mut engine: Engine<u64> = Engine::new(8);
        let a = engine.add_agent(Box::new(Pulser::new(4)));
        let b = engine.add_agent(Box::new(Pulser::new(4)));
        assert!(matches!(
            engine.connect(a, 0, b, 0, Cycle::new(12)),
            Err(SimError::BadLatency { .. })
        ));
    }

    #[test]
    fn stop_handle_stops_at_boundary() {
        let mut engine: Engine<u64> = Engine::new(4);
        engine.set_chunk_rounds(1);
        let a = engine.add_agent(Box::new(Pulser::new(4)));
        let b = engine.add_agent(Box::new(Pulser::new(4)));
        engine.connect(a, 0, b, 0, Cycle::new(4)).unwrap();
        engine.connect(b, 0, a, 0, Cycle::new(4)).unwrap();
        let handle = engine.stop_handle();
        handle.stop();
        // Stop is reset at run start; set it again from a thread during run.
        // Simplest deterministic check: request before run after reset is
        // not observable, so instead verify run_until_done with all-done.
        let summary = engine.run_until_done(Cycle::new(400)).unwrap();
        assert!(summary.cycles <= Cycle::new(400));
    }

    #[test]
    fn run_for_rounds_up_to_window() {
        let mut engine: Engine<u64> = Engine::new(8);
        let a = engine.add_agent(Box::new(Pulser::new(4)));
        let b = engine.add_agent(Box::new(Pulser::new(4)));
        engine.connect(a, 0, b, 0, Cycle::new(8)).unwrap();
        engine.connect(b, 0, a, 0, Cycle::new(8)).unwrap();
        let summary = engine.run_for(Cycle::new(10)).unwrap();
        assert_eq!(summary.cycles, Cycle::new(16));
    }

    #[test]
    fn panicking_agent_does_not_deadlock_peers() {
        struct Bomb {
            after: u64,
        }
        impl SimAgent for Bomb {
            type Token = u64;
            fn name(&self) -> &str {
                "bomb"
            }
            fn num_inputs(&self) -> usize {
                1
            }
            fn num_outputs(&self) -> usize {
                1
            }
            fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
                for _ in ctx.drain_input(0) {}
                if ctx.now().as_u64() >= self.after {
                    panic!("boom at {}", ctx.now().as_u64());
                }
            }
        }
        let mut engine = Engine::new(4);
        engine
            .set_host_threads(3)
            .set_host_oversubscribe(true)
            .set_chunk_rounds(4);
        let bomb = engine.add_agent(Box::new(Bomb { after: 32 }));
        let a = engine.add_agent(Box::new(Pulser::new(4)));
        let b = engine.add_agent(Box::new(Pulser::new(4)));
        engine.connect(bomb, 0, a, 0, Cycle::new(4)).unwrap();
        engine.connect(a, 0, bomb, 0, Cycle::new(4)).unwrap();
        // a<->b ring keeps a third worker busy.
        engine.connect(b, 0, b, 0, Cycle::new(4)).unwrap();
        // The panic surfaces as a typed error naming the culprit and its
        // cycle (rather than hanging the test forever or blaming a peer
        // whose channel merely closed).
        match engine.run_for(Cycle::new(4000)) {
            Err(SimError::AgentPanicked {
                agent,
                cycle,
                message,
            }) => {
                assert_eq!(agent, "bomb");
                assert_eq!(cycle, 32);
                assert!(message.contains("boom at 32"), "message: {message}");
            }
            other => panic!("expected AgentPanicked, got {other:?}"),
        }
    }

    /// A two-pulser ring whose agents support checkpointing.
    fn checkpointable_ring() -> Engine<u64> {
        let mut engine: Engine<u64> = Engine::new(4);
        let a = engine.add_agent(Box::new(Pulser::new(4)));
        let b = engine.add_agent(Box::new(Pulser::new(6)));
        engine.connect(a, 0, b, 0, Cycle::new(8)).unwrap();
        engine.connect(b, 0, a, 0, Cycle::new(8)).unwrap();
        engine
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        // Reference: run straight to cycle 96 and snapshot.
        let mut straight = checkpointable_ring();
        straight.run_for(Cycle::new(96)).unwrap();
        let want = straight.checkpoint().unwrap().to_bytes();

        // Run to 64, checkpoint, restore into a *fresh* engine, run on.
        let mut first = checkpointable_ring();
        first.run_for(Cycle::new(64)).unwrap();
        let cp = first.checkpoint().unwrap();
        assert_eq!(cp.now(), Cycle::new(64));

        let mut resumed = checkpointable_ring();
        resumed.restore(&cp).unwrap();
        assert_eq!(resumed.now(), Cycle::new(64));
        resumed.run_for(Cycle::new(32)).unwrap();
        let got = resumed.checkpoint().unwrap().to_bytes();
        assert_eq!(got, want, "resumed state must be bit-identical");
    }

    #[test]
    fn checkpoint_bytes_and_file_round_trip() {
        let mut engine = checkpointable_ring();
        engine.run_for(Cycle::new(32)).unwrap();
        let cp = engine.checkpoint().unwrap();
        let bytes = cp.to_bytes();

        let back = EngineCheckpoint::<u64>::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.now(), cp.now());
        assert_eq!(back.window(), cp.window());
        assert!(matches!(
            EngineCheckpoint::<u64>::from_bytes(b"\x08\x00\x00\x00\x00\x00\x00\x00NOTACKPT"),
            Err(SimError::Checkpoint { .. })
        ));

        let path = std::env::temp_dir().join(format!("fsckpt-test-{}.ckpt", std::process::id()));
        cp.save_to(&path).unwrap();
        let loaded = EngineCheckpoint::<u64>::load_from(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded.to_bytes(), bytes);

        let mut fresh = checkpointable_ring();
        fresh.restore(&loaded).unwrap();
        assert_eq!(fresh.now(), Cycle::new(32));
    }

    #[test]
    fn restore_rejects_mismatched_topology() {
        let mut engine = checkpointable_ring();
        engine.run_for(Cycle::new(32)).unwrap();
        let cp = engine.checkpoint().unwrap();

        // Wrong window.
        let mut other: Engine<u64> = Engine::new(8);
        let a = other.add_agent(Box::new(Pulser::new(4)));
        let b = other.add_agent(Box::new(Pulser::new(6)));
        other.connect(a, 0, b, 0, Cycle::new(8)).unwrap();
        other.connect(b, 0, a, 0, Cycle::new(8)).unwrap();
        assert!(matches!(
            other.restore(&cp),
            Err(SimError::Checkpoint { .. })
        ));

        // Wrong agent count.
        let mut small: Engine<u64> = Engine::new(4);
        let s = small.add_agent(Box::new(Pulser::new(4)));
        small.connect(s, 0, s, 0, Cycle::new(8)).unwrap();
        assert!(matches!(
            small.restore(&cp),
            Err(SimError::Checkpoint { .. })
        ));
    }

    #[test]
    fn merge_rejects_empty_skewed_and_duplicate_parts() {
        assert!(matches!(
            EngineCheckpoint::<u64>::merge(Vec::new()),
            Err(SimError::Checkpoint { .. })
        ));

        // Parts from different run points cannot be one checkpoint.
        let mut a = checkpointable_ring();
        a.run_for(Cycle::new(32)).unwrap();
        let early = a.checkpoint().unwrap();
        a.run_for(Cycle::new(32)).unwrap();
        let late = a.checkpoint().unwrap();
        assert!(matches!(
            EngineCheckpoint::merge(vec![early, late]),
            Err(SimError::Checkpoint { .. })
        ));

        // The same agent in two parts is a sharding bug, not a merge.
        let cp1 = a.checkpoint().unwrap();
        let cp2 = a.checkpoint().unwrap();
        let err = EngineCheckpoint::merge(vec![cp1, cp2]).unwrap_err();
        assert!(
            err.to_string().contains("more than one shard"),
            "duplicate agent must be named: {err}"
        );
    }

    #[test]
    fn restore_by_name_rejects_window_and_name_mismatch() {
        let mut engine = checkpointable_ring();
        engine.run_for(Cycle::new(32)).unwrap();
        let cp = engine.checkpoint().unwrap();

        // Wrong window.
        let mut wide: Engine<u64> = Engine::new(8);
        let a = wide.add_agent(Box::new(Pulser::new(4)));
        wide.connect(a, 0, a, 0, Cycle::new(8)).unwrap();
        assert!(matches!(
            wide.restore_by_name(&cp),
            Err(SimError::Checkpoint { .. })
        ));

        // Engine agent absent from the checkpoint.
        let mut other: Engine<u64> = Engine::new(4);
        let shot = other.add_agent(Box::new(OneShot {
            at: 0,
            fired: false,
        }));
        let probe = other.add_agent(Box::new(Probe {
            arrivals: std::sync::Arc::new(parking_lot::Mutex::new(Vec::new())),
        }));
        other.connect(shot, 0, probe, 0, Cycle::new(8)).unwrap();
        let err = other.restore_by_name(&cp).unwrap_err();
        assert!(
            err.to_string().contains("no agent named"),
            "missing agent must be named: {err}"
        );
    }

    #[test]
    fn injected_panic_surfaces_as_agent_panicked() {
        for threads in [1usize, 2] {
            let mut engine = checkpointable_ring();
            engine
                .set_host_threads(threads)
                .set_host_oversubscribe(true)
                .set_chunk_rounds(2);
            let mut plan = FaultPlan::new(9);
            plan.panic_at(1usize, 30);
            engine.set_fault_plan(plan);
            match engine.run_for(Cycle::new(4000)) {
                Err(SimError::AgentPanicked {
                    agent,
                    cycle,
                    message,
                }) => {
                    assert_eq!(agent, "pulser", "threads {threads}");
                    // Window 4: cycle 30 falls in the window starting at 28.
                    assert_eq!(cycle, 28, "threads {threads}");
                    assert!(message.contains("injected panic"), "message: {message}");
                }
                other => panic!("threads {threads}: expected AgentPanicked, got {other:?}"),
            }
            let records = engine.fault_records();
            assert_eq!(records.len(), 1, "threads {threads}");
            assert_eq!(records[0].agent, "pulser");
            assert_eq!(records[0].cycle, 28);
        }
    }

    #[test]
    fn injected_channel_drop_names_the_agent() {
        for threads in [1usize, 2] {
            let mut engine = checkpointable_ring();
            engine
                .set_host_threads(threads)
                .set_host_oversubscribe(true)
                .set_chunk_rounds(2);
            let mut plan = FaultPlan::new(11);
            plan.drop_channel(0usize, 0, 16);
            engine.set_fault_plan(plan);
            match engine.run_for(Cycle::new(4000)) {
                Err(SimError::Agent { agent, detail }) => {
                    assert_eq!(agent, "pulser", "threads {threads}");
                    assert!(detail.contains("channel drop"), "detail: {detail}");
                }
                other => panic!("threads {threads}: expected Agent error, got {other:?}"),
            }
            assert_eq!(engine.fault_records().len(), 1, "threads {threads}");
        }
    }

    #[test]
    fn link_down_fault_suppresses_arrivals_deterministically() {
        let run = |fault: bool| {
            let arrivals = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
            let mut engine = Engine::new(8);
            let feeder = engine.add_agent(Box::new(OneShot {
                at: 3,
                fired: false,
            }));
            let s = engine.add_agent(Box::new(Pulser::new(16)));
            let p = engine.add_agent(Box::new(Probe {
                arrivals: arrivals.clone(),
            }));
            engine.connect(feeder, 0, s, 0, Cycle::new(8)).unwrap();
            engine.connect(s, 0, p, 0, Cycle::new(8)).unwrap();
            if fault {
                let mut plan = FaultPlan::new(3);
                // Probe's input is dead for cycles [30, 60): the sends at
                // 32 and 48 (arriving 40 and 56) are suppressed.
                plan.link_down("probe", 0, 30, 60);
                engine.set_fault_plan(plan);
            }
            engine.run_for(Cycle::new(128)).unwrap();
            let v = arrivals.lock().clone();
            v
        };
        let clean = run(false);
        assert_eq!(clean, vec![8, 24, 40, 56, 72, 88, 104, 120]);
        let faulty = run(true);
        assert_eq!(faulty, vec![8, 24, 72, 88, 104, 120]);
        // Deterministic replay: same plan, same suppression.
        assert_eq!(run(true), faulty);
    }

    #[test]
    fn abort_handle_surfaces_aborted_error() {
        for threads in [1usize, 3] {
            let mut engine: Engine<u64> = Engine::new(4);
            engine
                .set_host_threads(threads)
                .set_host_oversubscribe(true)
                .set_chunk_rounds(2);
            let a = engine.add_agent(Box::new(Pulser::new(4)));
            let b = engine.add_agent(Box::new(Pulser::new(4)));
            let c = engine.add_agent(Box::new(Pulser::new(4)));
            engine.connect(a, 0, b, 0, Cycle::new(4)).unwrap();
            engine.connect(b, 0, a, 0, Cycle::new(4)).unwrap();
            engine.connect(c, 0, c, 0, Cycle::new(4)).unwrap();
            let handle = engine.abort_handle();
            let probe = engine.progress_probe();
            let watchdog = std::thread::spawn(move || {
                // Wait until the run is demonstrably underway, then abort.
                while probe.total_steps() < 12 {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                handle.abort("watchdog says stop");
            });
            let result = engine.run_for(Cycle::new(1_000_000));
            watchdog.join().unwrap();
            match result {
                Err(SimError::Aborted { reason }) => {
                    assert_eq!(reason, "watchdog says stop", "threads {threads}")
                }
                other => panic!("threads {threads}: expected Aborted, got {other:?}"),
            }
        }
    }

    #[test]
    fn progress_probe_counts_agent_windows() {
        let mut engine = checkpointable_ring();
        let probe = engine.progress_probe();
        assert_eq!(probe.total_steps(), 0);
        engine.run_for(Cycle::new(64)).unwrap();
        // 16 rounds x 2 agents.
        assert_eq!(probe.total_steps(), 32);
        let (name, steps) = probe.slowest_agent().unwrap();
        assert_eq!(name, "pulser");
        assert_eq!(steps, 16);
    }

    #[test]
    fn worker_stall_fault_delays_but_completes() {
        let mut engine = checkpointable_ring();
        let mut plan = FaultPlan::new(5);
        plan.stall_worker(0usize, 8, 20);
        engine.set_fault_plan(plan);
        let summary = engine.run_for(Cycle::new(64)).unwrap();
        assert_eq!(summary.cycles, Cycle::new(64));
        assert!(
            summary.wall >= std::time::Duration::from_millis(15),
            "stall must actually delay the run: {:?}",
            summary.wall
        );
        let records = engine.fault_records();
        assert_eq!(records.len(), 1);
        assert!(records[0].description.contains("worker stall"));
        // One-shot: a second run does not stall again.
        let again = engine.run_for(Cycle::new(64)).unwrap();
        assert!(again.wall < std::time::Duration::from_millis(15));
        assert_eq!(engine.fault_records().len(), 1);
    }

    /// Ground truth for the profiling pipeline: a Pulser with period 16 on
    /// a window-8, latency-8 ring emits exactly one token per 16 cycles, so
    /// every field of the profile is analytically known.
    #[test]
    fn metrics_profile_matches_ground_truth() {
        let mut engine: Engine<u64> = Engine::new(8);
        let a = engine.add_agent(Box::new(Pulser::new(16)));
        let b = engine.add_agent(Box::new(Pulser::new(16)));
        engine.connect(a, 0, b, 0, Cycle::new(8)).unwrap();
        engine.connect(b, 0, a, 0, Cycle::new(8)).unwrap();
        let reg = engine.enable_metrics();
        engine.run_for(Cycle::new(64)).unwrap();
        for id in [a, b] {
            let p = engine.agent_profile(id);
            assert_eq!(p.rounds, 8);
            assert_eq!(p.target_cycles, 64);
            assert_eq!(p.windows_in, 8);
            assert_eq!(p.windows_out, 8);
            // Sent at cycles 0, 16, 32, 48; peer's arrive 8 cycles later —
            // all four within the 64 simulated cycles.
            assert_eq!(p.tokens_out, 4);
            assert_eq!(p.tokens_in, 4);
        }
        // 8 rounds x 2 agents.
        assert_eq!(reg.counter_value("engine/agent_steps"), Some(16));
    }

    #[test]
    fn profiles_stay_zero_when_metrics_disabled() {
        let mut engine = checkpointable_ring();
        engine.run_for(Cycle::new(64)).unwrap();
        for (_, p) in engine.agent_profiles() {
            assert_eq!(p, AgentProfile::default());
        }
        assert!(engine.metrics().is_none());
        assert!(engine.tracer().is_none());
    }

    #[test]
    fn aggregated_metrics_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut engine: Engine<u64> = Engine::new(4);
            engine
                .set_host_threads(threads)
                .set_host_oversubscribe(true)
                .set_chunk_rounds(2);
            let a = engine.add_agent(Box::new(Pulser::new(4)));
            let b = engine.add_agent(Box::new(Pulser::new(6)));
            let c = engine.add_agent(Box::new(Pulser::new(8)));
            engine.connect(a, 0, b, 0, Cycle::new(8)).unwrap();
            engine.connect(b, 0, c, 0, Cycle::new(8)).unwrap();
            engine.connect(c, 0, a, 0, Cycle::new(8)).unwrap();
            let reg = engine.enable_metrics();
            engine.run_for(Cycle::new(96)).unwrap();
            let steps = reg.counter_value("engine/agent_steps");
            let profiles: Vec<_> = engine
                .agent_profiles()
                .into_iter()
                .map(|(name, p)| {
                    // host_ns is host-dependent by definition; everything
                    // else must be bit-identical.
                    (
                        name,
                        p.rounds,
                        p.target_cycles,
                        p.windows_in,
                        p.windows_out,
                        p.tokens_in,
                        p.tokens_out,
                    )
                })
                .collect();
            (steps, profiles)
        };
        let baseline = run(1);
        for threads in [2usize, 3] {
            assert_eq!(run(threads), baseline, "threads {threads}");
        }
    }

    #[test]
    fn link_occupancies_satisfy_latency_invariant() {
        let mut engine: Engine<u64> = Engine::new(4);
        let a = engine.add_agent(Box::new(Pulser::new(4)));
        let b = engine.add_agent(Box::new(Pulser::new(6)));
        engine.connect(a, 0, b, 0, Cycle::new(12)).unwrap();
        engine.connect(b, 0, a, 0, Cycle::new(8)).unwrap();
        // Holds before the first run (links are seeded full)...
        engine.verify_token_invariant().unwrap();
        engine.run_for(Cycle::new(64)).unwrap();
        // ...and at every quiescent boundary after.
        engine.verify_token_invariant().unwrap();
        let occ = engine.link_occupancies();
        assert_eq!(occ.len(), 2);
        for link in &occ {
            assert_eq!(
                link.in_flight_tokens, link.latency,
                "latency-{} link must hold exactly that many tokens: {link:?}",
                link.latency
            );
        }
        assert_eq!(occ[0].latency, 8); // agent a's input is the b->a link
        assert_eq!(occ[1].latency, 12);
    }

    #[test]
    fn tracing_captures_agent_and_sync_spans() {
        let mut engine: Engine<u64> = Engine::new(4);
        engine
            .set_host_threads(2)
            .set_host_oversubscribe(true)
            .set_chunk_rounds(2);
        let a = engine.add_agent(Box::new(Pulser::new(4)));
        let b = engine.add_agent(Box::new(Pulser::new(6)));
        engine.connect(a, 0, b, 0, Cycle::new(8)).unwrap();
        engine.connect(b, 0, a, 0, Cycle::new(8)).unwrap();
        let tracer = engine.enable_tracing();
        // run_until_done votes at every chunk boundary, so barrier spans
        // appear even without a repartition.
        engine.run_until_done(Cycle::new(64)).unwrap();
        // 16 agent-step spans plus at least one barrier span per chunk.
        assert!(tracer.len() >= 16, "got {} spans", tracer.len());
        let json = tracer.export_chrome_trace();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let cats: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("cat").and_then(|c| c.as_str()))
            .collect();
        assert!(cats.contains(&"agent"));
        assert!(cats.contains(&"sync"));
    }

    /// Drives `out -> inp` like a `manager::partition` transport pump, but
    /// in-process: the degenerate "transport" is a direct hand-off.
    fn pump(
        out: BoundaryOutput<u64>,
        inp: BoundaryInput<u64>,
        halt: Arc<AtomicBool>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            while let Ok(Some(w)) = out.drain_or_halt(&halt) {
                if !matches!(inp.inject_or_halt(w, &halt), Ok(None)) {
                    break;
                }
            }
        })
    }

    /// A two-agent ring split across two engines connected by boundary
    /// ports produces bit-identical checkpoints to the monolithic ring —
    /// the §III-B2 partitioning invariant at its smallest scale.
    #[test]
    fn boundary_ports_match_monolithic_ring() {
        let run_monolithic = || {
            let mut engine = Engine::new(8);
            let a = engine.add_agent(Box::new(Pulser::new(16)));
            let b = engine.add_agent(Box::new(Pulser::new(24)));
            engine.connect(a, 0, b, 0, Cycle::new(8)).unwrap();
            engine.connect(b, 0, a, 0, Cycle::new(8)).unwrap();
            engine.run_for(Cycle::new(64)).unwrap();
            engine.checkpoint().unwrap().agent_digests()
        };

        let run_split = || {
            let mut e0: Engine<u64> = Engine::new(8);
            let mut e1: Engine<u64> = Engine::new(8);
            let a = e0.add_agent(Box::new(Pulser::new(16)));
            let b = e1.add_agent(Box::new(Pulser::new(24)));
            let out_a = e0.connect_external_output(a, 0, Cycle::new(8)).unwrap();
            let in_b = e1.connect_external_input(b, 0, Cycle::new(8)).unwrap();
            let out_b = e1.connect_external_output(b, 0, Cycle::new(8)).unwrap();
            let in_a = e0.connect_external_input(a, 0, Cycle::new(8)).unwrap();

            let halt = Arc::new(AtomicBool::new(false));
            let pumps = [
                pump(out_a, in_b, Arc::clone(&halt)),
                pump(out_b, in_a, Arc::clone(&halt)),
            ];
            let t1 = std::thread::spawn(move || {
                e1.run_for(Cycle::new(64)).unwrap();
                e1.checkpoint().unwrap().agent_digests()
            });
            e0.run_for(Cycle::new(64)).unwrap();
            let mut digests = e0.checkpoint().unwrap().agent_digests();
            digests.extend(t1.join().unwrap());
            halt.store(true, Ordering::Release);
            for p in pumps {
                p.join().unwrap();
            }
            digests
        };

        let mono = run_monolithic();
        let split = run_split();
        assert_eq!(mono, split);
        assert_eq!(combined_digest(&mono), combined_digest(&split));
        // And the digest is actually sensitive to state: a different run
        // length must differ.
        let mut engine = Engine::new(8);
        let a = engine.add_agent(Box::new(Pulser::new(16)));
        let b = engine.add_agent(Box::new(Pulser::new(24)));
        engine.connect(a, 0, b, 0, Cycle::new(8)).unwrap();
        engine.connect(b, 0, a, 0, Cycle::new(8)).unwrap();
        engine.run_for(Cycle::new(128)).unwrap();
        let longer = engine.checkpoint().unwrap().agent_digests();
        assert_ne!(combined_digest(&mono), combined_digest(&longer));
    }

    /// The seed windows of an external *output* are drained at creation:
    /// the first window a pump sees is the first one the agent produced.
    #[test]
    fn external_output_starts_empty() {
        let mut engine: Engine<u64> = Engine::new(8);
        let a = engine.add_agent(Box::new(Pulser::new(16)));
        let out = engine
            .connect_external_output(a, 0, Cycle::new(24))
            .unwrap();
        let halt = AtomicBool::new(true);
        assert!(out.drain_or_halt(&halt).unwrap().is_none());
        assert_eq!(out.latency(), Cycle::new(24));
        assert_eq!(out.agent(), "pulser");
    }

    /// An external input seeds `latency / window` empty windows, exactly
    /// like a monolithic link: the paper's latency-N invariant holds at
    /// cycle zero.
    #[test]
    fn external_input_is_seeded() {
        let mut engine: Engine<u64> = Engine::new(8);
        let a = engine.add_agent(Box::new(Pulser::new(16)));
        let inp = engine.connect_external_input(a, 0, Cycle::new(16)).unwrap();
        assert_eq!(inp.latency(), Cycle::new(16));
        assert_eq!(inp.port(), 0);
        let occ = engine.link_occupancies();
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].in_flight_tokens, 16);
        engine.verify_token_invariant().unwrap();
        // Double connection is rejected like Engine::connect.
        assert!(engine.connect_external_input(a, 0, Cycle::new(16)).is_err());
    }

    #[test]
    fn tracing_does_not_change_results() {
        let run = |trace: bool| {
            let arrivals = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
            let mut engine = Engine::new(4);
            let s = engine.add_agent(Box::new(OneShot {
                at: 7,
                fired: false,
            }));
            let p = engine.add_agent(Box::new(Probe {
                arrivals: arrivals.clone(),
            }));
            engine.connect(s, 0, p, 0, Cycle::new(12)).unwrap();
            if trace {
                engine.enable_tracing();
                engine.enable_metrics();
            }
            engine.run_for(Cycle::new(128)).unwrap();
            let v = arrivals.lock().clone();
            v
        };
        assert_eq!(run(false), run(true));
    }
}
