//! The simulation engine: agents, wiring, and deterministic execution.
//!
//! An [`Engine`] owns a set of [`SimAgent`]s (server blades, switches,
//! instrumentation) and the latency channels connecting them. Execution
//! proceeds in *rounds* of one token window each: every round, every agent
//! consumes exactly one window per input port and produces exactly one window
//! per output port. Channels are pre-seeded with one link-latency of empty
//! tokens, so the whole system can start immediately and never deadlocks —
//! exactly the scheme in §III-B2 of the FireSim paper.
//!
//! ## Determinism
//!
//! Because an agent's `advance` sees exactly the tokens for its current
//! window and nothing else, the simulation result is a pure function of the
//! initial state. [`Engine::run_for`] produces bit-identical results whether
//! run with 1 host thread or many; the property tests in this crate and the
//! integration suite check this.
//!
//! ## Host parallelism
//!
//! With [`Engine::set_host_threads`], agents are partitioned across host
//! worker threads. Workers do not run in lockstep — a worker only blocks
//! when a channel it needs is still empty — mirroring how FireSim decouples
//! host nodes and lets the token flow control enforce ordering. Stop
//! requests are honoured at deterministic chunk boundaries so that early
//! termination cannot introduce nondeterminism.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use crate::channel::{link, LinkReceiver, LinkSender};
use crate::error::{SimError, SimResult};
use crate::time::Cycle;
use crate::token::TokenWindow;

/// Identifier of an agent registered with an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(usize);

impl AgentId {
    /// The raw index of this agent within its engine.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A simulated component that advances in token windows.
///
/// Implementors include server blades (whose `advance` runs a cycle-accurate
/// SoC model for `window` cycles) and switches (which run the store-and-
/// forward switching algorithm over the window). The token type is the unit
/// of per-cycle data on this agent's links — for the datacenter simulation
/// it is a network flit.
pub trait SimAgent: Send {
    /// Per-cycle payload carried on this agent's links.
    type Token: Send + 'static;

    /// Short human-readable name, used in error messages.
    fn name(&self) -> &str;

    /// Number of input ports. Every port must be connected before running.
    fn num_inputs(&self) -> usize;

    /// Number of output ports. Every port must be connected before running.
    fn num_outputs(&self) -> usize;

    /// Advances the agent by one window of target cycles.
    ///
    /// The context carries one input [`TokenWindow`] per input port and
    /// empty output windows to fill. Implementations must model exactly
    /// `ctx.window()` cycles.
    fn advance(&mut self, ctx: &mut AgentCtx<Self::Token>);

    /// True when this agent has finished its work (e.g. a blade has powered
    /// off). [`Engine::run_until_done`] stops once every agent is done.
    fn done(&self) -> bool {
        false
    }
}

/// Execution context handed to [`SimAgent::advance`] each round.
///
/// Offsets passed to [`push_output`](AgentCtx::push_output) are relative to
/// the start of the current window; the absolute target cycle is
/// `ctx.now() + offset`.
#[derive(Debug)]
pub struct AgentCtx<T> {
    now: Cycle,
    window: u32,
    inputs: Vec<TokenWindow<T>>,
    outputs: Vec<TokenWindow<T>>,
    stop: bool,
}

impl<T> AgentCtx<T> {
    /// Builds a free-standing context for driving an agent by hand (unit
    /// tests, trace replay, co-simulation harnesses).
    ///
    /// # Panics
    ///
    /// Panics if any input window's length differs from `window` or if
    /// `window` is zero.
    pub fn standalone(
        now: Cycle,
        window: u32,
        inputs: Vec<TokenWindow<T>>,
        num_outputs: usize,
    ) -> Self {
        assert!(window > 0, "window must be nonzero");
        for w in &inputs {
            assert_eq!(w.len(), window, "input window length mismatch");
        }
        AgentCtx {
            now,
            window,
            inputs,
            outputs: (0..num_outputs).map(|_| TokenWindow::new(window)).collect(),
            stop: false,
        }
    }

    /// Consumes the context, returning the output windows that the agent
    /// produced. Counterpart of [`AgentCtx::standalone`].
    pub fn into_outputs(self) -> Vec<TokenWindow<T>> {
        self.outputs
    }

    /// True when the agent called [`AgentCtx::request_stop`].
    pub fn stop_requested(&self) -> bool {
        self.stop
    }

    /// Target cycle at the start of this window.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Window length in cycles.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Takes the input window for `port`, leaving an empty one behind.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn take_input(&mut self, port: usize) -> TokenWindow<T> {
        let w = self.inputs[port].len();
        std::mem::replace(&mut self.inputs[port], TokenWindow::new(w))
    }

    /// Borrows the input window for `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn input(&self, port: usize) -> &TokenWindow<T> {
        &self.inputs[port]
    }

    /// Pushes a valid token on output `port` at cycle-offset `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range, `offset` is outside the window, or
    /// tokens are pushed out of cycle order (at most one token per cycle).
    pub fn push_output(&mut self, port: usize, offset: u32, token: T) {
        if self.outputs[port].push(offset, token).is_err() {
            panic!(
                "push_output: offset {offset} out of range or out of order (window {})",
                self.window
            );
        }
    }

    /// Mutable access to the raw output window for `port`, for models that
    /// assemble windows themselves.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn output_mut(&mut self, port: usize) -> &mut TokenWindow<T> {
        &mut self.outputs[port]
    }

    /// Requests that the whole simulation stop at the next deterministic
    /// boundary (see [`Engine::run_until_done`]).
    pub fn request_stop(&mut self) {
        self.stop = true;
    }
}

/// A handle that can stop a running simulation from outside (e.g. a
/// harness timeout). Stops take effect at deterministic chunk boundaries.
#[derive(Debug, Clone)]
pub struct StopHandle {
    flag: Arc<AtomicBool>,
}

impl StopHandle {
    /// Requests the simulation stop.
    pub fn stop(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True if a stop has been requested.
    pub fn is_stopped(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Target cycles simulated in this call.
    pub cycles: Cycle,
    /// Host wall-clock time spent.
    pub wall: Duration,
    /// Number of host threads used (1 = sequential).
    pub host_threads: usize,
    /// Number of agents simulated.
    pub agents: usize,
}

impl RunSummary {
    /// Achieved simulation rate in target-Hz (target cycles per host
    /// second). FireSim reports this as the "simulation rate" in MHz.
    pub fn sim_rate_hz(&self) -> f64 {
        if self.wall.as_secs_f64() == 0.0 {
            return f64::INFINITY;
        }
        self.cycles.as_u64() as f64 / self.wall.as_secs_f64()
    }

    /// Achieved simulation rate in target-MHz.
    pub fn sim_rate_mhz(&self) -> f64 {
        self.sim_rate_hz() / 1e6
    }
}

struct AgentSlot<T> {
    agent: Box<dyn SimAgent<Token = T>>,
    inputs: Vec<Option<LinkReceiver<T>>>,
    outputs: Vec<Option<LinkSender<T>>>,
}

/// The simulation executor. See the [module docs](self) for the execution
/// model.
pub struct Engine<T> {
    window: u32,
    agents: Vec<AgentSlot<T>>,
    now: Cycle,
    host_threads: usize,
    chunk_rounds: u64,
    stop: Arc<AtomicBool>,
}

impl<T: Send + 'static> Engine<T> {
    /// Creates an engine exchanging token windows of `window` cycles.
    ///
    /// In FireSim the window equals the smallest link latency being modeled
    /// (the paper's "batch size = link latency" rule).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u32) -> Self {
        assert!(window > 0, "engine window must be nonzero");
        Engine {
            window,
            agents: Vec::new(),
            now: Cycle::ZERO,
            host_threads: 1,
            chunk_rounds: 16,
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The engine's window length in cycles.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Current target time (start of the next unsimulated window).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of registered agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Sets the number of host worker threads used by subsequent runs.
    /// `0` and `1` both mean sequential execution on the calling thread.
    pub fn set_host_threads(&mut self, threads: usize) -> &mut Self {
        self.host_threads = threads.max(1);
        self
    }

    /// Sets how many rounds run between stop-flag checks in parallel mode.
    /// Larger chunks amortise synchronisation; stops are honoured at chunk
    /// boundaries only (deterministically).
    pub fn set_chunk_rounds(&mut self, rounds: u64) -> &mut Self {
        self.chunk_rounds = rounds.max(1);
        self
    }

    /// A handle for stopping the simulation from another thread.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            flag: Arc::clone(&self.stop),
        }
    }

    /// Registers an agent and returns its id.
    pub fn add_agent(&mut self, agent: Box<dyn SimAgent<Token = T>>) -> AgentId {
        let id = AgentId(self.agents.len());
        let inputs = (0..agent.num_inputs()).map(|_| None).collect();
        let outputs = (0..agent.num_outputs()).map(|_| None).collect();
        self.agents.push(AgentSlot {
            agent,
            inputs,
            outputs,
        });
        id
    }

    /// Connects `src`'s output port to `dst`'s input port with a link of the
    /// given latency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Topology`] for bad ids/ports or double
    /// connection, and [`SimError::BadLatency`] if `latency` is not a
    /// nonzero multiple of the engine window.
    pub fn connect(
        &mut self,
        src: AgentId,
        src_port: usize,
        dst: AgentId,
        dst_port: usize,
        latency: Cycle,
    ) -> SimResult<()> {
        let (tx, rx) = link(self.window, latency)?;
        {
            let s = self
                .agents
                .get_mut(src.0)
                .ok_or_else(|| SimError::topology(format!("no agent {:?}", src)))?;
            let slot = s.outputs.get_mut(src_port).ok_or_else(|| {
                SimError::topology(format!(
                    "agent {} has no output port {src_port}",
                    s.agent.name()
                ))
            })?;
            if slot.is_some() {
                return Err(SimError::topology(format!(
                    "output port {src_port} of agent {} already connected",
                    s.agent.name()
                )));
            }
            *slot = Some(tx);
        }
        {
            let d = self
                .agents
                .get_mut(dst.0)
                .ok_or_else(|| SimError::topology(format!("no agent {:?}", dst)))?;
            let slot = d.inputs.get_mut(dst_port).ok_or_else(|| {
                SimError::topology(format!(
                    "agent {} has no input port {dst_port}",
                    d.agent.name()
                ))
            })?;
            if slot.is_some() {
                return Err(SimError::topology(format!(
                    "input port {dst_port} of agent {} already connected",
                    d.agent.name()
                )));
            }
            *slot = Some(rx);
        }
        Ok(())
    }

    fn check_wired(&self) -> SimResult<()> {
        for slot in &self.agents {
            if slot.inputs.iter().any(Option::is_none) || slot.outputs.iter().any(Option::is_none)
            {
                return Err(SimError::topology(format!(
                    "agent {} has unconnected ports",
                    slot.agent.name()
                )));
            }
        }
        Ok(())
    }

    /// Runs for (at least) `cycles` target cycles, rounded up to whole
    /// windows. Does not stop early for `done` agents.
    ///
    /// # Errors
    ///
    /// Returns an error if the topology has unconnected ports or a channel
    /// breaks mid-run (a panicking agent).
    pub fn run_for(&mut self, cycles: Cycle) -> SimResult<RunSummary> {
        let rounds = cycles.as_u64().div_ceil(self.window as u64);
        self.run_rounds(rounds, false)
    }

    /// Runs until every agent reports [`SimAgent::done`], an agent calls
    /// [`AgentCtx::request_stop`], a [`StopHandle`] fires, or `max_cycles`
    /// elapse — whichever comes first. Stop conditions are evaluated at
    /// deterministic chunk boundaries.
    ///
    /// # Errors
    ///
    /// As for [`Engine::run_for`].
    pub fn run_until_done(&mut self, max_cycles: Cycle) -> SimResult<RunSummary> {
        let rounds = max_cycles.as_u64().div_ceil(self.window as u64);
        self.run_rounds(rounds, true)
    }

    fn run_rounds(&mut self, rounds: u64, stoppable: bool) -> SimResult<RunSummary> {
        self.check_wired()?;
        self.stop.store(false, Ordering::SeqCst);
        let start = Instant::now();
        let threads = self.host_threads.min(self.agents.len()).max(1);
        let rounds_run = if threads <= 1 {
            self.run_sequential(rounds, stoppable)?
        } else {
            self.run_parallel(rounds, stoppable, threads)?
        };
        let cycles = Cycle::new(rounds_run * self.window as u64);
        self.now += cycles;
        Ok(RunSummary {
            cycles,
            wall: start.elapsed(),
            host_threads: threads,
            agents: self.agents.len(),
        })
    }

    fn run_sequential(&mut self, rounds: u64, stoppable: bool) -> SimResult<u64> {
        let window = self.window;
        let mut now = self.now;
        let mut round = 0u64;
        while round < rounds {
            let chunk_end = if stoppable {
                (round + self.chunk_rounds).min(rounds)
            } else {
                rounds
            };
            while round < chunk_end {
                for slot in &mut self.agents {
                    if step_agent(slot, now, window, None)? {
                        self.stop.store(true, Ordering::SeqCst);
                    }
                }
                now += Cycle::new(window as u64);
                round += 1;
            }
            if stoppable {
                let done = self.stop.load(Ordering::SeqCst)
                    || self.agents.iter().all(|s| s.agent.done());
                if done {
                    break;
                }
            }
        }
        Ok(round)
    }

    fn run_parallel(&mut self, rounds: u64, stoppable: bool, threads: usize) -> SimResult<u64> {
        let window = self.window;
        let start_now = self.now;
        let chunk = self.chunk_rounds;
        let stop = Arc::clone(&self.stop);
        let barrier = Arc::new(Barrier::new(threads));
        let done_votes = Arc::new(AtomicUsize::new(0));
        let halt = Arc::new(AtomicBool::new(false));
        let error: Arc<parking_lot::Mutex<Option<SimError>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let rounds_done = Arc::new(AtomicUsize::new(0));

        // Partition agents round-robin across workers to spread blades and
        // switches evenly.
        let mut partitions: Vec<Vec<&mut AgentSlot<T>>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, slot) in self.agents.iter_mut().enumerate() {
            partitions[i % threads].push(slot);
        }

        std::thread::scope(|scope| {
            for (widx, part) in partitions.into_iter().enumerate() {
                let barrier = Arc::clone(&barrier);
                let stop = Arc::clone(&stop);
                let done_votes = Arc::clone(&done_votes);
                let halt = Arc::clone(&halt);
                let error = Arc::clone(&error);
                let rounds_done = Arc::clone(&rounds_done);
                scope.spawn(move || {
                    let mut part = part;
                    let mut now = start_now;
                    let mut round = 0u64;
                    'chunks: while round < rounds && !halt.load(Ordering::SeqCst) {
                        let chunk_end = (round + chunk).min(rounds);
                        while round < chunk_end {
                            for slot in part.iter_mut() {
                                match step_agent(slot, now, window, Some(&halt)) {
                                    Ok(requested_stop) => {
                                        if requested_stop {
                                            stop.store(true, Ordering::SeqCst);
                                        }
                                    }
                                    Err(e) => {
                                        *error.lock() = Some(e);
                                        halt.store(true, Ordering::SeqCst);
                                        break 'chunks;
                                    }
                                }
                            }
                            now += Cycle::new(window as u64);
                            round += 1;
                        }
                        if stoppable {
                            // Vote: this worker's agents are all done.
                            if part.iter().all(|s| s.agent.done()) {
                                done_votes.fetch_add(1, Ordering::SeqCst);
                            }
                            barrier.wait();
                            // Leader decision is replicated identically on
                            // every worker from shared atomics.
                            let all_done = done_votes.load(Ordering::SeqCst) == threads;
                            let stopped = stop.load(Ordering::SeqCst);
                            barrier.wait();
                            done_votes.store(0, Ordering::SeqCst);
                            if all_done || stopped {
                                break;
                            }
                        }
                    }
                    if widx == 0 {
                        rounds_done.store(round as usize, Ordering::SeqCst);
                    }
                    // Drop channel ends implicitly when scope joins.
                });
            }
        });

        if let Some(e) = error.lock().take() {
            return Err(e);
        }
        Ok(rounds_done.load(Ordering::SeqCst) as u64)
    }

    /// Immutable access to a registered agent.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this engine.
    pub fn agent(&self, id: AgentId) -> &dyn SimAgent<Token = T> {
        self.agents[id.0].agent.as_ref()
    }

    /// Mutable access to a registered agent (e.g. to extract results after a
    /// run, via a concrete-type handle kept by the caller or downcasting in
    /// the agent's own API).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this engine.
    pub fn agent_mut(&mut self, id: AgentId) -> &mut dyn SimAgent<Token = T> {
        self.agents[id.0].agent.as_mut()
    }
}

impl<T> std::fmt::Debug for Engine<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("window", &self.window)
            .field("agents", &self.agents.len())
            .field("now", &self.now)
            .field("host_threads", &self.host_threads)
            .finish()
    }
}

/// Advances one agent by one window. Returns `true` when the agent
/// requested a simulation stop via [`AgentCtx::request_stop`].
///
/// When `halt` is provided (parallel mode), blocking receives poll the halt
/// flag so that one worker failing cannot deadlock the rest.
fn step_agent<T: Send + 'static>(
    slot: &mut AgentSlot<T>,
    now: Cycle,
    window: u32,
    halt: Option<&AtomicBool>,
) -> SimResult<bool> {
    let mut inputs = Vec::with_capacity(slot.inputs.len());
    for rx in &slot.inputs {
        let rx = rx.as_ref().expect("checked by check_wired");
        let w = match halt {
            None => rx.recv().map_err(|_| SimError::ChannelClosed {
                agent: slot.agent.name().to_owned(),
            })?,
            Some(halt) => loop {
                match rx.recv_timeout(std::time::Duration::from_millis(50)) {
                    Ok(Some(w)) => break w,
                    Ok(None) => {
                        if halt.load(Ordering::SeqCst) {
                            return Err(SimError::ChannelClosed {
                                agent: slot.agent.name().to_owned(),
                            });
                        }
                    }
                    Err(_) => {
                        return Err(SimError::ChannelClosed {
                            agent: slot.agent.name().to_owned(),
                        })
                    }
                }
            },
        };
        inputs.push(w);
    }
    let outputs = (0..slot.outputs.len())
        .map(|_| TokenWindow::new(window))
        .collect();
    let mut ctx = AgentCtx {
        now,
        window,
        inputs,
        outputs,
        stop: false,
    };
    slot.agent.advance(&mut ctx);
    let AgentCtx { outputs, stop, .. } = ctx;
    for (tx, w) in slot.outputs.iter().zip(outputs) {
        let tx = tx.as_ref().expect("checked by check_wired");
        match halt {
            None => tx.send(w)?,
            Some(halt) => {
                let mut pending = Some(w);
                while let Some(w) = pending.take() {
                    if let Some(w) = tx.send_timeout(w, std::time::Duration::from_millis(50))? {
                        if halt.load(Ordering::SeqCst) {
                            return Err(SimError::ChannelClosed {
                                agent: slot.agent.name().to_owned(),
                            });
                        }
                        pending = Some(w);
                    }
                }
            }
        }
    }
    Ok(stop)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts tokens received; sends a token every `period` cycles.
    struct Pulser {
        period: u64,
        sent: u64,
        received: Vec<u64>, // absolute arrival cycles
    }

    impl Pulser {
        fn new(period: u64) -> Self {
            Pulser {
                period,
                sent: 0,
                received: Vec::new(),
            }
        }
    }

    impl SimAgent for Pulser {
        type Token = u64;
        fn name(&self) -> &str {
            "pulser"
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn num_outputs(&self) -> usize {
            1
        }
        fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
            let base = ctx.now().as_u64();
            for (off, v) in ctx.take_input(0).into_iter() {
                let _sent_cycle = v;
                self.received.push(base + u64::from(off));
            }
            for off in 0..ctx.window() {
                let cycle = base + u64::from(off);
                if cycle.is_multiple_of(self.period) {
                    ctx.push_output(0, off, cycle);
                    self.sent += 1;
                }
            }
        }
    }

    #[test]
    fn two_agents_ring_latency() {
        let mut engine = Engine::new(8);
        let a = engine.add_agent(Box::new(Pulser::new(16)));
        let b = engine.add_agent(Box::new(Pulser::new(16)));
        engine.connect(a, 0, b, 0, Cycle::new(8)).unwrap();
        engine.connect(b, 0, a, 0, Cycle::new(8)).unwrap();
        let summary = engine.run_for(Cycle::new(64)).unwrap();
        assert_eq!(summary.cycles, Cycle::new(64));
        // Tokens sent at cycles 0, 16, 32, 48 arrive 8 cycles later.
        // (Pull results out by rebuilding — engine owns agents; we use a
        // second engine run pattern in integration tests. Here just check
        // the run completed and advanced time.)
        assert_eq!(engine.now(), Cycle::new(64));
    }

    /// Echo agent used to observe arrival times through shared state.
    struct Probe {
        arrivals: std::sync::Arc<parking_lot::Mutex<Vec<u64>>>,
    }

    impl SimAgent for Probe {
        type Token = u64;
        fn name(&self) -> &str {
            "probe"
        }
        fn num_inputs(&self) -> usize {
            1
        }
        fn num_outputs(&self) -> usize {
            0
        }
        fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
            let base = ctx.now().as_u64();
            let mut arr = self.arrivals.lock();
            for (off, _v) in ctx.take_input(0).into_iter() {
                arr.push(base + u64::from(off));
            }
        }
    }

    struct OneShot {
        at: u64,
        fired: bool,
    }

    impl SimAgent for OneShot {
        type Token = u64;
        fn name(&self) -> &str {
            "oneshot"
        }
        fn num_inputs(&self) -> usize {
            0
        }
        fn num_outputs(&self) -> usize {
            1
        }
        fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
            let base = ctx.now().as_u64();
            if !self.fired && self.at >= base && self.at < base + u64::from(ctx.window()) {
                ctx.push_output(0, (self.at - base) as u32, self.at);
                self.fired = true;
            }
        }
        fn done(&self) -> bool {
            self.fired
        }
    }

    #[test]
    fn token_arrives_exactly_latency_later() {
        for latency in [8u64, 16, 64] {
            let arrivals = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
            let mut engine = Engine::new(8);
            let s = engine.add_agent(Box::new(OneShot { at: 13, fired: false }));
            let p = engine.add_agent(Box::new(Probe {
                arrivals: arrivals.clone(),
            }));
            engine.connect(s, 0, p, 0, Cycle::new(latency)).unwrap();
            engine.run_for(Cycle::new(256)).unwrap();
            assert_eq!(*arrivals.lock(), vec![13 + latency], "latency {latency}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let run = |threads: usize| {
            let arrivals = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
            let mut engine = Engine::new(4);
            engine.set_host_threads(threads);
            let s = engine.add_agent(Box::new(OneShot { at: 7, fired: false }));
            let p = engine.add_agent(Box::new(Probe {
                arrivals: arrivals.clone(),
            }));
            // extra agents to exercise partitioning
            let a = engine.add_agent(Box::new(Pulser::new(8)));
            let b = engine.add_agent(Box::new(Pulser::new(8)));
            engine.connect(s, 0, p, 0, Cycle::new(12)).unwrap();
            engine.connect(a, 0, b, 0, Cycle::new(4)).unwrap();
            engine.connect(b, 0, a, 0, Cycle::new(8)).unwrap();
            engine.run_for(Cycle::new(128)).unwrap();
            let v = arrivals.lock().clone();
            v
        };
        let seq = run(1);
        for threads in 2..=4 {
            assert_eq!(run(threads), seq, "threads {threads}");
        }
    }

    #[test]
    fn run_until_done_stops_early() {
        let mut engine = Engine::new(4);
        engine.set_chunk_rounds(2);
        let arrivals = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s = engine.add_agent(Box::new(OneShot { at: 3, fired: false }));
        let p = engine.add_agent(Box::new(Probe {
            arrivals: arrivals.clone(),
        }));
        engine.connect(s, 0, p, 0, Cycle::new(4)).unwrap();
        // Probe is never "done"... it has no done override, defaults false.
        // So run_until_done will run to max. Use a short max.
        let summary = engine.run_until_done(Cycle::new(40)).unwrap();
        assert!(summary.cycles <= Cycle::new(40));
        assert_eq!(*arrivals.lock(), vec![7]);
    }

    #[test]
    fn unconnected_port_is_error() {
        let mut engine: Engine<u64> = Engine::new(4);
        let _ = engine.add_agent(Box::new(Pulser::new(4)));
        assert!(matches!(
            engine.run_for(Cycle::new(4)),
            Err(SimError::Topology { .. })
        ));
    }

    #[test]
    fn double_connect_is_error() {
        let mut engine: Engine<u64> = Engine::new(4);
        let a = engine.add_agent(Box::new(Pulser::new(4)));
        let b = engine.add_agent(Box::new(Pulser::new(4)));
        engine.connect(a, 0, b, 0, Cycle::new(4)).unwrap();
        assert!(matches!(
            engine.connect(a, 0, b, 0, Cycle::new(4)),
            Err(SimError::Topology { .. })
        ));
    }

    #[test]
    fn bad_latency_is_error() {
        let mut engine: Engine<u64> = Engine::new(8);
        let a = engine.add_agent(Box::new(Pulser::new(4)));
        let b = engine.add_agent(Box::new(Pulser::new(4)));
        assert!(matches!(
            engine.connect(a, 0, b, 0, Cycle::new(12)),
            Err(SimError::BadLatency { .. })
        ));
    }

    #[test]
    fn stop_handle_stops_at_boundary() {
        let mut engine: Engine<u64> = Engine::new(4);
        engine.set_chunk_rounds(1);
        let a = engine.add_agent(Box::new(Pulser::new(4)));
        let b = engine.add_agent(Box::new(Pulser::new(4)));
        engine.connect(a, 0, b, 0, Cycle::new(4)).unwrap();
        engine.connect(b, 0, a, 0, Cycle::new(4)).unwrap();
        let handle = engine.stop_handle();
        handle.stop();
        // Stop is reset at run start; set it again from a thread during run.
        // Simplest deterministic check: request before run after reset is
        // not observable, so instead verify run_until_done with all-done.
        let summary = engine.run_until_done(Cycle::new(400)).unwrap();
        assert!(summary.cycles <= Cycle::new(400));
    }

    #[test]
    fn run_for_rounds_up_to_window() {
        let mut engine: Engine<u64> = Engine::new(8);
        let a = engine.add_agent(Box::new(Pulser::new(4)));
        let b = engine.add_agent(Box::new(Pulser::new(4)));
        engine.connect(a, 0, b, 0, Cycle::new(8)).unwrap();
        engine.connect(b, 0, a, 0, Cycle::new(8)).unwrap();
        let summary = engine.run_for(Cycle::new(10)).unwrap();
        assert_eq!(summary.cycles, Cycle::new(16));
    }
}
