//! # firesim-core
//!
//! The cycle-exact, token-decoupled simulation kernel at the heart of
//! FireSim-rs, a software reproduction of the FireSim scale-out system
//! simulator (Karandikar et al., ISCA 2018).
//!
//! FireSim's central idea is that a *distributed* simulation can remain
//! *cycle-exact* if every connection between simulated components is modeled
//! as a stream of **tokens**, one token per target clock cycle. A link with a
//! latency of `N` cycles always has exactly `N` tokens in flight: a token
//! produced by one endpoint at target cycle `m` is consumed by the other
//! endpoint at target cycle `m + N`. Because an endpoint cannot advance past
//! cycle `t` until it has received input tokens for every cycle up to `t`,
//! the global simulation is **deterministic regardless of how host execution
//! is scheduled** — across threads, processes, or machines.
//!
//! This crate provides:
//!
//! * [`Cycle`] and [`Frequency`] — target-time arithmetic.
//! * [`TokenWindow`] — a batch of one link-latency's worth of tokens, with
//!   empty (idle) tokens stored implicitly so that host cost is proportional
//!   to *traffic*, not *time*.
//! * [`SimAgent`] — the decoupled-model trait implemented by server blades,
//!   switches, and any other simulated component.
//! * [`Engine`] — the executor that wires agents together with latency
//!   channels and advances the whole target deterministically, either on the
//!   calling thread or on a pool of host threads.
//! * [`stats`] — counters, histograms (with percentiles), and time series
//!   used throughout the evaluation harness.
//! * [`rng`] — a small deterministic RNG (SplitMix64-seeded xoshiro256++) so
//!   that simulations are reproducible bit-for-bit across runs and platforms.
//!
//! ## Example
//!
//! Two agents connected by a 4-cycle link; one sends a value every cycle, the
//! other checks that values arrive exactly 4 cycles after they were sent:
//!
//! ```
//! use firesim_core::{Engine, SimAgent, Cycle, AgentCtx};
//!
//! struct Sender;
//! impl SimAgent for Sender {
//!     type Token = u64;
//!     fn name(&self) -> &str { "sender" }
//!     fn num_inputs(&self) -> usize { 0 }
//!     fn num_outputs(&self) -> usize { 1 }
//!     fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
//!         let base = ctx.now().as_u64();
//!         for i in 0..ctx.window() {
//!             ctx.push_output(0, i, base + u64::from(i));
//!         }
//!     }
//! }
//!
//! struct Checker;
//! impl SimAgent for Checker {
//!     type Token = u64;
//!     fn name(&self) -> &str { "checker" }
//!     fn num_inputs(&self) -> usize { 1 }
//!     fn num_outputs(&self) -> usize { 0 }
//!     fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
//!         let base = ctx.now().as_u64();
//!         for (off, v) in ctx.take_input(0).into_iter() {
//!             let arrival = base + u64::from(off);
//!             // Sent at cycle v, latency 4.
//!             assert_eq!(arrival, v + 4);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(4); // window = 4 cycles
//! let s = engine.add_agent(Box::new(Sender));
//! let c = engine.add_agent(Box::new(Checker));
//! engine.connect(s, 0, c, 0, Cycle::new(4)).unwrap();
//! engine.run_for(Cycle::new(64)).unwrap();
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
pub mod engine;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod rng;
pub mod scenario;
pub mod snapshot;
pub mod stats;
pub mod sync;
pub mod time;
pub mod token;

pub use channel::{link, LinkReceiver, LinkSender};
pub use engine::{
    combined_digest, AbortHandle, AgentCtx, AgentId, BoundaryInput, BoundaryOutput, Engine,
    EngineCheckpoint, LinkOccupancy, ProgressProbe, RunSummary, SimAgent, StopHandle,
};
pub use error::{SimError, SimResult};
pub use fault::{FaultKind, FaultPlan, FaultRecord, FaultTarget, RecoveryTimeline, TimelinePoint};
pub use metrics::{
    AgentIntervalSample, AgentProfile, IntervalProbe, IntervalSnapshot, MetricsRegistry,
    MetricsShard, MetricsSnapshot, SpanBuffer, SpanTracer, TraceEvent,
};
pub use rng::SimRng;
pub use scenario::{
    CompiledScenario, EventKind, LinkEffect, LinkEffectWindow, PressureWindow, Scenario,
    ScenarioEvent, ScenarioLink, ScenarioTopo,
};
pub use snapshot::{Checkpoint, Snapshot, SnapshotReader, SnapshotWriter};
pub use sync::{BarrierCancelled, EpochBarrier};
pub use time::{Cycle, Frequency};
pub use token::TokenWindow;
