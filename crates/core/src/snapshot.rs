//! Checkpoint serialization: a small, versioned, deterministic byte format.
//!
//! FireSim restarts a multi-hour simulation from a snapshot rather than from
//! cycle zero. The format here is deliberately simple — little-endian
//! fixed-width scalars, length-prefixed sequences, no self-description —
//! because a snapshot is only ever read back by the *same* topology that
//! wrote it: determinism makes the byte stream its own schema. A
//! [`SnapshotWriter`] appends fields in declaration order; the matching
//! [`SnapshotReader`] consumes them in the same order and fails loudly
//! ([`SimError::Checkpoint`]) on truncation or length mismatch instead of
//! silently misinterpreting bytes.
//!
//! Two traits ride on top:
//!
//! * [`Snapshot`] — a value that can write itself into a snapshot and
//!   rebuild itself from one. Implemented here for the usual scalars and
//!   containers, and by model crates for their token types (e.g. a network
//!   flit).
//! * [`Checkpoint`] — a *stateful agent* that can save its mutable state
//!   into a writer and later restore it in place. Agents opt in via
//!   [`SimAgent::as_checkpoint`](crate::SimAgent::as_checkpoint); the
//!   engine then serializes every agent plus all in-flight link tokens at a
//!   deterministic chunk boundary (see `Engine::checkpoint`).

use std::collections::VecDeque;

use crate::error::{SimError, SimResult};
use crate::time::Cycle;
use crate::token::TokenWindow;

/// Appends snapshot fields to a growing byte buffer.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        SnapshotWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes any [`Snapshot`] value.
    pub fn put<S: Snapshot>(&mut self, v: &S) {
        v.save(self);
    }

    /// Writes a length-prefixed sequence of [`Snapshot`] values.
    pub fn put_seq<'a, S: Snapshot + 'a>(&mut self, items: impl ExactSizeIterator<Item = &'a S>) {
        self.put_usize(items.len());
        for item in items {
            item.save(self);
        }
    }
}

/// Consumes snapshot fields from an encoded byte stream, in write order.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapshotReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> SimResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SimError::checkpoint(format!(
                "snapshot truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on truncation.
    pub fn get_u8(&mut self) -> SimResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on truncation.
    pub fn get_u32(&mut self) -> SimResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on truncation.
    pub fn get_u64(&mut self) -> SimResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on truncation.
    pub fn get_i64(&mut self) -> SimResult<i64> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` written by [`SnapshotWriter::put_usize`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on truncation or a value that does
    /// not fit the host's `usize`.
    pub fn get_usize(&mut self) -> SimResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| SimError::checkpoint(format!("length {v} exceeds host usize")))
    }

    /// Reads a bool.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on truncation or a byte that is
    /// neither 0 nor 1.
    pub fn get_bool(&mut self) -> SimResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SimError::checkpoint(format!("invalid bool byte {b:#x}"))),
        }
    }

    /// Reads a length-prefixed byte slice.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on truncation.
    pub fn get_bytes(&mut self) -> SimResult<&'a [u8]> {
        let n = self.get_usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on truncation or invalid UTF-8.
    pub fn get_str(&mut self) -> SimResult<String> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| SimError::checkpoint("snapshot string is not valid UTF-8"))
    }

    /// Reads any [`Snapshot`] value.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on truncation or malformed data.
    pub fn get<S: Snapshot>(&mut self) -> SimResult<S> {
        S::load(self)
    }

    /// Reads a length-prefixed sequence of [`Snapshot`] values.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on truncation or malformed data.
    pub fn get_seq<S: Snapshot>(&mut self) -> SimResult<Vec<S>> {
        let n = self.get_usize()?;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(S::load(self)?);
        }
        Ok(out)
    }
}

/// A value that can serialize itself into a snapshot and rebuild itself
/// from one. The encoding must be deterministic: saving, loading, and
/// saving again must produce identical bytes.
pub trait Snapshot: Sized {
    /// Appends this value's encoding to `w`.
    fn save(&self, w: &mut SnapshotWriter);

    /// Reads one value of this type from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on truncation or malformed data.
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self>;
}

macro_rules! snapshot_scalar {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Snapshot for $ty {
            fn save(&self, w: &mut SnapshotWriter) {
                w.$put(*self);
            }
            fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
                r.$get()
            }
        }
    };
}

snapshot_scalar!(u8, put_u8, get_u8);
snapshot_scalar!(u32, put_u32, get_u32);
snapshot_scalar!(u64, put_u64, get_u64);
snapshot_scalar!(i64, put_i64, get_i64);
snapshot_scalar!(usize, put_usize, get_usize);
snapshot_scalar!(bool, put_bool, get_bool);

impl Snapshot for u16 {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u32(u32::from(*self));
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        let v = r.get_u32()?;
        u16::try_from(v).map_err(|_| SimError::checkpoint(format!("value {v} exceeds u16")))
    }
}

impl Snapshot for f64 {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.to_bits());
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        Ok(f64::from_bits(r.get_u64()?))
    }
}

impl Snapshot for String {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_str(self);
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        r.get_str()
    }
}

impl Snapshot for Cycle {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.as_u64());
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        Ok(Cycle::new(r.get_u64()?))
    }
}

impl<S: Snapshot> Snapshot for Option<S> {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        if r.get_bool()? {
            Ok(Some(S::load(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<S: Snapshot> Snapshot for Vec<S> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_seq(self.iter());
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        r.get_seq()
    }
}

impl<S: Snapshot> Snapshot for VecDeque<S> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_seq(self.iter());
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        Ok(r.get_seq()?.into())
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn save(&self, w: &mut SnapshotWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<S: Snapshot + Default + Copy, const N: usize> Snapshot for [S; N] {
    fn save(&self, w: &mut SnapshotWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        let mut out = [S::default(); N];
        for v in &mut out {
            *v = S::load(r)?;
        }
        Ok(out)
    }
}

impl<S: Snapshot> Snapshot for TokenWindow<S> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.len());
        w.put_usize(self.iter().count());
        for (off, v) in self.iter() {
            w.put_u32(off);
            v.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        let len = r.get_u32()?;
        let mut win = TokenWindow::new(len);
        let n = r.get_usize()?;
        for _ in 0..n {
            let off = r.get_u32()?;
            let v = S::load(r)?;
            win.push(off, v).map_err(|_| {
                SimError::checkpoint(format!(
                    "token window snapshot has out-of-order or out-of-range offset {off}"
                ))
            })?;
        }
        Ok(win)
    }
}

/// A stateful agent that can save and restore its mutable state, enabling
/// engine-level checkpoint/restore. Restoration always happens onto a
/// freshly *constructed* instance (same topology, same configuration), so
/// implementations only serialize state that evolves during a run — not
/// configuration that the constructor re-derives.
pub trait Checkpoint {
    /// Serializes this agent's mutable state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] when some state cannot be captured.
    fn save_state(&self, w: &mut SnapshotWriter) -> SimResult<()>;

    /// Restores state previously written by
    /// [`save_state`](Checkpoint::save_state) on an equivalently
    /// constructed instance.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] on truncation or malformed data.
    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> SimResult<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = SnapshotWriter::new();
        w.put_u8(0xab);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_bool(true);
        w.put_str("blade0");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xab);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "blade0");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error() {
        let mut w = SnapshotWriter::new();
        w.put_u64(7);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes[..4]);
        assert!(matches!(r.get_u64(), Err(SimError::Checkpoint { .. })));
    }

    #[test]
    fn container_round_trip() {
        let mut w = SnapshotWriter::new();
        let v: Vec<u64> = vec![1, 2, 3];
        let d: VecDeque<u32> = VecDeque::from([9, 8]);
        let o: Option<u64> = Some(5);
        let none: Option<u64> = None;
        let arr: [u64; 4] = [4, 3, 2, 1];
        w.put(&v);
        w.put(&d);
        w.put(&o);
        w.put(&none);
        w.put(&arr);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.get::<Vec<u64>>().unwrap(), v);
        assert_eq!(r.get::<VecDeque<u32>>().unwrap(), d);
        assert_eq!(r.get::<Option<u64>>().unwrap(), o);
        assert_eq!(r.get::<Option<u64>>().unwrap(), none);
        assert_eq!(r.get::<[u64; 4]>().unwrap(), arr);
    }

    #[test]
    fn token_window_round_trip_preserves_sparsity() {
        let mut win: TokenWindow<u64> = TokenWindow::new(8);
        win.push(1, 11).unwrap();
        win.push(5, 55).unwrap();
        let mut w = SnapshotWriter::new();
        w.put(&win);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let back: TokenWindow<u64> = r.get().unwrap();
        assert_eq!(back.len(), 8);
        assert_eq!(back.get(1), Some(&11));
        assert_eq!(back.get(5), Some(&55));
        assert_eq!(back.iter().count(), 2);
    }

    #[test]
    fn invalid_bool_rejected() {
        let bytes = [7u8];
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(r.get_bool(), Err(SimError::Checkpoint { .. })));
    }
}
