//! Host-side synchronisation primitives for the parallel engine.
//!
//! [`EpochBarrier`] is a reusable generation-counting barrier like
//! `std::sync::Barrier`, with two additions the engine needs:
//!
//! * **Cancellation** — a worker that hits an error (or unwinds out of an
//!   agent) can [`cancel`](EpochBarrier::cancel) the barrier, releasing
//!   every peer that is or will be waiting instead of deadlocking them.
//!   `std::sync::Barrier` has no way out of `wait`.
//! * **Leader election per epoch** — exactly one waiter per generation is
//!   told it is the leader, so once-per-chunk decisions (e.g. recomputing
//!   the agent partition) run on exactly one thread while the others wait
//!   for the *same* generation to complete. With the generation counter a
//!   single `wait` call both publishes each worker's pre-barrier writes
//!   and orders them before every post-barrier read, which is what lets
//!   the engine run one barrier per chunk instead of two.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Error returned from [`EpochBarrier::wait`] after cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierCancelled;

impl std::fmt::Display for BarrierCancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("barrier cancelled")
    }
}

impl std::error::Error for BarrierCancelled {}

#[derive(Debug)]
struct State {
    /// Waiters currently parked in this generation.
    count: usize,
    /// Completed generations.
    epoch: u64,
    cancelled: bool,
}

/// A reusable, cancellable barrier with per-generation leader election.
#[derive(Debug)]
pub struct EpochBarrier {
    parties: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl EpochBarrier {
    /// Creates a barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        EpochBarrier {
            parties,
            state: Mutex::new(State {
                count: 0,
                epoch: 0,
                cancelled: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until all `parties` threads have called `wait` for this
    /// generation. Returns `Ok(true)` on exactly one thread per
    /// generation (the leader — the thread that completed the barrier).
    ///
    /// # Errors
    ///
    /// Returns [`BarrierCancelled`] if [`cancel`](EpochBarrier::cancel)
    /// was called, now or while waiting.
    pub fn wait(&self) -> Result<bool, BarrierCancelled> {
        let mut st = self.lock();
        if st.cancelled {
            return Err(BarrierCancelled);
        }
        st.count += 1;
        if st.count == self.parties {
            st.count = 0;
            st.epoch += 1;
            drop(st);
            self.cv.notify_all();
            return Ok(true);
        }
        let arrived_epoch = st.epoch;
        while st.epoch == arrived_epoch && !st.cancelled {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.epoch == arrived_epoch {
            // Cancelled before the generation completed.
            return Err(BarrierCancelled);
        }
        Ok(false)
    }

    /// Cancels the barrier: every current and future `wait` returns
    /// [`BarrierCancelled`]. Idempotent.
    pub fn cancel(&self) {
        let mut st = self.lock();
        st.cancelled = true;
        drop(st);
        self.cv.notify_all();
    }

    /// Completed generations so far.
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn elects_one_leader_per_generation() {
        let barrier = EpochBarrier::new(4);
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        if barrier.wait().unwrap() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 10);
        assert_eq!(barrier.epoch(), 10);
    }

    #[test]
    fn cancel_releases_waiters() {
        let barrier = EpochBarrier::new(3);
        std::thread::scope(|s| {
            let h1 = s.spawn(|| barrier.wait());
            let h2 = s.spawn(|| barrier.wait());
            std::thread::sleep(std::time::Duration::from_millis(20));
            barrier.cancel();
            assert_eq!(h1.join().unwrap(), Err(BarrierCancelled));
            assert_eq!(h2.join().unwrap(), Err(BarrierCancelled));
        });
        // Future waits fail immediately too.
        assert_eq!(barrier.wait(), Err(BarrierCancelled));
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let barrier = EpochBarrier::new(1);
        assert_eq!(barrier.wait(), Ok(true));
        assert_eq!(barrier.wait(), Ok(true));
        assert_eq!(barrier.epoch(), 2);
    }
}
