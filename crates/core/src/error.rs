//! Error types for the simulation kernel.

use core::fmt;

/// Convenience alias for results carrying a [`SimError`].
pub type SimResult<T> = Result<T, SimError>;

/// Errors raised while constructing or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A port index was out of range for the agent, or was connected twice,
    /// or was left unconnected at run time.
    Topology {
        /// Human-readable explanation of the wiring problem.
        detail: String,
    },
    /// A link latency was incompatible with the engine window (must be a
    /// nonzero multiple of the window).
    BadLatency {
        /// The offending latency, in cycles.
        latency: u64,
        /// The engine window, in cycles.
        window: u32,
    },
    /// A token window of unexpected length was produced or consumed.
    WindowMismatch {
        /// The expected window length.
        expected: u32,
        /// The actual window length observed.
        actual: u32,
    },
    /// A channel endpoint disappeared mid-run (an agent thread panicked).
    ChannelClosed {
        /// Name of the agent whose channel broke.
        agent: String,
    },
    /// An agent reported a fatal error during `advance`.
    Agent {
        /// Name of the failing agent.
        agent: String,
        /// The agent's error message.
        detail: String,
    },
}

impl SimError {
    /// Constructs a topology error from anything displayable.
    pub fn topology(detail: impl fmt::Display) -> Self {
        SimError::Topology {
            detail: detail.to_string(),
        }
    }

    /// Constructs an agent error.
    pub fn agent(agent: impl Into<String>, detail: impl fmt::Display) -> Self {
        SimError::Agent {
            agent: agent.into(),
            detail: detail.to_string(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Topology { detail } => write!(f, "invalid topology: {detail}"),
            SimError::BadLatency { latency, window } => write!(
                f,
                "link latency {latency} is not a nonzero multiple of engine window {window}"
            ),
            SimError::WindowMismatch { expected, actual } => {
                write!(f, "token window length {actual}, expected {expected}")
            }
            SimError::ChannelClosed { agent } => {
                write!(
                    f,
                    "simulation channel closed unexpectedly for agent {agent}"
                )
            }
            SimError::Agent { agent, detail } => write!(f, "agent {agent} failed: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::topology("port 3 unconnected").to_string(),
            "invalid topology: port 3 unconnected"
        );
        assert_eq!(
            SimError::BadLatency {
                latency: 7,
                window: 4
            }
            .to_string(),
            "link latency 7 is not a nonzero multiple of engine window 4"
        );
        assert_eq!(
            SimError::WindowMismatch {
                expected: 8,
                actual: 4
            }
            .to_string(),
            "token window length 4, expected 8"
        );
        assert_eq!(
            SimError::agent("switch0", "boom").to_string(),
            "agent switch0 failed: boom"
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error + Send + Sync> = Box::new(SimError::topology("x"));
        assert!(e.to_string().contains("invalid topology"));
    }
}
