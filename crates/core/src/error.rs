//! Error types for the simulation kernel.

use core::fmt;

/// Convenience alias for results carrying a [`SimError`].
pub type SimResult<T> = Result<T, SimError>;

/// Errors raised while constructing or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A port index was out of range for the agent, or was connected twice,
    /// or was left unconnected at run time.
    Topology {
        /// Human-readable explanation of the wiring problem.
        detail: String,
    },
    /// A link latency was incompatible with the engine window (must be a
    /// nonzero multiple of the window).
    BadLatency {
        /// The offending latency, in cycles.
        latency: u64,
        /// The engine window, in cycles.
        window: u32,
    },
    /// A token window of unexpected length was produced or consumed.
    WindowMismatch {
        /// The expected window length.
        expected: u32,
        /// The actual window length observed.
        actual: u32,
    },
    /// A channel endpoint disappeared mid-run (an agent thread panicked).
    ChannelClosed {
        /// Name of the agent whose channel broke.
        agent: String,
    },
    /// An agent reported a fatal error during `advance`.
    Agent {
        /// Name of the failing agent.
        agent: String,
        /// The agent's error message.
        detail: String,
    },
    /// An agent panicked inside `advance`. Unlike [`SimError::ChannelClosed`]
    /// (which a *peer* observes after the panicking worker tears its
    /// channels down), this names the agent that actually blew up and the
    /// target cycle at which it happened.
    AgentPanicked {
        /// Name of the panicking agent.
        agent: String,
        /// Target cycle (window start) at which the panic occurred.
        cycle: u64,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A host I/O operation failed (checkpoint file read/write, etc.).
    Io {
        /// What the engine was doing when the I/O failed.
        context: String,
        /// The underlying `std::io::Error`, rendered to a string so the
        /// error stays `Clone`.
        source: String,
    },
    /// Checkpoint serialization or restoration failed.
    Checkpoint {
        /// Human-readable explanation (truncated snapshot, version
        /// mismatch, agent without checkpoint support, ...).
        detail: String,
    },
    /// The run was aborted from outside (watchdog, deadline, or an
    /// [`AbortHandle`](crate::AbortHandle)) before completing.
    Aborted {
        /// Why the run was aborted.
        reason: String,
    },
    /// An inter-process transport stream violated the token wire protocol
    /// (bad length prefix, out-of-order sequence number, trailing bytes).
    Protocol {
        /// Human-readable explanation of the protocol violation.
        detail: String,
    },
    /// A chaos-scenario script failed to parse, or referenced an agent,
    /// port, or topology group that does not exist in the topology it was
    /// compiled against.
    Scenario {
        /// Human-readable explanation of the script problem.
        detail: String,
    },
}

impl SimError {
    /// Constructs a topology error from anything displayable.
    pub fn topology(detail: impl fmt::Display) -> Self {
        SimError::Topology {
            detail: detail.to_string(),
        }
    }

    /// Constructs an agent error.
    pub fn agent(agent: impl Into<String>, detail: impl fmt::Display) -> Self {
        SimError::Agent {
            agent: agent.into(),
            detail: detail.to_string(),
        }
    }

    /// Constructs an I/O error, preserving the source error's message.
    pub fn io(context: impl Into<String>, source: &std::io::Error) -> Self {
        SimError::Io {
            context: context.into(),
            source: source.to_string(),
        }
    }

    /// Constructs a checkpoint error.
    pub fn checkpoint(detail: impl fmt::Display) -> Self {
        SimError::Checkpoint {
            detail: detail.to_string(),
        }
    }

    /// Constructs an abort error.
    pub fn aborted(reason: impl fmt::Display) -> Self {
        SimError::Aborted {
            reason: reason.to_string(),
        }
    }

    /// Constructs a wire-protocol error.
    pub fn protocol(detail: impl fmt::Display) -> Self {
        SimError::Protocol {
            detail: detail.to_string(),
        }
    }

    /// Constructs a scenario-script error.
    pub fn scenario(detail: impl fmt::Display) -> Self {
        SimError::Scenario {
            detail: detail.to_string(),
        }
    }

    /// How *diagnostic* this error is, for picking the best error when
    /// several workers fail in the same run. A worker whose agent panicked
    /// outranks a peer that merely observed the resulting channel closure,
    /// so the report names the true culprit.
    pub(crate) fn severity(&self) -> u8 {
        match self {
            SimError::AgentPanicked { .. } => 3,
            SimError::Agent { .. } | SimError::Io { .. } | SimError::Checkpoint { .. } => 2,
            SimError::Topology { .. }
            | SimError::BadLatency { .. }
            | SimError::WindowMismatch { .. } => 2,
            SimError::Aborted { .. } | SimError::Protocol { .. } | SimError::Scenario { .. } => 2,
            SimError::ChannelClosed { .. } => 1,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Topology { detail } => write!(f, "invalid topology: {detail}"),
            SimError::BadLatency { latency, window } => write!(
                f,
                "link latency {latency} is not a nonzero multiple of engine window {window}"
            ),
            SimError::WindowMismatch { expected, actual } => {
                write!(f, "token window length {actual}, expected {expected}")
            }
            SimError::ChannelClosed { agent } => {
                write!(
                    f,
                    "simulation channel closed unexpectedly for agent {agent}"
                )
            }
            SimError::Agent { agent, detail } => write!(f, "agent {agent} failed: {detail}"),
            SimError::AgentPanicked {
                agent,
                cycle,
                message,
            } => write!(f, "agent {agent} panicked at cycle {cycle}: {message}"),
            SimError::Io { context, source } => write!(f, "I/O error while {context}: {source}"),
            SimError::Checkpoint { detail } => write!(f, "checkpoint error: {detail}"),
            SimError::Aborted { reason } => write!(f, "simulation aborted: {reason}"),
            SimError::Protocol { detail } => write!(f, "transport protocol error: {detail}"),
            SimError::Scenario { detail } => write!(f, "scenario error: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::topology("port 3 unconnected").to_string(),
            "invalid topology: port 3 unconnected"
        );
        assert_eq!(
            SimError::BadLatency {
                latency: 7,
                window: 4
            }
            .to_string(),
            "link latency 7 is not a nonzero multiple of engine window 4"
        );
        assert_eq!(
            SimError::WindowMismatch {
                expected: 8,
                actual: 4
            }
            .to_string(),
            "token window length 4, expected 8"
        );
        assert_eq!(
            SimError::agent("switch0", "boom").to_string(),
            "agent switch0 failed: boom"
        );
        assert_eq!(
            SimError::AgentPanicked {
                agent: "blade3".into(),
                cycle: 4096,
                message: "boom".into(),
            }
            .to_string(),
            "agent blade3 panicked at cycle 4096: boom"
        );
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = SimError::io("reading checkpoint", &io);
        assert!(e.to_string().contains("reading checkpoint"));
        assert!(e.to_string().contains("gone"), "source preserved: {e}");
        assert_eq!(
            SimError::checkpoint("bad magic").to_string(),
            "checkpoint error: bad magic"
        );
        assert_eq!(
            SimError::aborted("deadline").to_string(),
            "simulation aborted: deadline"
        );
    }

    #[test]
    fn severity_ranks_panic_over_peer_closure() {
        let panic = SimError::AgentPanicked {
            agent: "a".into(),
            cycle: 0,
            message: String::new(),
        };
        let closed = SimError::ChannelClosed { agent: "b".into() };
        let aborted = SimError::aborted("halt");
        assert!(panic.severity() > closed.severity());
        assert!(aborted.severity() > closed.severity());
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error + Send + Sync> = Box::new(SimError::topology("x"));
        assert!(e.to_string().contains("invalid topology"));
    }
}
