//! Declarative chaos scenarios on the deterministic target network.
//!
//! FireSim's value (paper §IV-C) is evaluating datacenter behaviour under
//! conditions you cannot safely create in production. This module turns
//! that into a first-class, *replayable* artifact: a [`Scenario`] is a
//! seeded script — loadable from a TOML or JSON file — describing timed
//! target-network events:
//!
//! * **partitions and heals** — group agents into islands; every link
//!   crossing an island boundary is masked for the event window;
//! * **correlated failures** — a whole rack (a switch plus its subtree)
//!   down as one event, expanded to many links via topology groups;
//! * **per-link loss and degradation** — seeded drop-rate windows
//!   ([`FaultKind::LinkFlaky`](crate::FaultKind)) and duty-cycle bandwidth
//!   shaping ([`FaultKind::LinkDegraded`](crate::FaultKind));
//! * **switch buffer pressure** — shrink a switch's output buffering or
//!   tighten its release-delay bound mid-run, restored on heal (a
//!   [`PressureWindow`] applied by the switch model).
//!
//! A scenario is *compiled* against a [`ScenarioTopo`] — a neutral view of
//! the simulated topology (agents, links, labeled groups) supplied by the
//! manager — into a [`CompiledScenario`]: a flat timeline of per-link
//! effect windows and per-switch pressure windows. Compilation validates
//! every referenced agent, port, and group and fails with a typed
//! [`SimError::Scenario`] rather than silently injecting nothing.
//!
//! **Determinism.** Every compiled effect is a pure function of the
//! absolute target cycle: link effects ride the existing
//! [`FaultPlan`] masking machinery (seeded hash / duty
//! cycle per cycle number), and pressure windows are evaluated from the
//! window-start cycle inside the switch model. No mutable scenario state
//! exists outside the engine's ordinary checkpointed state, so a run
//! restored from an `FSCKPT01` checkpoint taken mid-partition — with the
//! scenario re-applied to the rebuilt simulation — resumes mid-scenario
//! exactly, and single-process, multi-thread, and all transport backends
//! produce identical digests.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::error::{SimError, SimResult};
use crate::fault::FaultPlan;

// ---------------------------------------------------------------------------
// Script model
// ---------------------------------------------------------------------------

/// One timed event in a scenario script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioEvent {
    /// First target cycle at which the event is active.
    pub from: u64,
    /// First target cycle at which the event has healed.
    pub until: u64,
    /// What happens.
    pub kind: EventKind,
}

/// The event vocabulary of scenario scripts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Partition the network: each island lists agent names; agents not
    /// listed form one implicit island. Every link whose endpoints sit in
    /// different islands is masked (both directions) for the window.
    Partition {
        /// The islands, each a list of agent names.
        islands: Vec<Vec<String>>,
    },
    /// Correlated failure: the topology group labeled `group` (typically a
    /// switch plus every node in its subtree) goes down as a unit — every
    /// link touching a member is masked for the window.
    RackDown {
        /// Label of the topology group that fails.
        group: String,
    },
    /// One input link goes fully down.
    LinkDown {
        /// Receiving agent.
        agent: String,
        /// Receiving input port.
        port: usize,
    },
    /// One input link drops a seeded fraction of its tokens.
    LinkFlaky {
        /// Receiving agent.
        agent: String,
        /// Receiving input port.
        port: usize,
        /// Percentage of tokens dropped, 0-100.
        drop_percent: u8,
    },
    /// One input link is bandwidth-shaped to a duty-cycle fraction.
    LinkDegrade {
        /// Receiving agent.
        agent: String,
        /// Receiving input port.
        port: usize,
        /// Percentage of tokens kept, 0-100.
        keep_percent: u8,
    },
    /// A switch comes under buffer pressure: its effective output
    /// buffering and/or release-delay bound shrink for the window.
    SwitchPressure {
        /// Name of the switch.
        switch: String,
        /// Effective per-port output buffering during the window, bytes.
        buffer_bytes: Option<usize>,
        /// Effective release-delay bound during the window, cycles.
        max_release_delay: Option<u64>,
    },
}

impl EventKind {
    fn describe(&self) -> String {
        match self {
            EventKind::Partition { islands } => {
                format!("partition into {} island(s)", islands.len() + 1)
            }
            EventKind::RackDown { group } => format!("rack {group} down"),
            EventKind::LinkDown { agent, port } => format!("link {agent}:{port} down"),
            EventKind::LinkFlaky {
                agent,
                port,
                drop_percent,
            } => format!("link {agent}:{port} flaky ({drop_percent}% loss)"),
            EventKind::LinkDegrade {
                agent,
                port,
                keep_percent,
            } => format!("link {agent}:{port} degraded ({keep_percent}% kept)"),
            EventKind::SwitchPressure { switch, .. } => format!("switch {switch} under pressure"),
        }
    }
}

/// A declarative, seeded chaos-scenario script.
///
/// Load one from disk with [`Scenario::load`] (TOML or JSON, sniffed), or
/// build it programmatically, then [`Scenario::compile`] it against a
/// [`ScenarioTopo`] to validate it and obtain the applicable event
/// timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Scenario {
    /// Human-readable scenario name (optional, informational).
    pub name: String,
    /// Seed driving flaky-link token selection.
    pub seed: u64,
    /// Recovery-timeline bucket width in target cycles; 0 disables the
    /// timeline.
    pub interval: u64,
    /// The timed events.
    pub events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// Reads a scenario script from `path`. Content starting with `{` is
    /// parsed as JSON, anything else as the TOML subset (see
    /// [`Scenario::from_toml`]).
    pub fn load(path: impl AsRef<Path>) -> SimResult<Scenario> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| SimError::io(format!("reading scenario {}", path.display()), &e))?;
        Scenario::parse(&text)
    }

    /// Parses a scenario from a string, sniffing the format: content whose
    /// first non-whitespace byte is `{` is JSON, anything else TOML.
    pub fn parse(text: &str) -> SimResult<Scenario> {
        if text.trim_start().starts_with('{') {
            Scenario::from_json(text)
        } else {
            Scenario::from_toml(text)
        }
    }

    /// Parses the JSON form:
    ///
    /// ```json
    /// { "name": "partition-heal", "seed": 7, "interval": 50000,
    ///   "events": [
    ///     { "kind": "partition", "from": 100000, "until": 300000,
    ///       "islands": [["echo"]] } ] }
    /// ```
    pub fn from_json(text: &str) -> SimResult<Scenario> {
        let val = json::parse(text)?;
        Scenario::from_val(&val)
    }

    /// Parses the TOML-subset form: top-level `key = value` pairs followed
    /// by `[[event]]` tables. Supported values are unsigned integers (with
    /// `_` separators), double-quoted strings, booleans, and single-line
    /// (possibly nested) arrays; `#` starts a comment.
    ///
    /// ```toml
    /// name = "partition-heal"
    /// seed = 7
    /// interval = 50_000
    ///
    /// [[event]]
    /// kind = "partition"
    /// from = 100_000
    /// until = 300_000
    /// islands = [["echo"]]
    /// ```
    pub fn from_toml(text: &str) -> SimResult<Scenario> {
        let val = toml::parse(text)?;
        Scenario::from_val(&val)
    }

    fn from_val(val: &Val) -> SimResult<Scenario> {
        let obj = val.as_obj("scenario")?;
        for key in obj.keys() {
            if !matches!(
                key.as_str(),
                "name" | "seed" | "interval" | "events" | "event"
            ) {
                return Err(SimError::scenario(format!(
                    "unknown top-level scenario field `{key}`"
                )));
            }
        }
        let mut sc = Scenario {
            name: match obj.get("name") {
                Some(v) => v.as_str("name")?.to_owned(),
                None => String::new(),
            },
            seed: get_u64_or(obj, "seed", 0)?,
            interval: get_u64_or(obj, "interval", 0)?,
            events: Vec::new(),
        };
        // TOML array-of-tables emit "event"; JSON uses "events".
        let events = obj.get("events").or_else(|| obj.get("event"));
        if let Some(events) = events {
            for (i, ev) in events.as_arr("events")?.iter().enumerate() {
                sc.events.push(parse_event(ev).map_err(|e| {
                    SimError::scenario(format!("event #{}: {}", i + 1, detail_of(&e)))
                })?);
            }
        }
        Ok(sc)
    }
}

fn detail_of(e: &SimError) -> String {
    match e {
        SimError::Scenario { detail } => detail.clone(),
        other => other.to_string(),
    }
}

fn get_u64_or(obj: &BTreeMap<String, Val>, key: &str, default: u64) -> SimResult<u64> {
    match obj.get(key) {
        Some(v) => v.as_u64(key),
        None => Ok(default),
    }
}

fn get_u64(obj: &BTreeMap<String, Val>, key: &str) -> SimResult<u64> {
    obj.get(key)
        .ok_or_else(|| SimError::scenario(format!("missing field `{key}`")))?
        .as_u64(key)
}

fn get_str(obj: &BTreeMap<String, Val>, key: &str) -> SimResult<String> {
    Ok(obj
        .get(key)
        .ok_or_else(|| SimError::scenario(format!("missing field `{key}`")))?
        .as_str(key)?
        .to_owned())
}

fn get_percent(obj: &BTreeMap<String, Val>, key: &str) -> SimResult<u8> {
    let v = get_u64(obj, key)?;
    u8::try_from(v)
        .ok()
        .filter(|p| *p <= 100)
        .ok_or_else(|| SimError::scenario(format!("`{key}` must be 0-100, got {v}")))
}

fn parse_event(val: &Val) -> SimResult<ScenarioEvent> {
    let obj = val.as_obj("event")?;
    let kind_name = get_str(obj, "kind")?;
    let allowed: &[&str] = match kind_name.as_str() {
        "partition" => &["kind", "from", "until", "islands"],
        "rack_down" => &["kind", "from", "until", "group", "switch"],
        "link_down" => &["kind", "from", "until", "agent", "port"],
        "link_flaky" => &["kind", "from", "until", "agent", "port", "drop_percent"],
        "degrade" | "link_degrade" => &["kind", "from", "until", "agent", "port", "keep_percent"],
        "switch_pressure" => &[
            "kind",
            "from",
            "until",
            "switch",
            "buffer_bytes",
            "max_release_delay",
        ],
        other => {
            return Err(SimError::scenario(format!(
                "unknown event kind `{other}` (expected partition, rack_down, link_down, \
                 link_flaky, degrade, or switch_pressure)"
            )))
        }
    };
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(SimError::scenario(format!(
                "unknown field `{key}` on `{kind_name}` event"
            )));
        }
    }
    let from = get_u64(obj, "from")?;
    let until = get_u64(obj, "until")?;
    if from >= until {
        return Err(SimError::scenario(format!(
            "event window is empty: from={from} until={until}"
        )));
    }
    let kind = match kind_name.as_str() {
        "partition" => {
            let islands_val = obj
                .get("islands")
                .ok_or_else(|| SimError::scenario("missing field `islands`"))?;
            let mut islands = Vec::new();
            for island in islands_val.as_arr("islands")? {
                let members = island
                    .as_arr("island")?
                    .iter()
                    .map(|m| m.as_str("island member").map(str::to_owned))
                    .collect::<SimResult<Vec<String>>>()?;
                if members.is_empty() {
                    return Err(SimError::scenario("empty island in partition event"));
                }
                islands.push(members);
            }
            if islands.is_empty() {
                return Err(SimError::scenario("partition event lists no islands"));
            }
            EventKind::Partition { islands }
        }
        "rack_down" => EventKind::RackDown {
            // `switch` accepted as an alias: rack groups are labeled by
            // their root switch.
            group: get_str(obj, "group").or_else(|_| get_str(obj, "switch"))?,
        },
        "link_down" => EventKind::LinkDown {
            agent: get_str(obj, "agent")?,
            port: get_u64(obj, "port")? as usize,
        },
        "link_flaky" => EventKind::LinkFlaky {
            agent: get_str(obj, "agent")?,
            port: get_u64(obj, "port")? as usize,
            drop_percent: get_percent(obj, "drop_percent")?,
        },
        "degrade" | "link_degrade" => EventKind::LinkDegrade {
            agent: get_str(obj, "agent")?,
            port: get_u64(obj, "port")? as usize,
            keep_percent: get_percent(obj, "keep_percent")?,
        },
        "switch_pressure" => {
            let buffer_bytes = match obj.get("buffer_bytes") {
                Some(v) => Some(v.as_u64("buffer_bytes")? as usize),
                None => None,
            };
            let max_release_delay = match obj.get("max_release_delay") {
                Some(v) => Some(v.as_u64("max_release_delay")?),
                None => None,
            };
            if buffer_bytes.is_none() && max_release_delay.is_none() {
                return Err(SimError::scenario(
                    "switch_pressure needs `buffer_bytes` and/or `max_release_delay`",
                ));
            }
            EventKind::SwitchPressure {
                switch: get_str(obj, "switch")?,
                buffer_bytes,
                max_release_delay,
            }
        }
        _ => unreachable!("kind validated above"),
    };
    Ok(ScenarioEvent { from, until, kind })
}

// ---------------------------------------------------------------------------
// Topology view
// ---------------------------------------------------------------------------

/// A link between two agents, named from both receiving ends: tokens
/// flowing `a → b` arrive on `b`'s input `b_port`, and `b → a` on `a`'s
/// input `a_port`. Masking both input ports takes the whole link down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioLink {
    /// One endpoint.
    pub a: String,
    /// `a`'s input port facing `b`.
    pub a_port: usize,
    /// The other endpoint.
    pub b: String,
    /// `b`'s input port facing `a`.
    pub b_port: usize,
}

/// The neutral topology view scenarios compile against: every agent with
/// its input-port count, every link, and labeled groups (e.g. one per
/// switch, containing the switch and its whole subtree) that correlated
/// failures expand through.
#[derive(Debug, Clone, Default)]
pub struct ScenarioTopo {
    agents: Vec<(String, usize)>,
    links: Vec<ScenarioLink>,
    groups: Vec<(String, Vec<String>)>,
}

impl ScenarioTopo {
    /// Creates an empty view.
    pub fn new() -> Self {
        ScenarioTopo::default()
    }

    /// Registers an agent and its input-port count.
    pub fn add_agent(&mut self, name: impl Into<String>, num_inputs: usize) -> &mut Self {
        self.agents.push((name.into(), num_inputs));
        self
    }

    /// Registers a bidirectional link (see [`ScenarioLink`]).
    pub fn add_link(
        &mut self,
        a: impl Into<String>,
        a_port: usize,
        b: impl Into<String>,
        b_port: usize,
    ) -> &mut Self {
        self.links.push(ScenarioLink {
            a: a.into(),
            a_port,
            b: b.into(),
            b_port,
        });
        self
    }

    /// Registers a labeled group of agent names for correlated failures.
    pub fn add_group(
        &mut self,
        label: impl Into<String>,
        members: impl IntoIterator<Item = String>,
    ) -> &mut Self {
        self.groups
            .push((label.into(), members.into_iter().collect()));
        self
    }

    /// The registered links.
    pub fn links(&self) -> &[ScenarioLink] {
        &self.links
    }

    fn inputs_of(&self, name: &str) -> Option<usize> {
        self.agents.iter().find(|(n, _)| n == name).map(|(_, i)| *i)
    }

    fn check_agent(&self, name: &str, context: &str) -> SimResult<()> {
        if self.inputs_of(name).is_none() {
            return Err(SimError::scenario(format!(
                "{context} unknown agent {name:?} (topology has: {})",
                self.agent_list()
            )));
        }
        Ok(())
    }

    fn check_port(&self, name: &str, port: usize, context: &str) -> SimResult<()> {
        self.check_agent(name, context)?;
        let n_in = self.inputs_of(name).expect("checked");
        if port >= n_in {
            return Err(SimError::scenario(format!(
                "{context} input port {port} of agent {name:?}, \
                 which has {n_in} input port(s)"
            )));
        }
        Ok(())
    }

    fn agent_list(&self) -> String {
        let names: Vec<&str> = self.agents.iter().map(|(n, _)| n.as_str()).collect();
        names.join(", ")
    }
}

// ---------------------------------------------------------------------------
// Compiled form
// ---------------------------------------------------------------------------

/// What happens to one link during an effect window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEffect {
    /// Fully masked.
    Down,
    /// Seeded loss at this drop percentage.
    Flaky(u8),
    /// Duty-cycle shaped to this keep percentage.
    Degrade(u8),
}

/// One compiled per-link effect window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkEffectWindow {
    /// Receiving agent.
    pub agent: String,
    /// Receiving input port.
    pub port: usize,
    /// First active cycle.
    pub from: u64,
    /// First healed cycle.
    pub until: u64,
    /// The effect.
    pub effect: LinkEffect,
}

/// One compiled buffer-pressure window on a switch. The switch model
/// evaluates these purely from the target cycle, so pressure is part of
/// deterministic target behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureWindow {
    /// First active cycle.
    pub from: u64,
    /// First healed cycle.
    pub until: u64,
    /// Effective per-port output buffering while active, bytes (the
    /// minimum of this and the configured value applies).
    pub buffer_bytes: Option<usize>,
    /// Effective release-delay bound while active, cycles (the minimum of
    /// this and the configured bound applies).
    pub max_release_delay: Option<u64>,
}

/// A scenario compiled against a topology: the flat, validated timeline of
/// link-effect and switch-pressure windows, ready to lower onto a
/// [`FaultPlan`] and the switch models.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompiledScenario {
    seed: u64,
    interval: u64,
    link_effects: Vec<LinkEffectWindow>,
    pressure: Vec<(String, PressureWindow)>,
    watches: Vec<(String, usize)>,
    labels: Vec<(u64, String)>,
}

impl CompiledScenario {
    /// The scenario's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The recovery-timeline bucket width (0 = no timeline).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// True when the scenario does nothing (no events compiled).
    pub fn is_noop(&self) -> bool {
        self.link_effects.is_empty() && self.pressure.is_empty()
    }

    /// The compiled per-link effect windows.
    pub fn link_effects(&self) -> &[LinkEffectWindow] {
        &self.link_effects
    }

    /// The compiled `(cycle, label)` annotations.
    pub fn labels(&self) -> &[(u64, String)] {
        &self.labels
    }

    /// The deduplicated `(agent, input port)` pairs touched by link
    /// effects — the links whose recovery the timeline watches.
    pub fn watches(&self) -> &[(String, usize)] {
        &self.watches
    }

    /// The pressure windows addressed to switch `name`.
    pub fn pressure_for(&self, name: &str) -> Vec<PressureWindow> {
        self.pressure
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, w)| *w)
            .collect()
    }

    /// Names of switches with at least one pressure window.
    pub fn pressured_switches(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.pressure.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Lowers the link effects onto a [`FaultPlan`], keeping only effects
    /// and watches whose receiving agent satisfies `is_local` (in a
    /// partitioned run each shard applies only its own agents' share). The
    /// plan also carries the recovery-timeline registration when the
    /// scenario has an interval and any local watches.
    pub fn fault_plan(&self, is_local: impl Fn(&str) -> bool) -> FaultPlan {
        let mut plan = FaultPlan::new(self.seed);
        for e in &self.link_effects {
            if !is_local(&e.agent) {
                continue;
            }
            match e.effect {
                LinkEffect::Down => plan.link_down(e.agent.as_str(), e.port, e.from, e.until),
                LinkEffect::Flaky(pct) => {
                    plan.link_flaky(e.agent.as_str(), e.port, e.from, e.until, pct)
                }
                LinkEffect::Degrade(pct) => {
                    plan.link_degraded(e.agent.as_str(), e.port, e.from, e.until, pct)
                }
            };
        }
        let mut watched = false;
        for (agent, port) in &self.watches {
            if !is_local(agent) {
                continue;
            }
            plan.watch_link(agent.as_str(), *port);
            watched = true;
        }
        if watched && self.interval > 0 {
            plan.record_timeline(self.interval);
            for (cycle, label) in &self.labels {
                plan.annotate(*cycle, label.as_str());
            }
        }
        plan
    }
}

impl Scenario {
    /// Compiles the scenario against a topology view, validating every
    /// referenced agent, port, and group.
    ///
    /// # Errors
    ///
    /// [`SimError::Scenario`] naming the offending event and reference
    /// when anything does not exist in `topo`.
    pub fn compile(&self, topo: &ScenarioTopo) -> SimResult<CompiledScenario> {
        let mut out = CompiledScenario {
            seed: self.seed,
            interval: self.interval,
            ..CompiledScenario::default()
        };
        for (i, ev) in self.events.iter().enumerate() {
            let ctx = format!("event #{} ({})", i + 1, ev.kind.describe());
            match &ev.kind {
                EventKind::Partition { islands } => {
                    let mut island_of: BTreeMap<&str, usize> = BTreeMap::new();
                    for (island_id, members) in islands.iter().enumerate() {
                        for m in members {
                            topo.check_agent(m, &format!("{ctx} names"))?;
                            if island_of.insert(m.as_str(), island_id + 1).is_some() {
                                return Err(SimError::scenario(format!(
                                    "{ctx}: agent {m:?} appears in more than one island"
                                )));
                            }
                        }
                    }
                    // Unlisted agents form implicit island 0; a link is cut
                    // iff its endpoints land in different islands.
                    for link in &topo.links {
                        let ia = island_of.get(link.a.as_str()).copied().unwrap_or(0);
                        let ib = island_of.get(link.b.as_str()).copied().unwrap_or(0);
                        if ia != ib {
                            out.cut_link(link, ev.from, ev.until);
                        }
                    }
                }
                EventKind::RackDown { group } => {
                    let members = topo
                        .groups
                        .iter()
                        .find(|(label, _)| label == group)
                        .map(|(_, m)| m)
                        .ok_or_else(|| {
                            let labels: Vec<&str> =
                                topo.groups.iter().map(|(l, _)| l.as_str()).collect();
                            SimError::scenario(format!(
                                "{ctx}: unknown group {group:?} (topology has: {})",
                                labels.join(", ")
                            ))
                        })?;
                    let set: BTreeSet<&str> = members.iter().map(String::as_str).collect();
                    for link in &topo.links {
                        if set.contains(link.a.as_str()) || set.contains(link.b.as_str()) {
                            out.cut_link(link, ev.from, ev.until);
                        }
                    }
                }
                EventKind::LinkDown { agent, port } => {
                    topo.check_port(agent, *port, &format!("{ctx} targets"))?;
                    out.push_effect(agent, *port, ev.from, ev.until, LinkEffect::Down);
                }
                EventKind::LinkFlaky {
                    agent,
                    port,
                    drop_percent,
                } => {
                    topo.check_port(agent, *port, &format!("{ctx} targets"))?;
                    out.push_effect(
                        agent,
                        *port,
                        ev.from,
                        ev.until,
                        LinkEffect::Flaky(*drop_percent),
                    );
                }
                EventKind::LinkDegrade {
                    agent,
                    port,
                    keep_percent,
                } => {
                    topo.check_port(agent, *port, &format!("{ctx} targets"))?;
                    out.push_effect(
                        agent,
                        *port,
                        ev.from,
                        ev.until,
                        LinkEffect::Degrade(*keep_percent),
                    );
                }
                EventKind::SwitchPressure {
                    switch,
                    buffer_bytes,
                    max_release_delay,
                } => {
                    topo.check_agent(switch, &format!("{ctx} targets"))?;
                    out.pressure.push((
                        switch.clone(),
                        PressureWindow {
                            from: ev.from,
                            until: ev.until,
                            buffer_bytes: *buffer_bytes,
                            max_release_delay: *max_release_delay,
                        },
                    ));
                }
            }
            out.labels.push((ev.from, ev.kind.describe()));
            out.labels
                .push((ev.until, format!("heal: {}", ev.kind.describe())));
        }
        out.labels.sort();
        out.labels.dedup();
        Ok(out)
    }
}

impl CompiledScenario {
    fn cut_link(&mut self, link: &ScenarioLink, from: u64, until: u64) {
        self.push_effect(&link.a, link.a_port, from, until, LinkEffect::Down);
        self.push_effect(&link.b, link.b_port, from, until, LinkEffect::Down);
    }

    fn push_effect(&mut self, agent: &str, port: usize, from: u64, until: u64, effect: LinkEffect) {
        self.link_effects.push(LinkEffectWindow {
            agent: agent.to_owned(),
            port,
            from,
            until,
            effect,
        });
        let watch = (agent.to_owned(), port);
        if !self.watches.contains(&watch) {
            self.watches.push(watch);
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal value model + parsers (the workspace deliberately has no TOML
// dependency, and core takes no serde dependency; scenario scripts need
// only this subset)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Val {
    U64(u64),
    Str(String),
    Bool(bool),
    Arr(Vec<Val>),
    Obj(BTreeMap<String, Val>),
}

impl Val {
    fn as_obj(&self, what: &str) -> SimResult<&BTreeMap<String, Val>> {
        match self {
            Val::Obj(o) => Ok(o),
            other => Err(SimError::scenario(format!(
                "`{what}` must be a table/object, got {}",
                other.type_name()
            ))),
        }
    }
    fn as_arr(&self, what: &str) -> SimResult<&[Val]> {
        match self {
            Val::Arr(a) => Ok(a),
            other => Err(SimError::scenario(format!(
                "`{what}` must be an array, got {}",
                other.type_name()
            ))),
        }
    }
    fn as_u64(&self, what: &str) -> SimResult<u64> {
        match self {
            Val::U64(v) => Ok(*v),
            other => Err(SimError::scenario(format!(
                "`{what}` must be an unsigned integer, got {}",
                other.type_name()
            ))),
        }
    }
    fn as_str(&self, what: &str) -> SimResult<&str> {
        match self {
            Val::Str(s) => Ok(s),
            other => Err(SimError::scenario(format!(
                "`{what}` must be a string, got {}",
                other.type_name()
            ))),
        }
    }
    fn type_name(&self) -> &'static str {
        match self {
            Val::U64(_) => "integer",
            Val::Str(_) => "string",
            Val::Bool(_) => "boolean",
            Val::Arr(_) => "array",
            Val::Obj(_) => "table",
        }
    }
}

mod json {
    use super::Val;
    use crate::error::{SimError, SimResult};
    use std::collections::BTreeMap;

    pub(super) fn parse(text: &str) -> SimResult<Val> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let val = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing content after JSON value"));
        }
        Ok(val)
    }

    fn err(pos: usize, msg: &str) -> SimError {
        SimError::scenario(format!("JSON parse error at byte {pos}: {msg}"))
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> SimResult<Val> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Val::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Val::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Val::Bool(false)),
            Some(c) if c.is_ascii_digit() => number(b, pos),
            Some(_) => Err(err(
                *pos,
                "unexpected character (note: scenario values \
                                       are unsigned integers, strings, booleans, \
                                       arrays, and objects)",
            )),
            None => Err(err(*pos, "unexpected end of input")),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, lit: &str, val: Val) -> SimResult<Val> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(val)
        } else {
            Err(err(*pos, "invalid literal"))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> SimResult<Val> {
        let start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if let Some(b'.' | b'e' | b'E') = b.get(*pos) {
            return Err(err(start, "floating-point numbers are not supported"));
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Val::U64)
            .ok_or_else(|| err(start, "invalid integer"))
    }

    fn string(b: &[u8], pos: &mut usize) -> SimResult<String> {
        *pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err(err(*pos, "unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    let esc = b.get(*pos).ok_or_else(|| err(*pos, "bad escape"))?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        _ => return Err(err(*pos, "unsupported escape")),
                    });
                    *pos += 1;
                }
                Some(&c) => {
                    // Multibyte UTF-8 passes through byte-by-byte; the
                    // input is a &str so it is valid UTF-8 overall.
                    let ch_len = utf8_len(c);
                    let s = std::str::from_utf8(&b[*pos..*pos + ch_len])
                        .map_err(|_| err(*pos, "invalid UTF-8"))?;
                    out.push_str(s);
                    *pos += ch_len;
                }
            }
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> SimResult<Val> {
        *pos += 1; // [
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Val::Arr(out));
        }
        loop {
            out.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Val::Arr(out));
                }
                _ => return Err(err(*pos, "expected `,` or `]`")),
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> SimResult<Val> {
        *pos += 1; // {
        let mut out = BTreeMap::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Val::Obj(out));
        }
        loop {
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b'"') {
                return Err(err(*pos, "expected string key"));
            }
            let key = string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(err(*pos, "expected `:`"));
            }
            *pos += 1;
            out.insert(key, value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Val::Obj(out));
                }
                _ => return Err(err(*pos, "expected `,` or `}`")),
            }
        }
    }
}

mod toml {
    use super::Val;
    use crate::error::{SimError, SimResult};
    use std::collections::BTreeMap;

    /// Parses the scenario TOML subset into a root object; `[[event]]`
    /// tables collect into an `event` array.
    pub(super) fn parse(text: &str) -> SimResult<Val> {
        let mut root: BTreeMap<String, Val> = BTreeMap::new();
        let mut events: Vec<BTreeMap<String, Val>> = Vec::new();
        let mut in_event = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| {
                SimError::scenario(format!("TOML parse error on line {}: {msg}", lineno + 1))
            };
            if line == "[[event]]" {
                events.push(BTreeMap::new());
                in_event = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(err(
                    "only `[[event]]` tables are supported in scenario scripts",
                ));
            }
            let Some(eq) = line.find('=') else {
                return Err(err("expected `key = value`"));
            };
            let key = line[..eq].trim();
            if key.is_empty()
                || !key
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                return Err(err("invalid key (bare keys only)"));
            }
            let value = parse_value(line[eq + 1..].trim()).map_err(|m| err(&m))?;
            let table = if in_event {
                events.last_mut().expect("in_event implies an open table")
            } else {
                &mut root
            };
            if table.insert(key.to_owned(), value).is_some() {
                return Err(err(&format!("duplicate key `{key}`")));
            }
        }
        if !events.is_empty() {
            root.insert(
                "event".to_owned(),
                Val::Arr(events.into_iter().map(Val::Obj).collect()),
            );
        }
        Ok(Val::Obj(root))
    }

    /// Strips a `#` comment, respecting double-quoted strings.
    fn strip_comment(line: &str) -> &str {
        let mut in_str = false;
        let mut escaped = false;
        for (i, c) in line.char_indices() {
            match c {
                '\\' if in_str && !escaped => {
                    escaped = true;
                    continue;
                }
                '"' if !escaped => in_str = !in_str,
                '#' if !in_str => return &line[..i],
                _ => {}
            }
            escaped = false;
        }
        line
    }

    fn parse_value(s: &str) -> Result<Val, String> {
        let mut chars: Vec<char> = s.chars().collect();
        let mut pos = 0usize;
        let val = value(&mut chars, &mut pos)?;
        skip_ws(&chars, &mut pos);
        if pos != chars.len() {
            return Err("trailing content after value".to_owned());
        }
        Ok(val)
    }

    fn skip_ws(c: &[char], pos: &mut usize) {
        while *pos < c.len() && c[*pos].is_whitespace() {
            *pos += 1;
        }
    }

    fn value(c: &mut Vec<char>, pos: &mut usize) -> Result<Val, String> {
        skip_ws(c, pos);
        match c.get(*pos) {
            Some('"') => string(c, pos),
            Some('[') => array(c, pos),
            Some(ch) if ch.is_ascii_digit() => number(c, pos),
            Some('t') | Some('f') => boolean(c, pos),
            _ => Err("expected an integer, string, boolean, or array".to_owned()),
        }
    }

    fn boolean(c: &[char], pos: &mut usize) -> Result<Val, String> {
        let rest: String = c[*pos..].iter().collect();
        if rest.starts_with("true") {
            *pos += 4;
            Ok(Val::Bool(true))
        } else if rest.starts_with("false") {
            *pos += 5;
            Ok(Val::Bool(false))
        } else {
            Err("invalid literal".to_owned())
        }
    }

    fn number(c: &[char], pos: &mut usize) -> Result<Val, String> {
        let mut digits = String::new();
        while let Some(&ch) = c.get(*pos) {
            if ch.is_ascii_digit() {
                digits.push(ch);
            } else if ch != '_' {
                break;
            }
            *pos += 1;
        }
        digits
            .parse::<u64>()
            .map(Val::U64)
            .map_err(|_| "invalid integer".to_owned())
    }

    fn string(c: &[char], pos: &mut usize) -> Result<Val, String> {
        *pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match c.get(*pos) {
                None => return Err("unterminated string".to_owned()),
                Some('"') => {
                    *pos += 1;
                    return Ok(Val::Str(out));
                }
                Some('\\') => {
                    *pos += 1;
                    match c.get(*pos) {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        _ => return Err("unsupported escape".to_owned()),
                    }
                    *pos += 1;
                }
                Some(&ch) => {
                    out.push(ch);
                    *pos += 1;
                }
            }
        }
    }

    fn array(c: &mut Vec<char>, pos: &mut usize) -> Result<Val, String> {
        *pos += 1; // [
        let mut out = Vec::new();
        skip_ws(c, pos);
        if c.get(*pos) == Some(&']') {
            *pos += 1;
            return Ok(Val::Arr(out));
        }
        loop {
            out.push(value(c, pos)?);
            skip_ws(c, pos);
            match c.get(*pos) {
                Some(',') => {
                    *pos += 1;
                    // Tolerate a trailing comma before `]`.
                    skip_ws(c, pos);
                    if c.get(*pos) == Some(&']') {
                        *pos += 1;
                        return Ok(Val::Arr(out));
                    }
                }
                Some(']') => {
                    *pos += 1;
                    return Ok(Val::Arr(out));
                }
                _ => return Err("expected `,` or `]` in array".to_owned()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-rack topology view: root over rack0/rack1, servers a0,a1 under
    /// rack0, b0 under rack1.
    fn two_racks() -> ScenarioTopo {
        let mut t = ScenarioTopo::new();
        t.add_agent("root", 2);
        t.add_agent("rack0", 3); // 2 downlinks + uplink (port 2)
        t.add_agent("rack1", 2); // 1 downlink + uplink (port 1)
        t.add_agent("a0", 1);
        t.add_agent("a1", 1);
        t.add_agent("b0", 1);
        t.add_link("root", 0, "rack0", 2);
        t.add_link("root", 1, "rack1", 1);
        t.add_link("rack0", 0, "a0", 0);
        t.add_link("rack0", 1, "a1", 0);
        t.add_link("rack1", 0, "b0", 0);
        t.add_group("rack0", ["rack0", "a0", "a1"].map(String::from));
        t.add_group("rack1", ["rack1", "b0"].map(String::from));
        t
    }

    fn effects_on<'a>(sc: &'a CompiledScenario, agent: &str) -> Vec<&'a LinkEffectWindow> {
        sc.link_effects()
            .iter()
            .filter(|e| e.agent == agent)
            .collect()
    }

    #[test]
    fn toml_round_trip_parses_all_event_kinds() {
        let text = r#"
# a kitchen-sink scenario
name = "kitchen-sink"
seed = 42
interval = 1_000

[[event]]
kind = "partition"
from = 100
until = 200
islands = [["b0", "rack1"]]

[[event]]
kind = "rack_down"   # correlated failure
group = "rack0"
from = 300
until = 400

[[event]]
kind = "link_flaky"
agent = "a0"
port = 0
drop_percent = 30
from = 10
until = 20

[[event]]
kind = "degrade"
agent = "b0"
port = 0
keep_percent = 40
from = 10
until = 20

[[event]]
kind = "switch_pressure"
switch = "root"
buffer_bytes = 4096
max_release_delay = 64
from = 50
until = 150
"#;
        let sc = Scenario::from_toml(text).unwrap();
        assert_eq!(sc.name, "kitchen-sink");
        assert_eq!(sc.seed, 42);
        assert_eq!(sc.interval, 1_000);
        assert_eq!(sc.events.len(), 5);
        assert!(matches!(sc.events[0].kind, EventKind::Partition { .. }));
        assert!(matches!(
            sc.events[4].kind,
            EventKind::SwitchPressure { .. }
        ));
        let compiled = sc.compile(&two_racks()).unwrap();
        assert!(!compiled.is_noop());
        assert_eq!(compiled.pressure_for("root").len(), 1);
    }

    #[test]
    fn json_parses_equivalently() {
        let toml = r#"
seed = 7
[[event]]
kind = "link_down"
agent = "a0"
port = 0
from = 5
until = 9
"#;
        let json = r#"{"seed": 7, "events": [
            {"kind": "link_down", "agent": "a0", "port": 0,
             "from": 5, "until": 9}]}"#;
        let a = Scenario::from_toml(toml).unwrap();
        let b = Scenario::from_json(json).unwrap();
        assert_eq!(a, b);
        // Sniffing picks the right parser for both.
        assert_eq!(Scenario::parse(toml).unwrap(), a);
        assert_eq!(Scenario::parse(json).unwrap(), a);
    }

    #[test]
    fn partition_cuts_exactly_the_cross_island_links() {
        let sc = Scenario {
            events: vec![ScenarioEvent {
                from: 100,
                until: 200,
                kind: EventKind::Partition {
                    islands: vec![vec!["rack1".into(), "b0".into()]],
                },
            }],
            ..Scenario::default()
        };
        let compiled = sc.compile(&two_racks()).unwrap();
        // Only the root<->rack1 link crosses islands: both endpoints get a
        // Down window; the rack1<->b0 link (same island) is untouched.
        assert_eq!(compiled.link_effects().len(), 2);
        assert_eq!(effects_on(&compiled, "root").len(), 1);
        assert_eq!(effects_on(&compiled, "rack1").len(), 1);
        let e = effects_on(&compiled, "root")[0];
        assert_eq!(
            (e.port, e.from, e.until, e.effect),
            (1, 100, 200, LinkEffect::Down)
        );
        assert!(effects_on(&compiled, "b0").is_empty());
    }

    #[test]
    fn rack_down_expands_to_every_touching_link() {
        let sc = Scenario {
            events: vec![ScenarioEvent {
                from: 10,
                until: 20,
                kind: EventKind::RackDown {
                    group: "rack0".into(),
                },
            }],
            ..Scenario::default()
        };
        let compiled = sc.compile(&two_racks()).unwrap();
        // Links touched: root<->rack0, rack0<->a0, rack0<->a1 — each cut
        // at both endpoints.
        assert_eq!(compiled.link_effects().len(), 6);
        assert_eq!(effects_on(&compiled, "rack0").len(), 3);
        assert_eq!(effects_on(&compiled, "a0").len(), 1);
        assert_eq!(effects_on(&compiled, "a1").len(), 1);
        assert_eq!(effects_on(&compiled, "root").len(), 1);
        assert!(effects_on(&compiled, "b0").is_empty());
    }

    #[test]
    fn validation_rejects_unknown_targets() {
        let mk = |kind: EventKind| Scenario {
            events: vec![ScenarioEvent {
                from: 0,
                until: 10,
                kind,
            }],
            ..Scenario::default()
        };
        let topo = two_racks();
        let err = mk(EventKind::LinkDown {
            agent: "typo".into(),
            port: 0,
        })
        .compile(&topo)
        .unwrap_err();
        assert!(matches!(err, SimError::Scenario { .. }), "{err}");
        assert!(err.to_string().contains("typo"), "{err}");

        let err = mk(EventKind::LinkDown {
            agent: "a0".into(),
            port: 3,
        })
        .compile(&topo)
        .unwrap_err();
        assert!(err.to_string().contains("input port 3"), "{err}");

        let err = mk(EventKind::RackDown {
            group: "rack9".into(),
        })
        .compile(&topo)
        .unwrap_err();
        assert!(err.to_string().contains("rack9"), "{err}");

        let err = mk(EventKind::Partition {
            islands: vec![vec!["ghost".into()]],
        })
        .compile(&topo)
        .unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");

        // Same agent in two islands is ambiguous.
        let err = mk(EventKind::Partition {
            islands: vec![vec!["a0".into()], vec!["a0".into()]],
        })
        .compile(&topo)
        .unwrap_err();
        assert!(err.to_string().contains("more than one island"), "{err}");
    }

    #[test]
    fn parse_rejects_malformed_scripts() {
        assert!(Scenario::from_toml("kind =").is_err());
        assert!(Scenario::from_toml("[table]\nx = 1").is_err());
        assert!(Scenario::from_toml("x = 1\nx = 2").is_err());
        assert!(Scenario::from_json("{").is_err());
        assert!(Scenario::from_json(r#"{"seed": 1.5}"#).is_err());
        // Empty event window.
        let err = Scenario::from_toml(
            "[[event]]\nkind = \"link_down\"\nagent = \"a\"\nport = 0\nfrom = 5\nuntil = 5\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("window is empty"), "{err}");
        // Unknown fields are typos, not extensions.
        let err = Scenario::from_toml(
            "[[event]]\nkind = \"link_down\"\nagent = \"a\"\nport = 0\nfrom = 1\nuntil = 2\npct = 3\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown field `pct`"), "{err}");
        let err = Scenario::from_toml("sede = 1\n").unwrap_err();
        assert!(err.to_string().contains("sede"), "{err}");
    }

    #[test]
    fn fault_plan_filters_to_local_agents() {
        let sc = Scenario {
            seed: 5,
            interval: 100,
            events: vec![ScenarioEvent {
                from: 10,
                until: 20,
                kind: EventKind::RackDown {
                    group: "rack0".into(),
                },
            }],
            ..Scenario::default()
        };
        let compiled = sc.compile(&two_racks()).unwrap();
        let all = compiled.fault_plan(|_| true);
        assert_eq!(all.len(), 6);
        assert!(all.has_effects());
        let local = compiled.fault_plan(|n| n == "a0" || n == "a1");
        assert_eq!(local.len(), 2);
        let none = compiled.fault_plan(|_| false);
        assert!(!none.has_effects());
    }

    #[test]
    fn noop_scenario_compiles_to_inert_plan() {
        let sc = Scenario::from_toml("name = \"noop\"\nseed = 1\n").unwrap();
        let compiled = sc.compile(&two_racks()).unwrap();
        assert!(compiled.is_noop());
        assert!(!compiled.fault_plan(|_| true).has_effects());
        assert!(compiled.pressured_switches().is_empty());
    }
}
