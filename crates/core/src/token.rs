//! Token windows: one link-latency's worth of simulation tokens.
//!
//! On a FireSim link, the fundamental unit of data is a *token* representing
//! one target cycle's worth of data. Most cycles carry nothing (an "empty
//! token"); only cycles on which the endpoint actually transmitted carry a
//! payload. The paper batches token movement in units of the target link
//! latency — the largest batch that does not compromise cycle accuracy.
//!
//! [`TokenWindow`] is that batch. It is semantically a dense sequence of
//! `len` tokens, `Option<T>` each, but stores only the non-empty tokens as
//! `(offset, payload)` pairs sorted by offset. This keeps host cost
//! proportional to traffic rather than target time while preserving exact
//! per-cycle semantics. (It is *not* cross-window compression, which the
//! paper explicitly avoids; every window still represents exactly `len`
//! cycles and is exchanged exactly once.)

use core::fmt;

/// A window of `len` target cycles of tokens, with empty tokens implicit.
///
/// Offsets are strictly increasing and less than `len`; this invariant is
/// enforced by [`push`](TokenWindow::push).
///
/// # Examples
///
/// ```
/// use firesim_core::TokenWindow;
///
/// let mut w = TokenWindow::new(8);
/// w.push(2, "a").unwrap();
/// w.push(5, "b").unwrap();
/// assert_eq!(w.len(), 8);
/// assert_eq!(w.occupancy(), 2);
/// assert_eq!(w.get(5), Some(&"b"));
/// assert_eq!(w.get(3), None);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct TokenWindow<T> {
    len: u32,
    items: Vec<(u32, T)>,
}

impl<T> TokenWindow<T> {
    /// Creates an empty window covering `len` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero — a window must cover at least one cycle.
    pub fn new(len: u32) -> Self {
        assert!(len > 0, "token window must cover at least one cycle");
        TokenWindow {
            len,
            items: Vec::new(),
        }
    }

    /// Creates an empty window with pre-allocated capacity for `cap` tokens.
    pub fn with_capacity(len: u32, cap: usize) -> Self {
        assert!(len > 0, "token window must cover at least one cycle");
        TokenWindow {
            len,
            items: Vec::with_capacity(cap),
        }
    }

    /// The number of target cycles this window covers.
    ///
    /// Note that this is *not* the number of valid tokens; see
    /// [`occupancy`](TokenWindow::occupancy).
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when the window carries no valid tokens (all cycles idle).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The number of cycles carrying a valid token.
    #[inline]
    pub fn occupancy(&self) -> usize {
        self.items.len()
    }

    /// Appends a valid token at cycle-offset `offset` within the window.
    ///
    /// # Errors
    ///
    /// Returns the payload back if `offset` is out of range or not strictly
    /// greater than the last pushed offset (tokens must be pushed in cycle
    /// order, one per cycle at most).
    pub fn push(&mut self, offset: u32, payload: T) -> Result<(), T> {
        if offset >= self.len {
            return Err(payload);
        }
        if let Some(&(last, _)) = self.items.last() {
            if offset <= last {
                return Err(payload);
            }
        }
        self.items.push((offset, payload));
        Ok(())
    }

    /// The payload at cycle-offset `offset`, if that cycle carries a token.
    pub fn get(&self, offset: u32) -> Option<&T> {
        self.items
            .binary_search_by_key(&offset, |&(o, _)| o)
            .ok()
            .map(|i| &self.items[i].1)
    }

    /// Iterates over `(offset, &payload)` pairs in cycle order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.items.iter().map(|(o, p)| (*o, p))
    }

    /// Consumes the window, yielding `(offset, payload)` pairs in cycle order.
    #[allow(clippy::should_implement_trait)] // IntoIterator is also implemented
    pub fn into_iter(self) -> impl Iterator<Item = (u32, T)> {
        self.items.into_iter()
    }

    /// Converts to a dense `Vec<Option<T>>` of length `len`.
    ///
    /// This is the reference semantics of a window; used by tests to check
    /// that the sparse representation is faithful.
    pub fn to_dense(&self) -> Vec<Option<&T>> {
        let mut dense: Vec<Option<&T>> = (0..self.len).map(|_| None).collect();
        for (o, p) in self.iter() {
            dense[o as usize] = Some(p);
        }
        dense
    }

    /// Builds a window from dense per-cycle tokens.
    ///
    /// # Panics
    ///
    /// Panics if `dense` is empty.
    pub fn from_dense(dense: Vec<Option<T>>) -> Self {
        assert!(
            !dense.is_empty(),
            "token window must cover at least one cycle"
        );
        let len = u32::try_from(dense.len()).expect("window too large");
        let items = dense
            .into_iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (i as u32, t)))
            .collect();
        TokenWindow { len, items }
    }

    /// Maps payloads, preserving offsets.
    pub fn map<U>(self, mut f: impl FnMut(T) -> U) -> TokenWindow<U> {
        TokenWindow {
            len: self.len,
            items: self.items.into_iter().map(|(o, p)| (o, f(p))).collect(),
        }
    }

    /// Removes all tokens, keeping the window length.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Keeps only the tokens for which `f` returns true, preserving cycle
    /// order. Used by fault injection to turn valid tokens into idle ones
    /// (a "dead" link still advances one token per cycle — only payloads
    /// disappear — so cycle-exactness is preserved).
    pub fn retain(&mut self, mut f: impl FnMut(u32, &T) -> bool) {
        self.items.retain(|(o, p)| f(*o, p));
    }

    /// Re-initializes the window to cover `len` empty cycles, retaining the
    /// heap capacity of any previously held tokens.
    ///
    /// This is the recycling primitive: `reset` + refill performs no
    /// allocation as long as the new occupancy fits the old capacity.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero — a window must cover at least one cycle.
    pub fn reset(&mut self, len: u32) {
        assert!(len > 0, "token window must cover at least one cycle");
        self.len = len;
        self.items.clear();
    }

    /// The number of tokens this window can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.items.capacity()
    }

    /// Drains `(offset, payload)` pairs in cycle order, leaving the window
    /// empty but retaining its heap capacity (unlike `into_iter`, which
    /// consumes the buffer).
    pub fn drain(&mut self) -> impl Iterator<Item = (u32, T)> + '_ {
        self.items.drain(..)
    }
}

impl<T> IntoIterator for TokenWindow<T> {
    type Item = (u32, T);
    type IntoIter = std::vec::IntoIter<(u32, T)>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<T: fmt::Debug> fmt::Debug for TokenWindow<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TokenWindow")
            .field("len", &self.len)
            .field("items", &self.items)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut w = TokenWindow::new(10);
        assert!(w.is_empty());
        w.push(0, 'x').unwrap();
        w.push(9, 'y').unwrap();
        assert_eq!(w.get(0), Some(&'x'));
        assert_eq!(w.get(9), Some(&'y'));
        assert_eq!(w.get(5), None);
        assert_eq!(w.occupancy(), 2);
        assert_eq!(w.len(), 10);
        assert!(!w.is_empty());
    }

    #[test]
    fn push_rejects_out_of_range() {
        let mut w = TokenWindow::new(4);
        assert_eq!(w.push(4, 1), Err(1));
        assert_eq!(w.push(100, 2), Err(2));
    }

    #[test]
    fn push_rejects_out_of_order() {
        let mut w = TokenWindow::new(8);
        w.push(3, 1).unwrap();
        assert_eq!(w.push(3, 2), Err(2)); // duplicate cycle
        assert_eq!(w.push(1, 3), Err(3)); // earlier cycle
        w.push(4, 4).unwrap();
    }

    #[test]
    fn dense_round_trip() {
        let mut w = TokenWindow::new(6);
        w.push(1, 10).unwrap();
        w.push(4, 20).unwrap();
        let dense = w.to_dense();
        assert_eq!(dense, vec![None, Some(&10), None, None, Some(&20), None]);

        let w2 = TokenWindow::from_dense(vec![None, Some(10), None, None, Some(20), None]);
        assert_eq!(w, w2);
    }

    #[test]
    fn map_preserves_offsets() {
        let mut w = TokenWindow::new(4);
        w.push(2, 5).unwrap();
        let w2 = w.map(|v| v * 2);
        assert_eq!(w2.get(2), Some(&10));
        assert_eq!(w2.len(), 4);
    }

    #[test]
    fn iteration_in_cycle_order() {
        let mut w = TokenWindow::new(16);
        for i in [1u32, 5, 9] {
            w.push(i, i as u64).unwrap();
        }
        let collected: Vec<_> = w.iter().map(|(o, v)| (o, *v)).collect();
        assert_eq!(collected, vec![(1, 1), (5, 5), (9, 9)]);
        let owned: Vec<_> = w.into_iter().collect();
        assert_eq!(owned, vec![(1, 1), (5, 5), (9, 9)]);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_length_panics() {
        let _ = TokenWindow::<u8>::new(0);
    }

    #[test]
    fn clear_keeps_len() {
        let mut w = TokenWindow::new(4);
        w.push(0, 1).unwrap();
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn reset_retains_capacity() {
        let mut w = TokenWindow::with_capacity(8, 32);
        for i in 0..8 {
            w.push(i, i).unwrap();
        }
        let cap = w.capacity();
        assert!(cap >= 8);
        w.reset(16);
        assert_eq!(w.len(), 16);
        assert!(w.is_empty());
        assert_eq!(w.capacity(), cap, "reset must not shrink the buffer");
        w.push(15, 99).unwrap();
        assert_eq!(w.get(15), Some(&99));
    }

    #[test]
    fn drain_empties_but_keeps_buffer() {
        let mut w = TokenWindow::new(8);
        w.push(2, 'a').unwrap();
        w.push(6, 'b').unwrap();
        let cap = w.capacity();
        let drained: Vec<_> = w.drain().collect();
        assert_eq!(drained, vec![(2, 'a'), (6, 'b')]);
        assert!(w.is_empty());
        assert_eq!(w.len(), 8);
        assert_eq!(w.capacity(), cap);
    }
}
